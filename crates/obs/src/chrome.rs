//! Chrome trace-event JSON exporter.
//!
//! Produces the `{"traceEvents": [...]}` object format understood by
//! `chrome://tracing` and <https://ui.perfetto.dev>. Two processes map the
//! pipeline's two clocks onto separate track groups:
//!
//! * **pid 0 — "device (sim time)"**: one thread lane per simulated engine
//!   (tid 0 = H2D, 1 = Compute, 2 = D2H, 3+l = Host lane *l*), timestamps
//!   in simulated microseconds since schedule start. Engine exclusivity in
//!   the [`gpu_sim::timeline::Timeline`] guarantees lane events never
//!   overlap.
//! * **pid 1 — "host (wall time)"**: one lane per OS thread that recorded
//!   spans, timestamps in wall microseconds since the recorder's epoch.
//! * **pid 2 — "pool workers (wall time)"**: one lane per pool worker
//!   thread captured by a profiling session ([`rayon::profile`]), each
//!   task event tagged with its region label and whether it was stolen.
//!   Present only when a pool profile was ingested.
//!
//! All events are complete (`"ph": "X"`) duration events plus `"M"`
//! metadata records naming the processes and lanes.

use crate::json::JsonWriter;
use crate::Recorder;
use gpu_sim::timeline::Engine;

pub const DEVICE_PID: u64 = 0;
pub const HOST_PID: u64 = 1;
pub const POOL_PID: u64 = 2;

/// Stable lane (tid) assignment for device engines (device 0).
pub fn engine_tid(engine: Engine) -> u64 {
    match engine {
        Engine::H2D => 0,
        Engine::Compute => 1,
        Engine::D2H => 2,
        Engine::Host(l) => 3 + l as u64,
    }
}

/// Lane (tid) for an engine of simulated device `device`: devices get
/// disjoint 16-lane tid blocks, so a sharded run's per-shard pipelines
/// render as separate lane groups. Device 0 keeps the historical tids.
pub fn device_engine_tid(device: u32, engine: Engine) -> u64 {
    device as u64 * 16 + engine_tid(engine)
}

/// Human-readable lane name for a device engine.
pub fn engine_lane_name(engine: Engine) -> String {
    match engine {
        Engine::H2D => "H2D".to_string(),
        Engine::Compute => "Compute".to_string(),
        Engine::D2H => "D2H".to_string(),
        Engine::Host(l) => format!("Host {l}"),
    }
}

/// Lane name for an engine of simulated device `device`; shard devices
/// are prefixed so Perfetto groups read "shard1 Compute" etc.
pub fn device_engine_lane_name(device: u32, engine: Engine) -> String {
    if device == 0 {
        engine_lane_name(engine)
    } else {
        format!("shard{device} {}", engine_lane_name(engine))
    }
}

fn metadata_event(w: &mut JsonWriter, name: &str, pid: u64, tid: u64, value: &str) {
    w.begin_object();
    w.field_str("name", name);
    w.field_str("ph", "M");
    w.field_uint("pid", pid);
    w.field_uint("tid", tid);
    w.key("args");
    w.begin_object();
    w.field_str("name", value);
    w.end_object();
    w.end_object();
}

/// Serialize the recorder's full state as Chrome trace-event JSON.
pub fn export(rec: &Recorder) -> String {
    let device_ops = rec.device_ops();
    let spans = rec.spans();
    let thread_names = rec.thread_names();
    let pool_lanes = rec.pool_lanes();

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("traceEvents");
    w.begin_array();

    // Process names.
    metadata_event(&mut w, "process_name", DEVICE_PID, 0, "device (sim time)");
    metadata_event(&mut w, "process_name", HOST_PID, 0, "host (wall time)");
    if !pool_lanes.is_empty() {
        metadata_event(
            &mut w,
            "process_name",
            POOL_PID,
            0,
            "pool workers (wall time)",
        );
    }

    // Device lane names, one per (device, engine) actually used, in tid
    // order.
    let mut lanes: Vec<(u32, Engine)> = Vec::new();
    for op in &device_ops {
        if !lanes.contains(&(op.device, op.engine)) {
            lanes.push((op.device, op.engine));
        }
    }
    lanes.sort_by_key(|&(d, e)| device_engine_tid(d, e));
    for &(device, engine) in &lanes {
        metadata_event(
            &mut w,
            "thread_name",
            DEVICE_PID,
            device_engine_tid(device, engine),
            &device_engine_lane_name(device, engine),
        );
    }

    // Host lane names.
    for (tid, name) in thread_names.iter().enumerate() {
        metadata_event(&mut w, "thread_name", HOST_PID, tid as u64, name);
    }

    // Pool worker lane names (tid = lane index in ingestion order, which
    // the recorder keeps sorted by worker name).
    for (tid, lane) in pool_lanes.iter().enumerate() {
        metadata_event(&mut w, "thread_name", POOL_PID, tid as u64, &lane.name);
    }

    // Device events.
    for op in &device_ops {
        w.begin_object();
        w.field_str("name", &op.label);
        w.field_str("cat", "device");
        w.field_str("ph", "X");
        w.field_float("ts", op.start_us);
        w.field_float("dur", op.dur_us);
        w.field_uint("pid", DEVICE_PID);
        w.field_uint("tid", device_engine_tid(op.device, op.engine));
        w.key("args");
        w.begin_object();
        w.field_uint("chain", op.chain as u64);
        w.field_uint("stream", op.stream as u64);
        w.end_object();
        w.end_object();
    }

    // Host span events.
    for span in &spans {
        w.begin_object();
        w.field_str("name", &span.name);
        w.field_str("cat", span.cat);
        w.field_str("ph", "X");
        w.field_float("ts", span.wall_start_us);
        w.field_float("dur", span.wall_dur_us);
        w.field_uint("pid", HOST_PID);
        w.field_uint("tid", span.tid as u64);
        w.key("args");
        w.begin_object();
        if let (Some(ts), Some(td)) = (span.sim_start_us, span.sim_dur_us) {
            w.field_float("sim_start_us", ts);
            w.field_float("sim_dur_us", td);
        }
        for (k, v) in &span.args {
            w.field_str(k, v);
        }
        w.end_object();
        w.end_object();
    }

    // Pool worker task events, one lane per worker.
    for (tid, lane) in pool_lanes.iter().enumerate() {
        for ev in &lane.events {
            w.begin_object();
            w.field_str("name", ev.label);
            w.field_str("cat", "pool");
            w.field_str("ph", "X");
            w.field_float("ts", ev.start_us);
            w.field_float("dur", ev.dur_us);
            w.field_uint("pid", POOL_PID);
            w.field_uint("tid", tid as u64);
            w.key("args");
            w.begin_object();
            w.field_bool("stolen", ev.stolen);
            w.field_float("queue_us", ev.queue_us);
            w.end_object();
            w.end_object();
        }
    }

    w.end_array();
    w.field_str("displayTimeUnit", "ms");
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{SimDuration, SimTime};

    #[test]
    fn lane_assignment_is_stable_and_distinct() {
        let lanes = [
            Engine::H2D,
            Engine::Compute,
            Engine::D2H,
            Engine::Host(0),
            Engine::Host(1),
        ];
        let tids: Vec<u64> = lanes.iter().map(|&e| engine_tid(e)).collect();
        assert_eq!(tids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shard_devices_get_disjoint_lane_blocks() {
        // Device 0 keeps the historical tids; shard devices move to
        // their own 16-lane blocks with prefixed names.
        assert_eq!(device_engine_tid(0, Engine::Compute), 1);
        assert_eq!(device_engine_tid(1, Engine::H2D), 16);
        assert_eq!(device_engine_tid(2, Engine::Host(1)), 36);
        assert_eq!(device_engine_lane_name(0, Engine::Compute), "Compute");
        assert_eq!(device_engine_lane_name(1, Engine::D2H), "shard1 D2H");

        let rec = Recorder::new();
        rec.record_device_op_on(
            1,
            Engine::Compute,
            "kernel",
            0,
            0,
            SimTime::ZERO,
            SimDuration::from_secs(0.5),
        );
        let json = export(&rec);
        assert!(json.contains(r#""shard1 Compute""#), "{json}");
        assert!(json.contains(r#""tid":17"#), "{json}");
    }

    #[test]
    fn export_contains_lanes_events_and_metadata() {
        let rec = Recorder::new();
        rec.record_device_op(
            Engine::H2D,
            "upload",
            0,
            0,
            SimTime::ZERO,
            SimDuration::from_secs(0.25),
        );
        rec.record_device_op(
            Engine::Compute,
            "kernel",
            0,
            0,
            SimTime::from_secs(0.25),
            SimDuration::from_secs(1.0),
        );
        {
            let mut s = rec.span("build_table", "hybrid");
            s.arg("batches", 4);
        }
        let json = export(&rec);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains(r#""device (sim time)""#), "{json}");
        assert!(json.contains(r#""host (wall time)""#), "{json}");
        assert!(json.contains(r#""name":"upload""#), "{json}");
        assert!(json.contains(r#""name":"kernel""#), "{json}");
        assert!(json.contains(r#""name":"build_table""#), "{json}");
        assert!(json.contains(r#""batches":"4""#), "{json}");
        assert!(json.contains(r#""ph":"M""#), "{json}");
        assert!(json.contains(r#""ph":"X""#), "{json}");
        assert!(json.contains(r#""displayTimeUnit":"ms""#), "{json}");
    }

    #[test]
    fn empty_recorder_exports_valid_skeleton() {
        let rec = Recorder::new();
        let json = export(&rec);
        assert!(json.contains(r#""traceEvents":["#), "{json}");
        // No pool profile ingested → no pool process in the trace.
        assert!(!json.contains("pool workers"), "{json}");
    }

    #[test]
    fn pool_lanes_export_under_their_own_pid() {
        use crate::{PoolTaskEvent, PoolWorkerLane};
        let rec = Recorder::new();
        rec.record_pool_lanes(
            500.0,
            vec![PoolWorkerLane {
                name: "rayon-worker-0".into(),
                busy_us: 120.0,
                tasks: 1,
                steals: 1,
                events: vec![PoolTaskEvent {
                    label: "par_iter",
                    start_us: 10.0,
                    dur_us: 120.0,
                    stolen: true,
                    queue_us: 3.0,
                }],
                ..Default::default()
            }],
        );
        let json = export(&rec);
        assert!(json.contains(r#""pool workers (wall time)""#), "{json}");
        assert!(json.contains(r#""rayon-worker-0""#), "{json}");
        assert!(json.contains(r#""cat":"pool""#), "{json}");
        assert!(json.contains(r#""stolen":true"#), "{json}");
        assert!(json.contains(&format!(r#""pid":{POOL_PID}"#)), "{json}");
    }
}

//! Scaling diagnosis: turn a recorder's spans, device ops, and pool
//! worker lanes into an attribution story — per-stage serial fraction
//! and Amdahl ceiling, per-worker utilization, dispatch hotspots, and
//! the critical path through the device schedule.
//!
//! ## Serial fraction
//!
//! For each pipeline stage (a top-level span, or the children of the
//! single root span when there is one), pool task events are clipped to
//! the stage's wall window and swept boundary-by-boundary: wall time
//! with **fewer than two** concurrently executing pool tasks counts as
//! serial. A stage that never touches the pool (or runs on the
//! sequential fast path under one thread) therefore reports serial
//! fraction 1.0 — exactly the diagnosis a scaling investigation wants.
//! The Amdahl-predicted max speedup is `1 / max(serial_fraction, 1e-4)`
//! (clamped so a fully parallel stage reports a finite ceiling).
//!
//! ## Critical path
//!
//! Over the device ops: start from the op that finishes last and walk
//! backwards, each time picking the latest-finishing unvisited op that
//! ends at or before the current op's start **and** shares its chain,
//! engine, or stream (the three edge kinds the simulated scheduler can
//! serialize on). The walk is a lower bound on the true dependency
//! chain but matches the scheduler's actual constraints for the
//! pipelines this workspace builds.
//!
//! ## PROFILE.json
//!
//! [`ProfileDoc`] is the schema-versioned document `repro profile`
//! emits. Like `BENCH_suite.json` it round-trips exactly through
//! [`crate::json`]: `parse(doc.to_json()).to_json() == doc.to_json()`.

use crate::json::{self, JsonValue, JsonWriter};
use crate::provenance::Provenance;
use crate::{DeviceOp, Recorder};
use std::collections::BTreeMap;

/// Document identifier; bump [`SCHEMA_VERSION`] on incompatible changes.
///
/// Version history: v1 had no provenance header; v2 (PR 9) added it.
/// [`ProfileDoc::parse`] still accepts v1 documents (provenance `None`).
pub const SCHEMA: &str = "hybrid-dbscan/profile";
pub const SCHEMA_VERSION: u64 = 2;

/// Floor for the serial fraction in the Amdahl ceiling, so a fully
/// parallel stage reports a finite (10 000×) max speedup instead of inf.
const MIN_SERIAL_FRACTION: f64 = 1e-4;

/// One pipeline stage's scaling diagnosis.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageAnalysis {
    pub name: String,
    pub wall_ms: f64,
    /// Total pool task time inside the stage window (may exceed
    /// `wall_ms` when several workers run concurrently).
    pub pool_busy_ms: f64,
    pub pool_tasks: u64,
    /// Fraction of the stage's wall time with < 2 pool tasks in flight.
    pub serial_fraction: f64,
    /// Amdahl ceiling: `1 / max(serial_fraction, 1e-4)`.
    pub amdahl_max_speedup: f64,
    /// Human-readable name of the dominant bottleneck, e.g.
    /// "91% of wall time inside batch_loop".
    pub dominant: String,
}

/// One pool worker's utilization over the profiled window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkerUtilization {
    pub name: String,
    pub busy_ms: f64,
    pub park_ms: f64,
    pub queue_wait_ms: f64,
    /// `busy / session span`, percent.
    pub utilization_pct: f64,
    pub tasks: u64,
    pub steals: u64,
}

/// One op on the device critical path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPathStep {
    /// Engine lane name (`H2D`/`Compute`/`D2H`/`Host l`).
    pub lane: String,
    pub label: String,
    pub start_ms: f64,
    pub dur_ms: f64,
}

/// Aggregate pool time by region label — where dispatch actually goes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Hotspot {
    pub label: String,
    pub busy_ms: f64,
    pub queue_wait_ms: f64,
    pub tasks: u64,
    pub steals: u64,
}

/// Full scaling diagnosis of one recorded run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunAnalysis {
    /// Wall length of the outermost span (0 when no spans recorded).
    pub wall_ms: f64,
    pub stages: Vec<StageAnalysis>,
    pub workers: Vec<WorkerUtilization>,
    pub critical_path: Vec<CriticalPathStep>,
    /// Sum of critical-path op durations (modeled µs → ms).
    pub critical_path_ms: f64,
    /// Sorted by `busy_ms` descending.
    pub hotspots: Vec<Hotspot>,
    /// Human-readable findings, one line per stage plus run-level lines.
    pub diagnosis: Vec<String>,
}

/// Wall time (µs) inside `[lo, hi]` with at least two of `intervals`
/// active — the time the window is actually parallel.
fn parallel_time_us(intervals: &[(f64, f64)], lo: f64, hi: f64) -> f64 {
    let mut bounds: Vec<(f64, i32)> = Vec::with_capacity(intervals.len() * 2);
    for &(s, e) in intervals {
        let (s, e) = (s.max(lo), e.min(hi));
        if e > s {
            bounds.push((s, 1));
            bounds.push((e, -1));
        }
    }
    if bounds.is_empty() {
        return 0.0;
    }
    // Ends before starts at equal timestamps: touching intervals do not
    // count as overlapping.
    bounds.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut active = 0i32;
    let mut parallel = 0.0;
    let mut prev = bounds[0].0;
    for (t, delta) in bounds {
        if active >= 2 {
            parallel += t - prev;
        }
        prev = t;
        active += delta;
    }
    parallel
}

/// Serial fraction of the window `[lo, hi]` given pool task intervals.
fn serial_fraction(intervals: &[(f64, f64)], lo: f64, hi: f64) -> f64 {
    let window = hi - lo;
    if window <= 0.0 {
        return 1.0;
    }
    let serial = window - parallel_time_us(intervals, lo, hi);
    (serial / window).clamp(0.0, 1.0)
}

/// Critical path through the device ops (see module docs for the walk).
pub fn critical_path(ops: &[DeviceOp]) -> Vec<CriticalPathStep> {
    if ops.is_empty() {
        return Vec::new();
    }
    let end = |o: &DeviceOp| o.start_us + o.dur_us;
    let mut cur = 0usize;
    for (i, o) in ops.iter().enumerate() {
        if end(o) > end(&ops[cur]) {
            cur = i;
        }
    }
    let mut visited = vec![false; ops.len()];
    visited[cur] = true;
    let mut path = vec![cur];
    loop {
        let c = &ops[cur];
        let mut best: Option<usize> = None;
        for (i, o) in ops.iter().enumerate() {
            if visited[i] || end(o) > c.start_us + 1e-6 {
                continue;
            }
            let linked = o.chain == c.chain || o.engine == c.engine || o.stream == c.stream;
            if linked && best.is_none_or(|b| end(o) > end(&ops[b])) {
                best = Some(i);
            }
        }
        match best {
            Some(i) => {
                visited[i] = true;
                path.push(i);
                cur = i;
            }
            None => break,
        }
    }
    path.reverse();
    path.iter()
        .map(|&i| {
            let o = &ops[i];
            CriticalPathStep {
                lane: crate::chrome::engine_lane_name(o.engine),
                label: o.label.clone(),
                start_ms: o.start_us / 1e3,
                dur_ms: o.dur_us / 1e3,
            }
        })
        .collect()
}

/// Run the full analysis pass over a recorder.
pub fn analyze(rec: &Recorder) -> RunAnalysis {
    let spans = rec.spans();
    let device_ops = rec.device_ops();
    let lanes = rec.pool_lanes();
    let pool_span_us = rec.pool_span_us();

    // All pool task intervals, across every worker lane.
    let intervals: Vec<(f64, f64)> = lanes
        .iter()
        .flat_map(|l| l.events.iter().map(|e| (e.start_us, e.start_us + e.dur_us)))
        .collect();

    // Stages: the children of the single root span when there is exactly
    // one root with children (the `hybrid_dbscan` umbrella), otherwise
    // the roots themselves (`build_table` called standalone).
    let roots: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
    let stage_spans: Vec<_> = if roots.len() == 1 {
        let root = roots[0];
        let children: Vec<_> = spans.iter().filter(|s| s.parent == Some(root.id)).collect();
        if children.is_empty() {
            roots
        } else {
            children
        }
    } else {
        roots
    };
    let wall_ms = spans
        .iter()
        .filter(|s| s.parent.is_none())
        .map(|s| s.wall_start_us + s.wall_dur_us)
        .fold(0.0f64, f64::max)
        / 1e3;

    let mut stages = Vec::new();
    let mut diagnosis = Vec::new();
    for stage in &stage_spans {
        let lo = stage.wall_start_us;
        let hi = stage.wall_start_us + stage.wall_dur_us;
        let sf = serial_fraction(&intervals, lo, hi);
        let amdahl = 1.0 / sf.max(MIN_SERIAL_FRACTION);
        let clipped: Vec<(f64, f64)> = intervals
            .iter()
            .map(|&(s, e)| (s.max(lo), e.min(hi)))
            .filter(|&(s, e)| e > s)
            .collect();
        let pool_busy_ms = clipped.iter().map(|&(s, e)| e - s).sum::<f64>() / 1e3;
        let pool_tasks = clipped.len() as u64;

        // Dominant bottleneck: the largest child span, by share of the
        // stage's wall time; stages without children are judged by their
        // parallelism alone.
        let biggest_child = spans
            .iter()
            .filter(|s| s.parent == Some(stage.id))
            .max_by(|a, b| a.wall_dur_us.total_cmp(&b.wall_dur_us));
        let dominant = match biggest_child {
            Some(child) if stage.wall_dur_us > 0.0 => {
                let pct = child.wall_dur_us / stage.wall_dur_us * 100.0;
                format!("{:.0}% of wall time inside {}", pct, child.name)
            }
            _ if sf > 0.5 => format!("{:.0}% of wall time single-threaded", sf * 100.0),
            _ => "parallel pool execution".to_string(),
        };
        diagnosis.push(format!(
            "{}: {dominant}; serial fraction {sf:.2}, Amdahl max speedup {amdahl:.1}x",
            stage.name
        ));
        stages.push(StageAnalysis {
            name: stage.name.clone(),
            wall_ms: stage.wall_dur_us / 1e3,
            pool_busy_ms,
            pool_tasks,
            serial_fraction: sf,
            amdahl_max_speedup: amdahl,
            dominant,
        });
    }

    let workers: Vec<WorkerUtilization> = lanes
        .iter()
        .map(|l| WorkerUtilization {
            name: l.name.clone(),
            busy_ms: l.busy_us / 1e3,
            park_ms: l.park_us / 1e3,
            queue_wait_ms: l.queue_wait_us / 1e3,
            utilization_pct: if pool_span_us > 0.0 {
                l.busy_us / pool_span_us * 100.0
            } else {
                0.0
            },
            tasks: l.tasks,
            steals: l.steals,
        })
        .collect();
    if !workers.is_empty() {
        let mean_util =
            workers.iter().map(|w| w.utilization_pct).sum::<f64>() / workers.len() as f64;
        let steals: u64 = workers.iter().map(|w| w.steals).sum();
        diagnosis.push(format!(
            "pool: {} workers, mean utilization {mean_util:.0}%, {steals} steals",
            workers.len()
        ));
    }

    // Hotspots: pool time by region label (BTreeMap for a deterministic
    // tie order, then sorted by busy time).
    let mut by_label: BTreeMap<&str, Hotspot> = BTreeMap::new();
    for lane in &lanes {
        for e in &lane.events {
            let h = by_label.entry(e.label).or_insert_with(|| Hotspot {
                label: e.label.to_string(),
                ..Hotspot::default()
            });
            h.busy_ms += e.dur_us / 1e3;
            h.queue_wait_ms += e.queue_us / 1e3;
            h.tasks += 1;
            h.steals += e.stolen as u64;
        }
    }
    let mut hotspots: Vec<Hotspot> = by_label.into_values().collect();
    hotspots.sort_by(|a, b| b.busy_ms.total_cmp(&a.busy_ms));

    let critical_path = critical_path(&device_ops);
    let critical_path_ms: f64 = critical_path.iter().map(|s| s.dur_ms).sum();
    if !critical_path.is_empty() {
        let makespan_ms = device_ops
            .iter()
            .map(|o| o.start_us + o.dur_us)
            .fold(0.0f64, f64::max)
            / 1e3;
        let pct = if makespan_ms > 0.0 {
            critical_path_ms / makespan_ms * 100.0
        } else {
            0.0
        };
        diagnosis.push(format!(
            "device critical path: {critical_path_ms:.3} ms over {} ops ({pct:.0}% of makespan)",
            critical_path.len()
        ));
    }

    RunAnalysis {
        wall_ms,
        stages,
        workers,
        critical_path,
        critical_path_ms,
        hotspots,
        diagnosis,
    }
}

/// One profiled run of one workload at one thread count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileRun {
    /// Workload id, e.g. `s1/sw1-eps0.2/global`.
    pub workload: String,
    pub scenario: String,
    pub kernel: String,
    pub threads: u64,
    pub wall_ms: f64,
    pub modeled_ms: f64,
    /// `to_bits()` of the modeled GPU-phase seconds — the determinism
    /// sentinel CI compares across profiled/unprofiled runs. Serialized
    /// as a 16-digit hex string (JSON numbers are f64 in the shared
    /// parser and would truncate a 64-bit pattern).
    pub modeled_time_bits: u64,
    /// True when an unprofiled run of the same workload produced the
    /// identical `modeled_time_bits`.
    pub bits_match_unprofiled: bool,
    pub stages: Vec<StageAnalysis>,
    pub workers: Vec<WorkerUtilization>,
    pub critical_path: Vec<CriticalPathStep>,
    pub critical_path_ms: f64,
    pub hotspots: Vec<Hotspot>,
    pub diagnosis: Vec<String>,
}

impl ProfileRun {
    /// Copy the analysis fields out of a [`RunAnalysis`].
    pub fn from_analysis(a: &RunAnalysis) -> ProfileRun {
        ProfileRun {
            wall_ms: a.wall_ms,
            stages: a.stages.clone(),
            workers: a.workers.clone(),
            critical_path: a.critical_path.clone(),
            critical_path_ms: a.critical_path_ms,
            hotspots: a.hotspots.clone(),
            diagnosis: a.diagnosis.clone(),
            ..ProfileRun::default()
        }
    }
}

/// A full `PROFILE.json` document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileDoc {
    pub version: u64,
    pub scale: f64,
    pub host_threads: u64,
    /// Identity of the producing run. `None` only on parsed v1 documents.
    pub provenance: Option<Provenance>,
    pub runs: Vec<ProfileRun>,
}

impl ProfileDoc {
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", SCHEMA);
        w.field_uint("version", self.version);
        w.field_float("scale", self.scale);
        w.field_uint("host_threads", self.host_threads);
        if let Some(p) = &self.provenance {
            p.write_field(&mut w);
        }
        w.key("runs");
        w.begin_array();
        for run in &self.runs {
            w.begin_object();
            w.field_str("workload", &run.workload);
            w.field_str("scenario", &run.scenario);
            w.field_str("kernel", &run.kernel);
            w.field_uint("threads", run.threads);
            w.field_float("wall_ms", run.wall_ms);
            w.field_float("modeled_ms", run.modeled_ms);
            // As a hex string, not a number: the shared parser stores
            // numbers as f64, which cannot represent a full 64-bit
            // pattern — a numeric field would not survive the round-trip
            // fixed-point check.
            w.field_str(
                "modeled_time_bits",
                &format!("{:016x}", run.modeled_time_bits),
            );
            w.field_bool("bits_match_unprofiled", run.bits_match_unprofiled);
            w.key("stages");
            w.begin_array();
            for s in &run.stages {
                w.begin_object();
                w.field_str("name", &s.name);
                w.field_float("wall_ms", s.wall_ms);
                w.field_float("pool_busy_ms", s.pool_busy_ms);
                w.field_uint("pool_tasks", s.pool_tasks);
                w.field_float("serial_fraction", s.serial_fraction);
                w.field_float("amdahl_max_speedup", s.amdahl_max_speedup);
                w.field_str("dominant", &s.dominant);
                w.end_object();
            }
            w.end_array();
            w.key("workers");
            w.begin_array();
            for wu in &run.workers {
                w.begin_object();
                w.field_str("name", &wu.name);
                w.field_float("busy_ms", wu.busy_ms);
                w.field_float("park_ms", wu.park_ms);
                w.field_float("queue_wait_ms", wu.queue_wait_ms);
                w.field_float("utilization_pct", wu.utilization_pct);
                w.field_uint("tasks", wu.tasks);
                w.field_uint("steals", wu.steals);
                w.end_object();
            }
            w.end_array();
            w.key("critical_path");
            w.begin_array();
            for step in &run.critical_path {
                w.begin_object();
                w.field_str("lane", &step.lane);
                w.field_str("label", &step.label);
                w.field_float("start_ms", step.start_ms);
                w.field_float("dur_ms", step.dur_ms);
                w.end_object();
            }
            w.end_array();
            w.field_float("critical_path_ms", run.critical_path_ms);
            w.key("hotspots");
            w.begin_array();
            for h in &run.hotspots {
                w.begin_object();
                w.field_str("label", &h.label);
                w.field_float("busy_ms", h.busy_ms);
                w.field_float("queue_wait_ms", h.queue_wait_ms);
                w.field_uint("tasks", h.tasks);
                w.field_uint("steals", h.steals);
                w.end_object();
            }
            w.end_array();
            w.key("diagnosis");
            w.begin_array();
            for line in &run.diagnosis {
                w.string(line);
            }
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parse a document produced by [`Self::to_json`]. Schema and
    /// version are validated; field errors name the offending key.
    pub fn parse(text: &str) -> Result<ProfileDoc, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let schema = req_str(&v, "schema")?;
        if schema != SCHEMA {
            return Err(format!("unexpected schema '{schema}' (want '{SCHEMA}')"));
        }
        let version = req_u64(&v, "version")?;
        if !(1..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema version {version} (supported: 1..={SCHEMA_VERSION})"
            ));
        }
        let mut doc = ProfileDoc {
            version,
            scale: req_f64(&v, "scale")?,
            host_threads: req_u64(&v, "host_threads")?,
            provenance: Provenance::parse_field(&v)?,
            runs: Vec::new(),
        };
        let runs = v
            .get("runs")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'runs' array")?;
        for r in runs {
            let mut run = ProfileRun {
                workload: req_str(r, "workload")?.to_string(),
                scenario: req_str(r, "scenario")?.to_string(),
                kernel: req_str(r, "kernel")?.to_string(),
                threads: req_u64(r, "threads")?,
                wall_ms: req_f64(r, "wall_ms")?,
                modeled_ms: req_f64(r, "modeled_ms")?,
                modeled_time_bits: u64::from_str_radix(req_str(r, "modeled_time_bits")?, 16)
                    .map_err(|e| format!("bad hex in 'modeled_time_bits': {e}"))?,
                bits_match_unprofiled: r
                    .get("bits_match_unprofiled")
                    .and_then(JsonValue::as_bool)
                    .ok_or("missing boolean field 'bits_match_unprofiled'")?,
                critical_path_ms: req_f64(r, "critical_path_ms")?,
                ..ProfileRun::default()
            };
            for s in req_arr(r, "stages")? {
                run.stages.push(StageAnalysis {
                    name: req_str(s, "name")?.to_string(),
                    wall_ms: req_f64(s, "wall_ms")?,
                    pool_busy_ms: req_f64(s, "pool_busy_ms")?,
                    pool_tasks: req_u64(s, "pool_tasks")?,
                    serial_fraction: req_f64(s, "serial_fraction")?,
                    amdahl_max_speedup: req_f64(s, "amdahl_max_speedup")?,
                    dominant: req_str(s, "dominant")?.to_string(),
                });
            }
            for wv in req_arr(r, "workers")? {
                run.workers.push(WorkerUtilization {
                    name: req_str(wv, "name")?.to_string(),
                    busy_ms: req_f64(wv, "busy_ms")?,
                    park_ms: req_f64(wv, "park_ms")?,
                    queue_wait_ms: req_f64(wv, "queue_wait_ms")?,
                    utilization_pct: req_f64(wv, "utilization_pct")?,
                    tasks: req_u64(wv, "tasks")?,
                    steals: req_u64(wv, "steals")?,
                });
            }
            for step in req_arr(r, "critical_path")? {
                run.critical_path.push(CriticalPathStep {
                    lane: req_str(step, "lane")?.to_string(),
                    label: req_str(step, "label")?.to_string(),
                    start_ms: req_f64(step, "start_ms")?,
                    dur_ms: req_f64(step, "dur_ms")?,
                });
            }
            for h in req_arr(r, "hotspots")? {
                run.hotspots.push(Hotspot {
                    label: req_str(h, "label")?.to_string(),
                    busy_ms: req_f64(h, "busy_ms")?,
                    queue_wait_ms: req_f64(h, "queue_wait_ms")?,
                    tasks: req_u64(h, "tasks")?,
                    steals: req_u64(h, "steals")?,
                });
            }
            for line in req_arr(r, "diagnosis")? {
                run.diagnosis.push(
                    line.as_str()
                        .ok_or("diagnosis entry not a string")?
                        .to_string(),
                );
            }
            doc.runs.push(run);
        }
        Ok(doc)
    }
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

fn req_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], String> {
    v.get(key)
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| format!("missing array field '{key}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PoolTaskEvent, PoolWorkerLane};
    use gpu_sim::timeline::Engine;
    use gpu_sim::{SimDuration, SimTime};

    fn lane(name: &str, events: Vec<PoolTaskEvent>) -> PoolWorkerLane {
        let busy_us = events.iter().map(|e| e.dur_us).sum();
        let tasks = events.len() as u64;
        PoolWorkerLane {
            name: name.into(),
            busy_us,
            tasks,
            local_pops: tasks,
            events,
            ..PoolWorkerLane::default()
        }
    }

    fn ev(start_us: f64, dur_us: f64) -> PoolTaskEvent {
        PoolTaskEvent {
            label: "par_iter",
            start_us,
            dur_us,
            stolen: false,
            queue_us: 0.0,
        }
    }

    #[test]
    fn serial_fraction_is_one_without_overlap() {
        // One worker, back-to-back tasks: never two in flight.
        let intervals = vec![(0.0, 400.0), (400.0, 1000.0)];
        assert_eq!(serial_fraction(&intervals, 0.0, 1000.0), 1.0);
        // No pool events at all.
        assert_eq!(serial_fraction(&[], 0.0, 1000.0), 1.0);
    }

    #[test]
    fn serial_fraction_sees_cross_worker_overlap() {
        // Two workers fully overlapped for the whole window.
        let intervals = vec![(0.0, 1000.0), (0.0, 1000.0)];
        assert!(serial_fraction(&intervals, 0.0, 1000.0) < 0.01);
        // Overlapped for half the window.
        let intervals = vec![(0.0, 1000.0), (500.0, 1000.0)];
        let sf = serial_fraction(&intervals, 0.0, 1000.0);
        assert!((sf - 0.5).abs() < 1e-9, "{sf}");
        // Clipping: overlap outside the window does not count.
        let sf = serial_fraction(&intervals, 0.0, 500.0);
        assert_eq!(sf, 1.0);
    }

    #[test]
    fn analyze_flags_serialized_and_parallel_stages() {
        let rec = Recorder::new();
        let (lo, hi) = {
            let s = rec.span("stage", "host");
            // Hold the span open a moment so it has nonzero duration.
            std::thread::sleep(std::time::Duration::from_millis(2));
            drop(s);
            let sp = &rec.spans()[0];
            (sp.wall_start_us, sp.wall_start_us + sp.wall_dur_us)
        };
        // Two workers busy with overlapping tasks across the whole stage.
        rec.record_pool_lanes(
            hi - lo,
            vec![
                lane("rayon-worker-0", vec![ev(lo, hi - lo)]),
                lane("rayon-worker-1", vec![ev(lo, hi - lo)]),
            ],
        );
        let a = analyze(&rec);
        assert_eq!(a.stages.len(), 1);
        assert!(a.stages[0].serial_fraction < 0.3, "{:?}", a.stages[0]);
        assert!(a.stages[0].amdahl_max_speedup > 3.0);
        assert_eq!(a.workers.len(), 2);
        assert!(!a.diagnosis.is_empty());

        // A recorder with no pool events: fully serial.
        let rec = Recorder::new();
        {
            let _s = rec.span("stage", "host");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let a = analyze(&rec);
        assert_eq!(a.stages[0].serial_fraction, 1.0);
        assert!((a.stages[0].amdahl_max_speedup - 1.0).abs() < 1e-9);
    }

    #[test]
    fn analyze_uses_root_children_as_stages() {
        let rec = Recorder::new();
        {
            let _root = rec.span("hybrid_dbscan", "run");
            let _a = rec.span("build_table", "hybrid");
            drop(_a);
            let _b = rec.span("dbscan", "host");
        }
        let a = analyze(&rec);
        let names: Vec<&str> = a.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["build_table", "dbscan"]);
    }

    #[test]
    fn critical_path_follows_chain_and_engine_edges() {
        let rec = Recorder::new();
        // chain 0: h2d 0-10, compute 10-30; chain 1: compute 30-40
        // (serialized behind chain 0 on the Compute engine).
        rec.record_device_op(
            Engine::H2D,
            "up",
            0,
            0,
            SimTime::ZERO,
            SimDuration::from_micros(10.0),
        );
        rec.record_device_op(
            Engine::Compute,
            "k0",
            0,
            0,
            SimTime::from_secs(10e-6),
            SimDuration::from_micros(20.0),
        );
        rec.record_device_op(
            Engine::Compute,
            "k1",
            1,
            1,
            SimTime::from_secs(30e-6),
            SimDuration::from_micros(10.0),
        );
        let path = critical_path(&rec.device_ops());
        let labels: Vec<&str> = path.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["up", "k0", "k1"]);
        let total: f64 = path.iter().map(|s| s.dur_ms).sum();
        assert!((total - 0.04).abs() < 1e-12, "{total}");
    }

    #[test]
    fn hotspots_aggregate_by_label_and_sort_by_busy() {
        let rec = Recorder::new();
        rec.record_pool_lanes(
            1000.0,
            vec![lane(
                "w0",
                vec![
                    PoolTaskEvent {
                        label: "sort_runs",
                        start_us: 0.0,
                        dur_us: 100.0,
                        stolen: true,
                        queue_us: 5.0,
                    },
                    PoolTaskEvent {
                        label: "par_iter",
                        start_us: 100.0,
                        dur_us: 700.0,
                        stolen: false,
                        queue_us: 0.0,
                    },
                ],
            )],
        );
        let a = analyze(&rec);
        assert_eq!(a.hotspots.len(), 2);
        assert_eq!(a.hotspots[0].label, "par_iter");
        assert_eq!(a.hotspots[1].label, "sort_runs");
        assert_eq!(a.hotspots[1].steals, 1);
    }

    fn sample_doc() -> ProfileDoc {
        ProfileDoc {
            version: SCHEMA_VERSION,
            scale: 0.02,
            host_threads: 8,
            provenance: Some(Provenance {
                header_version: crate::provenance::HEADER_VERSION,
                schema: SCHEMA.into(),
                schema_version: SCHEMA_VERSION,
                git_sha: "ee9aa08269b9".into(),
                git_dirty: false,
                rustc: "rustc 1.95.0".into(),
                rayon_num_threads: "8".into(),
                host: "test".into(),
                os: "linux/x86_64".into(),
                timestamp_unix: 1_754_611_200,
                workloads: vec!["s1/sw1-eps0.2/global".into()],
            }),
            runs: vec![ProfileRun {
                workload: "s1/sw1-eps0.2/global".into(),
                scenario: "S1".into(),
                kernel: "global".into(),
                threads: 4,
                wall_ms: 1234.5,
                modeled_ms: 842.125,
                // Deliberately not f64-representable (odd low bit): real
                // bit patterns use the full mantissa, and a numeric JSON
                // encoding would silently truncate them.
                modeled_time_bits: 0x3FEB_5A5A_5A5A_5A5B,
                bits_match_unprofiled: true,
                stages: vec![StageAnalysis {
                    name: "build_table".into(),
                    wall_ms: 900.25,
                    pool_busy_ms: 1800.5,
                    pool_tasks: 64,
                    serial_fraction: 0.91,
                    amdahl_max_speedup: 1.1,
                    dominant: "91% of wall time inside batch_loop".into(),
                }],
                workers: vec![WorkerUtilization {
                    name: "rayon-worker-0".into(),
                    busy_ms: 500.5,
                    park_ms: 300.25,
                    queue_wait_ms: 2.5,
                    utilization_pct: 55.5,
                    tasks: 32,
                    steals: 12,
                }],
                critical_path: vec![CriticalPathStep {
                    lane: "Compute".into(),
                    label: "gpucalc".into(),
                    start_ms: 0.125,
                    dur_ms: 500.75,
                }],
                critical_path_ms: 500.75,
                hotspots: vec![Hotspot {
                    label: "par_iter".into(),
                    busy_ms: 1500.125,
                    queue_wait_ms: 3.5,
                    tasks: 64,
                    steals: 12,
                }],
                diagnosis: vec![
                    "build_table: 91% of wall time inside batch_loop; serial fraction 0.91, \
                     Amdahl max speedup 1.1x"
                        .into(),
                ],
            }],
        }
    }

    #[test]
    fn profile_doc_round_trips_exactly() {
        let doc = sample_doc();
        let text = doc.to_json();
        let parsed = ProfileDoc::parse(&text).expect("parse own output");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_json(), text, "emission must be a fixed point");
    }

    #[test]
    fn profile_doc_rejects_wrong_schema_and_version() {
        let text = sample_doc().to_json();
        let wrong = text.replacen(SCHEMA, "something/else", 1);
        assert!(ProfileDoc::parse(&wrong).unwrap_err().contains("schema"));
        let wrong = text.replacen(r#""version":2"#, r#""version":999"#, 1);
        assert!(ProfileDoc::parse(&wrong).unwrap_err().contains("version"));
        assert!(ProfileDoc::parse("{}").is_err());
        assert!(ProfileDoc::parse("not json").is_err());
    }

    #[test]
    fn profile_doc_v1_parses_without_provenance() {
        let mut doc = sample_doc();
        doc.version = 1;
        doc.provenance = None;
        let text = doc.to_json();
        assert!(!text.contains("provenance"));
        let parsed = ProfileDoc::parse(&text).expect("v1 fallback");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_json(), text);
    }
}

//! Galaxy-survey clustering with neighbor-table reuse (scenario S3).
//!
//! With ε fixed, the ε-neighborhood table `T` is independent of `minpts`,
//! so one GPU-built table serves a whole sweep of richness thresholds:
//! low `minpts` finds loose galaxy groupings, high `minpts` only rich
//! groups/clusters. Up to 16 host threads consume the same table
//! concurrently — the configuration behind the paper's 27–54× headline
//! speedups.
//!
//! ```sh
//! cargo run --release --example sky_survey [scale]
//! ```

use hybrid_dbscan::core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan::core::reuse::TableReuse;
use hybrid_dbscan::datasets::spec;
use hybrid_dbscan::gpu_sim::Device;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01);

    println!("generating SDSS1 (galaxy survey, 0.30 <= z <= 0.35) at scale {scale}…");
    let dataset = spec::SDSS1.generate(scale);
    println!(
        "{} galaxies, near-uniform with mild large-scale structure",
        dataset.len()
    );

    let device = Device::k20c();
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());

    // Build T once at eps = 0.3 (the paper's SDSS1 row of Table V).
    let eps = 0.3;
    println!("\nbuilding the neighbor table once at eps = {eps}…");
    let handle = hybrid
        .build_table(&dataset.points, eps)
        .expect("table build failed");
    println!(
        "table: {} entries over {} points ({:.1} MB host memory), GPU phase {:.1} ms",
        handle.table.num_entries(),
        handle.table.num_points(),
        handle.table.memory_bytes() as f64 / 1e6,
        handle.gpu.modeled_time.as_millis()
    );

    // Reuse it for 16 richness thresholds, consumed by 16 threads.
    let minpts: Vec<usize> = vec![
        10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 400, 800, 1000, 2000, 3000,
    ];
    let run = TableReuse::cluster_variants(&handle, &minpts);

    println!("\n  minpts   groups found   dbscan");
    for ((&m, &count), d) in minpts
        .iter()
        .zip(&run.cluster_counts)
        .zip(&run.per_variant_dbscan)
    {
        println!("  {:>6}   {:>12}   {:>6.1} ms", m, count, d.as_millis());
    }
    println!(
        "\nall 16 variants: table {:.1} ms (once) + 16-thread DBSCAN phase {:.1} ms = {:.1} ms total",
        run.table_time.as_millis(),
        run.dbscan_phase(16).as_millis(),
        run.total(16).as_millis()
    );

    // Compare against rebuilding the table per variant.
    let serial_rebuild: f64 =
        minpts.len() as f64 * handle.gpu.modeled_time.as_millis() + run.dbscan_serial().as_millis();
    println!(
        "without reuse (rebuild T per variant, serial): ~{serial_rebuild:.1} ms -> reuse is ~{:.1}x better",
        serial_rebuild / run.total(16).as_millis()
    );
}

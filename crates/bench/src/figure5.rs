//! **Figure 5** (scenario S3) — response time vs number of threads when
//! reusing a single neighbor table for 16 `minpts` values.
//!
//! Paper shape: total time falls steeply from 1 to ~8 threads then
//! flattens (speedups of 2.9×–6.1× at 16 threads); the gap between the
//! "Total" and "DBSCAN" curves is the fixed table-construction time.

use crate::common::{fmt_secs, DatasetCache, Options, TextTable};
use gpu_sim::Device;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan_core::reuse::TableReuse;
use hybrid_dbscan_core::scenario;

/// Thread counts swept (the paper's x-axis is 1..16).
pub const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

/// One (dataset, ε, threads) measurement.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: String,
    pub eps: f64,
    pub threads: usize,
    pub table_secs: f64,
    pub dbscan_secs: f64,
    pub total_secs: f64,
}

/// Run the S3 thread sweep.
pub fn run(opts: &Options) -> Vec<Row> {
    let device = Device::k20c();
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    let mut cache = DatasetCache::new(opts.scale);
    // The paper plots SW1, SW4, SDSS1, SDSS3.
    let selected = opts.select(&["SW1", "SW4", "SDSS1", "SDSS3"]);
    let mut rows = Vec::new();

    for name in &selected {
        let data = cache.get(name).points.clone();
        for (eps, minpts_values) in scenario::s3_rows(name) {
            // T is built once per ε row; variants are measured once and
            // the t-thread phase is the modeled work-queue makespan.
            let handle = hybrid.build_table(&data, eps).expect("table build failed");
            let run = TableReuse::cluster_variants(&handle, &minpts_values);
            for &threads in THREADS.iter() {
                rows.push(Row {
                    dataset: name.clone(),
                    eps,
                    threads,
                    table_secs: run.table_time.as_secs(),
                    dbscan_secs: run.dbscan_phase(threads).as_secs(),
                    total_secs: run.total(threads).as_secs(),
                });
                eprintln!(
                    "# {name} eps={eps:.2} t={threads}: dbscan {} total {}",
                    fmt_secs(run.dbscan_phase(threads).as_secs()),
                    fmt_secs(run.total(threads).as_secs())
                );
            }
        }
    }
    rows
}

/// Print per-(dataset, ε) series (the panels of Figure 5).
pub fn print(opts: &Options) {
    println!("== Figure 5 (S3): response time vs threads, one table reused for 16 minpts ==");
    println!("Paper shape: time drops with threads (4.4-6.1x on SW1, 2.9-5.1x on");
    println!("SDSS1 from 1->16); table-construction time is the constant offset.\n");
    let rows = run(opts);
    opts.write_csv(
        "figure5",
        &[
            "dataset",
            "eps",
            "threads",
            "table_secs",
            "dbscan_secs",
            "total_secs",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.eps.to_string(),
                    r.threads.to_string(),
                    r.table_secs.to_string(),
                    r.dbscan_secs.to_string(),
                    r.total_secs.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let mut key = (String::new(), f64::NAN);
    let mut base_total = 1.0;
    let mut table: Option<TextTable> = None;
    for r in &rows {
        if (r.dataset.clone(), r.eps) != key {
            if let Some(t) = table.take() {
                t.print();
                println!();
            }
            key = (r.dataset.clone(), r.eps);
            base_total = r.total_secs;
            println!(
                "--- {} (eps = {:.2}, 16 minpts variants) ---",
                r.dataset, r.eps
            );
            table = Some(TextTable::new(&[
                "threads",
                "DBSCAN",
                "Total",
                "speedup vs 1 thread",
            ]));
        }
        table.as_mut().unwrap().row(vec![
            r.threads.to_string(),
            fmt_secs(r.dbscan_secs),
            fmt_secs(r.total_secs),
            format!("{:.2}x", base_total / r.total_secs.max(1e-12)),
        ]);
    }
    if let Some(t) = table {
        t.print();
    }
    // Speedups summary (total at 1 thread over total at 16 threads).
    println!("\n-- 1->16 thread total-time speedups --");
    let mut t = TextTable::new(&["Dataset", "eps", "speedup"]);
    let mut i = 0;
    while i < rows.len() {
        let base = &rows[i];
        let last = rows[i..]
            .iter()
            .take_while(|r| r.dataset == base.dataset && r.eps == base.eps)
            .last()
            .unwrap();
        t.row(vec![
            base.dataset.clone(),
            format!("{:.2}", base.eps),
            format!("{:.2}x", base.total_secs / last.total_secs.max(1e-12)),
        ]);
        i += THREADS.len();
    }
    t.print();
}

//! The execution core: a global pool of `std::thread` workers pulling
//! chunked **regions** of work from a shared queue.
//!
//! A region is one parallel operation (a `for_each`, a `collect`, one
//! merge round of a sort, a `scope` spawn, a `join` branch) split into
//! `chunks` independently claimable pieces. Claiming is a single
//! `fetch_add` on the region's `next` cursor, which gives fine-grained
//! work stealing without per-worker deques: any idle worker grabs the
//! next chunk of any runnable region, so load imbalance inside a region
//! is absorbed by whoever is free.
//!
//! ## Progress guarantee
//!
//! The submitting thread always participates in its own region before
//! blocking on its completion. Every region therefore completes even if
//! all workers are busy (or the pool has zero workers), and nested
//! parallelism — a chunk that itself submits a region — bottoms out on
//! the caller's own stack. Blocking *between* region chunks (a consumer
//! chunk waiting on a channel fed by the submitting thread) is safe as
//! long as the feeding side is not itself queued behind that chunk; the
//! pipeline keeps its producer on the submitting thread for exactly this
//! reason.
//!
//! ## Sizing
//!
//! The pool reads `RAYON_NUM_THREADS` once (0/unset → all cores via
//! `available_parallelism`). [`ThreadPoolBuilder`] can *raise* the worker
//! count later (workers are global and permanent); `install` bounds the
//! concurrency of regions submitted inside it via a thread-local
//! override, which workers inherit while executing those chunks.

use crate::profile;
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Safety valve on configured pool sizes (oversubscription is allowed —
/// single-core hosts still exercise real concurrency — but bounded).
const MAX_THREADS: usize = 256;

thread_local! {
    /// Concurrency override installed by [`ThreadPool::install`] and
    /// inherited by workers while running an overridden region's chunks.
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of threads the current context may use: the `install`
/// override if one is active, otherwise the configured pool size.
pub fn current_num_threads() -> usize {
    OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(|| pool().n_threads)
}

fn configured_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n.min(MAX_THREADS),
        // 0 or unset/unparsable: all cores, like rayon.
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(MAX_THREADS),
    }
}

/// Type-erased borrowed chunk executor. The raw pointer targets the
/// submitter's stack frame; sound because the submitter blocks until the
/// region completes, so the pointee outlives every dereference.
#[derive(Clone, Copy)]
struct TaskPtr {
    data: *const (),
    call: unsafe fn(*const (), usize),
}
// SAFETY: the pointee is `Sync` (enforced by `run_parallel`'s bound) and
// outlives all use (the submitter blocks); see above.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

type OwnedJob = Box<dyn FnOnce() + Send>;

enum RegionTask {
    /// Chunk closure borrowed from the submitting stack frame.
    Borrowed(TaskPtr),
    /// Owned one-shot jobs (scope spawns, join branches), one per chunk.
    Owned(Vec<Mutex<Option<OwnedJob>>>),
}

pub(crate) struct Region {
    task: RegionTask,
    chunks: usize,
    /// Next unclaimed chunk (claim = `fetch_add`).
    next: AtomicUsize,
    /// Max threads (submitter included) allowed in concurrently.
    limit: usize,
    /// Threads currently executing chunks.
    active: AtomicUsize,
    /// Completed chunk count, guarded for the completion condvar.
    done: Mutex<usize>,
    completed: Condvar,
    /// First panic payload out of any chunk.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Profiler label naming what kind of work this region carries.
    label: &'static str,
    /// The submitting thread: a chunk claimed by any *other* thread
    /// counts as a steal in the profiler (this pool has no per-worker
    /// deques — the shared claim cursor plays the role of the deque, and
    /// "someone else ran my chunk" is the steal event).
    submitter: std::thread::ThreadId,
    /// Creation time, recorded only while profiling: the basis for the
    /// region's queue-wait (creation → first claim) measurement.
    submitted_at: Option<Instant>,
    first_claim: AtomicBool,
}

impl Region {
    fn new(task: RegionTask, chunks: usize, limit: usize, label: &'static str) -> Arc<Region> {
        Arc::new(Region {
            task,
            chunks,
            next: AtomicUsize::new(0),
            limit,
            active: AtomicUsize::new(0),
            done: Mutex::new(0),
            completed: Condvar::new(),
            panic: Mutex::new(None),
            label,
            submitter: std::thread::current().id(),
            submitted_at: profile::enabled().then(Instant::now),
            first_claim: AtomicBool::new(false),
        })
    }

    fn run_chunk(&self, i: usize) {
        let result = catch_unwind(AssertUnwindSafe(|| match &self.task {
            RegionTask::Borrowed(ptr) => unsafe { (ptr.call)(ptr.data, i) },
            RegionTask::Owned(slots) => {
                if let Some(job) = slots[i].lock().unwrap().take() {
                    job();
                }
            }
        }));
        if let Err(payload) = result {
            let mut p = self.panic.lock().unwrap();
            if p.is_none() {
                *p = Some(payload);
            }
        }
    }

    fn claimable(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.chunks
            && self.active.load(Ordering::Relaxed) < self.limit
    }

    /// Block until every chunk has run (not merely been claimed).
    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while *done < self.chunks {
            done = self.completed.wait(done).unwrap();
        }
    }

    fn take_panic(&self) -> Option<Box<dyn Any + Send>> {
        self.panic.lock().unwrap().take()
    }
}

/// Claim and run chunks of `region` until none remain (or the region's
/// concurrency cap is already met). Called by workers and submitters
/// alike; panics are captured into the region, never unwound from here.
fn run_region(region: &Region) {
    if region.active.fetch_add(1, Ordering::SeqCst) >= region.limit {
        region.active.fetch_sub(1, Ordering::SeqCst);
        return;
    }
    // Inherit the region's cap so nested parallelism inside a chunk sees
    // the same effective thread count on every executing thread.
    let prev = OVERRIDE.with(|o| o.replace(Some(region.limit)));
    // Profiling observes only: the claim below is the same fetch_add
    // either way, so instrumentation cannot perturb chunk assignment
    // (and chunk *content* never depends on assignment — determinism).
    let profiling = profile::enabled();
    let stolen = profiling && std::thread::current().id() != region.submitter;
    let mut ran = 0usize;
    loop {
        let i = region.next.fetch_add(1, Ordering::SeqCst);
        if i >= region.chunks {
            break;
        }
        if profiling {
            let t0 = Instant::now();
            let queue_wait = if !region.first_claim.swap(true, Ordering::Relaxed) {
                region
                    .submitted_at
                    .map(|at| t0.saturating_duration_since(at))
            } else {
                None
            };
            region.run_chunk(i);
            profile::record_task(region.label, t0, Instant::now(), stolen, queue_wait);
        } else {
            region.run_chunk(i);
        }
        ran += 1;
    }
    OVERRIDE.with(|o| o.set(prev));
    region.active.fetch_sub(1, Ordering::SeqCst);
    if ran > 0 {
        let mut done = region.done.lock().unwrap();
        *done += ran;
        if *done == region.chunks {
            region.completed.notify_all();
        }
    }
}

struct Pool {
    queue: Mutex<Vec<Arc<Region>>>,
    work: Condvar,
    /// Configured size (env at first use); `current_num_threads` baseline.
    n_threads: usize,
    /// Workers spawned so far (grows on demand, never shrinks).
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Arc<Pool>> = OnceLock::new();

fn pool() -> &'static Arc<Pool> {
    POOL.get_or_init(|| {
        let n = configured_threads();
        let pool = Arc::new(Pool {
            queue: Mutex::new(Vec::new()),
            work: Condvar::new(),
            n_threads: n,
            spawned: Mutex::new(0),
        });
        pool.ensure_workers(n.saturating_sub(1));
        pool
    })
}

impl Pool {
    /// Grow the worker set to at least `target` threads. The submitting
    /// thread always participates on top of these, so `n`-way concurrency
    /// needs `n - 1` workers.
    fn ensure_workers(self: &Arc<Self>, target: usize) {
        let target = target.min(MAX_THREADS);
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < target {
            let idx = *spawned;
            let pool = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("rayon-worker-{idx}"))
                .spawn(move || pool.worker_loop())
                .expect("failed to spawn pool worker");
            *spawned += 1;
        }
    }

    fn worker_loop(&self) {
        let mut queue = self.queue.lock().unwrap();
        loop {
            let found = queue.iter().find(|r| r.claimable()).cloned();
            match found {
                Some(region) => {
                    drop(queue);
                    run_region(&region);
                    queue = self.queue.lock().unwrap();
                }
                None => {
                    if profile::enabled() {
                        // Park interval. `record_park` takes the profile
                        // lock while we hold the queue lock; the reverse
                        // nesting never occurs (no profile-lock holder
                        // touches the queue), so the order is safe.
                        let t0 = Instant::now();
                        queue = self.work.wait(queue).unwrap();
                        profile::record_park(t0, Instant::now());
                    } else {
                        queue = self.work.wait(queue).unwrap();
                    }
                }
            }
        }
    }

    fn submit(&self, region: &Arc<Region>) {
        self.queue.lock().unwrap().push(Arc::clone(region));
        self.work.notify_all();
    }

    fn remove(&self, region: &Arc<Region>) {
        self.queue
            .lock()
            .unwrap()
            .retain(|r| !Arc::ptr_eq(r, region));
        // A worker that consumed a wakeup for this region may have found
        // it at capacity while another region still has work: re-notify.
        self.work.notify_all();
    }
}

/// Submit, participate, wait, clean up, propagate the first panic.
fn execute_region(pool: &Arc<Pool>, region: Arc<Region>) {
    pool.submit(&region);
    run_region(&region);
    region.wait();
    pool.remove(&region);
    if let Some(payload) = region.take_panic() {
        resume_unwind(payload);
    }
}

/// Execute `task(i)` for every `i` in `0..chunks`, in parallel across the
/// pool. Blocks until every chunk has run; the first chunk panic is
/// resumed on the calling thread after the region drains.
///
/// This is the primitive every parallel iterator/sort bottoms out in.
/// Chunk *content* must not depend on the thread count — determinism of
/// everything above relies on chunking being schedule-only. `label`
/// names the region in pool profiles ([`crate::profile`]); it has no
/// effect on execution.
pub(crate) fn run_parallel<F: Fn(usize) + Sync>(chunks: usize, label: &'static str, task: F) {
    if chunks == 0 {
        return;
    }
    let limit = current_num_threads();
    if chunks == 1 || limit <= 1 {
        // Sequential fast path: same chunks, same order, same effects.
        for i in 0..chunks {
            task(i);
        }
        return;
    }
    let pool = pool();
    pool.ensure_workers(limit.saturating_sub(1));

    unsafe fn call_chunk<F: Fn(usize)>(data: *const (), i: usize) {
        // SAFETY: `data` is the `&task` from the frame below, which blocks
        // until every chunk completes.
        unsafe { (*data.cast::<F>())(i) }
    }
    let ptr = TaskPtr {
        data: (&task as *const F).cast(),
        call: call_chunk::<F>,
    };
    let region = Region::new(RegionTask::Borrowed(ptr), chunks, limit, label);
    execute_region(pool, region);
}

/// Donate the calling thread to one queued **data-parallel** region:
/// claim and run its remaining chunks, then return `true`. Returns
/// `false` when nothing is claimable.
///
/// This is for a thread that must wait on an external resource (e.g. a
/// simulated device engine lock) and would otherwise park: instead of
/// idling it absorbs fine-grained chunks. Owned one-shot regions (`scope`
/// spawns, `join` branches) are deliberately skipped — adopting another
/// pipeline stage wholesale while mid-wait could recurse into the same
/// resource the caller is waiting for; borrowed chunk regions never
/// block, so helping with them cannot deadlock.
pub fn help_one() -> bool {
    let p = pool();
    let found = {
        let queue = p.queue.lock().unwrap();
        queue
            .iter()
            .find(|r| matches!(r.task, RegionTask::Borrowed(_)) && r.claimable())
            .cloned()
    };
    match found {
        Some(region) => {
            run_region(&region);
            true
        }
        None => false,
    }
}

/// Erase an owned job's borrow lifetime. Sound only because every caller
/// joins the job before the borrowed frame unwinds or returns.
unsafe fn erase_job<'a>(job: Box<dyn FnOnce() + Send + 'a>) -> OwnedJob {
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, OwnedJob>(job) }
}

/// `rayon::join`: runs `oper_a` on the pool (or inline if unclaimed) and
/// `oper_b` on the calling thread, returning both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let limit = current_num_threads();
    if limit <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let pool = pool();
    pool.ensure_workers(limit.saturating_sub(1));

    let slot: Mutex<Option<RA>> = Mutex::new(None);
    let job: Box<dyn FnOnce() + Send + '_> = Box::new(|| {
        *slot.lock().unwrap() = Some(oper_a());
    });
    // SAFETY: joined below before `slot`/`oper_a` borrows expire, on both
    // the normal and the `oper_b`-panicked path.
    let job = unsafe { erase_job(job) };
    let region = Region::new(
        RegionTask::Owned(vec![Mutex::new(Some(job))]),
        1,
        limit,
        "join",
    );
    pool.submit(&region);

    let rb = catch_unwind(AssertUnwindSafe(oper_b));
    run_region(&region);
    region.wait();
    pool.remove(&region);
    let a_panic = region.take_panic();
    let rb = match rb {
        Ok(rb) => rb,
        Err(payload) => resume_unwind(payload),
    };
    if let Some(payload) = a_panic {
        resume_unwind(payload);
    }
    let ra = slot
        .lock()
        .unwrap()
        .take()
        .expect("join branch completed without a result or a panic");
    (ra, rb)
}

/// A scope for spawning pool-backed tasks that may borrow from the
/// enclosing frame ([`scope`]).
pub struct Scope<'scope> {
    limit: usize,
    pending: Mutex<Vec<Arc<Region>>>,
    _marker: std::marker::PhantomData<fn(&'scope ()) -> &'scope ()>,
}

#[derive(Clone, Copy)]
struct ScopePtr(*const ());
// SAFETY: points at the `Scope` owned by `scope()`, which outlives every
// task (they are all joined before it returns); `Scope` is `Sync`.
unsafe impl Send for ScopePtr {}

impl ScopePtr {
    // Accessor (not field access) so edition-2021 closures capture the
    // whole Send wrapper rather than the raw pointer field.
    fn get(self) -> *const () {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawn `f` onto the pool **immediately** (it may start before
    /// `scope`'s closure returns — the pipeline's consumers rely on
    /// running while the producer still executes inside the scope).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        let this = ScopePtr(self as *const Scope<'scope> as *const ());
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            // SAFETY: see `ScopePtr`.
            let scope = unsafe { &*(this.get() as *const Scope<'scope>) };
            f(scope)
        });
        // SAFETY: `scope()` joins every spawned task before returning.
        let job = unsafe { erase_job(job) };
        let region = Region::new(
            RegionTask::Owned(vec![Mutex::new(Some(job))]),
            1,
            self.limit,
            "scope",
        );
        pool().submit(&region);
        self.pending.lock().unwrap().push(region);
    }
}

/// `rayon::scope`: tasks spawned inside may borrow from the caller's
/// frame; all of them are joined before `scope` returns.
///
/// Tasks are claimed by pool workers as they become free; whatever is
/// still unclaimed when the scope closure returns is run by the calling
/// thread, so the scope completes even on a zero-worker pool. As in real
/// rayon, tasks that *block on each other* need enough threads to all be
/// in flight — callers gate on [`current_num_threads`] for that.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let limit = current_num_threads();
    let p = pool();
    p.ensure_workers(limit.saturating_sub(1));
    let s = Scope {
        limit,
        pending: Mutex::new(Vec::new()),
        _marker: std::marker::PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&s)));

    // Join everything (tasks may themselves spawn more) before letting
    // any panic unwind past borrows the tasks may hold.
    let mut first_panic: Option<Box<dyn Any + Send>> = None;
    loop {
        let batch: Vec<Arc<Region>> = std::mem::take(&mut *s.pending.lock().unwrap());
        if batch.is_empty() {
            break;
        }
        for region in &batch {
            run_region(region);
        }
        for region in batch {
            region.wait();
            p.remove(&region);
            if first_panic.is_none() {
                first_panic = region.take_panic();
            }
        }
    }

    match result {
        Ok(r) => {
            if let Some(payload) = first_panic {
                resume_unwind(payload);
            }
            r
        }
        Err(payload) => resume_unwind(payload),
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim;
/// present for API parity).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a sized [`ThreadPool`] view.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "the configured default", as in rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = Some(n);
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = match self.num_threads {
            Some(n) if n >= 1 => n.min(MAX_THREADS),
            _ => configured_threads(),
        };
        // Workers are global: building a bigger pool grows the shared
        // worker set so `install(n)` really gets `n`-way concurrency.
        pool().ensure_workers(n.saturating_sub(1));
        Ok(ThreadPool { n })
    }
}

/// A sized view onto the global pool: work submitted under
/// [`ThreadPool::install`] is capped at (and reports) `n` threads.
#[derive(Debug)]
pub struct ThreadPool {
    n: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.n
    }

    /// Run `op` with this pool's thread count: inside, every parallel
    /// construct (and [`current_num_threads`]) sees `n`.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = OVERRIDE.with(|o| o.replace(Some(self.n)));
        let restore = RestoreOverride(prev);
        let r = op();
        drop(restore);
        r
    }
}

struct RestoreOverride(Option<usize>);

impl Drop for RestoreOverride {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.0));
    }
}

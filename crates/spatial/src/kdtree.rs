//! A bulk-built kd-tree over 2-D points.
//!
//! Not part of the paper's system — included as an additional neighbor
//! source for the index-ablation benches (grid vs R-tree vs kd-tree on the
//! host path), as called out in DESIGN.md §5.

use crate::point::Point2;

/// Leaf size below which nodes store points directly and scan linearly.
const LEAF_SIZE: usize = 16;

#[derive(Debug)]
enum KdNode {
    Leaf {
        /// (id, point) pairs.
        entries: Vec<(u32, Point2)>,
    },
    Split {
        /// 0 = x, 1 = y.
        axis: u8,
        /// Splitting coordinate: left subtree holds points with
        /// `coord <= value`, right subtree the rest.
        value: f64,
        left: Box<KdNode>,
        right: Box<KdNode>,
    },
}

/// A static kd-tree supporting ε-range queries.
#[derive(Debug)]
pub struct KdTree {
    root: Option<KdNode>,
    size: usize,
}

impl KdTree {
    /// Build from a point slice; ids are input indices. `O(n log² n)`.
    pub fn build(data: &[Point2]) -> Self {
        let entries: Vec<(u32, Point2)> = data
            .iter()
            .copied()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();
        let root = if entries.is_empty() {
            None
        } else {
            Some(Self::build_rec(entries, 0))
        };
        KdTree {
            root,
            size: data.len(),
        }
    }

    fn build_rec(mut entries: Vec<(u32, Point2)>, depth: usize) -> KdNode {
        if entries.len() <= LEAF_SIZE {
            return KdNode::Leaf { entries };
        }
        let axis = (depth % 2) as u8;
        let mid = entries.len() / 2;
        entries.select_nth_unstable_by(mid, |a, b| {
            let ka = if axis == 0 { a.1.x } else { a.1.y };
            let kb = if axis == 0 { b.1.x } else { b.1.y };
            ka.total_cmp(&kb)
        });
        let value = {
            let p = entries[mid].1;
            if axis == 0 {
                p.x
            } else {
                p.y
            }
        };
        let right = entries.split_off(mid);
        KdNode::Split {
            axis,
            value,
            left: Box::new(Self::build_rec(entries, depth + 1)),
            right: Box::new(Self::build_rec(right, depth + 1)),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.size
    }

    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Ids of every indexed point within the closed ε-ball around `q`.
    pub fn query_eps(&self, q: &Point2, eps: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_eps_visit(q, eps, |id| out.push(id));
        out
    }

    /// Visitor-based ε-range query.
    pub fn query_eps_visit(&self, q: &Point2, eps: f64, mut visit: impl FnMut(u32)) {
        let Some(root) = &self.root else { return };
        let eps_sq = eps * eps;
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            match node {
                KdNode::Leaf { entries } => {
                    for (id, p) in entries {
                        if p.distance_sq(q) <= eps_sq {
                            visit(*id);
                        }
                    }
                }
                KdNode::Split {
                    axis,
                    value,
                    left,
                    right,
                } => {
                    let coord = if *axis == 0 { q.x } else { q.y };
                    // Closed ball: descend both sides when the splitting
                    // plane is within eps.
                    if coord - eps <= *value {
                        stack.push(left);
                    }
                    if coord + eps >= *value {
                        stack.push(right);
                    }
                }
            }
        }
    }

    /// Count of points within the closed ε-ball around `q`.
    pub fn query_eps_count(&self, q: &Point2, eps: f64) -> usize {
        let mut n = 0;
        self.query_eps_visit(q, eps, |_| n += 1);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::brute_force_neighbors;

    fn spiral(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.1;
                Point2::new(t * t.cos(), t * t.sin())
            })
            .collect()
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_brute_force() {
        let data = spiral(500);
        let t = KdTree::build(&data);
        for eps in [0.1, 1.0, 5.0] {
            for q in data.iter().step_by(37) {
                assert_eq!(
                    sorted(t.query_eps(q, eps)),
                    brute_force_neighbors(&data, q, eps),
                    "eps = {eps}"
                );
            }
        }
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::build(&[]);
        assert!(t.is_empty());
        assert!(t.query_eps(&Point2::new(0.0, 0.0), 10.0).is_empty());
    }

    #[test]
    fn all_duplicates() {
        let data = vec![Point2::new(2.0, 3.0); 100];
        let t = KdTree::build(&data);
        assert_eq!(t.query_eps_count(&data[0], 0.0), 100);
    }

    #[test]
    fn count_matches_query_len() {
        let data = spiral(200);
        let t = KdTree::build(&data);
        for q in data.iter().step_by(23) {
            assert_eq!(t.query_eps_count(q, 2.0), t.query_eps(q, 2.0).len());
        }
    }

    #[test]
    fn boundary_inclusion() {
        let data = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)];
        let t = KdTree::build(&data);
        assert_eq!(
            t.query_eps_count(&data[0], 1.0),
            2,
            "closed ball includes eps boundary"
        );
    }
}

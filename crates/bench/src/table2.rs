//! **Table II** (scenario S1) — kernel efficiency: single-invocation
//! response time and total thread count (`n_GPU`) of GPUCalcGlobal vs
//! GPUCalcShared.
//!
//! Paper shape: Global wins on every dataset; Shared launches 20–130×
//! more threads (one block per non-empty cell) and degrades most on
//! uniform data / small ε (SDSS2: 2023% slower), least on skewed data
//! (SW4: 143% slower).

use crate::common::{DatasetCache, Options, TextTable};
use gpu_sim::memory::DeviceAppendBuffer;
use gpu_sim::Device;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan_core::kernels::{GpuCalcGlobal, GpuCalcShared, NeighborPair};
use spatial::presort::spatial_sort;
use spatial::{GridIndex, PointStore};

/// The published settings and results: (dataset, ε, global ms, global
/// n_GPU, shared ms, shared n_GPU).
pub const PAPER: [(&str, f64, f64, u64, f64, u64); 4] = [
    ("SW1", 0.2, 503.270, 1_864_704, 531.411, 37_409_792),
    ("SW4", 0.07, 518.245, 5_159_936, 1258.0, 255_272_704),
    ("SDSS1", 0.2, 72.677, 2_000_128, 544.745, 110_757_120),
    ("SDSS2", 0.07, 80.038, 5_000_192, 1699.0, 649_954_560),
];

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: String,
    pub eps: f64,
    pub global_ms: f64,
    pub global_threads: u64,
    pub shared_ms: f64,
    pub shared_threads: u64,
}

impl Row {
    /// How much faster Global is ("143% faster" = ratio 2.43).
    pub fn global_advantage(&self) -> f64 {
        self.shared_ms / self.global_ms.max(1e-12)
    }
}

/// Measure both kernels on one dataset/ε (single kernel invocation each,
/// no transfer overheads — matching the paper's methodology).
pub fn measure(device: &Device, points: &[spatial::Point2], eps: f64) -> Row {
    let sorted = spatial_sort(points);
    let grid = GridIndex::build(&sorted, eps);
    let store = PointStore::from_points(&sorted);

    // Capacity: exact pair count is unknown; bound generously via the
    // per-cell neighborhood bound (same bound the shared batcher uses).
    let bound: usize = grid
        .non_empty_cells()
        .iter()
        .map(|&h| {
            let m = grid.range_of(h as usize).len();
            let (adj, n) = grid.neighbor_cells(h as usize);
            let nb: usize = adj[..n]
                .iter()
                .map(|&a| grid.range_of(a as usize).len())
                .sum();
            m * nb
        })
        .sum();

    let mut result = DeviceAppendBuffer::<NeighborPair>::new(device, bound + 64)
        .expect("result bound exceeds device memory; lower --scale");

    let global_kernel = GpuCalcGlobal {
        points: store.view(),
        grid: grid.cells_view(),
        lookup: grid.lookup(),
        geom: grid.geometry(),
        eps,
        batch: 0,
        n_batches: 1,
        result: &result,
        skip_dense_at: None,
    };
    let global = device
        .launch(global_kernel.launch_config(256), &global_kernel)
        .unwrap();
    assert!(!result.overflowed());
    result.reset();

    let shared_kernel = GpuCalcShared {
        points: store.view(),
        grid: grid.cells_view(),
        lookup: grid.lookup(),
        geom: grid.geometry(),
        eps,
        schedule: grid.non_empty_cells(),
        result: &result,
    };
    let shared = device
        .launch(shared_kernel.launch_config(256), &shared_kernel)
        .unwrap();
    assert!(!result.overflowed());

    Row {
        dataset: String::new(),
        eps,
        global_ms: global.duration.as_millis(),
        global_threads: global.threads_launched,
        shared_ms: shared.duration.as_millis(),
        shared_threads: shared.threads_launched,
    }
}

/// Run the Table II measurements.
pub fn run(opts: &Options) -> Vec<Row> {
    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1", "SW4", "SDSS1", "SDSS2"]);
    let mut rows = Vec::new();
    for &(name, eps, ..) in PAPER.iter() {
        if !selected.iter().any(|s| s == name) {
            continue;
        }
        // The paper decreases eps with |D|; under density-preserving
        // scaling the published eps values carry over unchanged.
        let points = cache.get(name).points.clone();
        let mut row = measure(&device, &points, eps);
        row.dataset = name.to_string();
        rows.push(row);
    }
    rows
}

/// Print the table in the paper's layout.
pub fn print(opts: &Options) {
    println!("== Table II (S1): kernel efficiency — GPUCalcGlobal vs GPUCalcShared ==");
    println!("Paper shape: Global faster everywhere; Shared worst on uniform data");
    println!("(SDSS2 ~21x slower) and least bad on skewed data (SW4 ~2.4x slower).\n");
    let rows = run(opts);
    opts.write_csv(
        "table2",
        &[
            "dataset",
            "eps",
            "global_ms",
            "global_ngpu",
            "shared_ms",
            "shared_ngpu",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.eps.to_string(),
                    r.global_ms.to_string(),
                    r.global_threads.to_string(),
                    r.shared_ms.to_string(),
                    r.shared_threads.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let mut t = TextTable::new(&[
        "Dataset",
        "eps",
        "Global ms",
        "Global nGPU",
        "Shared ms",
        "Shared nGPU",
        "Shared/Global",
    ]);
    for r in &rows {
        t.row(vec![
            r.dataset.clone(),
            format!("{:.2}", r.eps),
            format!("{:.3}", r.global_ms),
            r.global_threads.to_string(),
            format!("{:.3}", r.shared_ms),
            r.shared_threads.to_string(),
            format!("{:.2}x", r.global_advantage()),
        ]);
    }
    t.print();

    if let Some(rec) = opts.recorder() {
        print_batching_telemetry(opts, &rec);
        opts.write_observability(&rec);
    }
}

/// With `--trace`/`--metrics`: run the full batched table build per
/// dataset and report the batching scheme's estimation telemetry —
/// sample fraction of the estimation kernel, overestimation factor (the
/// effective α of Eq. 1), and the per-batch result-set sizes.
fn print_batching_telemetry(opts: &Options, rec: &std::sync::Arc<obs::Recorder>) {
    println!("\n-- Batching telemetry (full build_table, recorder attached) --");
    let device = Device::k20c();
    let cfg = HybridConfig::default();
    println!(
        "estimation-kernel sample fraction f = {:.3} (stride {})",
        cfg.batch.sample_fraction,
        cfg.batch.stride()
    );
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1", "SW4", "SDSS1", "SDSS2"]);
    let mut t = TextTable::new(&[
        "Dataset",
        "eps",
        "e_b",
        "est. |R|",
        "actual |R|",
        "accuracy",
        "overest. 1+a",
        "batches",
    ]);
    for &(name, eps, ..) in PAPER.iter() {
        if !selected.iter().any(|s| s == name) {
            continue;
        }
        let points = cache.get(name).points.clone();
        let handle = HybridDbscan::new(&device, cfg)
            .with_recorder(rec.clone())
            .build_table(&points, eps)
            .expect("build_table failed");
        let g = &handle.gpu;
        let accuracy = if g.plan.estimated_total > 0 {
            g.result_pairs as f64 / g.plan.estimated_total as f64
        } else {
            0.0
        };
        t.row(vec![
            name.to_string(),
            format!("{eps:.2}"),
            g.e_b.to_string(),
            g.plan.estimated_total.to_string(),
            g.result_pairs.to_string(),
            format!("{accuracy:.3}"),
            format!("{:.2}", 1.0 + g.plan.effective_alpha),
            g.n_batches.to_string(),
        ]);
        println!("# {name}: per-batch |result| = {:?}", g.per_batch_pairs);
    }
    t.print();
}

//! **Backend ablation** — grid vs tree vs auto ε-search, 2-D and d > 2.
//!
//! Two entry points, mirroring [`crate::shard`]:
//!
//! * [`run_backend_workloads`] — appended to the `repro bench` suite:
//!   each ablation workload (skewed SW1, uniform SDSS1, skewed-exp SKX1,
//!   jittered 3-D and 4-D lattices) runs under all three `IndexBackend`
//!   settings. Every backend's neighbor table and clustering must be
//!   fingerprint-identical (the bench never times a wrong answer); what
//!   differs — and what this ablation measures — is the *modeled* device
//!   time. Each auto row records whether the selector picked the
//!   backend the modeled times say is faster.
//! * [`print`] — `repro backend`: the CI smoke step. Runs the ablation,
//!   prints the per-workload grid/tree/auto comparison, and exits
//!   nonzero on any fingerprint mismatch, or — under `BENCH_STRICT=1` —
//!   when the auto selector matches the per-workload winner on fewer
//!   than [`AUTO_MATCH_FLOOR`] of the workloads.

use crate::common::{DatasetCache, Options, TextTable};
use crate::stats;
use gpu_sim::time::SimDuration;
use gpu_sim::Device;
use hybrid_dbscan_core::batch::BatchConfig;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan_core::nd::{build_table_nd, cluster_table_nd};
use hybrid_dbscan_core::{clustering_fingerprint, table_fingerprint, IndexBackend};
use obs::bench::WorkloadResult;
use std::time::Instant;

/// The acceptance floor for the auto selector: it must pick the
/// modeled-time winner on at least this fraction of ablation workloads.
pub const AUTO_MATCH_FLOOR: f64 = 0.9;

/// What the ablation clusters.
#[derive(Debug, Clone, Copy)]
enum AblationData {
    /// A registered 2-D dataset, by name.
    Named(&'static str),
    /// A jittered D-dimensional lattice: `full_size` points at scale 1,
    /// unit spacing, `jitter` of a spacing of Gaussian displacement.
    Lattice {
        d: usize,
        full_size: usize,
        jitter: f64,
        seed: u64,
    },
}

/// One ablation workload; each runs under grid, tree, and auto.
#[derive(Debug, Clone, Copy)]
pub struct AblationWorkload {
    pub id: &'static str,
    data: AblationData,
    pub eps: f64,
    pub minpts: usize,
}

/// The fixed ablation set: both 2-D density regimes the selector
/// separates (uniform SDSS, skewed SW, strongly skewed SKX), plus the
/// d > 2 lattices where the grid's 3^D stencil over-scans.
pub const ABLATION: &[AblationWorkload] = &[
    AblationWorkload {
        id: "backend/sdss1-eps0.2",
        data: AblationData::Named("SDSS1"),
        eps: 0.2,
        minpts: 4,
    },
    AblationWorkload {
        id: "backend/sw1-eps0.4",
        data: AblationData::Named("SW1"),
        eps: 0.4,
        minpts: 4,
    },
    AblationWorkload {
        id: "backend/skx1-eps1.0",
        data: AblationData::Named("SKX1"),
        eps: 1.0,
        minpts: 4,
    },
    AblationWorkload {
        id: "backend/lat3-eps3.0",
        data: AblationData::Lattice {
            d: 3,
            full_size: 1_000_000,
            jitter: 0.25,
            seed: 0x1a73,
        },
        eps: 3.0,
        minpts: 4,
    },
    AblationWorkload {
        id: "backend/lat4-eps2.0",
        data: AblationData::Lattice {
            d: 4,
            full_size: 500_000,
            jitter: 0.25,
            seed: 0x1a74,
        },
        eps: 2.0,
        minpts: 4,
    },
];

/// One backend's run of one workload.
struct BackendRun {
    backend: IndexBackend,
    /// What the selector resolved to ("grid"/"tree").
    chosen: &'static str,
    reason: &'static str,
    cell_cv: f64,
    mean_occupancy: f64,
    modeled: SimDuration,
    build_ms: f64,
    table_fp: u64,
    clustering_fp: u64,
    e_b: u64,
    n_batches: usize,
    result_pairs: usize,
    points: usize,
    clusters: usize,
}

fn run_2d(
    device: &Device,
    points: &[spatial::Point2],
    w: &AblationWorkload,
    backend: IndexBackend,
) -> BackendRun {
    let cfg = HybridConfig {
        backend,
        ..HybridConfig::default()
    };
    let t0 = Instant::now();
    let handle = HybridDbscan::new(device, cfg)
        .build_table(points, w.eps)
        .unwrap_or_else(|e| panic!("{} ({}): {e:?}", w.id, backend.name()));
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let (clustering, _) = HybridDbscan::cluster_with_table(&handle, w.minpts);
    BackendRun {
        backend,
        chosen: handle.gpu.backend.chosen.name(),
        reason: handle.gpu.backend.reason,
        cell_cv: handle.gpu.backend.cell_cv,
        mean_occupancy: handle.gpu.backend.mean_occupancy,
        modeled: handle.gpu.modeled_time,
        build_ms,
        table_fp: table_fingerprint(&handle.table),
        clustering_fp: clustering_fingerprint(&clustering),
        e_b: handle.gpu.e_b,
        n_batches: handle.gpu.n_batches,
        result_pairs: handle.gpu.result_pairs,
        points: points.len(),
        clusters: clustering.num_clusters() as usize,
    }
}

fn run_nd<const D: usize>(
    device: &Device,
    data: &[spatial::PointN<D>],
    w: &AblationWorkload,
    backend: IndexBackend,
) -> BackendRun {
    let t0 = Instant::now();
    let handle = build_table_nd(device, data, w.eps, backend, &BatchConfig::default(), 256)
        .unwrap_or_else(|e| panic!("{} ({}): {e:?}", w.id, backend.name()));
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let clustering = cluster_table_nd(&handle, w.minpts);
    BackendRun {
        backend,
        chosen: handle.backend.chosen.name(),
        reason: handle.backend.reason,
        cell_cv: handle.backend.cell_cv,
        mean_occupancy: handle.backend.mean_occupancy,
        modeled: handle.modeled_time,
        build_ms,
        table_fp: table_fingerprint(&handle.table),
        clustering_fp: clustering_fingerprint(&clustering),
        e_b: handle.e_b,
        n_batches: handle.n_batches,
        result_pairs: handle.result_pairs,
        points: data.len(),
        clusters: clustering.num_clusters() as usize,
    }
}

/// Run one workload under all three backends, checking the cross-backend
/// fingerprint contract. Panics on a mismatch — a wrong answer must
/// never be timed (same policy as the shard workloads).
fn run_workload(
    device: &Device,
    cache: &mut DatasetCache,
    w: &AblationWorkload,
) -> Vec<BackendRun> {
    let backends = [IndexBackend::Grid, IndexBackend::Tree, IndexBackend::Auto];
    let runs: Vec<BackendRun> = match w.data {
        AblationData::Named(name) => {
            let points = cache.get(name).points.clone();
            backends
                .iter()
                .map(|&b| run_2d(device, &points, w, b))
                .collect()
        }
        AblationData::Lattice {
            d,
            full_size,
            jitter,
            seed,
        } => {
            let n = ((full_size as f64 * cache.scale()).round() as usize).max(64);
            eprintln!("# generating {}: {n} points ({d}-D lattice)…", w.id);
            match d {
                3 => {
                    let data = datasets::lattice_nd::<3>(n, 1.0, jitter, seed);
                    backends
                        .iter()
                        .map(|&b| run_nd(device, &data, w, b))
                        .collect()
                }
                4 => {
                    let data = datasets::lattice_nd::<4>(n, 1.0, jitter, seed);
                    backends
                        .iter()
                        .map(|&b| run_nd(device, &data, w, b))
                        .collect()
                }
                _ => panic!("unsupported lattice dimension {d}"),
            }
        }
    };
    for r in &runs[1..] {
        assert_eq!(
            (
                r.table_fp,
                r.clustering_fp,
                r.e_b,
                r.n_batches,
                r.result_pairs
            ),
            (
                runs[0].table_fp,
                runs[0].clustering_fp,
                runs[0].e_b,
                runs[0].n_batches,
                runs[0].result_pairs
            ),
            "{}: backend `{}` output diverges from `{}`",
            w.id,
            r.backend.name(),
            runs[0].backend.name(),
        );
    }
    runs
}

/// The modeled-time winner between the two *explicit* backends (the auto
/// row is the selector's answer, not a contestant).
fn winner(runs: &[BackendRun]) -> &'static str {
    let grid = runs
        .iter()
        .find(|r| r.backend == IndexBackend::Grid)
        .unwrap();
    let tree = runs
        .iter()
        .find(|r| r.backend == IndexBackend::Tree)
        .unwrap();
    if tree.modeled.as_secs() < grid.modeled.as_secs() {
        "tree"
    } else {
        "grid"
    }
}

fn workload_result(w: &AblationWorkload, r: &BackendRun, win: &str) -> WorkloadResult {
    let dataset = match w.data {
        AblationData::Named(name) => name.to_string(),
        AblationData::Lattice { d, .. } => format!("LAT{d}"),
    };
    let mut out = WorkloadResult {
        id: format!("{}/{}", w.id, r.backend.name()),
        scenario: "backend".to_string(),
        dataset,
        kernel: r.chosen.to_string(),
        eps: w.eps,
        minpts: w.minpts as u64,
        points: r.points as u64,
        ..WorkloadResult::default()
    };
    out.stages
        .insert("build_table".into(), stats::summarize(&[r.build_ms]));
    out.stages
        .insert("modeled".into(), stats::summarize(&[r.modeled.as_millis()]));
    out.modeled_time_bits = Some(r.modeled.as_secs().to_bits());
    out.metrics.insert("e_b".into(), r.e_b as f64);
    out.metrics.insert("batches".into(), r.n_batches as f64);
    out.metrics
        .insert("result_pairs".into(), r.result_pairs as f64);
    out.metrics.insert("clusters".into(), r.clusters as f64);
    out.metrics.insert("cell_cv".into(), r.cell_cv);
    out.metrics
        .insert("mean_occupancy".into(), r.mean_occupancy);
    out.metrics.insert(
        "winner_is_tree".into(),
        if win == "tree" { 1.0 } else { 0.0 },
    );
    if r.backend == IndexBackend::Auto {
        out.metrics.insert(
            "auto_matched_winner".into(),
            if r.chosen == win { 1.0 } else { 0.0 },
        );
    }
    out
}

/// The `repro bench` backend-ablation rows: one [`WorkloadResult`] per
/// (workload, backend). Single-trial by design — the measured quantity
/// is the deterministic modeled time; the wall build time rides along as
/// advisory context.
pub fn run_backend_workloads(opts: &Options) -> Vec<WorkloadResult> {
    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let mut out = Vec::new();
    for w in ABLATION {
        let runs = run_workload(&device, &mut cache, w);
        let win = winner(&runs);
        out.extend(runs.iter().map(|r| workload_result(w, r, win)));
    }
    out
}

/// `repro backend` — the smoke entry. Returns the process exit code.
pub fn print(opts: &Options) -> i32 {
    let strict = std::env::var("BENCH_STRICT")
        .map(|v| v == "1")
        .unwrap_or(false);
    println!("== Backend ablation: grid vs tree vs auto ε-search ==");
    println!(
        "{} workloads × 3 backends at scale {}; identical tables required, modeled time compared\n",
        ABLATION.len(),
        opts.scale
    );

    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let mut t = TextTable::new(&[
        "Workload",
        "points",
        "grid",
        "tree",
        "winner",
        "auto chose",
        "match",
        "cv",
        "occ",
    ]);
    let (mut matched, mut total) = (0usize, 0usize);
    for w in ABLATION {
        let runs = run_workload(&device, &mut cache, w);
        let win = winner(&runs);
        let grid = runs
            .iter()
            .find(|r| r.backend == IndexBackend::Grid)
            .unwrap();
        let tree = runs
            .iter()
            .find(|r| r.backend == IndexBackend::Tree)
            .unwrap();
        let auto = runs
            .iter()
            .find(|r| r.backend == IndexBackend::Auto)
            .unwrap();
        total += 1;
        if auto.chosen == win {
            matched += 1;
        }
        t.row(vec![
            w.id.to_string(),
            grid.points.to_string(),
            format!("{:.2} ms", grid.modeled.as_millis()),
            format!("{:.2} ms", tree.modeled.as_millis()),
            win.to_string(),
            format!("{} ({})", auto.chosen, auto.reason),
            if auto.chosen == win { "yes" } else { "NO" }.to_string(),
            format!("{:.2}", auto.cell_cv),
            format!("{:.1}", auto.mean_occupancy),
        ]);
    }
    t.print();

    let rate = matched as f64 / total as f64;
    println!(
        "\n# auto selector matched the modeled winner on {matched}/{total} workloads ({:.0}%)",
        rate * 100.0
    );
    if rate < AUTO_MATCH_FLOOR {
        if strict {
            eprintln!(
                "# backend: auto match rate below {:.0}% (BENCH_STRICT=1 — failing)",
                AUTO_MATCH_FLOOR * 100.0
            );
            return 1;
        }
        eprintln!(
            "# backend: auto match rate below {:.0}% (advisory; set BENCH_STRICT=1 to enforce)",
            AUTO_MATCH_FLOOR * 100.0
        );
    }
    0
}

//! Schedule independence of the differential surface.
//!
//! The repository's determinism policy (DESIGN.md §7): Hybrid-DBSCAN,
//! the reference, G-DBSCAN, and the host DBSCAN runs produce *bitwise
//! identical* labels on any pool size. CUDA-DClust is the documented
//! exception — chain ownership is claimed by CAS from concurrently
//! simulated blocks, so *which* cluster wins a contested border point
//! depends on the schedule — but its noise set and core partition must
//! still be schedule-independent, which is exactly what the oracle's
//! equivalence-up-to-borders checks.
//!
//! Pool views are created with `ThreadPoolBuilder::num_threads(t)`, so
//! the 8-thread case is exercised even under `RAYON_NUM_THREADS=1`.

use crate::generators::{Case, FAMILIES};
use crate::harness::{labels_i64, run_all};
use hybrid_dbscan_core::dbscan::Clustering;
use hybrid_dbscan_core::oracle;
use proptest::TestRng;

fn run_all_at(threads: usize, case: &Case) -> Vec<(&'static str, Clustering)> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool view");
    pool.install(|| run_all(case))
}

#[test]
fn schedule_independence_at_1_2_and_8_threads() {
    // One case per family keeps this inside the quick tier; the seeds
    // are arbitrary but fixed.
    for (fi, family) in FAMILIES.iter().enumerate() {
        let mut rng = TestRng::new(0x7EAD ^ (fi as u64) << 8);
        let case = (family.generate)(&mut rng);
        let classes = oracle::classify(&case.data, case.eps, case.minpts);

        let base = run_all_at(1, &case);
        for threads in [2usize, 8] {
            let other = run_all_at(threads, &case);
            for ((name, a), (name2, b)) in base.iter().zip(&other) {
                assert_eq!(name, name2);
                if *name == "cuda-dclust" {
                    // Scheduling-dependent border attribution: hold it
                    // to oracle-level equivalence instead.
                    oracle::check_clustering_with(&case.data, case.eps, &classes, b)
                        .unwrap_or_else(|e| {
                            panic!(
                                "family `{}`: cuda-dclust invalid at {threads} threads: {e}",
                                family.name
                            )
                        });
                    oracle::equivalent_up_to_borders_with(&classes, a, b).unwrap_or_else(|e| {
                        panic!(
                            "family `{}`: cuda-dclust partition changed at {threads} \
                             threads: {e}",
                            family.name
                        )
                    });
                } else {
                    assert_eq!(
                        labels_i64(a),
                        labels_i64(b),
                        "family `{}`: {name} labels changed at {threads} threads",
                        family.name
                    );
                }
            }
        }
    }
}

//! Smoke test for the Chrome trace exporter: build a neighbor table on a
//! tiny dataset with a recorder attached, export the trace, and re-parse
//! the JSON with a minimal in-test parser to check the trace-event
//! contract (field presence, lane metadata, per-lane non-overlap).

use gpu_sim::device::Device;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use obs::Recorder;
use spatial::Point2;
use std::collections::BTreeMap;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Minimal JSON parser — just enough for the exporter's output. Numbers
// become f64, everything lives in one enum. No serde available offline.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        assert!(self.pos < self.bytes.len(), "unexpected end of JSON");
        self.bytes[self.pos]
    }

    fn expect(&mut self, c: u8) {
        let got = self.peek();
        assert_eq!(got as char, c as char, "at byte {}", self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => {
                self.literal("true");
                Json::Bool(true)
            }
            b'f' => {
                self.literal("false");
                Json::Bool(false)
            }
            b'n' => {
                self.literal("null");
                Json::Null
            }
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str) {
        self.skip_ws();
        assert!(
            self.bytes[self.pos..].starts_with(lit.as_bytes()),
            "bad literal"
        );
        self.pos += lit.len();
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut map = BTreeMap::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(map);
        }
        loop {
            let key = self.string();
            self.expect(b':');
            map.insert(key, self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(map);
                }
                c => panic!("expected , or }} in object, got {}", c as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                c => panic!("expected , or ] in array, got {}", c as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            let c = self.bytes[self.pos];
            self.pos += 1;
            match c {
                b'"' => return out,
                b'\\' => {
                    let esc = self.bytes[self.pos];
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).unwrap();
                            let code = u32::from_str_radix(hex, 16).unwrap();
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        e => panic!("unsupported escape \\{}", e as char),
                    }
                }
                c => {
                    // Multi-byte UTF-8: copy the raw continuation bytes.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                            self.pos += 1;
                        }
                        out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }
}

fn parse(s: &str) -> Json {
    let mut p = Parser::new(s);
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON document");
    v
}

// ---------------------------------------------------------------------
// The smoke test proper.
// ---------------------------------------------------------------------

/// Deterministic tiny dataset: a grid of small clusters, enough points to
/// produce several batches under a small buffer budget.
fn tiny_points(n: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| {
            let cluster = i % 8;
            let k = (i / 8) as f64;
            Point2::new(
                (cluster % 4) as f64 * 10.0 + (k * 0.618).fract(),
                (cluster / 4) as f64 * 10.0 + (k * 0.382).fract(),
            )
        })
        .collect()
}

#[test]
fn exported_trace_is_valid_and_lanes_do_not_overlap() {
    let data = tiny_points(400);
    let device = Device::k20c();
    let rec = Arc::new(Recorder::new());
    let hybrid = HybridDbscan::new(&device, HybridConfig::default()).with_recorder(rec.clone());
    hybrid.build_table(&data, 0.9).expect("build_table");

    let json_text = rec.chrome_trace_json();
    let doc = parse(&json_text);

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every event carries name/ph/pid/tid; X events also ts/dur.
    let mut lane_names: Vec<String> = Vec::new();
    let mut device_events: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut host_events = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        assert!(ev.get("name").and_then(Json::as_str).is_some(), "name");
        let pid = ev.get("pid").and_then(Json::as_f64).expect("pid") as u64;
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        match ph {
            "M" => {
                if ev.get("name").and_then(Json::as_str) == Some("thread_name") && pid == 0 {
                    let lane = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .expect("thread_name args.name");
                    lane_names.push(lane.to_string());
                }
            }
            "X" => {
                let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = ev.get("dur").and_then(Json::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                if pid == 0 {
                    device_events.entry(tid).or_default().push((ts, dur));
                } else {
                    host_events += 1;
                }
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }

    // Distinct H2D / Compute / D2H lanes must be named.
    for lane in ["H2D", "Compute", "D2H"] {
        assert!(
            lane_names.iter().any(|n| n == lane),
            "missing device lane {lane}: {lane_names:?}"
        );
    }
    assert!(host_events > 0, "host spans must be exported");
    assert!(
        device_events.len() >= 3,
        "events on at least 3 device lanes"
    );

    // Per-lane events never overlap (engines are exclusive resources).
    for (tid, lane) in device_events.iter_mut() {
        lane.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in lane.windows(2) {
            let (t0, d0) = w[0];
            let (t1, _) = w[1];
            assert!(
                t1 >= t0 + d0 - 1e-6,
                "lane {tid} events overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    // The metrics export parses too and carries the batch telemetry.
    let metrics = parse(&rec.metrics_json());
    let counters = metrics.get("counters").expect("counters object");
    assert!(
        counters
            .get("batch.result_pairs")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );
    let gauges = metrics.get("gauges").expect("gauges object");
    assert!(gauges
        .get("batch.estimation_accuracy")
        .and_then(Json::as_f64)
        .is_some());
}

#[test]
fn trace_json_escapes_are_reversible() {
    // Round-trip a span name with every escaped character class through
    // the exporter and the in-test parser.
    let rec = Recorder::new();
    drop(rec.span("weird \"name\"\\with\nescapes\tand\u{1}ctrl", "test"));
    let doc = parse(&rec.chrome_trace_json());
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let found = events.iter().any(|e| {
        e.get("name").and_then(Json::as_str) == Some("weird \"name\"\\with\nescapes\tand\u{1}ctrl")
    });
    assert!(found, "escaped span name must round-trip");
}

//! Property-based tests of the spatial indexes against the brute-force
//! oracle, including structural invariants under mixed construction.

use proptest::prelude::*;
use spatial::distance::{brute_force_count, brute_force_neighbors};
use spatial::presort::spatial_sort;
use spatial::{GridIndex, KdTree, Point2, RTree};

fn points_strategy() -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((-500i32..1500, -500i32..1500), 1..150).prop_map(|v| {
        v.into_iter()
            .map(|(x, y)| Point2::new(x as f64 / 37.0, y as f64 / 53.0))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn grid_complete_and_sound(data in points_strategy(), e in 1u32..40) {
        let eps = e as f64 / 10.0;
        let grid = GridIndex::build(&data, eps);
        for q in &data {
            let mut got = grid.query(&data, q);
            got.sort_unstable();
            prop_assert_eq!(got, brute_force_neighbors(&data, q, eps));
            prop_assert_eq!(grid.query_count(&data, q), brute_force_count(&data, q, eps));
        }
    }

    #[test]
    fn grid_arrays_are_structurally_valid(data in points_strategy(), e in 1u32..40) {
        let eps = e as f64 / 10.0;
        let grid = GridIndex::build(&data, eps);
        // A is a permutation of point ids.
        let mut a = grid.lookup().to_vec();
        a.sort_unstable();
        let expect: Vec<u32> = (0..data.len() as u32).collect();
        prop_assert_eq!(a, expect);
        // Cell ranges partition A and every member lies in its cell.
        let total: usize = grid
            .non_empty_cells()
            .iter()
            .map(|&h| grid.range_of(h as usize).len())
            .sum();
        prop_assert_eq!(total, data.len());
        for &h in grid.non_empty_cells() {
            let r = grid.range_of(h as usize);
            for &id in &grid.lookup()[r.start as usize..r.end as usize] {
                prop_assert_eq!(grid.cell_of(&data[id as usize]), h as usize);
            }
        }
    }

    #[test]
    fn sparse_and_dense_layouts_are_observably_equivalent(
        data in points_strategy(),
        e in 1u32..40,
    ) {
        use spatial::GridLayout;
        let eps = e as f64 / 10.0;
        let dense = GridIndex::build_with_layout(&data, eps, GridLayout::Dense);
        let sparse = GridIndex::build_with_layout(&data, eps, GridLayout::Sparse);
        prop_assert_eq!(dense.lookup(), sparse.lookup());
        prop_assert_eq!(dense.non_empty_cells(), sparse.non_empty_cells());
        prop_assert_eq!(dense.stats(), sparse.stats());
        prop_assert_eq!(dense.max_points_per_cell(), sparse.max_points_per_cell());
        let (nx, ny) = dense.dims();
        for h in 0..nx * ny {
            prop_assert_eq!(dense.range_of(h), sparse.range_of(h), "cell {}", h);
        }
    }

    #[test]
    fn rtree_insertion_invariants_and_queries(data in points_strategy(), e in 1u32..40) {
        let eps = e as f64 / 10.0;
        let mut tree = RTree::new();
        for (i, p) in data.iter().enumerate() {
            tree.insert(i as u32, *p);
        }
        tree.check_invariants();
        for q in data.iter().step_by(7) {
            let mut got = tree.query_eps(q, eps);
            got.sort_unstable();
            prop_assert_eq!(got, brute_force_neighbors(&data, q, eps));
        }
    }

    #[test]
    fn bulk_and_incremental_rtrees_answer_identically(data in points_strategy()) {
        let bulk = RTree::bulk_load(&data);
        let mut incr = RTree::new();
        for (i, p) in data.iter().enumerate() {
            incr.insert(i as u32, *p);
        }
        for q in data.iter().step_by(5) {
            let mut a = bulk.query_eps(q, 1.5);
            a.sort_unstable();
            let mut b = incr.query_eps(q, 1.5);
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn kdtree_matches_oracle(data in points_strategy(), e in 1u32..40) {
        let eps = e as f64 / 10.0;
        let tree = KdTree::build(&data);
        for q in data.iter().step_by(3) {
            let mut got = tree.query_eps(q, eps);
            got.sort_unstable();
            prop_assert_eq!(got, brute_force_neighbors(&data, q, eps));
        }
    }

    #[test]
    fn presort_preserves_multiset(data in points_strategy()) {
        let sorted = spatial_sort(&data);
        prop_assert_eq!(sorted.len(), data.len());
        let key = |p: &Point2| (p.x.to_bits(), p.y.to_bits());
        let mut a: Vec<_> = data.iter().map(key).collect();
        let mut b: Vec<_> = sorted.iter().map(key).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn query_results_independent_of_point_order(data in points_strategy(), e in 1u32..30) {
        // Index answers must be a function of the point *set*, not the
        // array order (modulo id mapping) — verified via counts.
        let eps = e as f64 / 10.0;
        let sorted = spatial_sort(&data);
        let g1 = GridIndex::build(&data, eps);
        let g2 = GridIndex::build(&sorted, eps);
        for (q1, q2) in data.iter().zip(std::iter::repeat(())).map(|(q, _)| q).zip(sorted.iter()) {
            let _ = q2;
            let c1 = g1.query_count(&data, q1);
            let c2 = g2.query_count(&sorted, q1);
            prop_assert_eq!(c1, c2);
        }
    }
}

//! Spatial indexing substrate for Hybrid-DBSCAN.
//!
//! This crate provides the index structures the paper depends on:
//!
//! * [`grid`] — the GPU-friendly grid index `(G, A)` of Section IV: ε×ε
//!   cells over the data extent, a cell array `G` holding `[A_min, A_max]`
//!   ranges, and a lookup array `A` with `|A| = |D|` (Figure 1 of the paper).
//! * [`rtree`] — a classical R-tree (Guttman quadratic split plus STR bulk
//!   loading) used by the *reference implementation* the paper compares
//!   against (sequential DBSCAN, Table I / Figure 3).
//! * [`kdtree`] — an additional comparator used by the ablation benches.
//! * [`presort`] — the unit-width x/y binning pre-sort applied to the point
//!   database before grid construction to improve access locality.
//! * [`shard`] — x-quantile slab partitioning with ε-halos, the spatial
//!   layer under the multi-device sharded pipeline.
//! * [`nd`] — dimension-generic points, stores, AABBs, pre-sort, and the
//!   brute-force oracle (const-generic `D`, covering d ∈ {2, 3, 4}).
//! * [`gridn`] — the sparse ε-grid generalized to `D` dimensions
//!   (`3^D` stencil, `u64` mixed-radix cell keys).
//! * [`packed_tree`] — the device-resident packed kd-tree (implicit
//!   level-order heap, SoA node pool) behind the tree ε-search backend.
//!
//! The original pipeline operates on 2-D points ([`Point2`]), the paper's
//! setting; the [`nd`]/[`gridn`]/[`packed_tree`] layer extends the same
//! structures to higher dimensions without disturbing the 2-D path.

pub mod aabb;
pub mod distance;
pub mod grid;
pub mod gridn;
pub mod kdtree;
pub mod nd;
pub mod packed_tree;
pub mod point;
pub mod presort;
pub mod rtree;
pub mod shard;
pub mod soa;

pub use aabb::Aabb;
pub use grid::{CellRange, CellsView, GridGeometry, GridIndex, GridLayout, GridStats};
pub use gridn::{CellsViewN, GridGeometryN, GridIndexN};
pub use kdtree::KdTree;
pub use nd::{AabbN, PointN, PointStoreN, PointsViewN};
pub use packed_tree::{PackedKdTree, TreeStats, TreeView};
pub use point::Point2;
pub use rtree::{RTree, RTreeStats};
pub use shard::ShardPlan;
pub use soa::{PointStore, PointsView};

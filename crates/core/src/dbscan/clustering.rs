//! Cluster label containers and clustering comparisons.

use serde::{Deserialize, Serialize};

/// The label of a single point after clustering.
///
/// Encoded in one `i64`-free, cache-friendly `i32`:
/// * `UNVISITED` (internal, never escapes a finished run),
/// * `NOISE`,
/// * `cluster(k)` for cluster ids `k = 0, 1, …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PointLabel(i32);

impl PointLabel {
    pub const UNVISITED: PointLabel = PointLabel(-2);
    pub const NOISE: PointLabel = PointLabel(-1);

    /// Label for cluster `k`.
    pub fn cluster(k: u32) -> Self {
        PointLabel(k as i32)
    }

    pub fn is_noise(&self) -> bool {
        *self == Self::NOISE
    }

    pub fn is_clustered(&self) -> bool {
        self.0 >= 0
    }

    /// Cluster id, if clustered.
    pub fn cluster_id(&self) -> Option<u32> {
        if self.0 >= 0 {
            Some(self.0 as u32)
        } else {
            None
        }
    }
}

/// The output of a DBSCAN run: one label per point (the paper's set `C` of
/// clusters plus the noise set, in dense-array form).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    labels: Vec<PointLabel>,
    n_clusters: u32,
}

impl Clustering {
    pub(crate) fn new(labels: Vec<PointLabel>, n_clusters: u32) -> Self {
        debug_assert!(labels.iter().all(|l| *l != PointLabel::UNVISITED));
        Clustering { labels, n_clusters }
    }

    /// Construct directly from labels (for tests and external callers).
    /// `n_clusters` is recomputed.
    pub fn from_labels(labels: Vec<PointLabel>) -> Self {
        let n_clusters = labels
            .iter()
            .filter_map(|l| l.cluster_id())
            .max()
            .map_or(0, |m| m + 1);
        Clustering { labels, n_clusters }
    }

    pub fn labels(&self) -> &[PointLabel] {
        &self.labels
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    pub fn num_clusters(&self) -> u32 {
        self.n_clusters
    }

    pub fn noise_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_noise()).count()
    }

    /// Number of points assigned to cluster `k`.
    pub fn cluster_size(&self, k: u32) -> usize {
        self.labels
            .iter()
            .filter(|l| l.cluster_id() == Some(k))
            .count()
    }

    /// Cluster sizes, descending — a quick fingerprint of a clustering.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.n_clusters as usize];
        for l in &self.labels {
            if let Some(k) = l.cluster_id() {
                sizes[k as usize] += 1;
            }
        }
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// Re-order labels back to a caller's original point order:
    /// `original[perm[k]] = self[k]`. Used by Hybrid-DBSCAN to undo the
    /// spatial pre-sort.
    pub fn unpermute(&self, perm: &[u32]) -> Clustering {
        assert_eq!(perm.len(), self.labels.len());
        let mut labels = vec![PointLabel::NOISE; self.labels.len()];
        for (k, &orig) in perm.iter().enumerate() {
            labels[orig as usize] = self.labels[k];
        }
        Clustering {
            labels,
            n_clusters: self.n_clusters,
        }
    }

    /// Whether two clusterings are identical up to a relabeling of cluster
    /// ids (the correct notion of DBSCAN-output equality: cluster ids
    /// depend on visit order, membership does not).
    pub fn equivalent_to(&self, other: &Clustering) -> bool {
        if self.labels.len() != other.labels.len() {
            return false;
        }
        if self.n_clusters != other.n_clusters {
            return false;
        }
        // Build the bijection incrementally; any conflict is inequality.
        let mut fwd = vec![u32::MAX; self.n_clusters as usize];
        let mut bwd = vec![u32::MAX; other.n_clusters as usize];
        for (a, b) in self.labels.iter().zip(&other.labels) {
            match (a.cluster_id(), b.cluster_id()) {
                (None, None) => {
                    if a != b {
                        return false; // UNVISITED vs NOISE mismatch
                    }
                }
                (Some(x), Some(y)) => {
                    if fwd[x as usize] == u32::MAX {
                        fwd[x as usize] = y;
                    } else if fwd[x as usize] != y {
                        return false;
                    }
                    if bwd[y as usize] == u32::MAX {
                        bwd[y as usize] = x;
                    } else if bwd[y as usize] != x {
                        return false;
                    }
                }
                _ => return false,
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lbl(ids: &[i32]) -> Vec<PointLabel> {
        ids.iter()
            .map(|&i| {
                if i < 0 {
                    PointLabel::NOISE
                } else {
                    PointLabel::cluster(i as u32)
                }
            })
            .collect()
    }

    #[test]
    fn label_basics() {
        assert!(PointLabel::NOISE.is_noise());
        assert!(!PointLabel::NOISE.is_clustered());
        assert_eq!(PointLabel::cluster(3).cluster_id(), Some(3));
        assert_eq!(PointLabel::NOISE.cluster_id(), None);
    }

    #[test]
    fn counts_and_sizes() {
        let c = Clustering::from_labels(lbl(&[0, 0, 1, -1, 1, 1]));
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.noise_count(), 1);
        assert_eq!(c.cluster_size(0), 2);
        assert_eq!(c.cluster_size(1), 3);
        assert_eq!(c.cluster_sizes(), vec![3, 2]);
    }

    #[test]
    fn equivalence_up_to_relabeling() {
        let a = Clustering::from_labels(lbl(&[0, 0, 1, -1]));
        let b = Clustering::from_labels(lbl(&[1, 1, 0, -1]));
        assert!(a.equivalent_to(&b));
        assert!(b.equivalent_to(&a));
    }

    #[test]
    fn equivalence_rejects_different_membership() {
        let a = Clustering::from_labels(lbl(&[0, 0, 1, -1]));
        let split = Clustering::from_labels(lbl(&[0, 1, 1, -1]));
        assert!(!a.equivalent_to(&split));
        let noise_moved = Clustering::from_labels(lbl(&[0, 0, -1, 1]));
        assert!(!a.equivalent_to(&noise_moved));
        let merged = Clustering::from_labels(lbl(&[0, 0, 0, -1]));
        assert!(!a.equivalent_to(&merged), "different cluster counts");
    }

    #[test]
    fn equivalence_rejects_non_injective_mapping() {
        // a maps clusters {0,1}; b merges both into 0 but also has a
        // cluster 1 elsewhere — bijection check must catch it.
        let a = Clustering::from_labels(lbl(&[0, 1, 1, 0]));
        let b = Clustering::from_labels(lbl(&[0, 0, 1, 1]));
        assert!(!a.equivalent_to(&b));
    }

    #[test]
    fn unpermute_restores_original_order() {
        // Sorted order [2, 0, 1]: sorted[0] is original point 2, etc.
        let sorted = Clustering::from_labels(lbl(&[0, 1, -1]));
        let orig = sorted.unpermute(&[2, 0, 1]);
        assert_eq!(orig.labels()[2], PointLabel::cluster(0));
        assert_eq!(orig.labels()[0], PointLabel::cluster(1));
        assert!(orig.labels()[1].is_noise());
        assert_eq!(orig.num_clusters(), 2);
    }

    #[test]
    fn length_mismatch_not_equivalent() {
        let a = Clustering::from_labels(lbl(&[0]));
        let b = Clustering::from_labels(lbl(&[0, 0]));
        assert!(!a.equivalent_to(&b));
    }
}

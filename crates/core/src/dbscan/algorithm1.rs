//! A *literal* transcription of Algorithm 1 from the paper.
//!
//! The paper's reference implementation follows the classic DBSCAN
//! pseudo-code, maintaining `visitedSet`, `clusterSet` and `noiseSet` as
//! set data structures and materializing each cluster as a set `C` of
//! points. This module reproduces that structure faithfully — `HashSet`s
//! and all — because the comparisons in the evaluation are against *that*
//! kind of implementation, not against a label-array-optimized engine
//! like [`crate::dbscan::Dbscan`]. (The two produce identical labels; the
//! test suite asserts it.)
//!
//! Keeping the literal version around also documents the mapping between
//! the paper's pseudo-code and the optimized engine line by line.

use super::clustering::{Clustering, PointLabel};
use super::sources::NeighborSource;
use std::collections::HashSet;

/// Output of the literal Algorithm 1: the set of clusters `C` (each a set
/// of point ids) plus the noise set.
#[derive(Debug, Clone)]
pub struct Algorithm1Output {
    pub clusters: Vec<Vec<u32>>,
    pub noise: Vec<u32>,
    pub n_points: usize,
}

impl Algorithm1Output {
    /// Convert to the dense-label representation for comparisons.
    ///
    /// Cluster ids follow creation order, matching [`super::Dbscan`]'s
    /// numbering; a point claimed by a cluster after being marked noise is
    /// a border point and keeps its cluster membership (the noise set only
    /// retains never-reclaimed points).
    pub fn to_clustering(&self) -> Clustering {
        let mut labels = vec![PointLabel::NOISE; self.n_points];
        for (k, members) in self.clusters.iter().enumerate() {
            for &m in members {
                labels[m as usize] = PointLabel::cluster(k as u32);
            }
        }
        Clustering::from_labels(labels)
    }
}

/// Procedure DBSCAN(D, ε, minpts, Index I) — Algorithm 1, line by line.
/// `D`, `ε` and `I` are embodied by the [`NeighborSource`].
pub fn dbscan_algorithm1<S: NeighborSource + ?Sized>(
    source: &S,
    minpts: usize,
) -> Algorithm1Output {
    let n = source.num_points();
    // Lines 2-5: visitedSet, clusterSet, noiseSet, C ← ∅.
    let mut visited_set: HashSet<u32> = HashSet::new();
    let mut cluster_set: HashSet<u32> = HashSet::new();
    let mut noise_set: HashSet<u32> = HashSet::new();
    let mut clusters: Vec<Vec<u32>> = Vec::new();

    let mut neighbors: Vec<u32> = Vec::new();

    // Line 6: for all p ∈ D | p ∉ visitedSet.
    for p in 0..n as u32 {
        if visited_set.contains(&p) {
            continue;
        }
        // Line 7: C ← ∅ (the current cluster).
        let mut current_cluster: Vec<u32> = Vec::new();
        // Line 8: visitedSet ← visitedSet ∪ {p}.
        visited_set.insert(p);
        // Line 9: N ← NeighborSearch(p, ε, I).
        neighbors.clear();
        source.neighbors_of(p, &mut neighbors);
        // Line 10: if |N| < minpts then noiseSet ← noiseSet ∪ {p}.
        if neighbors.len() < minpts {
            noise_set.insert(p);
            continue;
        }
        // Lines 12-13: C ← C ∪ {p}; clusterSet ← clusterSet ∪ {p}.
        current_cluster.push(p);
        cluster_set.insert(p);

        // Line 14: for all i ∈ N (with line 15's N ← N \ i expressed as a
        // work-list cursor; the set keeps growing at line 20).
        let mut work: Vec<u32> = neighbors.clone();
        let mut cursor = 0;
        while cursor < work.len() {
            let i = work[cursor];
            cursor += 1;
            // Line 16: if i ∉ visitedSet.
            if !visited_set.contains(&i) {
                // Line 17: visitedSet ← visitedSet ∪ {i}.
                visited_set.insert(i);
                // Line 18: N̂ ← NeighborSearch(i, ε, I).
                neighbors.clear();
                source.neighbors_of(i, &mut neighbors);
                // Lines 19-20: if |N̂| ≥ minpts then N ← N ∪ N̂.
                if neighbors.len() >= minpts {
                    work.extend_from_slice(&neighbors);
                }
            }
            // Lines 21-23: if i ∉ clusterSet, add it to the cluster.
            if !cluster_set.contains(&i) {
                current_cluster.push(i);
                cluster_set.insert(i);
                // A previously-noise point reached here is a border point.
                noise_set.remove(&i);
            }
        }
        // Line 24: C ← C ∪ C.
        clusters.push(current_cluster);
    }

    let mut noise: Vec<u32> = noise_set.into_iter().collect();
    noise.sort_unstable();
    Algorithm1Output {
        clusters,
        noise,
        n_points: n,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{Dbscan, GridSource};
    use super::*;
    use spatial::{GridIndex, Point2};

    fn wavy(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = i as f64 * 0.13;
                Point2::new((t * 1.3).sin() * 4.0 + t * 0.05, (t * 0.7).cos() * 4.0)
            })
            .collect()
    }

    #[test]
    fn literal_matches_optimized_engine() {
        let data = wavy(400);
        for (eps, minpts) in [(0.3, 3), (0.8, 5), (1.5, 10)] {
            let grid = GridIndex::build(&data, eps);
            let src = GridSource::new(&grid, &data);
            let literal = dbscan_algorithm1(&src, minpts).to_clustering();
            let optimized = Dbscan::new(minpts).run(&src);
            assert_eq!(
                literal.labels(),
                optimized.labels(),
                "eps={eps} minpts={minpts}"
            );
        }
    }

    #[test]
    fn clusters_and_noise_partition_points() {
        let data = wavy(300);
        let grid = GridIndex::build(&data, 0.5);
        let out = dbscan_algorithm1(&GridSource::new(&grid, &data), 4);
        let mut seen = vec![false; data.len()];
        for members in &out.clusters {
            for &m in members {
                assert!(!seen[m as usize], "point {m} in two clusters");
                seen[m as usize] = true;
            }
        }
        for &m in &out.noise {
            assert!(!seen[m as usize], "noise point {m} also clustered");
            seen[m as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every point accounted for");
    }

    #[test]
    fn empty_neighborhoods_are_noise() {
        let data = vec![
            Point2::new(0.0, 0.0),
            Point2::new(100.0, 0.0),
            Point2::new(200.0, 0.0),
        ];
        let grid = GridIndex::build(&data, 1.0);
        let out = dbscan_algorithm1(&GridSource::new(&grid, &data), 2);
        assert!(out.clusters.is_empty());
        assert_eq!(out.noise, vec![0, 1, 2]);
    }
}

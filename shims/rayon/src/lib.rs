//! Offline stand-in for `rayon` — a real work-stealing thread pool.
//!
//! Since PR 2 this shim executes in parallel: a global pool of
//! `std::thread` workers ([`pool`]) pulls chunked work regions from a
//! shared queue, claiming chunks with an atomic cursor (fine-grained
//! stealing without per-worker deques). The pool is sized by
//! `RAYON_NUM_THREADS` (0/unset → all cores). The call-site API is
//! unchanged from the sequential shim: `par_iter`, `into_par_iter`,
//! `par_iter_mut`, `par_sort_unstable*`, [`join`], [`scope`],
//! [`current_num_threads`], plus [`ThreadPoolBuilder`]/[`ThreadPool`]
//! for sized `install` views.
//!
//! ## Determinism policy
//!
//! The workspace requires **bitwise-identical results at every thread
//! count** (DESIGN.md, "Threading model & determinism policy"). The shim
//! holds up its end by making every primitive's *output* a pure function
//! of its *input*:
//!
//! * `collect` is index-addressed — item `i` lands in slot `i`.
//! * `sum` reduces fixed 4096-element blocks folded in block order, so
//!   float sums never depend on the schedule.
//! * `par_sort_unstable*` picks its algorithm by input length alone and
//!   merges with a deterministic left-priority rule ([`sort`]).
//! * Chunk boundaries are scheduling hints only; no primitive exposes
//!   "which thread ran this".
//!
//! What the shim *cannot* make deterministic is side-effect interleaving
//! inside user closures (atomic append order, lock acquisition order) —
//! consumers of such effects must canonicalize, which in this workspace
//! means sorting `DeviceAppendBuffer` drains before use.
//!
//! ## Profiling
//!
//! [`profile::profile_pool`] opens an introspection session recording
//! per-worker task/steal/park telemetry into a [`profile::PoolProfile`]
//! snapshot. Profiling observes the schedule but never alters it: when
//! disabled the hot path pays one relaxed atomic load, and enabling it
//! only adds timestamping around chunk execution — outputs stay bitwise
//! identical either way (see the determinism policy above).

mod iter;
mod pool;
pub mod profile;
mod sort;

pub use pool::{
    current_num_threads, help_one, join, scope, Scope, ThreadPool, ThreadPoolBuildError,
    ThreadPoolBuilder,
};

pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IndexedProducer, IntoParallelIterator, IntoParallelRefIterator,
        IntoParallelRefMutIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn api_parity_smoke() {
        let v: Vec<u32> = (0u32..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0u32..100).map(|x| x * 2).collect::<Vec<_>>());
        let s: u32 = v.par_iter().sum();
        assert_eq!(s, 9900);
        let mut pairs = vec![(3u32, 1u32), (1, 2), (2, 0)];
        pairs.par_sort_unstable();
        assert_eq!(pairs, vec![(1, 2), (2, 0), (3, 1)]);
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn install_overrides_reported_thread_count() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(super::current_num_threads);
        assert_eq!(seen, 3);
        // Nested installs restore the outer override.
        let inner = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let (a, b) = pool.install(|| {
            let inside = inner.install(super::current_num_threads);
            (inside, super::current_num_threads())
        });
        assert_eq!((a, b), (2, 3));
    }

    #[test]
    fn work_actually_overlaps_across_threads() {
        // Two tasks that can only finish if they run concurrently:
        // each waits for the other to arrive. Run under install(2) so
        // the test is meaningful even with RAYON_NUM_THREADS=1.
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let arrived = AtomicUsize::new(0);
        pool.install(|| {
            super::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|_| {
                        arrived.fetch_add(1, Ordering::SeqCst);
                        let deadline =
                            std::time::Instant::now() + std::time::Duration::from_secs(5);
                        while arrived.load(Ordering::SeqCst) < 2 {
                            assert!(
                                std::time::Instant::now() < deadline,
                                "tasks never overlapped"
                            );
                            std::thread::yield_now();
                        }
                    });
                }
            });
        });
        assert_eq!(arrived.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn sort_is_bitwise_identical_across_thread_counts() {
        // Duplicate keys with distinct payloads expose permutation
        // differences between schedules/algorithms.
        let mut rng = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let input: Vec<(u32, u32)> = (0..40_000u32).map(|i| ((next() % 64) as u32, i)).collect();

        let sorted_at = |threads: usize| {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut v = input.clone();
            pool.install(|| v.par_sort_unstable_by_key(|p| p.0));
            v
        };
        let t1 = sorted_at(1);
        let t4 = sorted_at(4);
        assert_eq!(t1, t4);
        assert!(t1.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn float_sum_is_deterministic_across_thread_counts() {
        let values: Vec<f64> = (0..30_000)
            .map(|i| (i as f64 * 0.1).sin() * 1e-3 + 1.0)
            .collect();
        let sum_at = |threads: usize| {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| values.par_iter().sum::<f64>())
        };
        assert_eq!(sum_at(1).to_bits(), sum_at(4).to_bits());
    }

    #[test]
    fn par_iter_mut_and_enumerate() {
        let mut v: Vec<u64> = vec![0; 10_000];
        v.par_iter_mut().enumerate().for_each(|(i, slot)| {
            *slot = i as u64 * 3;
        });
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64 * 3));
    }

    #[test]
    fn join_returns_both_results() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let (a, b) =
            pool.install(|| super::join(|| (0..1000u64).sum::<u64>(), || "right".to_string()));
        assert_eq!(a, 499_500);
        assert_eq!(b, "right");
    }

    #[test]
    fn scope_tasks_may_borrow_and_all_complete() {
        let results = Mutex::new(Vec::new());
        super::scope(|s| {
            for i in 0..16 {
                let results = &results;
                s.spawn(move |_| {
                    results.lock().unwrap().push(i);
                });
            }
        });
        let mut got = results.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallelism_completes() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let total: u64 = pool.install(|| {
            (0..8u64)
                .into_par_iter()
                .map(|i| {
                    (0..1000u64)
                        .into_par_iter()
                        .map(move |j| i + j)
                        .sum::<u64>()
                })
                .sum()
        });
        let expect: u64 = (0..8u64)
            .map(|i| (0..1000u64).map(|j| i + j).sum::<u64>())
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn panics_propagate_from_parallel_regions() {
        let caught = std::panic::catch_unwind(|| {
            let pool = super::ThreadPoolBuilder::new()
                .num_threads(2)
                .build()
                .unwrap();
            pool.install(|| {
                (0..64u32).into_par_iter().for_each(|i| {
                    if i == 33 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(caught.is_err());
    }
}

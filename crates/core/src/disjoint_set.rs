//! Disjoint-set (union-find) DBSCAN over the neighbor table — a parallel
//! host-side clustering extension.
//!
//! The paper's host DBSCAN is sequential per variant (parallelism comes
//! from running *variants* concurrently). Related work it cites — Patwary
//! et al.'s PDSDBSCAN [9] — instead parallelizes a *single* clustering
//! with a disjoint-set formulation: every core point unions with the core
//! points in its ε-neighborhood; border points attach to any adjacent
//! core point afterwards. Cluster memberships of core points are exactly
//! DBSCAN's (density-connectivity is an equivalence closure); border
//! points land on *some* adjacent cluster, which is within DBSCAN's own
//! order-dependence.
//!
//! With the neighbor table already materialized by the GPU, this turns
//! the last sequential stage of Hybrid-DBSCAN into a data-parallel pass —
//! the natural "future work" composition of the two papers.
//!
//! ## Determinism
//!
//! All three phases run on the rayon pool, yet the output is a pure
//! function of `(table, minpts)` at every thread count: union with
//! smaller-root-wins converges each component to its minimum member
//! regardless of CAS interleaving; border points attach to the *minimum*
//! adjacent root (not the first found); and the final labels number
//! clusters by sorted root id. This is relied on by the thread-count
//! equivalence suite (see DESIGN.md, "Threading model & determinism
//! policy").

use crate::dbscan::{Clustering, PointLabel};
use crate::table::NeighborTable;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU32, Ordering};

/// A lock-free concurrent union-find with path halving, as in PDSDBSCAN
/// and the standard wait-free union-find constructions: `parent[i]` is
/// updated by CAS; roots are identified by `parent[i] == i`.
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
}

impl ConcurrentUnionFind {
    pub fn new(n: usize) -> Self {
        ConcurrentUnionFind {
            parent: (0..n as u32).map(AtomicU32::new).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Find with path halving; safe under concurrency.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Acquire);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Acquire);
            if gp == p {
                return p;
            }
            // Path halving: point x at its grandparent (best effort).
            let _ = self.parent[x as usize].compare_exchange_weak(
                p,
                gp,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    /// Union by id (smaller root wins), lock-free.
    pub fn union(&self, a: u32, b: u32) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        loop {
            if ra == rb {
                return;
            }
            // Attach the larger root under the smaller (deterministic
            // orientation keeps the structure converging).
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            match self.parent[hi as usize].compare_exchange(
                hi,
                lo,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(_) => {
                    ra = self.find(lo);
                    rb = self.find(hi);
                }
            }
        }
    }
}

/// Parallel DBSCAN over a neighbor table using the disjoint-set
/// formulation. Returns labels in *table* id space.
///
/// Equivalent to [`crate::dbscan::Dbscan`] on core-point memberships and
/// noise; border points may attach to a different (still adjacent)
/// cluster than the sequential visit order would pick.
pub fn dbscan_disjoint_set(table: &NeighborTable, minpts: usize) -> Clustering {
    let n = table.num_points();
    let is_core: Vec<bool> = (0..n as u32)
        .into_par_iter()
        .map(|i| table.neighbor_count(i) >= minpts)
        .collect();

    // Phase 1: union every core point with its core neighbors.
    let uf = ConcurrentUnionFind::new(n);
    (0..n as u32).into_par_iter().for_each(|i| {
        if !is_core[i as usize] {
            return;
        }
        for &j in table.neighbors(i) {
            if is_core[j as usize] {
                uf.union(i, j);
            }
        }
    });

    // Phase 2: border points attach to the smallest-rooted adjacent core
    // (deterministic choice, independent of scheduling).
    let attach: Vec<u32> = (0..n as u32)
        .into_par_iter()
        .map(|i| {
            if is_core[i as usize] {
                return uf.find(i);
            }
            table
                .neighbors(i)
                .iter()
                .filter(|&&j| is_core[j as usize])
                .map(|&j| uf.find(j))
                .min()
                .unwrap_or(u32::MAX)
        })
        .collect();

    // Phase 3: compact root ids to dense cluster labels, numbering
    // clusters by their smallest member for determinism.
    let mut roots: Vec<u32> = attach.iter().copied().filter(|&r| r != u32::MAX).collect();
    roots.sort_unstable();
    roots.dedup();
    let labels: Vec<PointLabel> = attach
        .par_iter()
        .map(|&r| {
            if r == u32::MAX {
                PointLabel::NOISE
            } else {
                let k = roots.binary_search(&r).expect("root indexed");
                PointLabel::cluster(k as u32)
            }
        })
        .collect();
    Clustering::from_labels(labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::{Dbscan, TableSource};
    use crate::hybrid::{HybridConfig, HybridDbscan};
    use crate::kernels::test_support::mixed_points;
    use gpu_sim::Device;

    fn table_for(data: &[spatial::Point2], eps: f64) -> crate::hybrid::TableHandle {
        let device = Device::k20c();
        HybridDbscan::new(&device, HybridConfig::default())
            .build_table(data, eps)
            .unwrap()
    }

    #[test]
    fn union_find_basic() {
        let uf = ConcurrentUnionFind::new(10);
        assert_eq!(uf.len(), 10);
        uf.union(1, 2);
        uf.union(2, 3);
        assert_eq!(uf.find(1), uf.find(3));
        assert_ne!(uf.find(1), uf.find(4));
        uf.union(3, 4);
        assert_eq!(uf.find(4), uf.find(1));
    }

    #[test]
    fn union_find_concurrent_chain() {
        let n = 10_000;
        let uf = ConcurrentUnionFind::new(n);
        // Union a chain from many pool tasks: everything must end
        // connected.
        rayon::scope(|s| {
            for t in 0..4 {
                let uf = &uf;
                s.spawn(move |_| {
                    for i in (t..n - 1).step_by(4) {
                        uf.union(i as u32, (i + 1) as u32);
                    }
                });
            }
        });
        let root = uf.find(0);
        for i in 0..n as u32 {
            assert_eq!(uf.find(i), root, "node {i} disconnected");
        }
        assert_eq!(root, 0, "smallest id wins as root");
    }

    #[test]
    fn matches_sequential_dbscan_up_to_borders() {
        let data = mixed_points(500);
        for (eps, minpts) in [(0.5, 4), (0.9, 8), (0.3, 2)] {
            let handle = table_for(&data, eps);
            let parallel = dbscan_disjoint_set(&handle.table, minpts);
            let sequential = Dbscan::new(minpts).run(&TableSource::new(&handle.table));

            // Same number of clusters and identical core memberships.
            assert_eq!(
                parallel.num_clusters(),
                sequential.num_clusters(),
                "eps={eps}"
            );
            for i in 0..handle.table.num_points() as u32 {
                let core = handle.table.neighbor_count(i) >= minpts;
                if core {
                    // Same-cluster relation over (arbitrary) core pairs:
                    // spot-check against a fixed partner core point.
                    assert!(parallel.labels()[i as usize].is_clustered());
                }
                // Noise agreement is exact: a point is noise iff no
                // adjacent core exists.
                assert_eq!(
                    parallel.labels()[i as usize].is_noise(),
                    sequential.labels()[i as usize].is_noise(),
                    "noise disagreement at {i} (eps={eps}, minpts={minpts})"
                );
            }

            // Core same-cluster relation matches exactly.
            let cores: Vec<u32> = (0..handle.table.num_points() as u32)
                .filter(|&i| handle.table.neighbor_count(i) >= minpts)
                .collect();
            for w in cores.windows(2) {
                let same_p = parallel.labels()[w[0] as usize] == parallel.labels()[w[1] as usize];
                let same_s =
                    sequential.labels()[w[0] as usize] == sequential.labels()[w[1] as usize];
                assert_eq!(same_p, same_s, "core pair {:?} disagrees", w);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let data = mixed_points(400);
        let handle = table_for(&data, 0.6);
        let a = dbscan_disjoint_set(&handle.table, 4);
        let b = dbscan_disjoint_set(&handle.table, 4);
        assert_eq!(
            a.labels(),
            b.labels(),
            "parallel result must be deterministic"
        );
    }

    #[test]
    fn all_noise_and_all_one_cluster_extremes() {
        let data = mixed_points(200);
        let handle = table_for(&data, 0.4);
        let none = dbscan_disjoint_set(&handle.table, 10_000);
        assert_eq!(none.num_clusters(), 0);
        assert_eq!(none.noise_count(), 200);
        let all = dbscan_disjoint_set(&handle.table, 1);
        assert_eq!(all.noise_count(), 0, "minpts=1 makes everything core");
    }
}

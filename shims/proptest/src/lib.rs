//! Offline stand-in for `proptest`.
//!
//! A deterministic random-case runner implementing the slice of proptest
//! the workspace's property tests use: range strategies, tuple strategies,
//! `prop_map`, `prop::collection::vec`, the `proptest!` macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion forms.
//!
//! Differences from the real crate, deliberately accepted:
//! * **No shrinking** — a failing case panics with the full `Debug` dump
//!   of its inputs instead of a minimized counterexample.
//! * **Fixed seeding** — case `k` of every test draws from
//!   `SplitMix64(BASE ^ k)`, so failures reproduce exactly across runs
//!   (`proptest-regressions` files are ignored).

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic RNG handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration: only the case count is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::collection as _collection_reexport;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// The body of each generated test returns `Err` on a failed
/// `prop_assert!`, which the runner reports with the generated inputs.
pub type TestCaseResult = Result<(), String>;

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                format!("assertion failed: {:?} == {:?}", l, r),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                format!("{}: {:?} == {:?} failed", format!($($fmt)+), l, r),
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err(format!("assertion failed: {:?} != {:?}", l, r));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            // Per-test deterministic base seed from the test name.
            let base: u64 = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}\n"),+),
                    $(&$arg),+
                );
                let outcome: $crate::TestCaseResult = (move || {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        case + 1, config.cases, msg, inputs
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::generate(&(-10i32..-2), &mut rng);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::new(2);
        let strat = prop::collection::vec(0u8..4, 2..6);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = crate::TestRng::new(3);
        let strat = (0u8..4, 1u32..1000).prop_map(|(a, b)| (a as u64) + b as u64);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..1004).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_smoke(x in 0u32..50, v in prop::collection::vec(0i32..10, 0..5)) {
            prop_assert!(x < 50);
            prop_assert_eq!(v.len(), v.len());
            prop_assert!(v.iter().all(|&e| e < 10), "element out of range in {:?}", v);
        }
    }
}

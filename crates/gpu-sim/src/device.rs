//! The simulated device: properties, global-memory accounting, and the
//! block-execution thread pool.

use crate::cost::CostModel;
use crate::error::DeviceError;
use crate::transfer::TransferModel;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Static properties of a simulated device.
///
/// Defaults model the paper's NVIDIA Tesla K20c (Kepler GK110): 13 SMs,
/// 5 GB of global memory, 48 KB of shared memory per block, 208 GB/s
/// device-memory bandwidth, PCIe 2.0 host link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProps {
    pub name: String,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// SM clock in GHz.
    pub clock_ghz: f64,
    /// Global-memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Shared-memory limit per block in bytes.
    pub shared_mem_per_block: usize,
    /// Device-memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Hardware limits governing occupancy.
    pub max_threads_per_block: u32,
    pub max_threads_per_sm: u32,
    pub max_blocks_per_sm: u32,
    pub warp_size: u32,
    /// Warp schedulers per SM (Kepler: 4) — the SM's instruction-issue
    /// width in warps per cycle, which bounds compute throughput.
    pub warp_schedulers: u32,
}

impl DeviceProps {
    /// The paper's experimental card: NVIDIA Tesla K20c, 5 GB.
    pub fn k20c() -> Self {
        DeviceProps {
            name: "Simulated NVIDIA Tesla K20c".to_string(),
            sm_count: 13,
            clock_ghz: 0.706,
            global_mem_bytes: 5 * 1024 * 1024 * 1024,
            shared_mem_per_block: 48 * 1024,
            mem_bandwidth_gbps: 208.0,
            max_threads_per_block: 1024,
            max_threads_per_sm: 2048,
            max_blocks_per_sm: 16,
            warp_size: 32,
            warp_schedulers: 4,
        }
    }

    /// A deliberately tiny device used by tests to force out-of-memory
    /// conditions and multi-batch executions at small data sizes.
    pub fn tiny(global_mem_bytes: usize) -> Self {
        DeviceProps {
            name: format!("Simulated tiny device ({global_mem_bytes} B)"),
            global_mem_bytes,
            ..Self::k20c()
        }
    }
}

pub(crate) struct DeviceInner {
    pub props: DeviceProps,
    pub cost: CostModel,
    pub transfer: TransferModel,
    pub used_bytes: AtomicUsize,
    /// High-water mark of `used_bytes`, for out-of-core reporting.
    pub peak_bytes: AtomicUsize,
    /// Serializes kernel launches: the simulated compute engine executes
    /// one kernel at a time, like a single-compute-engine GPU. This is
    /// strictly per-engine accounting of *kernel execution* — host-side
    /// canonicalization work (e.g. `thrust::sort_by_key`) runs outside
    /// it, and its modeled Compute-engine serialization is enforced on
    /// the `schedule_chains` timeline instead.
    pub compute_lock: Mutex<()>,
}

impl DeviceInner {
    /// Acquire the compute engine. A contended waiter donates its thread
    /// to pending data-parallel pool work (the current holder's kernel
    /// blocks, another stream's sort) instead of parking, so pipelined
    /// launches from several stream workers keep every host thread busy.
    /// Once no pool work is claimable the waiter parks immediately: a
    /// yield-spin here oversubscribes runners with fewer hardware threads
    /// than stream workers, stealing timeslices from the lock holder.
    pub fn lock_compute(&self) -> std::sync::MutexGuard<'_, ()> {
        loop {
            if let Some(guard) = self.compute_lock.try_lock() {
                return guard;
            }
            if !rayon::help_one() {
                // Nothing to help with: park on the lock.
                return self.compute_lock.lock();
            }
        }
    }
}

/// Handle to a simulated device. Cheap to clone; all clones share the
/// global-memory accounting.
#[derive(Clone)]
pub struct Device {
    pub(crate) inner: Arc<DeviceInner>,
}

impl Device {
    /// Create a device with explicit properties and cost models.
    pub fn with_props(props: DeviceProps, cost: CostModel, transfer: TransferModel) -> Self {
        Device {
            inner: Arc::new(DeviceInner {
                props,
                cost,
                transfer,
                used_bytes: AtomicUsize::new(0),
                peak_bytes: AtomicUsize::new(0),
                compute_lock: Mutex::new(()),
            }),
        }
    }

    /// The default simulated K20c.
    pub fn k20c() -> Self {
        Self::with_props(
            DeviceProps::k20c(),
            CostModel::kepler(),
            TransferModel::pcie2(),
        )
    }

    /// A tiny device for exercising memory-pressure paths in tests.
    pub fn tiny(global_mem_bytes: usize) -> Self {
        Self::with_props(
            DeviceProps::tiny(global_mem_bytes),
            CostModel::kepler(),
            TransferModel::pcie2(),
        )
    }

    pub fn props(&self) -> &DeviceProps {
        &self.inner.props
    }

    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    pub fn transfer_model(&self) -> &TransferModel {
        &self.inner.transfer
    }

    /// Bytes of global memory currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.inner.used_bytes.load(Ordering::Relaxed)
    }

    /// Bytes of global memory still available.
    pub fn available_bytes(&self) -> usize {
        self.inner.props.global_mem_bytes - self.used_bytes()
    }

    /// High-water mark of allocated global memory over the device's
    /// lifetime (out-of-core runs report this against the capacity).
    pub fn peak_bytes(&self) -> usize {
        self.inner.peak_bytes.load(Ordering::Relaxed)
    }

    /// Reserve `bytes` of global memory, failing like `cudaMalloc` when the
    /// capacity is exhausted.
    pub(crate) fn alloc_bytes(&self, bytes: usize) -> Result<(), DeviceError> {
        let mut current = self.inner.used_bytes.load(Ordering::Relaxed);
        loop {
            let new = current + bytes;
            if new > self.inner.props.global_mem_bytes {
                return Err(DeviceError::OutOfMemory {
                    requested_bytes: bytes,
                    available_bytes: self.inner.props.global_mem_bytes - current,
                });
            }
            match self.inner.used_bytes.compare_exchange_weak(
                current,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.inner.peak_bytes.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(observed) => current = observed,
            }
        }
    }

    pub(crate) fn free_bytes(&self, bytes: usize) {
        self.inner.used_bytes.fetch_sub(bytes, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.inner.props.name)
            .field("used_bytes", &self.used_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k20c_profile_matches_paper() {
        let p = DeviceProps::k20c();
        assert_eq!(
            p.global_mem_bytes,
            5 * 1024 * 1024 * 1024,
            "the paper's card has 5 GB"
        );
        assert_eq!(p.sm_count, 13);
        assert_eq!(p.warp_size, 32);
    }

    #[test]
    fn allocation_accounting() {
        let d = Device::tiny(1000);
        assert_eq!(d.available_bytes(), 1000);
        d.alloc_bytes(400).unwrap();
        assert_eq!(d.used_bytes(), 400);
        d.alloc_bytes(600).unwrap();
        assert_eq!(d.available_bytes(), 0);
        let err = d.alloc_bytes(1).unwrap_err();
        assert!(matches!(err, DeviceError::OutOfMemory { .. }));
        d.free_bytes(1000);
        assert_eq!(d.used_bytes(), 0);
        assert_eq!(d.peak_bytes(), 1000, "peak survives frees");
    }

    #[test]
    fn clones_share_accounting() {
        let d = Device::tiny(100);
        let d2 = d.clone();
        d.alloc_bytes(60).unwrap();
        assert_eq!(d2.used_bytes(), 60);
        assert!(d2.alloc_bytes(50).is_err());
    }

    #[test]
    fn concurrent_allocation_never_oversubscribes() {
        let d = Device::tiny(10_000);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let d = d.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        if d.alloc_bytes(10).is_ok() {
                            d.free_bytes(10);
                        }
                    }
                });
            }
        });
        assert_eq!(d.used_bytes(), 0);
    }
}

//! Profiling utilities in the spirit of the NVIDIA Visual Profiler, which
//! the paper used to obtain Table II (kernel time and `n_GPU`).

use crate::cost::Counters;
use crate::kernel::KernelReport;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Aggregates kernel launches across a run (e.g. all batches of one
/// Hybrid-DBSCAN invocation) into headline metrics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelProfile {
    pub launches: u64,
    pub total_threads: u64,
    pub total_blocks: u64,
    pub total_duration: SimDuration,
    pub counters: Counters,
    occupancy_weighted: f64,
}

impl KernelProfile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one launch report into the profile.
    pub fn record(&mut self, report: &KernelReport) {
        self.launches += 1;
        self.total_threads += report.threads_launched;
        self.total_blocks += report.config.grid_dim as u64;
        self.total_duration += report.duration;
        self.counters.merge(&report.counters);
        self.occupancy_weighted += report.occupancy * report.duration.as_secs();
    }

    /// Duration-weighted mean occupancy across recorded launches.
    pub fn mean_occupancy(&self) -> f64 {
        let t = self.total_duration.as_secs();
        if t == 0.0 {
            0.0
        } else {
            self.occupancy_weighted / t
        }
    }

    /// Achieved global-memory throughput (GB/s) over kernel time.
    pub fn global_throughput_gbps(&self) -> f64 {
        let t = self.total_duration.as_secs();
        if t == 0.0 {
            0.0
        } else {
            self.counters.global_bytes() as f64 / t / 1e9
        }
    }

    /// A compact single-line summary, suitable for the experiment harness.
    pub fn summary(&self) -> String {
        format!(
            "launches={} threads={} blocks={} time={:.3} ms occ={:.2} gmem={:.1} GB/s atomics={}",
            self.launches,
            self.total_threads,
            self.total_blocks,
            self.total_duration.as_millis(),
            self.mean_occupancy(),
            self.global_throughput_gbps(),
            self.counters.atomics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchConfig;

    fn report(threads: u64, ms: f64, occ: f64) -> KernelReport {
        KernelReport {
            config: LaunchConfig::for_elements(threads as usize, 256),
            threads_launched: threads,
            duration: SimDuration::from_millis(ms),
            counters: Counters {
                flops: threads,
                global_read_bytes: threads * 8,
                ..Default::default()
            },
            occupancy: occ,
        }
    }

    #[test]
    fn profile_accumulates() {
        let mut p = KernelProfile::new();
        p.record(&report(1024, 1.0, 1.0));
        p.record(&report(2048, 3.0, 0.5));
        assert_eq!(p.launches, 2);
        assert_eq!(p.total_threads, 3072);
        assert!((p.total_duration.as_millis() - 4.0).abs() < 1e-9);
        assert_eq!(p.counters.flops, 3072);
    }

    #[test]
    fn mean_occupancy_is_duration_weighted() {
        let mut p = KernelProfile::new();
        p.record(&report(1024, 1.0, 1.0));
        p.record(&report(1024, 3.0, 0.5));
        // (1.0*1 + 0.5*3) / 4 = 0.625
        assert!((p.mean_occupancy() - 0.625).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = KernelProfile::new();
        assert_eq!(p.mean_occupancy(), 0.0);
        assert_eq!(p.global_throughput_gbps(), 0.0);
        assert!(p.summary().contains("launches=0"));
    }

    #[test]
    fn summary_contains_metrics() {
        let mut p = KernelProfile::new();
        p.record(&report(1024, 2.0, 0.8));
        let s = p.summary();
        assert!(s.contains("threads=1024"));
        assert!(s.contains("time=2.000 ms"));
    }
}

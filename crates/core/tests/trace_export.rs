//! Smoke test for the Chrome trace exporter: build a neighbor table on a
//! tiny dataset with a recorder attached, export the trace, and re-parse
//! the JSON with the shared `obs::json` parser (the same parser the
//! benchmark harness uses to load baselines) to check the trace-event
//! contract: field presence, lane metadata, per-lane non-overlap, and
//! that every emitted document (trace + metrics snapshot) round-trips.

use gpu_sim::device::Device;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use obs::json::{parse, JsonValue};
use obs::Recorder;
use spatial::Point2;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Deterministic tiny dataset: a grid of small clusters, enough points to
/// produce several batches under a small buffer budget.
fn tiny_points(n: usize) -> Vec<Point2> {
    (0..n)
        .map(|i| {
            let cluster = i % 8;
            let k = (i / 8) as f64;
            Point2::new(
                (cluster % 4) as f64 * 10.0 + (k * 0.618).fract(),
                (cluster / 4) as f64 * 10.0 + (k * 0.382).fract(),
            )
        })
        .collect()
}

#[test]
fn exported_trace_is_valid_and_lanes_do_not_overlap() {
    let data = tiny_points(400);
    let device = Device::k20c();
    let rec = Arc::new(Recorder::new());
    let hybrid = HybridDbscan::new(&device, HybridConfig::default()).with_recorder(rec.clone());
    hybrid.build_table(&data, 0.9).expect("build_table");

    let json_text = rec.chrome_trace_json();
    let doc = parse(&json_text).expect("trace must be valid JSON");

    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every event carries name/ph/pid/tid; X events also ts/dur.
    let mut lane_names: Vec<String> = Vec::new();
    let mut device_events: BTreeMap<u64, Vec<(f64, f64)>> = BTreeMap::new();
    let mut host_events = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).expect("ph");
        assert!(ev.get("name").and_then(JsonValue::as_str).is_some(), "name");
        let pid = ev.get("pid").and_then(JsonValue::as_u64).expect("pid");
        let tid = ev.get("tid").and_then(JsonValue::as_u64).expect("tid");
        match ph {
            "M" => {
                if ev.get("name").and_then(JsonValue::as_str) == Some("thread_name") && pid == 0 {
                    let lane = ev
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(JsonValue::as_str)
                        .expect("thread_name args.name");
                    lane_names.push(lane.to_string());
                }
            }
            "X" => {
                let ts = ev.get("ts").and_then(JsonValue::as_f64).expect("ts");
                let dur = ev.get("dur").and_then(JsonValue::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0);
                if pid == 0 {
                    device_events.entry(tid).or_default().push((ts, dur));
                } else {
                    host_events += 1;
                }
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }

    // Distinct H2D / Compute / D2H lanes must be named.
    for lane in ["H2D", "Compute", "D2H"] {
        assert!(
            lane_names.iter().any(|n| n == lane),
            "missing device lane {lane}: {lane_names:?}"
        );
    }
    assert!(host_events > 0, "host spans must be exported");
    assert!(
        device_events.len() >= 3,
        "events on at least 3 device lanes"
    );

    // Per-lane events never overlap (engines are exclusive resources).
    for (tid, lane) in device_events.iter_mut() {
        lane.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in lane.windows(2) {
            let (t0, d0) = w[0];
            let (t1, _) = w[1];
            assert!(
                t1 >= t0 + d0 - 1e-6,
                "lane {tid} events overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    // The metrics export parses too and carries the batch telemetry.
    let metrics = parse(&rec.metrics_json()).expect("metrics must be valid JSON");
    let counters = metrics.get("counters").expect("counters object");
    assert!(
        counters
            .get("batch.result_pairs")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );
    let gauges = metrics.get("gauges").expect("gauges object");
    assert!(gauges
        .get("batch.estimation_accuracy")
        .and_then(JsonValue::as_f64)
        .is_some());
    // The kernel-profile wiring (obs::bench::record_kernel_profile) lands
    // in the same snapshot.
    assert!(gauges
        .get("kernel.gpucalc_global.gmem_gbps")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0)
        .is_finite());
    assert!(
        counters
            .get("kernel.gpucalc_global.launches")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            >= 1
    );
}

#[test]
fn trace_json_escapes_are_reversible() {
    // Round-trip a span name with every escaped character class through
    // the exporter and the shared parser.
    let rec = Recorder::new();
    drop(rec.span("weird \"name\"\\with\nescapes\tand\u{1}ctrl", "test"));
    let doc = parse(&rec.chrome_trace_json()).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
    let found = events.iter().any(|e| {
        e.get("name").and_then(JsonValue::as_str)
            == Some("weird \"name\"\\with\nescapes\tand\u{1}ctrl")
    });
    assert!(found, "escaped span name must round-trip");
}

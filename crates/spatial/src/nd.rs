//! Const-generic dimension-`D` extension of the spatial substrate.
//!
//! The paper restricts itself to 2-D spatial data, and the original
//! [`crate::point::Point2`] pipeline stays exactly as it was — every
//! bit-pinned modeled time in the repo depends on it. This module adds the
//! dimension-generic layer the tree backend needs to cover d ∈ {2, 3, 4+}:
//!
//! * [`PointN`] — a `[f64; D]` point with the *same rounding sequence* as
//!   `Point2::distance_sq` at `D = 2` (coordinates accumulate in dimension
//!   order, one `mul`/`add` chain), so hit decisions against ε² are
//!   bit-identical between the 2-D and generic code paths;
//! * [`PointStoreN`] / [`PointsViewN`] — the SoA coordinate store, one
//!   contiguous array per dimension, mirroring [`crate::soa::PointStore`];
//! * [`AabbN`] — axis-aligned bounds;
//! * [`spatial_sort_permutation_nd`] — the unit-width binning pre-sort,
//!   generalized: bins compare from the last dimension down to the first
//!   (row-major, matching the 2-D `(y, x)` key), then exact coordinates,
//!   then index, so the permutation is total and deterministic;
//! * [`brute_force_neighbors_nd`] — the test/differential oracle.

use crate::point::Point2;
use crate::presort::SortPermutation;

/// A point in `D`-dimensional space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointN<const D: usize> {
    pub coords: [f64; D],
}

impl<const D: usize> PointN<D> {
    #[inline]
    pub const fn new(coords: [f64; D]) -> Self {
        Self { coords }
    }

    /// Squared Euclidean distance, accumulating dimensions in order
    /// 0..D: `d² = dx₀² ; d² += dx₁² ; …`. At `D = 2` this is exactly the
    /// mul-mul-add rounding chain of [`Point2::distance_sq`], which is
    /// what lets the generic kernels produce bit-identical hit decisions.
    #[inline]
    pub fn distance_sq(&self, other: &Self) -> f64 {
        let mut d2 = 0.0;
        for k in 0..D {
            let d = self.coords[k] - other.coords[k];
            d2 += d * d;
        }
        d2
    }

    /// Whether `other` lies within the closed ε-ball centred on `self`.
    #[inline]
    pub fn within_eps(&self, other: &Self, eps: f64) -> bool {
        self.distance_sq(other) <= eps * eps
    }
}

impl From<Point2> for PointN<2> {
    fn from(p: Point2) -> Self {
        Self::new([p.x, p.y])
    }
}

impl From<PointN<2>> for Point2 {
    fn from(p: PointN<2>) -> Self {
        Point2::new(p.coords[0], p.coords[1])
    }
}

/// A closed `D`-dimensional axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AabbN<const D: usize> {
    pub min: [f64; D],
    pub max: [f64; D],
}

impl<const D: usize> AabbN<D> {
    /// The identity for [`AabbN::grown`]: growing it with any point
    /// yields that point's degenerate box.
    pub fn empty() -> Self {
        Self {
            min: [f64::INFINITY; D],
            max: [f64::NEG_INFINITY; D],
        }
    }

    pub fn from_points<'a>(points: impl IntoIterator<Item = &'a PointN<D>>) -> Self {
        points.into_iter().fold(Self::empty(), |b, p| b.grown(p))
    }

    pub fn grown(mut self, p: &PointN<D>) -> Self {
        for k in 0..D {
            self.min[k] = self.min[k].min(p.coords[k]);
            self.max[k] = self.max[k].max(p.coords[k]);
        }
        self
    }

    pub fn is_empty(&self) -> bool {
        (0..D).any(|k| self.min[k] > self.max[k])
    }

    /// Side length along dimension `k` (0 for empty boxes).
    pub fn extent(&self, k: usize) -> f64 {
        (self.max[k] - self.min[k]).max(0.0)
    }

    /// The largest side length over all dimensions.
    pub fn max_extent(&self) -> f64 {
        (0..D).fold(0.0, |m, k| m.max(self.extent(k)))
    }
}

/// Structure-of-arrays store for `D`-dimensional points: one contiguous
/// `Vec<f64>` per dimension, mirroring [`crate::soa::PointStore`].
#[derive(Debug, Clone)]
pub struct PointStoreN<const D: usize> {
    coords: [Vec<f64>; D],
    len: usize,
}

impl<const D: usize> PointStoreN<D> {
    pub fn from_points(points: &[PointN<D>]) -> Self {
        let mut coords: [Vec<f64>; D] = std::array::from_fn(|_| Vec::with_capacity(points.len()));
        for p in points {
            for (axis, column) in coords.iter_mut().enumerate() {
                column.push(p.coords[axis]);
            }
        }
        Self {
            coords,
            len: points.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn view(&self) -> PointsViewN<'_, D> {
        PointsViewN {
            coords: std::array::from_fn(|k| self.coords[k].as_slice()),
        }
    }

    pub fn get(&self, i: usize) -> PointN<D> {
        self.view().get(i)
    }
}

/// Borrowed SoA view of a [`PointStoreN`] (or of any per-dimension
/// coordinate slices, e.g. the 2-D `PointStore`'s `xs`/`ys`). `Copy`, so
/// kernels capture it by value like the other device constants.
#[derive(Debug, Clone, Copy)]
pub struct PointsViewN<'a, const D: usize> {
    pub coords: [&'a [f64]; D],
}

impl<'a, const D: usize> PointsViewN<'a, D> {
    pub fn len(&self) -> usize {
        self.coords[0].len()
    }

    pub fn is_empty(&self) -> bool {
        self.coords[0].is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> PointN<D> {
        PointN::new(std::array::from_fn(|k| self.coords[k][i]))
    }
}

impl<'a> From<crate::soa::PointsView<'a>> for PointsViewN<'a, 2> {
    fn from(v: crate::soa::PointsView<'a>) -> Self {
        Self {
            coords: [v.xs, v.ys],
        }
    }
}

/// Brute-force ε-neighborhood oracle: ids of every point of `data` within
/// the closed ε-ball around `q`, ascending. Uses [`PointN::distance_sq`],
/// so its hit decisions are bit-identical to the index-backed paths.
pub fn brute_force_neighbors_nd<const D: usize>(
    data: &[PointN<D>],
    q: &PointN<D>,
    eps: f64,
) -> Vec<u32> {
    let eps_sq = eps * eps;
    data.iter()
        .enumerate()
        .filter(|(_, p)| p.distance_sq(q) <= eps_sq)
        .map(|(i, _)| i as u32)
        .collect()
}

/// Unit-width bin of a coordinate.
#[inline]
fn unit_bin(c: f64) -> i64 {
    c.floor() as i64
}

/// The unit-bin spatial sort permutation for `D`-dimensional data —
/// the generalization of [`crate::presort::spatial_sort_permutation`].
/// Bins (then exact coordinates) compare from the last dimension down to
/// the first, matching the 2-D row-major `(y, x)` key; the index tiebreak
/// makes the comparator total, so the permutation is unique and
/// deterministic at every thread count.
pub fn spatial_sort_permutation_nd<const D: usize>(data: &[PointN<D>]) -> SortPermutation {
    let mut order: Vec<u32> = (0..data.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        let (pa, pb) = (&data[a as usize], &data[b as usize]);
        for k in (0..D).rev() {
            match unit_bin(pa.coords[k]).cmp(&unit_bin(pb.coords[k])) {
                std::cmp::Ordering::Equal => {}
                o => return o,
            }
        }
        for k in (0..D).rev() {
            match pa.coords[k].total_cmp(&pb.coords[k]) {
                std::cmp::Ordering::Equal => {}
                o => return o,
            }
        }
        a.cmp(&b)
    });
    SortPermutation::from_order(order)
}

/// Apply a permutation to a `D`-dimensional point array (gather).
pub fn apply_permutation_nd<const D: usize>(
    perm: &SortPermutation,
    data: &[PointN<D>],
) -> Vec<PointN<D>> {
    perm.as_slice().iter().map(|&i| data[i as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_point2_bitwise() {
        // The rounding-chain contract: PointN<2> must reproduce
        // Point2::distance_sq to the bit on awkward coordinates.
        let pairs = [
            ((0.1, 0.2), (0.7, -0.3)),
            ((1e-9, 1e9), (3.3333333, 7.7777)),
            ((-5.5, 2.25), (2.125, -0.0625)),
        ];
        for ((ax, ay), (bx, by)) in pairs {
            let (a2, b2) = (Point2::new(ax, ay), Point2::new(bx, by));
            let (an, bn) = (PointN::from(a2), PointN::from(b2));
            assert_eq!(a2.distance_sq(&b2).to_bits(), an.distance_sq(&bn).to_bits());
        }
    }

    #[test]
    fn distance_is_euclidean_in_3d() {
        let a = PointN::new([0.0, 0.0, 0.0]);
        let b = PointN::new([1.0, 2.0, 2.0]);
        assert_eq!(a.distance_sq(&b), 9.0);
        assert!(a.within_eps(&b, 3.0), "boundary point is a neighbor");
        assert!(!a.within_eps(&b, 2.999));
    }

    #[test]
    fn store_round_trips_points() {
        let pts: Vec<PointN<3>> = (0..10)
            .map(|i| PointN::new([i as f64, i as f64 * 0.5, -(i as f64)]))
            .collect();
        let store = PointStoreN::from_points(&pts);
        assert_eq!(store.len(), 10);
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(store.get(i), *p);
        }
    }

    #[test]
    fn aabb_covers_points() {
        let pts = [PointN::new([0.0, 5.0, -1.0]), PointN::new([2.0, 1.0, 3.0])];
        let b = AabbN::from_points(pts.iter());
        assert_eq!(b.min, [0.0, 1.0, -1.0]);
        assert_eq!(b.max, [2.0, 5.0, 3.0]);
        assert_eq!(b.extent(2), 4.0);
        assert_eq!(b.max_extent(), 4.0);
        assert!(AabbN::<3>::empty().is_empty());
    }

    #[test]
    fn nd_presort_matches_2d_presort() {
        // At D = 2 the generic comparator must reproduce the 2-D one.
        let data: Vec<Point2> = (0..50)
            .map(|i| {
                let t = i as f64;
                Point2::new((t * 0.731).fract() * 6.0, (t * 0.417).fract() * 6.0)
            })
            .collect();
        let nd: Vec<PointN<2>> = data.iter().map(|&p| PointN::from(p)).collect();
        let p2 = crate::presort::spatial_sort_permutation(&data);
        let pn = spatial_sort_permutation_nd(&nd);
        assert_eq!(p2.as_slice(), pn.as_slice());
    }

    #[test]
    fn nd_presort_is_a_permutation_and_deterministic() {
        let data: Vec<PointN<4>> = (0..64)
            .map(|i| {
                let t = i as f64;
                PointN::new([
                    (t * 0.31).fract() * 4.0,
                    (t * 0.57).fract() * 4.0,
                    (t * 0.73).fract() * 4.0,
                    (t * 0.91).fract() * 4.0,
                ])
            })
            .collect();
        let p1 = spatial_sort_permutation_nd(&data);
        let p2 = spatial_sort_permutation_nd(&data);
        assert_eq!(p1.as_slice(), p2.as_slice());
        let mut seen = vec![false; data.len()];
        for &i in p1.as_slice() {
            assert!(!seen[i as usize]);
            seen[i as usize] = true;
        }
        let sorted = apply_permutation_nd(&p1, &data);
        assert_eq!(sorted.len(), data.len());
    }

    #[test]
    fn brute_force_oracle_basics() {
        let data = [
            PointN::new([0.0, 0.0, 0.0, 0.0]),
            PointN::new([1.0, 0.0, 0.0, 0.0]),
            PointN::new([1.0, 1.0, 1.0, 1.0]),
        ];
        assert_eq!(brute_force_neighbors_nd(&data, &data[0], 1.0), vec![0, 1]);
        assert_eq!(
            brute_force_neighbors_nd(&data, &data[2], 2.0),
            vec![0, 1, 2]
        );
    }
}

//! Spatial pre-sort of the point database (Section IV of the paper).
//!
//! Before building the grid index, the paper bins `p_i ∈ D` in the x and y
//! dimensions "of unit width such that points in similar spatial locations
//! will be stored nearby each other in memory". Two properties of the
//! pipeline depend on this:
//!
//! 1. **Locality** — threads of the GPU kernels that process nearby points
//!    touch nearby entries of `D`, improving (simulated) coalescing.
//! 2. **Uniform batch sampling** — the batching scheme of Section VI samples
//!    every `n_b`-th point of the *sorted* array and relies on that stride
//!    being a roughly uniform spatial sample, so the per-batch result sizes
//!    `|R_l|` stay consistent (Figure 2).

use crate::point::Point2;
use rayon::prelude::*;

/// Below this many points the pool dispatch costs more than the permute
/// or sort saves; the serial paths produce identical output (the
/// comparator is total, so the permutation is unique).
const PAR_MIN_POINTS: usize = 1 << 14;

/// The permutation produced by a spatial sort: `order[k]` is the index in
/// the *original* array of the point that sorts to position `k`.
#[derive(Debug, Clone)]
pub struct SortPermutation {
    order: Vec<u32>,
}

impl SortPermutation {
    /// Wrap a precomputed order (used by the dimension-generic pre-sort in
    /// [`crate::nd`]). `order[k]` must be a permutation of `0..len`.
    pub(crate) fn from_order(order: Vec<u32>) -> Self {
        Self { order }
    }

    /// Apply the permutation, producing the sorted point array. An
    /// index-addressed gather: parallel and serial paths write the same
    /// element at the same position.
    pub fn apply(&self, data: &[Point2]) -> Vec<Point2> {
        if data.len() >= PAR_MIN_POINTS && rayon::current_num_threads() > 1 {
            self.order.par_iter().map(|&i| data[i as usize]).collect()
        } else {
            self.order.iter().map(|&i| data[i as usize]).collect()
        }
    }

    /// Original index of the point now at sorted position `k`.
    pub fn original_index(&self, k: usize) -> u32 {
        self.order[k]
    }

    /// The raw permutation slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.order
    }

    pub fn len(&self) -> usize {
        self.order.len()
    }

    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Key for the unit-width binning: `(floor(y), floor(x))` in row-major
/// order, ties broken by the exact coordinates so the sort is total and
/// deterministic.
fn bin_key(p: &Point2) -> (i64, i64) {
    (p.y.floor() as i64, p.x.floor() as i64)
}

/// Compute the unit-bin spatial sort permutation for `data`.
///
/// Points are ordered by their unit-width (1×1) bin, row-major, and by
/// `(y, x)` within a bin. The sort is stable with respect to exact ties, so
/// identical inputs always produce identical permutations.
pub fn spatial_sort_permutation(data: &[Point2]) -> SortPermutation {
    let mut order: Vec<u32> = (0..data.len() as u32).collect();
    let by_bin = |&a: &u32, &b: &u32| {
        let (pa, pb) = (&data[a as usize], &data[b as usize]);
        bin_key(pa)
            .cmp(&bin_key(pb))
            .then(pa.y.total_cmp(&pb.y))
            .then(pa.x.total_cmp(&pb.x))
            .then(a.cmp(&b))
    };
    // The index tiebreak makes the comparator total, so the sorted
    // permutation is unique: the parallel unstable sort and the serial
    // stable sort produce the same bytes.
    if order.len() >= PAR_MIN_POINTS && rayon::current_num_threads() > 1 {
        order.par_sort_unstable_by(by_bin);
    } else {
        order.sort_unstable_by(by_bin);
    }
    SortPermutation { order }
}

/// Convenience: return the spatially sorted copy of `data`.
pub fn spatial_sort(data: &[Point2]) -> Vec<Point2> {
    spatial_sort_permutation(data).apply(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permutation_is_a_permutation() {
        let data = vec![
            Point2::new(5.5, 5.5),
            Point2::new(0.1, 0.1),
            Point2::new(0.9, 0.2),
            Point2::new(5.1, 0.5),
        ];
        let perm = spatial_sort_permutation(&data);
        let mut seen = vec![false; data.len()];
        for k in 0..perm.len() {
            let i = perm.original_index(k) as usize;
            assert!(!seen[i], "index {i} repeated");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bins_group_contiguously() {
        let data = vec![
            Point2::new(3.5, 3.5), // bin (3,3)
            Point2::new(0.5, 0.5), // bin (0,0)
            Point2::new(3.4, 3.9), // bin (3,3)
            Point2::new(0.2, 0.8), // bin (0,0)
        ];
        let sorted = spatial_sort(&data);
        // (0,0)-bin points first, then (3,3)-bin points.
        assert!(sorted[0].x < 1.0 && sorted[1].x < 1.0);
        assert!(sorted[2].x > 3.0 && sorted[3].x > 3.0);
    }

    #[test]
    fn sorted_order_is_row_major() {
        let data = vec![
            Point2::new(2.5, 0.5), // row 0, col 2
            Point2::new(0.5, 1.5), // row 1, col 0
            Point2::new(0.5, 0.5), // row 0, col 0
        ];
        let sorted = spatial_sort(&data);
        assert_eq!(sorted[0], Point2::new(0.5, 0.5));
        assert_eq!(sorted[1], Point2::new(2.5, 0.5));
        assert_eq!(sorted[2], Point2::new(0.5, 1.5));
    }

    #[test]
    fn deterministic_on_duplicates() {
        let data = vec![Point2::new(1.0, 1.0); 5];
        let p1 = spatial_sort_permutation(&data);
        let p2 = spatial_sort_permutation(&data);
        assert_eq!(p1.as_slice(), p2.as_slice());
    }

    #[test]
    fn negative_coordinates_bin_correctly() {
        // floor(-0.5) = -1, so (-0.5, -0.5) sorts before (0.5, 0.5).
        let data = vec![Point2::new(0.5, 0.5), Point2::new(-0.5, -0.5)];
        let sorted = spatial_sort(&data);
        assert_eq!(sorted[0], Point2::new(-0.5, -0.5));
    }

    #[test]
    fn empty_input() {
        let perm = spatial_sort_permutation(&[]);
        assert!(perm.is_empty());
        assert!(spatial_sort(&[]).is_empty());
    }
}

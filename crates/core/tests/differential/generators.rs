//! Adversarial input generators on an exact binary lattice.
//!
//! All coordinates and every ε are integer multiples of `Q = 1/128`, a
//! power of two. Lattice arithmetic keeps the relevant floating-point
//! operations exact (sums, differences, and squares of lattice values are
//! far below 2⁵³), so "points at distance exactly ε" is a property we
//! construct, not a coincidence — and the closed-ball boundary
//! `dist² ≤ ε²` evaluates identically in every index and kernel.
//!
//! Eight families, each engineered at a known failure mode:
//!
//! | family                | targets                                        |
//! |-----------------------|------------------------------------------------|
//! | all-identical         | zero-extent grids, n ≥ minpts thresholds       |
//! | collinear             | exact-ε chains, degenerate 1-D extents         |
//! | single-dense-cell     | one over-full cell, shared-kernel batching     |
//! | boundary-straddlers   | exact-ε pairs across grid cell edges           |
//! | extreme-eps           | ε ≫ extent (one cell) and ε ≪ extent (max grid)|
//! | clumps                | the "realistic" mixed case, clusters + noise   |
//! | duplicates            | repeated coordinates inflating neighborhoods   |
//! | eps-grid              | every point with exact-ε axis neighbors        |
//! | skewed-exp            | exponentially skewed cluster sizes (backend    |
//! |                       | selector's tree-vs-grid decision boundary)     |

use proptest::TestRng;
use spatial::Point2;

/// The lattice quantum. Power of two: multiplication by `Q` is exact.
pub const Q: f64 = 1.0 / 128.0;

/// One differential test input.
#[derive(Debug, Clone)]
pub struct Case {
    pub family: &'static str,
    pub data: Vec<Point2>,
    pub eps: f64,
    pub minpts: usize,
}

/// A named generator family.
pub struct Family {
    pub name: &'static str,
    pub generate: fn(&mut TestRng) -> Case,
}

/// Every family, in a fixed order (indexed by tests and the sweep; new
/// families append at the end so the indexes stay stable).
pub const FAMILIES: [Family; 9] = [
    Family {
        name: "all-identical",
        generate: all_identical,
    },
    Family {
        name: "collinear",
        generate: collinear,
    },
    Family {
        name: "single-dense-cell",
        generate: single_dense_cell,
    },
    Family {
        name: "boundary-straddlers",
        generate: boundary_straddlers,
    },
    Family {
        name: "extreme-eps",
        generate: extreme_eps,
    },
    Family {
        name: "clumps",
        generate: clumps,
    },
    Family {
        name: "duplicates",
        generate: duplicates,
    },
    Family {
        name: "eps-grid",
        generate: eps_grid,
    },
    Family {
        name: "skewed-exp",
        generate: skewed_exp,
    },
];

fn below(rng: &mut TestRng, n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

fn range(rng: &mut TestRng, lo: i64, hi: i64) -> i64 {
    lo + below(rng, (hi - lo) as u64) as i64
}

/// A lattice point from integer units.
fn pt(ix: i64, iy: i64) -> Point2 {
    Point2::new(ix as f64 * Q, iy as f64 * Q)
}

fn minpts(rng: &mut TestRng) -> usize {
    range(rng, 1, 9) as usize
}

/// Every point identical: the grid has zero extent, every neighborhood
/// is the whole database, and the n-vs-minpts threshold decides between
/// "one all-core cluster" and "all noise".
fn all_identical(rng: &mut TestRng) -> Case {
    let n = range(rng, 1, 40) as usize;
    let p = pt(range(rng, -500, 500), range(rng, -500, 500));
    Case {
        family: "all-identical",
        data: vec![p; n],
        eps: range(rng, 16, 256) as f64 * Q,
        minpts: minpts(rng),
    }
}

/// Points on a line, spaced at exactly ε, ε/2, or 2ε (the first makes
/// every consecutive pair an exact boundary hit; the last disconnects
/// everything). Degenerate 1-D extent stresses grid sizing.
fn collinear(rng: &mut TestRng) -> Case {
    let eps_units = 128i64; // eps = 1.0
    let spacing = [eps_units / 2, eps_units, 2 * eps_units][below(rng, 3) as usize];
    let n = range(rng, 2, 60) as usize;
    let x0 = range(rng, -1000, 1000);
    let y = range(rng, -1000, 1000);
    let horizontal = below(rng, 2) == 0;
    let data = (0..n as i64)
        .map(|i| {
            if horizontal {
                pt(x0 + i * spacing, y)
            } else {
                pt(y, x0 + i * spacing)
            }
        })
        .collect();
    Case {
        family: "collinear",
        data,
        eps: eps_units as f64 * Q,
        minpts: minpts(rng),
    }
}

/// Many points crowded into a region smaller than one grid cell, so a
/// single cell holds (nearly) the whole database — the worst case for
/// per-cell work distribution and for the shared kernel's one-block-
/// per-cell schedule.
fn single_dense_cell(rng: &mut TestRng) -> Case {
    let eps_units = 256i64; // eps = 2.0, cell width 2.0
    let n = range(rng, 4, 80) as usize;
    let cx = range(rng, -500, 500);
    let cy = range(rng, -500, 500);
    // All offsets within ±eps/4: the whole set fits in one cell and is
    // mutually within eps.
    let data = (0..n)
        .map(|_| {
            pt(
                cx + range(rng, -eps_units / 4, eps_units / 4 + 1),
                cy + range(rng, -eps_units / 4, eps_units / 4 + 1),
            )
        })
        .collect();
    Case {
        family: "single-dense-cell",
        data,
        eps: eps_units as f64 * Q,
        minpts: minpts(rng),
    }
}

/// Pairs at exactly ε placed so the two endpoints land in *different*
/// grid cells — alternately axis-aligned and 3-4-5 diagonal. A grid that
/// mis-assigns boundary coordinates, or any index using an open ball,
/// splits these pairs.
fn boundary_straddlers(rng: &mut TestRng) -> Case {
    let eps_units = 128i64 * 5; // eps = 5.0, so (3,4) offsets stay on-lattice
    let pairs = range(rng, 2, 12);
    let mut data = Vec::new();
    for k in 0..pairs {
        // Anchor each pair on a cell-corner lattice (multiples of eps),
        // far enough apart that distinct pairs do not interact.
        let ax = k * 4 * eps_units;
        let ay = range(rng, -2, 3) * 4 * eps_units;
        let (dx, dy) = match below(rng, 4) {
            0 => (eps_units, 0),
            1 => (0, eps_units),
            2 => (eps_units / 5 * 3, eps_units / 5 * 4), // (3,4,5)·eps/5
            _ => (-eps_units / 5 * 4, eps_units / 5 * 3),
        };
        data.push(pt(ax, ay));
        data.push(pt(ax + dx, ay + dy));
        // Sometimes a third point collocated with the anchor, making the
        // pair reach minpts = 3 and the far endpoint a border point.
        if below(rng, 2) == 0 {
            data.push(pt(ax, ay));
        }
    }
    Case {
        family: "boundary-straddlers",
        data,
        eps: eps_units as f64 * Q,
        minpts: range(rng, 2, 4) as usize,
    }
}

/// ε at the extremes relative to the data extent: either so large that
/// one grid cell swallows everything (every point within ε of every
/// other), or so small that no two distinct points are neighbors and the
/// grid hits its size guard regime.
fn extreme_eps(rng: &mut TestRng) -> Case {
    let n = range(rng, 2, 50) as usize;
    let data: Vec<Point2> = (0..n)
        .map(|_| pt(range(rng, 0, 512), range(rng, 0, 512)))
        .collect();
    // Extent ≤ 4.0. Huge: eps = 1024·Q·2⁴ = 128.0 ≫ extent. Tiny: one
    // quantum — only exact duplicates are neighbors.
    let huge = below(rng, 2) == 0;
    let eps = if huge { 16384.0 * Q } else { Q };
    Case {
        family: "extreme-eps",
        data,
        eps,
        minpts: minpts(rng),
    }
}

/// The realistic family: a few tight clumps plus scattered far-away
/// points, all on the lattice. Exercises multi-cluster structure, border
/// contention between nearby clumps, and genuine noise.
fn clumps(rng: &mut TestRng) -> Case {
    let eps_units = 128i64; // eps = 1.0
    let k = range(rng, 1, 5);
    let mut data = Vec::new();
    for c in 0..k {
        let cx = c * range(rng, 3, 8) * eps_units;
        let cy = range(rng, -2, 3) * eps_units;
        let m = range(rng, 3, 25) as usize;
        for _ in 0..m {
            data.push(pt(
                cx + range(rng, -eps_units / 2, eps_units / 2 + 1),
                cy + range(rng, -eps_units / 2, eps_units / 2 + 1),
            ));
        }
    }
    // Sparse outliers across the full extent.
    for _ in 0..range(rng, 0, 8) {
        data.push(pt(range(rng, -4000, 4000), range(rng, -4000, 4000)));
    }
    Case {
        family: "clumps",
        data,
        eps: eps_units as f64 * Q,
        minpts: minpts(rng),
    }
}

/// Random base points with random duplicate injection: repeated
/// coordinates inflate neighborhood counts and stress any code assuming
/// distinct points (e.g. per-point degrees, chain seeding).
fn duplicates(rng: &mut TestRng) -> Case {
    let eps_units = 128i64;
    let n = range(rng, 2, 40) as usize;
    let mut data: Vec<Point2> = (0..n)
        .map(|_| pt(range(rng, 0, 6 * eps_units), range(rng, 0, 6 * eps_units)))
        .collect();
    for _ in 0..range(rng, 1, 40) {
        let i = below(rng, data.len() as u64) as usize;
        data.push(data[i]);
    }
    Case {
        family: "duplicates",
        data,
        eps: eps_units as f64 * Q,
        minpts: minpts(rng),
    }
}

/// Exponentially skewed cluster sizes on the lattice: cluster `c` holds
/// roughly half as many points as cluster `c − 1`, so one clump carries
/// most of the database while the rest trail off to singletons, plus a
/// sparse uniform background. This is the cell-occupancy profile the
/// backend selector routes to the tree, so the family drives the
/// grid-vs-tree-vs-auto comparison through the selector's home turf —
/// including the degenerate tail clusters (size 1) and clump borders at
/// exact-ε offsets.
fn skewed_exp(rng: &mut TestRng) -> Case {
    let eps_units = 128i64; // eps = 1.0
    let k = range(rng, 2, 7);
    let head = range(rng, 16, 64); // size of the dominant cluster
    let mut data = Vec::new();
    for c in 0..k {
        // Geometric decay: 1/2 per rank, floored at a singleton.
        let m = ((head >> c) as usize).max(1);
        let cx = c * range(rng, 4, 9) * eps_units;
        let cy = range(rng, -3, 4) * eps_units;
        for _ in 0..m {
            data.push(pt(
                cx + range(rng, -eps_units / 2, eps_units / 2 + 1),
                cy + range(rng, -eps_units / 2, eps_units / 2 + 1),
            ));
        }
    }
    // Sparse background over a much wider extent — the empty-cell mass
    // that makes mean occupancy (and its variance) tree-shaped.
    for _ in 0..range(rng, 2, 10) {
        data.push(pt(range(rng, -6000, 6000), range(rng, -6000, 6000)));
    }
    Case {
        family: "skewed-exp",
        data,
        eps: eps_units as f64 * Q,
        minpts: minpts(rng),
    }
}

/// A full lattice grid at exactly ε spacing: every interior point has
/// exactly 5 closed-ball neighbors (itself + 4 axis neighbors, all at
/// distance exactly ε). minpts is drawn around that threshold, so the
/// core/border decision rides entirely on exact boundary arithmetic.
fn eps_grid(rng: &mut TestRng) -> Case {
    let eps_units = 128i64;
    let w = range(rng, 2, 9);
    let h = range(rng, 2, 9);
    let mut data = Vec::new();
    for i in 0..w {
        for j in 0..h {
            data.push(pt(i * eps_units, j * eps_units));
        }
    }
    Case {
        family: "eps-grid",
        data,
        eps: eps_units as f64 * Q,
        minpts: range(rng, 3, 7) as usize,
    }
}

//! Parallel iterators over indexable sources.
//!
//! Everything here is an [`IndexedProducer`]: a `Sync` description of `n`
//! independently computable items. Adaptors (`map`, `enumerate`) wrap
//! producers; terminals (`for_each`, `collect`, `sum`) split `0..n` into
//! chunks and hand them to the pool via [`pool::run_parallel`].
//!
//! ## Determinism
//!
//! * `collect` writes item `i` to slot `i` — output order never depends
//!   on scheduling.
//! * `sum` reduces fixed-size blocks ([`SUM_BLOCK`] items) sequentially
//!   and folds the block partials **in block order**, so floating-point
//!   reductions are bitwise identical at every thread count.
//! * Chunk sizes affect scheduling only, never which items exist or what
//!   any item computes.

use crate::pool::{self, run_parallel};
use std::mem::{ManuallyDrop, MaybeUninit};

/// Fixed block size for [`ParIter::sum`]; **must not** depend on the
/// thread count, or float reductions would vary with `RAYON_NUM_THREADS`.
const SUM_BLOCK: usize = 4096;

/// A `Sync` source of `len()` items, each computable independently.
///
/// Contract: terminals call `produce(i)` **exactly once** per index
/// (mutable-slice producers hand out `&mut` on the strength of this).
pub trait IndexedProducer: Sync {
    type Item: Send;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn produce(&self, index: usize) -> Self::Item;
}

/// The parallel-iterator handle all `par_iter`/`into_par_iter` calls
/// return; wraps a producer and offers the adaptors/terminals the
/// workspace uses.
pub struct ParIter<P>(pub(crate) P);

impl<P: IndexedProducer> ParIter<P> {
    pub fn map<U: Send, F: Fn(P::Item) -> U + Sync>(self, f: F) -> ParIter<MapProducer<P, F>> {
        ParIter(MapProducer { inner: self.0, f })
    }

    pub fn enumerate(self) -> ParIter<EnumerateProducer<P>> {
        ParIter(EnumerateProducer { inner: self.0 })
    }

    pub fn for_each<F: Fn(P::Item) + Sync>(self, f: F) {
        let p = &self.0;
        for_each_chunked(p.len(), &|i| f(p.produce(i)));
    }

    pub fn collect<C: FromParallelIterator<P::Item>>(self) -> C {
        C::from_par_iter(self.0)
    }

    /// Deterministic parallel reduction: fixed [`SUM_BLOCK`]-sized blocks
    /// summed independently, partials folded in block order.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<P::Item> + std::iter::Sum<S> + Send,
    {
        let p = &self.0;
        let n = p.len();
        let n_blocks = n.div_ceil(SUM_BLOCK);
        let partials: Vec<S> = fill_indexed(n_blocks, &|b| {
            let lo = b * SUM_BLOCK;
            let hi = (lo + SUM_BLOCK).min(n);
            (lo..hi).map(|i| p.produce(i)).sum::<S>()
        });
        partials.into_iter().sum()
    }
}

pub struct MapProducer<P, F> {
    inner: P,
    f: F,
}

impl<P: IndexedProducer, U: Send, F: Fn(P::Item) -> U + Sync> IndexedProducer
    for MapProducer<P, F>
{
    type Item = U;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn produce(&self, index: usize) -> U {
        (self.f)(self.inner.produce(index))
    }
}

pub struct EnumerateProducer<P> {
    inner: P,
}

impl<P: IndexedProducer> IndexedProducer for EnumerateProducer<P> {
    type Item = (usize, P::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn produce(&self, index: usize) -> (usize, P::Item) {
        (index, self.inner.produce(index))
    }
}

/// Target chunk count: ~4 chunks per thread, so stealing can rebalance
/// without per-item scheduling overhead. Affects scheduling only.
fn chunk_len(n: usize) -> usize {
    n.div_ceil(pool::current_num_threads().max(1) * 4).max(1)
}

/// Run `f(i)` for every `i in 0..n` on the pool, chunked.
pub(crate) fn for_each_chunked(n: usize, f: &(impl Fn(usize) + Sync)) {
    if n == 0 {
        return;
    }
    let chunk = chunk_len(n);
    run_parallel(n.div_ceil(chunk), "par_iter", |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        for i in lo..hi {
            f(i);
        }
    });
}

/// Raw pointer wrapper that crosses threads; each index is touched by
/// exactly one chunk, so there is no aliasing.
pub(crate) struct SendPtr<T>(*mut T);

impl<T> SendPtr<T> {
    pub(crate) fn new(ptr: *mut T) -> Self {
        SendPtr(ptr)
    }

    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}
// SAFETY: disjoint-index access only (exactly-once contract).
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Build a `Vec` where slot `i` holds `f(i)`, filling slots in parallel.
/// Output is position-addressed, hence schedule-independent.
pub(crate) fn fill_indexed<T: Send>(n: usize, f: &(impl Fn(usize) -> T + Sync)) -> Vec<T> {
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: MaybeUninit needs no initialization.
    unsafe { out.set_len(n) };
    let base = SendPtr::new(out.as_mut_ptr());
    // On a chunk panic this unwinds; `Vec<MaybeUninit<T>>` drops no
    // elements, so already-written items leak (safe, like real rayon's
    // collect under panic is allowed to be).
    for_each_chunked(n, &|i| unsafe {
        (*base.get().add(i)).write(f(i));
    });
    let mut out = ManuallyDrop::new(out);
    // SAFETY: all n slots were written exactly once above.
    unsafe { Vec::from_raw_parts(out.as_mut_ptr().cast::<T>(), n, out.capacity()) }
}

/// Conversion from a parallel iterator, mirroring `FromIterator`.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: IndexedProducer<Item = T>>(producer: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: IndexedProducer<Item = T>>(producer: P) -> Self {
        fill_indexed(producer.len(), &|i| producer.produce(i))
    }
}

// ---------------------------------------------------------------------
// Sources: ranges, slices, mutable slices.
// ---------------------------------------------------------------------

pub struct RangeProducer<T> {
    start: T,
    len: usize,
}

macro_rules! impl_uint_range_producer {
    ($($t:ty),*) => {$(
        impl IndexedProducer for RangeProducer<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.len
            }
            fn produce(&self, index: usize) -> $t {
                self.start + index as $t
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeProducer<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                let len = if self.end > self.start {
                    (self.end - self.start) as usize
                } else {
                    0
                };
                ParIter(RangeProducer { start: self.start, len })
            }
        }
    )*};
}
impl_uint_range_producer!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_producer {
    ($($t:ty),*) => {$(
        impl IndexedProducer for RangeProducer<$t> {
            type Item = $t;
            fn len(&self) -> usize {
                self.len
            }
            fn produce(&self, index: usize) -> $t {
                (self.start as i128 + index as i128) as $t
            }
        }
        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = ParIter<RangeProducer<$t>>;
            fn into_par_iter(self) -> Self::Iter {
                let len = if self.end > self.start {
                    (self.end as i128 - self.start as i128) as usize
                } else {
                    0
                };
                ParIter(RangeProducer { start: self.start, len })
            }
        }
    )*};
}
impl_int_range_producer!(i32, i64);

pub struct SliceProducer<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedProducer for SliceProducer<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn produce(&self, index: usize) -> &'a T {
        &self.slice[index]
    }
}

pub struct MutSliceProducer<'a, T: Send> {
    base: SendPtr<T>,
    len: usize,
    // fn-pointer phantom: keeps the borrow without requiring `T: Sync`.
    _marker: std::marker::PhantomData<fn() -> &'a mut [T]>,
}

impl<'a, T: Send> IndexedProducer for MutSliceProducer<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.len
    }

    fn produce(&self, index: usize) -> &'a mut T {
        assert!(index < self.len);
        // SAFETY: exactly-once contract — each index is produced once, so
        // the `&mut`s handed out never alias.
        unsafe { &mut *self.base.get().add(index) }
    }
}

/// `into_par_iter()` — consuming conversion (ranges).
pub trait IntoParallelIterator {
    type Item: Send;
    type Iter;

    fn into_par_iter(self) -> Self::Iter;
}

/// `par_iter()` — borrowing conversion (slices, `Vec`).
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    type Iter;

    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter(SliceProducer { slice: self })
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceProducer<'a, T>>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter(SliceProducer {
            slice: self.as_slice(),
        })
    }
}

/// `par_iter_mut()` — mutably borrowing conversion.
pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send;
    type Iter;

    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = ParIter<MutSliceProducer<'a, T>>;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        ParIter(MutSliceProducer {
            base: SendPtr::new(self.as_mut_ptr()),
            len: self.len(),
            _marker: std::marker::PhantomData,
        })
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = ParIter<MutSliceProducer<'a, T>>;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.as_mut_slice().par_iter_mut()
    }
}

/// `par_sort_unstable` and friends — deterministic parallel merge sort
/// (see [`crate::sort`] for the thread-count-invariance argument).
pub trait ParallelSliceMut<T: Send> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T];

    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        crate::sort::par_sort_unstable_by(self.as_parallel_slice_mut(), &T::cmp);
    }

    fn par_sort_unstable_by<F: Fn(&T, &T) -> std::cmp::Ordering + Sync>(&mut self, compare: F) {
        crate::sort::par_sort_unstable_by(self.as_parallel_slice_mut(), &compare);
    }

    fn par_sort_unstable_by_key<K: Ord, F: Fn(&T) -> K + Sync>(&mut self, key: F) {
        crate::sort::par_sort_unstable_by(self.as_parallel_slice_mut(), &|a: &T, b: &T| {
            key(a).cmp(&key(b))
        });
    }
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self
    }
}

impl<T: Send> ParallelSliceMut<T> for Vec<T> {
    fn as_parallel_slice_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

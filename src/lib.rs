//! # hybrid-dbscan
//!
//! Facade crate for the reproduction of *"Clustering Throughput
//! Optimization on the GPU"* (Gowanlock, Rude, Blair, Li, Pankratius —
//! IPDPS 2017).
//!
//! The workspace implements **Hybrid-DBSCAN**: the ε-neighborhood of every
//! point is computed by grid-index GPU kernels (running on the [`gpu_sim`]
//! software SIMT device), shipped to the host through an efficient batching
//! scheme, assembled into a *neighbor table* `T`, and consumed by a modified
//! DBSCAN that clusters from `T` and `minpts` alone. Fixing ε and varying
//! `minpts` reuses one table across many clusterings, which is where the
//! paper's headline throughput gains come from.
//!
//! This crate re-exports the public API of the member crates so downstream
//! users can depend on a single package:
//!
//! * [`gpu_sim`] — the simulated CUDA-like device (kernels, streams,
//!   transfers, device memory, Thrust-style sort).
//! * [`spatial`] — grid index `(G, A)`, R-tree, kd-tree, spatial pre-sort.
//! * [`datasets`] — synthetic SW-class / SDSS-class dataset generators.
//! * [`core`] — the Hybrid-DBSCAN algorithms themselves.
//!
//! ## Quickstart
//!
//! ```
//! use hybrid_dbscan::prelude::*;
//!
//! // A small two-clump dataset.
//! let mut pts = Vec::new();
//! for i in 0..50 {
//!     let t = i as f64 * 0.01;
//!     pts.push(Point2::new(t, t));          // clump A near the origin
//!     pts.push(Point2::new(10.0 + t, t));   // clump B far away
//! }
//!
//! let device = Device::k20c();
//! let hybrid = HybridDbscan::new(&device, HybridConfig::default());
//! let result = hybrid.run(&pts, 0.5, 4).unwrap();
//! assert_eq!(result.clustering.num_clusters(), 2);
//! ```

pub use datasets;
pub use gpu_sim;
pub use hybrid_dbscan_core as core;
pub use spatial;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::core::dbscan::{Clustering, Dbscan, PointLabel};
    pub use crate::core::hybrid::{HybridConfig, HybridDbscan, HybridResult};
    pub use crate::core::pipeline::{MultiClusterPipeline, PipelineConfig};
    pub use crate::core::reference::ReferenceDbscan;
    pub use crate::core::reuse::TableReuse;
    pub use crate::core::scenario::{self, Variant};
    pub use crate::core::table::NeighborTable;
    pub use crate::datasets::{Dataset, DatasetClass, DatasetSpec};
    pub use crate::gpu_sim::device::Device;
    pub use crate::spatial::{GridIndex, Point2, RTree};
}

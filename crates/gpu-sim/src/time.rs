//! Simulated-time primitives.
//!
//! The device lives on a *simulated* clock, distinct from the host's wall
//! clock: device operations (kernels, copies, sorts) are assigned modeled
//! durations, and the [`crate::timeline`] composes them into start/end
//! times. Host work measured with `std::time::Instant` is converted into
//! [`SimDuration`] when it participates in the same schedule.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time. Internally stored as seconds (f64).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0.0);

    pub fn from_secs(s: f64) -> Self {
        debug_assert!(
            s >= 0.0 && s.is_finite(),
            "durations must be finite and non-negative"
        );
        SimDuration(s)
    }

    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Convert device cycles at `clock_ghz` into a duration.
    pub fn from_cycles(cycles: f64, clock_ghz: f64) -> Self {
        Self::from_secs(cycles / (clock_ghz * 1e9))
    }

    pub fn as_secs(&self) -> f64 {
        self.0
    }

    pub fn as_millis(&self) -> f64 {
        self.0 * 1e3
    }

    pub fn as_micros(&self) -> f64 {
        self.0 * 1e6
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }
}

impl From<std::time::Duration> for SimDuration {
    fn from(d: std::time::Duration) -> Self {
        SimDuration(d.as_secs_f64())
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// An instant on the simulated clock (seconds since schedule start).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0.0);

    pub fn from_secs(s: f64) -> Self {
        SimTime(s)
    }

    pub fn as_secs(&self) -> f64 {
        self.0
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_secs())
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration::from_secs((self.0 - rhs.0).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_roundtrip() {
        let d = SimDuration::from_millis(1.5);
        assert!((d.as_secs() - 0.0015).abs() < 1e-12);
        assert!((d.as_micros() - 1500.0).abs() < 1e-9);
        let c = SimDuration::from_cycles(1e9, 1.0);
        assert!((c.as_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2.0);
        let u = t + SimDuration::from_secs(3.0);
        assert_eq!((u - t).as_secs(), 3.0);
        assert_eq!(t.max(u), u);
        let s: SimDuration = [1.0, 2.0, 3.0]
            .iter()
            .map(|&x| SimDuration::from_secs(x))
            .sum();
        assert_eq!(s.as_secs(), 6.0);
    }

    #[test]
    fn from_std_duration() {
        let d: SimDuration = std::time::Duration::from_millis(250).into();
        assert!((d.as_millis() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn sub_saturates_at_zero() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!((a - b).as_secs(), 0.0);
    }
}

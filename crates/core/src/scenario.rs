//! The published experiment scenarios.
//!
//! * **S1** (Table II): single-invocation kernel-efficiency comparison.
//! * **S2** (Table III): per-dataset ε sweeps at `minpts = 4` — the
//!   multi-clustering throughput scenario.
//! * **S3** (Table V): per-dataset fixed ε with 16 `minpts` values — the
//!   data-reuse scenario.

use serde::{Deserialize, Serialize};

/// One DBSCAN parameterization `v_i = (ε_i, minpts_i)` (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Variant {
    pub eps: f64,
    pub minpts: usize,
}

impl Variant {
    pub fn new(eps: f64, minpts: usize) -> Self {
        Variant { eps, minpts }
    }
}

/// An arithmetic ε sweep `start, start+step, …` of `count` values.
pub fn eps_sweep(start: f64, step: f64, count: usize) -> Vec<f64> {
    (0..count).map(|i| start + step * i as f64).collect()
}

/// S1 / Table II kernel-efficiency settings: `(dataset, ε)`.
/// ε = 0.2 for the ~2·10⁶-point datasets, 0.07 for the ~5·10⁶-point ones
/// ("we decrease ε with increasing |D|").
pub fn s1_settings() -> Vec<(&'static str, f64)> {
    vec![("SW1", 0.2), ("SW4", 0.07), ("SDSS1", 0.2), ("SDSS2", 0.07)]
}

/// S2 / Table III: the ε sweep for `dataset`, all at `minpts = 4`.
pub fn s2_variants(dataset: &str) -> Vec<Variant> {
    let eps_values = match dataset.to_ascii_uppercase().as_str() {
        // {0.1, 0.2, …, 1.5}: 15 variants.
        "SW1" | "SDSS1" => eps_sweep(0.1, 0.1, 15),
        // {0.1, 0.15, …, 0.5}: 9 variants.
        "SW4" | "SDSS2" => eps_sweep(0.1, 0.05, 9),
        // {0.06, 0.07, …, 0.13}: 8 variants.
        "SDSS3" => eps_sweep(0.06, 0.01, 8),
        other => panic!("unknown dataset {other}"),
    };
    eps_values
        .into_iter()
        .map(|eps| Variant::new(eps, 4))
        .collect()
}

/// The 16-value `minpts` set of Table V for a given dataset class/ε row.
fn s3_minpts(dataset: &str, eps: f64) -> Vec<usize> {
    // SW1/SW4 and SDSS2/SDSS3's large-ε rows use the decade-heavy set;
    // the SDSS small-ε rows use finer-grained sets.
    match dataset.to_ascii_uppercase().as_str() {
        "SW1" | "SW4" => vec![
            10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 400, 800, 1000, 2000, 3000,
        ],
        "SDSS1" => {
            if eps <= 0.35 {
                vec![
                    10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 400, 800, 1000, 2000, 3000,
                ]
            } else {
                vec![
                    5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80,
                ]
            }
        }
        "SDSS2" => vec![
            5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150,
        ],
        "SDSS3" => vec![
            5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80,
        ],
        other => panic!("unknown dataset {other}"),
    }
}

/// S3 / Table V: the `(ε, minpts-set)` rows for `dataset`.
pub fn s3_rows(dataset: &str) -> Vec<(f64, Vec<usize>)> {
    let eps_values: Vec<f64> = match dataset.to_ascii_uppercase().as_str() {
        "SW1" => vec![0.3, 0.5, 0.7],
        "SW4" => vec![0.1, 0.2, 0.3],
        "SDSS1" => vec![0.3, 0.5, 0.7],
        "SDSS2" => vec![0.2, 0.3, 0.4],
        "SDSS3" => vec![0.07, 0.11, 0.15],
        other => panic!("unknown dataset {other}"),
    };
    eps_values
        .into_iter()
        .map(|e| (e, s3_minpts(dataset, e)))
        .collect()
}

/// All dataset names, in the paper's reporting order.
pub const DATASETS: [&str; 5] = ["SW1", "SW4", "SDSS1", "SDSS2", "SDSS3"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s2_variant_counts_match_table_iii() {
        assert_eq!(s2_variants("SW1").len(), 15);
        assert_eq!(s2_variants("SW4").len(), 9);
        assert_eq!(s2_variants("SDSS1").len(), 15);
        assert_eq!(s2_variants("SDSS2").len(), 9);
        assert_eq!(s2_variants("SDSS3").len(), 8);
    }

    #[test]
    fn s2_all_minpts_four() {
        for d in DATASETS {
            assert!(s2_variants(d).iter().all(|v| v.minpts == 4));
        }
    }

    #[test]
    fn s2_sweep_endpoints() {
        let sw1 = s2_variants("SW1");
        assert!((sw1[0].eps - 0.1).abs() < 1e-12);
        assert!((sw1[14].eps - 1.5).abs() < 1e-12);
        let sdss3 = s2_variants("SDSS3");
        assert!((sdss3[0].eps - 0.06).abs() < 1e-12);
        assert!((sdss3[7].eps - 0.13).abs() < 1e-12);
    }

    #[test]
    fn s3_rows_have_sixteen_minpts() {
        for d in DATASETS {
            let rows = s3_rows(d);
            assert_eq!(rows.len(), 3, "{d} has 3 ε rows in Table V");
            for (eps, minpts) in rows {
                assert_eq!(minpts.len(), 16, "{d} at eps {eps}");
            }
        }
    }

    #[test]
    fn s1_settings_match_table_ii() {
        let s = s1_settings();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], ("SW1", 0.2));
        assert_eq!(s[1], ("SW4", 0.07));
    }

    #[test]
    #[should_panic]
    fn unknown_dataset_panics() {
        let _ = s2_variants("SW99");
    }
}

//! Hierarchical spans over the host wall clock, with optional simulated
//! timestamps.
//!
//! A [`SpanGuard`] measures from construction to drop. Nesting is tracked
//! per OS thread: the innermost live span on the current thread becomes the
//! parent of the next one opened there, so call trees come out of ordinary
//! lexical scoping with no explicit context passing.

use crate::Recorder;
use std::cell::RefCell;
use std::time::Instant;

use gpu_sim::{SimDuration, SimTime};

thread_local! {
    /// Stack of open span ids on this thread (innermost last).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A finished span, as stored by the [`Recorder`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    pub id: u64,
    pub parent: Option<u64>,
    pub name: String,
    pub cat: &'static str,
    /// Wall-clock start, microseconds since the recorder's epoch.
    pub wall_start_us: f64,
    pub wall_dur_us: f64,
    /// Simulated-clock start/duration in microseconds, when the span
    /// corresponds to modeled device time.
    pub sim_start_us: Option<f64>,
    pub sim_dur_us: Option<f64>,
    /// Dense per-recorder index of the OS thread that ran the span.
    pub tid: usize,
    /// `key=value` annotations, exported as Chrome trace `args`.
    pub args: Vec<(String, String)>,
}

/// RAII guard: the span runs from construction until drop.
pub struct SpanGuard<'a> {
    recorder: &'a Recorder,
    id: u64,
    parent: Option<u64>,
    name: String,
    cat: &'static str,
    start: Instant,
    sim: Option<(SimTime, SimDuration)>,
    args: Vec<(String, String)>,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn open(recorder: &'a Recorder, name: String, cat: &'static str) -> Self {
        let id = recorder.alloc_span_id();
        let parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        SpanGuard {
            recorder,
            id,
            parent,
            name,
            cat,
            start: Instant::now(),
            sim: None,
            args: Vec::new(),
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    /// Attach a `key=value` annotation (shows up under `args` in the
    /// exported trace).
    pub fn arg(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.args.push((key.to_string(), value.to_string()));
        self
    }

    /// Associate this span with a window on the simulated clock.
    pub fn set_sim(&mut self, start: SimTime, dur: SimDuration) -> &mut Self {
        self.sim = Some((start, dur));
        self
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Pop our own id; under panic-unwinds out of nested spans the
            // stack may already have been popped past us.
            if let Some(pos) = s.iter().rposition(|&x| x == self.id) {
                s.truncate(pos);
            }
        });
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            wall_start_us: self.recorder.wall_us_at(self.start),
            wall_dur_us: self.start.elapsed().as_secs_f64() * 1e6,
            sim_start_us: self.sim.map(|(t, _)| t.as_secs() * 1e6),
            sim_dur_us: self.sim.map(|(_, d)| d.as_secs() * 1e6),
            tid: self.recorder.tid_for_current_thread(),
            args: std::mem::take(&mut self.args),
        };
        self.recorder.push_span(record);
    }
}

#[cfg(test)]
mod tests {
    use crate::Recorder;

    #[test]
    fn nesting_assigns_parents() {
        let rec = Recorder::new();
        let outer_id;
        {
            let outer = rec.span("outer", "test");
            outer_id = outer.id();
            {
                let _inner = rec.span("inner", "test");
            }
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        assert_eq!(inner.parent, Some(outer_id));
        assert_eq!(outer.parent, None);
        // Inner closed first, so it is recorded first and fits inside.
        assert!(inner.wall_start_us >= outer.wall_start_us);
        assert!(inner.wall_dur_us <= outer.wall_dur_us);
    }

    #[test]
    fn siblings_share_a_parent() {
        let rec = Recorder::new();
        {
            let root = rec.span("root", "test");
            let root_id = root.id();
            drop(rec.span("a", "test"));
            drop(rec.span("b", "test"));
            drop(root);
            let spans = rec.spans();
            for name in ["a", "b"] {
                let s = spans.iter().find(|s| s.name == name).unwrap();
                assert_eq!(s.parent, Some(root_id));
            }
        }
    }

    #[test]
    fn args_and_sim_window_are_recorded() {
        let rec = Recorder::new();
        {
            let mut s = rec.span("work", "test");
            s.arg("n", 42);
            s.set_sim(
                gpu_sim::SimTime::from_secs(1.0),
                gpu_sim::SimDuration::from_secs(0.5),
            );
        }
        let spans = rec.spans();
        assert_eq!(spans[0].args, vec![("n".to_string(), "42".to_string())]);
        assert_eq!(spans[0].sim_start_us, Some(1e6));
        assert_eq!(spans[0].sim_dur_us, Some(0.5e6));
    }

    #[test]
    fn threads_get_distinct_tids() {
        let rec = Recorder::new();
        drop(rec.span("main", "test"));
        std::thread::scope(|scope| {
            scope.spawn(|| drop(rec.span("worker", "test")));
        });
        let spans = rec.spans();
        let main = spans.iter().find(|s| s.name == "main").unwrap();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_ne!(main.tid, worker.tid);
    }
}

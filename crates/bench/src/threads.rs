//! **Thread scaling** — host-pool speedup on the fixed S1 workload.
//!
//! The rayon shim is a real work-stealing pool (see DESIGN.md, "Threading
//! model & determinism policy"); this experiment sweeps the pool size over
//! `{1, 2, 4, all}` on the S1 workload (SW1, ε = 0.2 — the Table II row)
//! and reports wall-clock per stage plus the speedup relative to one
//! thread. Each sweep point runs under
//! `ThreadPoolBuilder::num_threads(t).install(..)`, which is exactly what
//! `RAYON_NUM_THREADS=t` would give the whole process. Trials are
//! interleaved round-robin across thread counts (see [`measure_all`]) so
//! slow machine drift cannot bias the speedup columns toward whichever
//! count would otherwise run first.
//!
//! The determinism policy makes a claim this benchmark checks on every
//! run: modeled `SimDuration`s and clusterings must be **bitwise
//! identical** at every thread count — only wall-clock columns may move.
//! Results are written to `BENCH_threads.json` (under `--csv DIR` when
//! given, else the working directory).

use crate::common::{baseline_refresh, fmt_secs, DatasetCache, Options, TextTable};
use crate::table2;
use gpu_sim::Device;
use hybrid_dbscan_core::disjoint_set::dbscan_disjoint_set;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use obs::json::JsonWriter;
use obs::ledger::{GateOutcome, LedgerEntry, LedgerRecord, StagePoint, RECORD_VERSION};
use obs::provenance::Provenance;
use std::time::Instant;

/// Schema id / version of `BENCH_threads.json`. Version 2 added the
/// schema header + provenance block and moved `modeled_time_bits` to the
/// 16-hex-digit string encoding every other artifact uses (the JSON
/// number space is f64 — a raw integer cannot carry all 64 bits).
pub const SCHEMA: &str = "hybrid-dbscan/threads";
pub const SCHEMA_VERSION: u64 = 2;

/// minpts for the clustering stages (the paper's S2 sweep midpoint).
const MINPTS: usize = 4;

/// Stable ledger/compare id of one sweep point.
pub fn workload_id(dataset: &str, eps: f64, threads: usize) -> String {
    format!("threads/{}-eps{eps}/t{threads}", dataset.to_lowercase())
}

/// One sweep point: wall-clock medians over `trials` runs at `threads`
/// pool threads, plus the modeled/functional outputs whose bitwise
/// invariance the determinism policy guarantees.
#[derive(Debug, Clone)]
pub struct SweepRow {
    pub threads: usize,
    /// Median wall-clock seconds of `build_table` (GPU-phase simulation:
    /// kernels, device sort, table ingest — all on the pool).
    pub build_table_s: f64,
    /// Median wall-clock seconds of the sequential host DBSCAN.
    pub dbscan_s: f64,
    /// Median wall-clock seconds of the parallel disjoint-set DBSCAN.
    pub disjoint_set_s: f64,
    /// Modeled GPU-phase time (thread-count-invariant by policy).
    pub modeled_bits: u64,
    pub modeled_s: f64,
    pub clusters: usize,
    pub result_pairs: usize,
    /// Serial fraction of `build_table` from an extra profiled (untimed)
    /// run: wall time with < 2 pool tasks in flight (see `obs::analyze`).
    pub serial_fraction_build: f64,
    /// Mean per-worker busy % over the profiled window.
    pub worker_util_pct: f64,
    /// Total chunks claimed by threads other than the submitter.
    pub pool_steals: u64,
}

/// Speedup guarded against degenerate baselines: a tiny workload can
/// time a stage at ~0 s, and a raw division would put `inf`/`NaN` into
/// BENCH_threads.json. Degenerate points report 1.0 (no claim).
fn safe_speedup(base_s: f64, cur_s: f64) -> f64 {
    if !base_s.is_finite() || !cur_s.is_finite() || base_s < 1e-9 || cur_s < 1e-9 {
        1.0
    } else {
        base_s / cur_s
    }
}

/// One timed trial on an already-installed pool view: the full
/// build_table / DBSCAN / disjoint-set chain, returning the wall times
/// and the functional outputs of this run.
fn measure_trial(points: &[spatial::Point2], eps: f64, threads: usize) -> SweepRow {
    let device = Device::k20c();
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());

    let t0 = Instant::now();
    let handle = hybrid.build_table(points, eps).expect("build_table");
    let build_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let (clustering, _) = HybridDbscan::cluster_with_table(&handle, MINPTS);
    let dbscan_s = t1.elapsed().as_secs_f64();

    let t2 = Instant::now();
    let ds = dbscan_disjoint_set(&handle.table, MINPTS);
    let ds_s = t2.elapsed().as_secs_f64();
    assert_eq!(
        clustering.num_clusters(),
        ds.num_clusters(),
        "sequential and disjoint-set DBSCAN disagree"
    );

    SweepRow {
        threads,
        build_table_s: build_s,
        dbscan_s,
        disjoint_set_s: ds_s,
        modeled_bits: handle.gpu.modeled_time.as_secs().to_bits(),
        modeled_s: handle.gpu.modeled_time.as_secs(),
        clusters: clustering.num_clusters() as usize,
        result_pairs: handle.gpu.result_pairs,
        serial_fraction_build: 1.0,
        worker_util_pct: 0.0,
        pool_steals: 0,
    }
}

/// One extra *untimed* run under the pool profiler for the attribution
/// columns (profiling shifts wall times, so it never shares a run with
/// the timed trials). The determinism policy says instrumentation must
/// not move modeled bits — checked here on every sweep point.
fn profile_point(points: &[spatial::Point2], eps: f64, row: &mut SweepRow) {
    let device = Device::k20c();
    let rec = std::sync::Arc::new(obs::Recorder::new());
    let outer = rec.span("threads_profile", "bench");
    let profiled = HybridDbscan::new(&device, HybridConfig::default()).with_recorder(rec.clone());
    let session = rayon::profile::profile_pool();
    let handle = profiled.build_table(points, eps).expect("profiled build");
    let pool_profile = session.finish();
    drop(outer);
    assert_eq!(
        handle.gpu.modeled_time.as_secs().to_bits(),
        row.modeled_bits,
        "profiling changed modeled time bits at {} threads",
        row.threads
    );
    rec.record_pool_profile(&pool_profile);
    let analysis = obs::analyze::analyze(&rec);
    row.serial_fraction_build = analysis
        .stages
        .iter()
        .find(|s| s.name == "build_table")
        .map_or(1.0, |s| s.serial_fraction);
    row.worker_util_pct = if analysis.workers.is_empty() {
        0.0
    } else {
        analysis
            .workers
            .iter()
            .map(|w| w.utilization_pct)
            .sum::<f64>()
            / analysis.workers.len() as f64
    };
    row.pool_steals = analysis.workers.iter().map(|w| w.steals).sum();
}

/// Run the whole sweep with trials **interleaved round-robin** across
/// thread counts: trial round r runs every thread count once before
/// round r + 1 begins. Sequential per-count blocks are biased on shared
/// or CPU-quota'd runners — slow machine drift (frequency scaling, CFS
/// throttling as the sustained load accrues) lands entirely on whichever
/// count runs last, which systematically penalized the 4-thread point.
/// Interleaving makes every count sample the same drift window, so the
/// speedup columns compare like with like.
fn measure_all(points: &[spatial::Point2], eps: f64, trials: usize) -> Vec<SweepRow> {
    let counts = thread_counts();
    let pools: Vec<rayon::ThreadPool> = counts
        .iter()
        .map(|&t| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .expect("pool view")
        })
        .collect();
    let mut rows: Vec<Option<SweepRow>> = vec![None; counts.len()];
    let mut samples: Vec<[Vec<f64>; 3]> = counts.iter().map(|_| Default::default()).collect();
    for round in 0..trials.max(1) {
        // Rotate the starting count each round: the first pipeline of a
        // round pays one-off costs (cold allocator, page faults) that
        // would otherwise always land on the same count.
        for k in 0..pools.len() {
            let i = (round + k) % pools.len();
            let pool = &pools[i];
            let trial = pool.install(|| measure_trial(points, eps, counts[i]));
            samples[i][0].push(trial.build_table_s);
            samples[i][1].push(trial.dbscan_s);
            samples[i][2].push(trial.disjoint_set_s);
            match &rows[i] {
                Some(acc) => assert_eq!(
                    acc.modeled_bits, trial.modeled_bits,
                    "modeled time bits changed between trials at {} threads",
                    counts[i]
                ),
                None => rows[i] = Some(trial),
            }
        }
    }
    rows.into_iter()
        .zip(&pools)
        .zip(samples)
        .map(|((row, pool), mut s)| {
            let mut row = row.expect("at least one trial");
            // Median, like the bench suite: wall times on a shared or
            // CPU-quota'd runner are right-skewed by stalls, and a mean
            // lets one throttled trial move a speedup column.
            row.build_table_s = median(&mut s[0]);
            row.dbscan_s = median(&mut s[1]);
            row.disjoint_set_s = median(&mut s[2]);
            pool.install(|| profile_point(points, eps, &mut row));
            row
        })
        .collect()
}

/// Median of a non-empty sample (sorts in place; even lengths average
/// the middle pair).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// The sweep's thread counts: `{1, 2, 4, all}` where `all` is the
/// current configured width (`RAYON_NUM_THREADS` or the core count),
/// sorted and deduplicated.
pub fn thread_counts() -> Vec<usize> {
    let mut ts = vec![1, 2, 4, rayon::current_num_threads()];
    ts.sort_unstable();
    ts.dedup();
    ts
}

/// Run the full sweep on the S1 workload (SW1, ε from Table II).
pub fn run(opts: &Options) -> (String, f64, usize, Vec<SweepRow>) {
    let (name, eps, ..) = table2::PAPER[0]; // SW1, ε = 0.2 — scenario S1
    let mut cache = DatasetCache::new(opts.scale);
    let points = cache.get(name).points.clone();
    let rows = measure_all(&points, eps, opts.trials);
    (name.to_string(), eps, points.len(), rows)
}

/// True iff every modeled/functional output matches the 1-thread row.
pub fn bitwise_identical(rows: &[SweepRow]) -> bool {
    rows.windows(2).all(|w| {
        w[0].modeled_bits == w[1].modeled_bits
            && w[0].clusters == w[1].clusters
            && w[0].result_pairs == w[1].result_pairs
    })
}

fn render_json(
    dataset: &str,
    eps: f64,
    n_points: usize,
    opts: &Options,
    rows: &[SweepRow],
    prov: &Provenance,
) -> String {
    let base = &rows[0];
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SCHEMA);
    w.field_uint("version", SCHEMA_VERSION);
    prov.write_field(&mut w);
    w.key("workload");
    w.begin_object();
    w.field_str("dataset", dataset);
    w.field_float("eps", eps);
    w.field_float("scale", opts.scale);
    w.field_uint("points", n_points as u64);
    w.field_uint("minpts", MINPTS as u64);
    w.field_uint("trials", opts.trials.max(1) as u64);
    w.end_object();
    w.field_uint("host_threads", rayon::current_num_threads() as u64);
    w.field_bool("bitwise_identical", bitwise_identical(rows));
    w.key("sweep");
    w.begin_array();
    for r in rows {
        w.begin_object();
        w.field_uint("threads", r.threads as u64);
        w.field_float("build_table_ms", r.build_table_s * 1e3);
        w.field_float("dbscan_ms", r.dbscan_s * 1e3);
        w.field_float("disjoint_set_ms", r.disjoint_set_s * 1e3);
        w.field_float(
            "speedup_build_table",
            safe_speedup(base.build_table_s, r.build_table_s),
        );
        w.field_float("speedup_dbscan", safe_speedup(base.dbscan_s, r.dbscan_s));
        w.field_float(
            "speedup_disjoint_set",
            safe_speedup(base.disjoint_set_s, r.disjoint_set_s),
        );
        w.field_float("serial_fraction_build", r.serial_fraction_build);
        w.field_float("worker_util_pct", r.worker_util_pct);
        w.field_uint("pool_steals", r.pool_steals);
        w.field_float("modeled_time_ms", r.modeled_s * 1e3);
        w.field_str("modeled_time_bits", &format!("{:016x}", r.modeled_bits));
        w.field_uint("clusters", r.clusters as u64);
        w.field_uint("result_pairs", r.result_pairs as u64);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Fold one sweep into a run-ledger record: one entry per thread count,
/// wall stages + the modeled stage (single-run medians, MAD 0), the
/// speedup/attribution columns as metrics, and the gate outcome.
pub fn ledger_record(
    dataset: &str,
    eps: f64,
    opts: &Options,
    rows: &[SweepRow],
    prov: Provenance,
    gate: GateOutcome,
) -> LedgerRecord {
    let base = &rows[0];
    let entries = rows
        .iter()
        .map(|r| {
            let mut e = LedgerEntry {
                workload: workload_id(dataset, eps, r.threads),
                modeled_time_bits: Some(r.modeled_bits),
                ..LedgerEntry::default()
            };
            let wall = |s: f64| StagePoint {
                median_ms: s * 1e3,
                mad_ms: 0.0,
                wall: true,
            };
            e.stages.insert("build_table".into(), wall(r.build_table_s));
            e.stages.insert("dbscan".into(), wall(r.dbscan_s));
            e.stages
                .insert("disjoint_set".into(), wall(r.disjoint_set_s));
            e.stages.insert(
                "modeled".into(),
                StagePoint {
                    median_ms: r.modeled_s * 1e3,
                    mad_ms: 0.0,
                    wall: false,
                },
            );
            let m = &mut e.metrics;
            m.insert("threads".into(), r.threads as f64);
            m.insert(
                "speedup_build_table".into(),
                safe_speedup(base.build_table_s, r.build_table_s),
            );
            m.insert(
                "speedup_dbscan".into(),
                safe_speedup(base.dbscan_s, r.dbscan_s),
            );
            m.insert(
                "speedup_disjoint_set".into(),
                safe_speedup(base.disjoint_set_s, r.disjoint_set_s),
            );
            m.insert("serial_fraction_build".into(), r.serial_fraction_build);
            m.insert("worker_util_pct".into(), r.worker_util_pct);
            m.insert("pool_steals".into(), r.pool_steals as f64);
            m.insert("clusters".into(), r.clusters as f64);
            m.insert("result_pairs".into(), r.result_pairs as f64);
            e
        })
        .collect();
    LedgerRecord {
        version: RECORD_VERSION,
        command: "threads".into(),
        scale: opts.scale,
        baseline_refresh: baseline_refresh(),
        provenance: prov,
        gate,
        entries,
    }
}

/// Run the sweep, print the scaling table, and write `BENCH_threads.json`.
/// Returns the process exit code.
pub fn print(opts: &Options) -> i32 {
    println!("== Thread scaling (S1): rayon pool sweep over {{1, 2, 4, all}} ==");
    println!("Wall-clock per stage; modeled times and clusterings must be");
    println!("bitwise identical at every thread count (determinism policy).\n");

    let (dataset, eps, n_points, rows) = run(opts);
    let base = &rows[0];
    let mut t = TextTable::new(&[
        "Threads",
        "build_table",
        "speedup",
        "serial frac",
        "util",
        "DBSCAN",
        "speedup",
        "disjoint-set",
        "speedup",
        "modeled GPU",
    ]);
    for r in &rows {
        t.row(vec![
            r.threads.to_string(),
            fmt_secs(r.build_table_s),
            format!("{:.2}x", safe_speedup(base.build_table_s, r.build_table_s)),
            format!("{:.2}", r.serial_fraction_build),
            format!("{:.0}%", r.worker_util_pct),
            fmt_secs(r.dbscan_s),
            format!("{:.2}x", safe_speedup(base.dbscan_s, r.dbscan_s)),
            fmt_secs(r.disjoint_set_s),
            format!(
                "{:.2}x",
                safe_speedup(base.disjoint_set_s, r.disjoint_set_s)
            ),
            fmt_secs(r.modeled_s),
        ]);
    }
    t.print();
    let identical = bitwise_identical(&rows);
    println!(
        "\n# modeled time / clusters / |R| bitwise identical across thread counts: {}",
        if identical {
            "yes"
        } else {
            "NO — DETERMINISM VIOLATION"
        }
    );

    // Gate first, append the run (with its gate outcome) to the ledger,
    // and only then overwrite the BENCH_threads.json artifact: the
    // artifact is a snapshot that each run clobbers, so the ledger is
    // where the history survives.
    let prov = Provenance::collect(
        SCHEMA,
        SCHEMA_VERSION,
        rows.iter()
            .map(|r| workload_id(&dataset, eps, r.threads))
            .collect(),
    );
    let (gate, code) = gate(&rows, identical);
    opts.append_ledger(&ledger_record(
        &dataset,
        eps,
        opts,
        &rows,
        prov.clone(),
        gate,
    ));

    let json = render_json(&dataset, eps, n_points, opts, &rows, &prov);
    let path = opts
        .csv_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."))
        .join("BENCH_threads.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("# threads: wrote {}", path.display()),
        Err(e) => eprintln!("# threads: cannot write {}: {e}", path.display()),
    }
    code
}

/// Minimum acceptable `build_table` speedup at 4 threads when the gate
/// is strict. Deliberately below the pipeline's multicore headroom so a
/// noisy shared runner doesn't flake the gate.
const STRICT_MIN_SPEEDUP_4T: f64 = 1.8;

/// Scaling gate: advisory by default (CI machines vary from 1 hardware
/// thread upward, where wall-clock speedup is physically unmeasurable);
/// `THREADS_STRICT=1` promotes the speedup shortfall to a failure on
/// runners known to have ≥ 4 cores. A determinism violation is always
/// fatal — that invariant does not depend on the hardware.
///
/// Returns the outcome (recorded in the run ledger) and the exit code —
/// the caller appends the ledger record before exiting, so failed runs
/// leave history too.
fn gate(rows: &[SweepRow], identical: bool) -> (GateOutcome, i32) {
    let strict = std::env::var("THREADS_STRICT").is_ok_and(|v| v == "1");
    let mut out = GateOutcome {
        strict,
        regressions: 0,
        advisories: 0,
        passed: true,
    };
    if !identical {
        eprintln!("# threads: FATAL: modeled outputs differ across thread counts");
        out.regressions = 1;
        out.passed = false;
        return (out, 1);
    }
    let base = &rows[0];
    let Some(four) = rows.iter().find(|r| r.threads == 4) else {
        return (out, 0);
    };
    let speedup = safe_speedup(base.build_table_s, four.build_table_s);
    if speedup >= STRICT_MIN_SPEEDUP_4T {
        return (out, 0);
    }
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "# threads: speedup_build_table at 4 threads is {speedup:.2}x \
         (target >= {STRICT_MIN_SPEEDUP_4T}; {cores} hardware threads)"
    );
    if strict {
        eprintln!("# threads: THREADS_STRICT=1 — failing");
        out.regressions = 1;
        out.passed = false;
        return (out, 1);
    }
    eprintln!("# threads: advisory only (set THREADS_STRICT=1 to enforce)");
    out.advisories = 1;
    (out, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_counts_are_sorted_unique_and_include_one() {
        let ts = thread_counts();
        assert!(ts.contains(&1));
        assert!(ts.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sweep_is_bitwise_invariant_on_a_small_workload() {
        let opts = Options {
            scale: 0.002,
            trials: 1,
            ..Options::default()
        };
        let (_, _, n, rows) = run(&opts);
        assert!(n > 0);
        assert_eq!(rows.len(), thread_counts().len());
        assert!(bitwise_identical(&rows), "rows: {rows:?}");
    }

    #[test]
    fn safe_speedup_guards_degenerate_baselines() {
        assert_eq!(safe_speedup(1.0, 0.5), 2.0);
        // Zero / near-zero on either side: no claim, never inf/NaN.
        assert_eq!(safe_speedup(0.0, 0.5), 1.0);
        assert_eq!(safe_speedup(0.5, 0.0), 1.0);
        assert_eq!(safe_speedup(0.0, 0.0), 1.0);
        assert_eq!(safe_speedup(f64::NAN, 1.0), 1.0);
        assert_eq!(safe_speedup(1.0, f64::INFINITY), 1.0);
        assert!(safe_speedup(1e-10, 1e-10).is_finite());
    }

    fn test_provenance() -> Provenance {
        Provenance {
            header_version: obs::provenance::HEADER_VERSION,
            schema: SCHEMA.into(),
            schema_version: SCHEMA_VERSION,
            git_sha: "ee9aa08269b9".into(),
            git_dirty: false,
            rustc: "rustc 1.95.0".into(),
            rayon_num_threads: "unset".into(),
            host: "testhost".into(),
            os: "linux".into(),
            timestamp_unix: 1_754_611_200,
            workloads: vec![workload_id("SW1", 0.2, 1), workload_id("SW1", 0.2, 4)],
        }
    }

    #[test]
    fn rendered_json_parses_with_shared_parser() {
        // Regression: `bitwise_identical` used to be pushed raw past the
        // writer's comma state, so the following `"sweep"` key had no
        // separator and the emitted document was malformed.
        use obs::json::{parse, JsonValue};
        let rows = vec![
            SweepRow {
                threads: 1,
                build_table_s: 1.0,
                dbscan_s: 0.1,
                disjoint_set_s: 0.2,
                modeled_bits: u64::MAX, // largest bit pattern must survive
                modeled_s: 0.05,
                clusters: 7,
                result_pairs: 1234,
                serial_fraction_build: 1.0,
                worker_util_pct: 0.0,
                pool_steals: 0,
            },
            SweepRow {
                threads: 4,
                build_table_s: 0.5,
                dbscan_s: 0.1,
                disjoint_set_s: 0.1,
                modeled_bits: u64::MAX,
                modeled_s: 0.05,
                clusters: 7,
                result_pairs: 1234,
                serial_fraction_build: 0.4,
                worker_util_pct: 62.5,
                pool_steals: 9,
            },
        ];
        let opts = Options::default();
        let prov = test_provenance();
        let doc = parse(&render_json("SW1", 0.2, 1000, &opts, &rows, &prov)).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
        assert_eq!(
            doc.get("version").and_then(JsonValue::as_u64),
            Some(SCHEMA_VERSION)
        );
        let parsed_prov = Provenance::parse_field(&doc).expect("well-formed provenance");
        assert_eq!(parsed_prov, Some(prov));
        assert_eq!(
            doc.get("bitwise_identical").and_then(JsonValue::as_bool),
            Some(true)
        );
        let sweep = doc.get("sweep").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[1].get("threads").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(
            sweep[1].get("pool_steals").and_then(JsonValue::as_u64),
            Some(9)
        );
        // Bits travel as a hex string: u64::MAX survives where an f64
        // number could not carry it.
        assert_eq!(
            sweep[0]
                .get("modeled_time_bits")
                .and_then(JsonValue::as_str),
            Some("ffffffffffffffff")
        );
        assert!(sweep[1]
            .get("serial_fraction_build")
            .and_then(JsonValue::as_f64)
            .is_some());
        assert!(sweep[1]
            .get("speedup_dbscan")
            .and_then(JsonValue::as_f64)
            .is_some());
        assert_eq!(
            doc.get("workload")
                .and_then(|w| w.get("dataset"))
                .and_then(JsonValue::as_str),
            Some("SW1")
        );
    }

    #[test]
    fn sweep_ledger_record_round_trips_and_keys_by_thread_count() {
        let rows = vec![
            SweepRow {
                threads: 1,
                build_table_s: 1.0,
                dbscan_s: 0.1,
                disjoint_set_s: 0.2,
                modeled_bits: 0x3fe0_0000_0000_0001,
                modeled_s: 0.5,
                clusters: 7,
                result_pairs: 1234,
                serial_fraction_build: 1.0,
                worker_util_pct: 96.0,
                pool_steals: 0,
            },
            SweepRow {
                threads: 4,
                build_table_s: 0.4,
                dbscan_s: 0.1,
                disjoint_set_s: 0.1,
                modeled_bits: 0x3fe0_0000_0000_0001,
                modeled_s: 0.5,
                clusters: 7,
                result_pairs: 1234,
                serial_fraction_build: 0.4,
                worker_util_pct: 62.5,
                pool_steals: 9,
            },
        ];
        let opts = Options::default();
        let gate = GateOutcome {
            strict: false,
            regressions: 0,
            advisories: 1,
            passed: true,
        };
        let rec = ledger_record("SW1", 0.2, &opts, &rows, test_provenance(), gate);
        assert_eq!(rec.command, "threads");
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[1].workload, "threads/sw1-eps0.2/t4");
        assert_eq!(rec.entries[1].metrics["threads"], 4.0);
        assert_eq!(rec.entries[1].metrics["speedup_build_table"], 2.5);
        assert!(rec.entries[1].stages["build_table"].wall);
        assert!(!rec.entries[1].stages["modeled"].wall);
        assert_eq!(
            rec.entries[0].modeled_time_bits,
            Some(0x3fe0_0000_0000_0001)
        );
        let line = rec.to_json();
        let back = LedgerRecord::parse(&line).expect("record parses");
        assert_eq!(back.to_json(), line, "ledger round trip is exact");
    }
}

//! Dimension-generic neighbor-table construction (d > 2).
//!
//! The same shape as [`crate::hybrid::HybridDbscan::build_table`] —
//! spatial pre-sort, backend selection, H2D uploads, exact result-size
//! estimation, Equation 1 batch plan, per-batch kernel → canonical sort →
//! D2H → ingest — generalized over the const dimension `D` with the
//! [`crate::kernels::GpuCalcGridNd`] / [`crate::kernels::GpuCalcTree`]
//! kernel pair. The 2-D pipeline keeps its own path (it carries the
//! shared-memory kernel, stream pipelining, and the full provenance
//! surface); this one is the measurement and differential harness for
//! d ∈ {3, 4}, where the backend contest actually changes winners.
//!
//! Batches run serially here, so the modeled GPU-phase time is the
//! *serial* sum of the chain (no 3-stream overlap). Both backends are
//! measured under the same model, which is what the backend ablation
//! compares. Determinism: everything is a pure function of the input —
//! the pre-sort is a total order, kernels and the device sort are exact,
//! and no wall-clock measurement enters `modeled_time`.

use crate::backend::{select_backend_nd, BackendDecision, ChosenBackend, IndexBackend};
use crate::batch::BatchConfig;
use crate::dbscan::{Clustering, Dbscan, TableSource};
use crate::hybrid::{ingest_time_model, HybridError};
use crate::kernels::{
    GpuCalcGridNd, GpuCalcTree, GridNdCountKernel, NeighborPair, TreeCountKernel,
};
use crate::table::{NeighborTable, NeighborTableBuilder};
use gpu_sim::device::Device;
use gpu_sim::error::DeviceError;
use gpu_sim::hostmem::PinnedBuffer;
use gpu_sim::memory::{DeviceAppendBuffer, DeviceBuffer, DeviceCounter};
use gpu_sim::thrust;
use gpu_sim::time::SimDuration;
use spatial::grid::CellRange;
use spatial::nd::{apply_permutation_nd, spatial_sort_permutation_nd};
use spatial::{CellsViewN, GridGeometryN, GridIndexN, PackedKdTree, PointN, PointStoreN};

/// The finished `D`-dimensional table plus the facts the bench and
/// differential layers consume.
pub struct NdTableHandle {
    pub table: NeighborTable,
    /// `perm[k]` = original id at sorted position `k`; table ids are in
    /// sorted order.
    pub perm: Vec<u32>,
    pub backend: BackendDecision,
    pub e_b: u64,
    pub n_batches: usize,
    pub result_pairs: usize,
    /// Serial modeled GPU-phase time: uploads + estimation + Σ per batch
    /// (kernel + sort + D2H + ingest).
    pub modeled_time: SimDuration,
}

/// Device-resident sparse ND grid `(keys, ranges, A)`.
struct NdGridBuffers {
    keys: DeviceBuffer<u64>,
    ranges: DeviceBuffer<CellRange>,
    lookup: DeviceBuffer<u32>,
}

impl NdGridBuffers {
    fn cells(&self) -> CellsViewN<'_> {
        CellsViewN {
            keys: self.keys.as_slice(),
            ranges: self.ranges.as_slice(),
        }
    }
}

/// Device-resident packed kd node pool (the ND twin of the 2-D
/// `TreeBuffers` in `hybrid`).
struct NdTreeBuffers {
    splits: DeviceBuffer<f64>,
    axes: DeviceBuffer<u32>,
    ranges: DeviceBuffer<CellRange>,
    ids: DeviceBuffer<u32>,
}

impl NdTreeBuffers {
    fn view(&self) -> spatial::TreeView<'_> {
        spatial::TreeView {
            splits: self.splits.as_slice(),
            axes: self.axes.as_slice(),
            ranges: self.ranges.as_slice(),
            ids: self.ids.as_slice(),
        }
    }
}

/// The uploaded search structure the batch loop dispatches on.
enum NdSearch<const D: usize> {
    Grid {
        geom: GridGeometryN<D>,
        bufs: NdGridBuffers,
    },
    Tree {
        bufs: NdTreeBuffers,
    },
}

/// Build the ε-neighbor table for `D`-dimensional `data` on the simulated
/// device, with the configured index backend. Identical tables for every
/// backend: both kernels enumerate the exact closed ε-ball with the same
/// rounding order, the count kernels make `e_b` (hence the plan) equal,
/// and the canonical device sort erases append-order differences.
pub fn build_table_nd<const D: usize>(
    device: &Device,
    data: &[PointN<D>],
    eps: f64,
    requested: IndexBackend,
    batch_cfg: &BatchConfig,
    block_dim: u32,
) -> Result<NdTableHandle, HybridError> {
    assert!(!data.is_empty(), "cannot cluster an empty database");
    assert!(
        eps > 0.0 && eps.is_finite(),
        "eps must be positive and finite"
    );
    let perm = spatial_sort_permutation_nd(data);
    let sorted = apply_permutation_nd(&perm, data);
    let n = sorted.len();

    let decision = select_backend_nd(requested, &sorted, eps);
    let store = PointStoreN::from_points(&sorted);

    // H2D uploads: D plus the chosen index's arrays.
    let (_d_buf, up_d) = DeviceBuffer::from_host(device, &sorted, false)?;
    let (search, up_index) = match decision.chosen {
        ChosenBackend::Grid => {
            let grid = GridIndexN::<D>::build(&sorted, eps);
            let cells = grid.cells();
            let (keys, t0) = DeviceBuffer::from_host(device, cells.keys, false)?;
            let (ranges, t1) = DeviceBuffer::from_host(device, cells.ranges, false)?;
            let (lookup, t2) = DeviceBuffer::from_host(device, grid.lookup(), false)?;
            (
                NdSearch::Grid {
                    geom: *grid.geometry(),
                    bufs: NdGridBuffers {
                        keys,
                        ranges,
                        lookup,
                    },
                },
                t0 + t1 + t2,
            )
        }
        ChosenBackend::Tree => {
            let tree = PackedKdTree::<D>::build(store.view());
            let v = tree.view();
            let (splits, t0) = DeviceBuffer::from_host(device, v.splits, false)?;
            let (axes, t1) = DeviceBuffer::from_host(device, v.axes, false)?;
            let (ranges, t2) = DeviceBuffer::from_host(device, v.ranges, false)?;
            let (ids, t3) = DeviceBuffer::from_host(device, v.ids, false)?;
            (
                NdSearch::Tree {
                    bufs: NdTreeBuffers {
                        splits,
                        axes,
                        ranges,
                        ids,
                    },
                },
                t0 + t1 + t2 + t3,
            )
        }
    };

    // Exact-at-stride result-size estimation; e_b is backend-independent.
    let counter = DeviceCounter::new(device)?;
    let stride = batch_cfg.stride_for(n);
    let est_report = match &search {
        NdSearch::Grid { geom, bufs } => {
            let kernel = GridNdCountKernel {
                points: store.view(),
                cells: bufs.cells(),
                lookup: bufs.lookup.as_slice(),
                geom: *geom,
                eps,
                stride,
                counter: &counter,
            };
            device.launch(kernel.launch_config(block_dim), &kernel)?
        }
        NdSearch::Tree { bufs } => {
            let kernel = TreeCountKernel {
                points: store.view(),
                tree: bufs.view(),
                eps,
                stride,
                counter: &counter,
            };
            device.launch(kernel.launch_config(block_dim), &kernel)?
        }
    };
    let e_b = counter.get();
    drop(counter);

    // Batch plan, fitted to device memory with the same headroom rule as
    // the 2-D pipeline.
    let mut plan = batch_cfg.plan(e_b, n);
    let headroom = device.available_bytes() / 10;
    plan = plan
        .fit_to_memory(
            device.available_bytes().saturating_sub(headroom),
            std::mem::size_of::<NeighborPair>(),
            1,
        )
        .ok_or(DeviceError::OutOfMemory {
            requested_bytes: std::mem::size_of::<NeighborPair>(),
            available_bytes: device.available_bytes(),
        })?;

    // Serial batch loop with overflow recovery: double n_b (or grow the
    // buffer once a batch is a single point) and rerun the pass.
    let max_retries = 4usize;
    let mut retries = 0usize;
    'attempt: loop {
        let mut buf = DeviceAppendBuffer::<NeighborPair>::new(device, plan.buffer_items)?;
        let mut stage = PinnedBuffer::<NeighborPair>::new(device, plan.buffer_items);
        let builder = NeighborTableBuilder::new(eps, n, plan.n_batches);
        let mut batch_time = SimDuration::ZERO;
        let mut result_pairs = 0usize;
        for l in 0..plan.n_batches {
            buf.reset();
            let report = match &search {
                NdSearch::Grid { geom, bufs } => {
                    let kernel = GpuCalcGridNd {
                        points: store.view(),
                        cells: bufs.cells(),
                        lookup: bufs.lookup.as_slice(),
                        geom: *geom,
                        eps,
                        batch: l,
                        n_batches: plan.n_batches,
                        result: &buf,
                    };
                    device.launch(kernel.launch_config(block_dim), &kernel)?
                }
                NdSearch::Tree { bufs } => {
                    let kernel = GpuCalcTree {
                        points: store.view(),
                        tree: bufs.view(),
                        eps,
                        batch: l,
                        n_batches: plan.n_batches,
                        result: &buf,
                    };
                    device.launch(kernel.launch_config(block_dim), &kernel)?
                }
            };
            if buf.overflowed() {
                retries += 1;
                if retries > max_retries {
                    return Err(HybridError::RetriesExhausted { attempts: retries });
                }
                if plan.n_batches < n {
                    plan = plan.with_doubled_batches();
                    plan.n_batches = plan.n_batches.min(n);
                } else {
                    plan.buffer_items = plan.buffer_items.max(buf.len() + buf.rejected()).max(1);
                }
                continue 'attempt;
            }
            let sort_time = thrust::sort_by_key(device, buf.as_filled_mut_slice());
            let (staged_len, d2h_time) = buf.download_into(&mut stage);
            builder.ingest_batch(l, &stage.as_slice()[..staged_len]);
            result_pairs += staged_len;
            batch_time =
                batch_time + report.duration + sort_time + d2h_time + ingest_time_model(staged_len);
        }
        let modeled_time = up_d + up_index + est_report.duration + stage.alloc_time() + batch_time;
        return Ok(NdTableHandle {
            table: builder.finalize(),
            perm: perm.as_slice().to_vec(),
            backend: decision,
            e_b,
            n_batches: plan.n_batches,
            result_pairs,
            modeled_time,
        });
    }
}

/// Host DBSCAN over an ND table, labels returned in caller order — the
/// ND twin of [`crate::hybrid::HybridDbscan::cluster_with_table`].
pub fn cluster_table_nd(handle: &NdTableHandle, minpts: usize) -> Clustering {
    let mut visit_order = vec![0u32; handle.perm.len()];
    for (k, &orig) in handle.perm.iter().enumerate() {
        visit_order[orig as usize] = k as u32;
    }
    Dbscan::new(minpts)
        .run_with_order(&TableSource::new(&handle.table), Some(&visit_order))
        .unpermute(&handle.perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{clustering_fingerprint, table_fingerprint};
    use spatial::nd::brute_force_neighbors_nd;

    fn nd_points<const D: usize>(n: usize, extent: f64) -> Vec<PointN<D>> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                PointN::new(std::array::from_fn(|k| {
                    (t * (0.433 + 0.239 * k as f64)).fract() * extent
                }))
            })
            .collect()
    }

    fn build<const D: usize>(
        data: &[PointN<D>],
        eps: f64,
        backend: IndexBackend,
        cfg: &BatchConfig,
    ) -> NdTableHandle {
        let device = Device::k20c();
        build_table_nd(&device, data, eps, backend, cfg, 256).unwrap()
    }

    #[test]
    fn backends_agree_and_match_brute_force_in_3d_and_4d() {
        let cfg = BatchConfig::default();
        let d3 = nd_points::<3>(400, 4.0);
        let d4 = nd_points::<4>(250, 3.0);

        let g3 = build(&d3, 0.8, IndexBackend::Grid, &cfg);
        let t3 = build(&d3, 0.8, IndexBackend::Tree, &cfg);
        assert_eq!(g3.e_b, t3.e_b);
        assert_eq!(table_fingerprint(&g3.table), table_fingerprint(&t3.table));

        let g4 = build(&d4, 0.7, IndexBackend::Grid, &cfg);
        let t4 = build(&d4, 0.7, IndexBackend::Tree, &cfg);
        assert_eq!(table_fingerprint(&g4.table), table_fingerprint(&t4.table));

        // Table neighborhoods equal the brute-force oracle (ids mapped
        // through the sort permutation).
        let sorted = apply_permutation_nd(&spatial_sort_permutation_nd(&d3), &d3);
        for i in (0..sorted.len()).step_by(37) {
            let got = g3.table.neighbors(i as u32);
            let want = brute_force_neighbors_nd(&sorted, &sorted[i], 0.8);
            assert_eq!(got, &want[..], "point {i}");
        }
    }

    #[test]
    fn multi_batch_matches_single_batch() {
        let data = nd_points::<3>(500, 4.0);
        let one = build(&data, 0.8, IndexBackend::Tree, &BatchConfig::default());
        let tiny = BatchConfig {
            alpha: 0.05,
            sample_fraction: 0.05,
            static_threshold: 0,
            static_buffer_items: 2000,
            n_streams: 3,
        };
        let many = build(&data, 0.8, IndexBackend::Tree, &tiny);
        assert!(many.n_batches > 1, "test must exercise batching");
        assert_eq!(
            table_fingerprint(&one.table),
            table_fingerprint(&many.table)
        );
        assert_eq!(one.result_pairs, many.result_pairs);
    }

    #[test]
    fn auto_resolves_and_clusterings_agree() {
        let data = nd_points::<3>(400, 3.0);
        let cfg = BatchConfig::default();
        let auto = build(&data, 0.7, IndexBackend::Auto, &cfg);
        assert_eq!(auto.backend.reason, "auto");
        let grid = build(&data, 0.7, IndexBackend::Grid, &cfg);
        assert_eq!(
            table_fingerprint(&grid.table),
            table_fingerprint(&auto.table)
        );
        let ca = cluster_table_nd(&auto, 4);
        let cg = cluster_table_nd(&grid, 4);
        assert_eq!(clustering_fingerprint(&ca), clustering_fingerprint(&cg));
    }

    #[test]
    fn overflow_recovery_replans() {
        let data = nd_points::<3>(300, 2.0);
        // Tiny static buffers force overflow on the first pass.
        let tiny = BatchConfig {
            alpha: 0.05,
            sample_fraction: 1.0,
            static_threshold: 0,
            static_buffer_items: 64,
            n_streams: 3,
        };
        let h = build(&data, 0.8, IndexBackend::Tree, &tiny);
        let reference = build(&data, 0.8, IndexBackend::Tree, &BatchConfig::default());
        assert_eq!(
            table_fingerprint(&h.table),
            table_fingerprint(&reference.table)
        );
    }
}

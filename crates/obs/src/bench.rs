//! Schema for the continuous-benchmark documents (`BENCH_suite.json` and
//! the baselines under `results/baselines/`).
//!
//! The benchmark harness (`crates/bench::regress`) produces a
//! [`BenchDoc`] per run: one [`WorkloadResult`] per suite workload, each
//! carrying per-stage wall/modeled statistics ([`StageStats`]), per-kernel
//! device counters (re-using [`gpu_sim::profiler::ProfileStats`], the
//! profiler → observability contract), and scalar metrics. Documents are
//! schema-versioned and round-trip exactly through [`crate::json`]:
//! `parse(doc.to_json()).to_json() == doc.to_json()`, which is what makes
//! checked-in baselines diffable and the regression gate trustworthy.

use crate::json::{self, JsonValue, JsonWriter};
use crate::metrics::Metrics;
use crate::provenance::Provenance;
use gpu_sim::profiler::{KernelProfile, ProfileStats};
use std::collections::BTreeMap;

/// Document identifier; bump [`SCHEMA_VERSION`] on incompatible changes.
///
/// Version history: v1 had no provenance header and no per-workload
/// `modeled_time_bits`; v2 (PR 9) added both. [`BenchDoc::parse`] still
/// accepts v1 documents (the optional fields come back `None`) so
/// `--compare` against pre-PR-9 baselines keeps working.
pub const SCHEMA: &str = "hybrid-dbscan/bench-suite";
pub const SCHEMA_VERSION: u64 = 2;

/// Robust summary of one stage's per-trial durations (milliseconds).
///
/// Medians and MAD rather than means: a single descheduled trial must not
/// move the number CI compares against a baseline. The MAD is what the
/// regression gate's noise threshold is derived from.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StageStats {
    pub trials: u64,
    pub median_ms: f64,
    pub mean_ms: f64,
    /// Median absolute deviation from the median.
    pub mad_ms: f64,
    /// Interquartile range (Q3 − Q1).
    pub iqr_ms: f64,
    pub min_ms: f64,
    pub max_ms: f64,
}

/// One suite workload's results.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadResult {
    /// Stable identifier, e.g. `s1/sw1-eps0.2/global`; the compare key.
    pub id: String,
    /// Paper scenario (`S1`/`S2`/`S3`).
    pub scenario: String,
    pub dataset: String,
    /// Kernel variant (`global`/`shared`).
    pub kernel: String,
    pub eps: f64,
    pub minpts: u64,
    /// Points actually clustered — baselines taken at a different scale
    /// are incomparable, and the gate detects that through this field.
    pub points: u64,
    /// Bit pattern of the modeled device time (`to_bits()` of the modeled
    /// seconds), serialized as a hex string. `None` on v1 documents and on
    /// workloads without a single modeled time.
    pub modeled_time_bits: Option<u64>,
    /// Stage name → summary (`build_table`, `dbscan`, `disjoint_set`,
    /// `modeled`).
    pub stages: BTreeMap<String, StageStats>,
    /// Device-counter profiles, e.g. `kernels` (all launches of the run).
    pub counters: BTreeMap<String, ProfileStats>,
    /// Scalar outputs and telemetry (clusters, result_pairs, batch
    /// percentiles, …).
    pub metrics: BTreeMap<String, f64>,
}

/// A full benchmark-suite document.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchDoc {
    pub version: u64,
    pub scale: f64,
    pub trials: u64,
    pub warmup: u64,
    pub host_threads: u64,
    /// Identity of the producing run. `None` only on parsed v1 documents;
    /// every v2 emitter stamps it.
    pub provenance: Option<Provenance>,
    pub workloads: Vec<WorkloadResult>,
}

impl BenchDoc {
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", SCHEMA);
        w.field_uint("version", self.version);
        w.field_float("scale", self.scale);
        w.field_uint("trials", self.trials);
        w.field_uint("warmup", self.warmup);
        w.field_uint("host_threads", self.host_threads);
        if let Some(p) = &self.provenance {
            p.write_field(&mut w);
        }
        w.key("workloads");
        w.begin_array();
        for wl in &self.workloads {
            w.begin_object();
            w.field_str("id", &wl.id);
            w.field_str("scenario", &wl.scenario);
            w.field_str("dataset", &wl.dataset);
            w.field_str("kernel", &wl.kernel);
            w.field_float("eps", wl.eps);
            w.field_uint("minpts", wl.minpts);
            w.field_uint("points", wl.points);
            if let Some(bits) = wl.modeled_time_bits {
                // Hex string, not a number: the shared parser stores
                // numbers as f64, which cannot hold a 64-bit pattern.
                w.field_str("modeled_time_bits", &format!("{bits:016x}"));
            }
            w.key("stages");
            w.begin_object();
            for (name, s) in &wl.stages {
                w.key(name);
                w.begin_object();
                w.field_uint("trials", s.trials);
                w.field_float("median_ms", s.median_ms);
                w.field_float("mean_ms", s.mean_ms);
                w.field_float("mad_ms", s.mad_ms);
                w.field_float("iqr_ms", s.iqr_ms);
                w.field_float("min_ms", s.min_ms);
                w.field_float("max_ms", s.max_ms);
                w.end_object();
            }
            w.end_object();
            w.key("counters");
            w.begin_object();
            for (name, p) in &wl.counters {
                w.key(name);
                w.begin_object();
                w.field_uint("launches", p.launches);
                w.field_uint("total_threads", p.total_threads);
                w.field_uint("total_blocks", p.total_blocks);
                w.field_float("time_ms", p.time_ms);
                w.field_float("mean_occupancy", p.mean_occupancy);
                w.field_float("gmem_gbps", p.gmem_gbps);
                w.field_uint("atomics", p.atomics);
                w.end_object();
            }
            w.end_object();
            w.key("metrics");
            w.begin_object();
            for (name, v) in &wl.metrics {
                w.field_float(name, *v);
            }
            w.end_object();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Parse a document produced by [`Self::to_json`] (e.g. a checked-in
    /// baseline). Schema and version are validated; field errors name the
    /// offending key.
    pub fn parse(text: &str) -> Result<BenchDoc, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let schema = req_str(&v, "schema")?;
        if schema != SCHEMA {
            return Err(format!("unexpected schema '{schema}' (want '{SCHEMA}')"));
        }
        let version = req_u64(&v, "version")?;
        if !(1..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema version {version} (supported: 1..={SCHEMA_VERSION})"
            ));
        }
        let mut doc = BenchDoc {
            version,
            scale: req_f64(&v, "scale")?,
            trials: req_u64(&v, "trials")?,
            warmup: req_u64(&v, "warmup")?,
            host_threads: req_u64(&v, "host_threads")?,
            provenance: Provenance::parse_field(&v)?,
            workloads: Vec::new(),
        };
        let workloads = v
            .get("workloads")
            .and_then(JsonValue::as_arr)
            .ok_or("missing 'workloads' array")?;
        for wl in workloads {
            let mut out = WorkloadResult {
                id: req_str(wl, "id")?.to_string(),
                scenario: req_str(wl, "scenario")?.to_string(),
                dataset: req_str(wl, "dataset")?.to_string(),
                kernel: req_str(wl, "kernel")?.to_string(),
                eps: req_f64(wl, "eps")?,
                minpts: req_u64(wl, "minpts")?,
                points: req_u64(wl, "points")?,
                modeled_time_bits: match wl.get("modeled_time_bits") {
                    None => None,
                    Some(b) => Some(
                        b.as_str()
                            .and_then(|h| u64::from_str_radix(h, 16).ok())
                            .ok_or("bad hex in 'modeled_time_bits'")?,
                    ),
                },
                ..WorkloadResult::default()
            };
            let stages = wl
                .get("stages")
                .and_then(JsonValue::as_obj)
                .ok_or("missing 'stages' object")?;
            for (name, s) in stages {
                out.stages.insert(
                    name.clone(),
                    StageStats {
                        trials: req_u64(s, "trials")?,
                        median_ms: req_f64(s, "median_ms")?,
                        mean_ms: req_f64(s, "mean_ms")?,
                        mad_ms: req_f64(s, "mad_ms")?,
                        iqr_ms: req_f64(s, "iqr_ms")?,
                        min_ms: req_f64(s, "min_ms")?,
                        max_ms: req_f64(s, "max_ms")?,
                    },
                );
            }
            let counters = wl
                .get("counters")
                .and_then(JsonValue::as_obj)
                .ok_or("missing 'counters' object")?;
            for (name, p) in counters {
                out.counters.insert(
                    name.clone(),
                    ProfileStats {
                        launches: req_u64(p, "launches")?,
                        total_threads: req_u64(p, "total_threads")?,
                        total_blocks: req_u64(p, "total_blocks")?,
                        time_ms: req_f64(p, "time_ms")?,
                        mean_occupancy: req_f64(p, "mean_occupancy")?,
                        gmem_gbps: req_f64(p, "gmem_gbps")?,
                        atomics: req_u64(p, "atomics")?,
                    },
                );
            }
            let metrics = wl
                .get("metrics")
                .and_then(JsonValue::as_obj)
                .ok_or("missing 'metrics' object")?;
            for (name, v) in metrics {
                out.metrics.insert(
                    name.clone(),
                    v.as_f64()
                        .ok_or_else(|| format!("metric '{name}' not a number"))?,
                );
            }
            doc.workloads.push(out);
        }
        Ok(doc)
    }

    /// Look up a workload by id.
    pub fn workload(&self, id: &str) -> Option<&WorkloadResult> {
        self.workloads.iter().find(|w| w.id == id)
    }
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing string field '{key}'"))
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing numeric field '{key}'"))
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing integer field '{key}'"))
}

/// Record a kernel profile's headline counters into a metrics registry
/// under `kernel.<name>.*` — the single wiring point between
/// [`gpu_sim::profiler::KernelProfile`] and [`Metrics`], shared by the
/// pipeline instrumentation (`HybridDbscan::record_gpu_phase`) and the
/// benchmark suite.
pub fn record_kernel_profile(m: &Metrics, name: &str, profile: &KernelProfile) {
    let s = profile.stats();
    m.counter_add(&format!("kernel.{name}.launches"), s.launches);
    m.counter_add(&format!("kernel.{name}.atomics"), s.atomics);
    m.gauge_set(&format!("kernel.{name}.mean_occupancy"), s.mean_occupancy);
    m.gauge_set(&format!("kernel.{name}.gmem_gbps"), s.gmem_gbps);
    m.gauge_set(&format!("kernel.{name}.time_ms"), s.time_ms);
    m.gauge_set(
        &format!("kernel.{name}.total_threads"),
        s.total_threads as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::provenance::HEADER_VERSION;

    fn sample_doc() -> BenchDoc {
        let mut wl = WorkloadResult {
            id: "s1/sw1-eps0.2/global".into(),
            scenario: "S1".into(),
            dataset: "SW1".into(),
            kernel: "global".into(),
            eps: 0.2,
            minpts: 4,
            points: 37292,
            modeled_time_bits: Some(u64::MAX),
            ..WorkloadResult::default()
        };
        wl.stages.insert(
            "build_table".into(),
            StageStats {
                trials: 3,
                median_ms: 2410.5,
                mean_ms: 2400.25,
                mad_ms: 12.5,
                iqr_ms: 25.0,
                min_ms: 2380.0,
                max_ms: 2450.0,
            },
        );
        wl.counters.insert(
            "kernels".into(),
            ProfileStats {
                launches: 4,
                total_threads: 1024,
                total_blocks: 4,
                time_ms: 96.5,
                mean_occupancy: 0.85,
                gmem_gbps: 120.25,
                atomics: 17,
            },
        );
        wl.metrics.insert("clusters".into(), 64.0);
        wl.metrics.insert("result_pairs".into(), 17113506.0);
        BenchDoc {
            version: SCHEMA_VERSION,
            scale: 0.02,
            trials: 3,
            warmup: 1,
            host_threads: 4,
            provenance: Some(Provenance {
                header_version: HEADER_VERSION,
                schema: SCHEMA.into(),
                schema_version: SCHEMA_VERSION,
                git_sha: "ee9aa08269b9".into(),
                git_dirty: false,
                rustc: "rustc 1.95.0".into(),
                rayon_num_threads: "unset".into(),
                host: "test".into(),
                os: "linux/x86_64".into(),
                timestamp_unix: 1_754_611_200,
                workloads: vec!["s1/sw1-eps0.2/global".into()],
            }),
            workloads: vec![wl],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let doc = sample_doc();
        let text = doc.to_json();
        let parsed = BenchDoc::parse(&text).expect("parse own output");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_json(), text, "emission must be a fixed point");
    }

    #[test]
    fn rejects_wrong_schema_and_version() {
        let text = sample_doc().to_json();
        let wrong = text.replacen(SCHEMA, "something/else", 1);
        assert!(BenchDoc::parse(&wrong).unwrap_err().contains("schema"));
        let wrong = text.replacen(r#""version":2"#, r#""version":999"#, 1);
        assert!(BenchDoc::parse(&wrong).unwrap_err().contains("version"));
        assert!(BenchDoc::parse("{}").is_err());
        assert!(BenchDoc::parse("not json").is_err());
    }

    #[test]
    fn v1_documents_still_parse_without_provenance_or_bits() {
        // A pre-PR-9 baseline: version 1, no provenance header, no
        // per-workload modeled_time_bits. `--compare` must keep working.
        let mut doc = sample_doc();
        doc.version = 1;
        doc.provenance = None;
        doc.workloads[0].modeled_time_bits = None;
        let text = doc.to_json();
        assert!(!text.contains("provenance"));
        assert!(!text.contains("modeled_time_bits"));
        let parsed = BenchDoc::parse(&text).expect("v1 fallback");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.to_json(), text, "v1 round-trip stays exact");
    }

    #[test]
    fn bits_survive_as_full_64bit_patterns() {
        let doc = sample_doc();
        let parsed = BenchDoc::parse(&doc.to_json()).unwrap();
        assert_eq!(parsed.workloads[0].modeled_time_bits, Some(u64::MAX));
        assert_eq!(
            parsed.provenance.as_ref().map(|p| p.git_sha.as_str()),
            Some("ee9aa08269b9")
        );
    }

    #[test]
    fn workload_lookup_by_id() {
        let doc = sample_doc();
        assert!(doc.workload("s1/sw1-eps0.2/global").is_some());
        assert!(doc.workload("nope").is_none());
    }

    #[test]
    fn record_kernel_profile_names_match_pipeline_contract() {
        use gpu_sim::kernel::KernelReport;
        use gpu_sim::launch::LaunchConfig;
        use gpu_sim::SimDuration;

        let mut p = KernelProfile::new();
        p.record(&KernelReport {
            config: LaunchConfig::for_elements(1024, 256),
            threads_launched: 1024,
            duration: SimDuration::from_millis(2.0),
            counters: gpu_sim::cost::Counters {
                flops: 1024,
                global_read_bytes: 8192,
                atomics: 3,
                ..Default::default()
            },
            occupancy: 0.75,
        });
        let m = Metrics::new();
        record_kernel_profile(&m, "gpucalc_global", &p);
        let s = m.snapshot();
        assert_eq!(s.counters["kernel.gpucalc_global.launches"], 1);
        assert_eq!(s.counters["kernel.gpucalc_global.atomics"], 3);
        assert!(s.gauges["kernel.gpucalc_global.mean_occupancy"] > 0.0);
        assert!(s.gauges["kernel.gpucalc_global.gmem_gbps"] > 0.0);
        assert!(s.gauges["kernel.gpucalc_global.time_ms"] > 0.0);
    }
}

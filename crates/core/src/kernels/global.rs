//! The GPUCalcGlobal kernel (Algorithm 2 of the paper).
//!
//! One thread computes the ε-neighborhood of one point using only global
//! memory: it loads its point, enumerates the ≤9 grid cells that can
//! contain neighbors, scans each cell's `[A_min, A_max]` range of the
//! lookup array, computes distances, and atomically appends each hit to
//! the device result buffer as a `(point, neighbor)` pair. The scan runs
//! chunk-wise over the SoA coordinate store ([`super::scan_cell_range`]):
//! same hits, same modeled cost, a fraction of the host wall-clock.
//!
//! **Batching** (Section VI): with `n_b` batches, batch `l` processes the
//! points `{gid · n_b + l}` — a strided assignment over the spatially
//! sorted database, so every batch sees a uniform spatial sample and the
//! per-batch result sizes `|R_l|` stay consistent (Figure 2). The launch
//! covers `ceil(|D| / n_b)` points.

use super::{load_cell_range, scan_cell_range, NeighborPair, SCAN_LANES};
use gpu_sim::error::DeviceError;
use gpu_sim::kernel::{BlockCtx, BlockKernel, ChargeBatch};
use gpu_sim::launch::LaunchConfig;
use gpu_sim::memory::DeviceAppendBuffer;
use spatial::grid::{CellRange, CellsView};
use spatial::{GridGeometry, PointsView};

/// Algorithm 2: thread-per-point ε-neighborhood kernel over global memory.
pub struct GpuCalcGlobal<'a> {
    /// `D` (device-resident, spatially sorted), as the SoA coordinate view.
    pub points: PointsView<'a>,
    /// `G`: per-cell ranges into `A`, in either layout.
    pub grid: CellsView<'a>,
    /// `A`: point ids grouped by cell.
    pub lookup: &'a [u32],
    /// Grid geometry (device constants).
    pub geom: GridGeometry,
    /// Search radius; must equal the grid's cell width.
    pub eps: f64,
    /// Batch number `l ∈ 0..n_batches`.
    pub batch: usize,
    /// Total number of batches `n_b`.
    pub n_batches: usize,
    /// `gpuResultSet`: the atomic result buffer.
    pub result: &'a DeviceAppendBuffer<NeighborPair>,
    /// Split-kernel mask (the paper's future-work hybrid): when set,
    /// threads whose point lives in a cell with at least this many points
    /// return immediately — those cells are processed by GPUCalcShared.
    /// `None` (the default everywhere in the paper's pipeline) disables
    /// the mask.
    pub skip_dense_at: Option<usize>,
}

impl GpuCalcGlobal<'_> {
    /// Number of points this batch processes: `ceil(|D| / n_b)` thread
    /// slots, minus slots whose strided id falls past `|D|`.
    pub fn points_in_batch(n_points: usize, n_batches: usize, batch: usize) -> usize {
        debug_assert!(batch < n_batches);
        // gids g with g * n_batches + batch < n_points.
        n_points.saturating_sub(batch).div_ceil(n_batches)
    }

    /// The launch configuration covering this batch at `block_dim`.
    pub fn launch_config(&self, block_dim: u32) -> LaunchConfig {
        let n = Self::points_in_batch(self.points.len(), self.n_batches, self.batch);
        LaunchConfig::for_elements(n.max(1), block_dim)
    }
}

impl BlockKernel for GpuCalcGlobal<'_> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let n_points = self.points.len();
        let eps_sq = self.eps * self.eps;
        let in_batch = Self::points_in_batch(n_points, self.n_batches, self.batch) as u64;

        ctx.for_each_thread(|t| {
            if t.gid >= in_batch {
                return;
            }
            // Strided batch assignment: gid -> point id.
            let pi = (t.gid as usize) * self.n_batches + self.batch;
            debug_assert!(pi < n_points);

            // point <- D[gid'] (registers).
            t.read_global::<spatial::Point2>(1);
            let (qx, qy) = (self.points.xs[pi], self.points.ys[pi]);

            // cellIDsArr <- getNeighborCells(gid): pure arithmetic.
            t.charge_flops(10);
            let own_cell = self.geom.cell_of(&self.points.get(pi));
            if let Some(threshold) = self.skip_dense_at {
                // Split-kernel mask: dense cells belong to GPUCalcShared.
                t.read_global::<CellRange>(1);
                if self.grid.range_of(own_cell as u32).len() >= threshold {
                    return;
                }
            }
            let (cells, n_cells) = self.geom.neighbor_cells(own_cell);

            for &cell_id in &cells[..n_cells] {
                // lookupMin/Max <- G[cellID].
                let range = load_cell_range(t, &self.grid, cell_id);
                scan_cell_range(
                    t,
                    self.points,
                    self.lookup,
                    range,
                    qx,
                    qy,
                    eps_sq,
                    |t, hits| {
                        // atomic: gpuResultSet <- gpuResultSet ∪ result —
                        // charged per hit (batched: exact integer costs),
                        // appended with one cursor reservation per chunk.
                        let mut charge = ChargeBatch {
                            atomics: hits.len() as u64,
                            ..ChargeBatch::default()
                        };
                        charge.write_global::<NeighborPair>(hits.len() as u64);
                        t.charge_batch(charge);
                        let mut out = [(0u32, 0u32); SCAN_LANES];
                        for (o, &cand) in out.iter_mut().zip(hits) {
                            *o = (pi as u32, cand);
                        }
                        // Overflow is recorded by the buffer; a real kernel
                        // cannot unwind, so neither do we.
                        let _ = self.result.append_n(&out[..hits.len()]);
                    },
                );
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{brute_force_pairs, estimate_result_capacity, mixed_points};
    use super::*;
    use gpu_sim::Device;
    use spatial::{GridIndex, Point2, PointStore};

    fn run_kernel(
        data: &[Point2],
        eps: f64,
        n_batches: usize,
    ) -> (Vec<(u32, u32)>, Vec<gpu_sim::KernelReport>) {
        let device = Device::k20c();
        let grid = GridIndex::build(data, eps);
        let store = PointStore::from_points(data);
        // Size the result buffer the way production does: via the
        // estimation kernel (exact at stride 1), not O(n²) scratch.
        let cap = estimate_result_capacity(&device, &store, &grid, eps);
        let result = DeviceAppendBuffer::new(&device, cap).unwrap();
        let mut reports = Vec::new();
        for batch in 0..n_batches {
            let kernel = GpuCalcGlobal {
                points: store.view(),
                grid: grid.cells_view(),
                lookup: grid.lookup(),
                geom: grid.geometry(),
                eps,
                batch,
                n_batches,
                result: &result,
                skip_dense_at: None,
            };
            let cfg = kernel.launch_config(256);
            reports.push(device.launch(cfg, &kernel).unwrap());
        }
        let mut result = result;
        assert!(!result.overflowed());
        let mut pairs = result.as_filled_slice().to_vec();
        pairs.sort_unstable();
        (pairs, reports)
    }

    #[test]
    fn single_batch_matches_brute_force() {
        let data = mixed_points(300);
        for eps in [0.3, 1.0, 2.5] {
            let (pairs, _) = run_kernel(&data, eps, 1);
            assert_eq!(pairs, brute_force_pairs(&data, eps), "eps = {eps}");
        }
    }

    #[test]
    fn batched_union_equals_unbatched() {
        let data = mixed_points(500);
        let eps = 0.8;
        let (unbatched, _) = run_kernel(&data, eps, 1);
        for n_batches in [2, 3, 5, 7] {
            let (batched, _) = run_kernel(&data, eps, n_batches);
            assert_eq!(batched, unbatched, "n_batches = {n_batches}");
        }
    }

    #[test]
    fn sparse_grid_layout_produces_identical_pairs() {
        let data = mixed_points(300);
        let eps = 0.6;
        let device = Device::k20c();
        let store = PointStore::from_points(&data);
        let mut by_layout = Vec::new();
        for layout in [spatial::GridLayout::Dense, spatial::GridLayout::Sparse] {
            let grid = GridIndex::build_with_layout(&data, eps, layout);
            let cap = estimate_result_capacity(&device, &store, &grid, eps);
            let result = DeviceAppendBuffer::new(&device, cap).unwrap();
            let kernel = GpuCalcGlobal {
                points: store.view(),
                grid: grid.cells_view(),
                lookup: grid.lookup(),
                geom: grid.geometry(),
                eps,
                batch: 0,
                n_batches: 1,
                result: &result,
                skip_dense_at: None,
            };
            device.launch(kernel.launch_config(256), &kernel).unwrap();
            let mut result = result;
            assert!(!result.overflowed());
            let mut pairs = result.as_filled_slice().to_vec();
            pairs.sort_unstable();
            by_layout.push(pairs);
        }
        assert_eq!(by_layout[0], by_layout[1]);
        assert_eq!(by_layout[0], brute_force_pairs(&data, eps));
    }

    #[test]
    fn points_in_batch_partitions_database() {
        for n in [1usize, 10, 999, 1000, 1001] {
            for nb in [1usize, 2, 3, 7] {
                let total: usize = (0..nb)
                    .map(|l| GpuCalcGlobal::points_in_batch(n, nb, l))
                    .sum();
                assert_eq!(total, n, "n = {n}, nb = {nb}");
            }
        }
    }

    #[test]
    fn thread_count_tracks_points() {
        let data = mixed_points(1000);
        let (_, reports) = run_kernel(&data, 0.5, 1);
        // n_GPU = ceil(1000/256)*256 = 1024 (Table II's "roughly |D|").
        assert_eq!(reports[0].threads_launched, 1024);
    }

    #[test]
    fn batches_report_fewer_threads_each() {
        let data = mixed_points(1000);
        let (_, reports) = run_kernel(&data, 0.5, 4);
        for r in &reports {
            assert!(
                r.threads_launched <= 256 * 1024 / 256,
                "{}",
                r.threads_launched
            );
            assert_eq!(r.threads_launched, 256);
        }
    }

    #[test]
    fn every_point_has_self_pair() {
        let data = mixed_points(100);
        let (pairs, _) = run_kernel(&data, 0.4, 3);
        for i in 0..data.len() as u32 {
            assert!(
                pairs.binary_search(&(i, i)).is_ok(),
                "missing self pair for {i}"
            );
        }
    }

    #[test]
    fn duplicate_points_all_pair_up() {
        let data = vec![Point2::new(1.0, 1.0); 8];
        let (pairs, _) = run_kernel(&data, 0.1, 2);
        assert_eq!(pairs.len(), 64, "8 coincident points produce 8x8 pairs");
    }

    #[test]
    fn overflow_is_reported_not_lost() {
        let data = mixed_points(200);
        let eps = 1.0;
        let device = Device::k20c();
        let grid = GridIndex::build(&data, eps);
        let store = PointStore::from_points(&data);
        // Deliberately undersized buffer.
        let result = DeviceAppendBuffer::new(&device, 10).unwrap();
        let kernel = GpuCalcGlobal {
            points: store.view(),
            grid: grid.cells_view(),
            lookup: grid.lookup(),
            geom: grid.geometry(),
            eps,
            batch: 0,
            n_batches: 1,
            result: &result,
            skip_dense_at: None,
        };
        device.launch(kernel.launch_config(256), &kernel).unwrap();
        assert!(result.overflowed());
        assert!(result.rejected() > 0);
    }
}

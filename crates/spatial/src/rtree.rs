//! R-tree index (Guttman 1984), the index of the paper's *reference
//! implementation* (sequential DBSCAN on the CPU, per Gowanlock et al. 2016).
//!
//! Two construction paths are provided:
//!
//! * [`RTree::bulk_load`] — Sort-Tile-Recursive (STR) packing, used by the
//!   reference implementation because it yields well-shaped leaves in
//!   `O(n log n)`;
//! * [`RTree::insert`] — classic one-at-a-time insertion with the quadratic
//!   split heuristic, exercised by the test suite to validate structural
//!   invariants under incremental growth.
//!
//! Range queries count visited nodes, which the experiment harness uses to
//! explain *why* the R-tree search dominates sequential DBSCAN's runtime
//! (Table I of the paper).

use crate::aabb::Aabb;
use crate::point::Point2;
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum entries per node. 16 keeps interior nodes cache-line friendly
/// while matching typical R-tree configurations for point data.
const MAX_ENTRIES: usize = 16;
/// Minimum fill on split (Guttman recommends 30-50% of M).
const MIN_ENTRIES: usize = 6;

/// Search-effort counters, cumulative over the lifetime of the tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RTreeStats {
    /// Range queries answered.
    pub queries: u64,
    /// Tree nodes (interior + leaf) visited during queries.
    pub nodes_visited: u64,
    /// Exact point-distance evaluations performed.
    pub distance_calcs: u64,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        bbox: Aabb,
        /// (point id, point) pairs.
        entries: Vec<(u32, Point2)>,
    },
    Interior {
        bbox: Aabb,
        children: Vec<Node>,
    },
}

impl Node {
    fn bbox(&self) -> Aabb {
        match self {
            Node::Leaf { bbox, .. } | Node::Interior { bbox, .. } => *bbox,
        }
    }

    fn recompute_bbox(&mut self) {
        match self {
            Node::Leaf { bbox, entries } => {
                *bbox = Aabb::from_points(entries.iter().map(|(_, p)| p));
            }
            Node::Interior { bbox, children } => {
                *bbox = children.iter().fold(Aabb::EMPTY, |b, c| b.union(&c.bbox()));
            }
        }
    }
}

/// An R-tree over 2-D points.
pub struct RTree {
    root: Node,
    size: usize,
    height: usize,
    // Atomic so concurrent readers (e.g. parallel DBSCAN consumers) can
    // share the tree; counters are best-effort under concurrency.
    queries: AtomicU64,
    nodes_visited: AtomicU64,
    distance_calcs: AtomicU64,
}

impl RTree {
    /// An empty tree.
    pub fn new() -> Self {
        RTree {
            root: Node::Leaf {
                bbox: Aabb::EMPTY,
                entries: Vec::new(),
            },
            size: 0,
            height: 1,
            queries: AtomicU64::new(0),
            nodes_visited: AtomicU64::new(0),
            distance_calcs: AtomicU64::new(0),
        }
    }

    /// Bulk-load with Sort-Tile-Recursive packing. Point ids are the input
    /// indices.
    pub fn bulk_load(data: &[Point2]) -> Self {
        if data.is_empty() {
            return Self::new();
        }
        let mut entries: Vec<(u32, Point2)> = data
            .iter()
            .copied()
            .enumerate()
            .map(|(i, p)| (i as u32, p))
            .collect();

        // STR: sort by x, carve into vertical slabs of ~sqrt(n/M) leaves,
        // sort each slab by y, pack runs of MAX_ENTRIES into leaves.
        let n_leaves = data.len().div_ceil(MAX_ENTRIES);
        let n_slabs = (n_leaves as f64).sqrt().ceil() as usize;
        let slab_size = data.len().div_ceil(n_slabs);

        entries.sort_by(|a, b| a.1.x.total_cmp(&b.1.x).then(a.1.y.total_cmp(&b.1.y)));

        let mut leaves: Vec<Node> = Vec::with_capacity(n_leaves);
        for slab in entries.chunks_mut(slab_size.max(1)) {
            slab.sort_by(|a, b| a.1.y.total_cmp(&b.1.y).then(a.1.x.total_cmp(&b.1.x)));
            for run in slab.chunks(MAX_ENTRIES) {
                let mut leaf = Node::Leaf {
                    bbox: Aabb::EMPTY,
                    entries: run.to_vec(),
                };
                leaf.recompute_bbox();
                leaves.push(leaf);
            }
        }

        // Pack upward until a single root remains.
        let mut height = 1;
        let mut level = leaves;
        while level.len() > 1 {
            let mut parents = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            let mut level_iter = level.into_iter().peekable();
            while level_iter.peek().is_some() {
                let children: Vec<Node> = level_iter.by_ref().take(MAX_ENTRIES).collect();
                let mut parent = Node::Interior {
                    bbox: Aabb::EMPTY,
                    children,
                };
                parent.recompute_bbox();
                parents.push(parent);
            }
            level = parents;
            height += 1;
        }

        RTree {
            root: level.pop().expect("non-empty input yields a root"),
            size: data.len(),
            height,
            queries: AtomicU64::new(0),
            nodes_visited: AtomicU64::new(0),
            distance_calcs: AtomicU64::new(0),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.size
    }

    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Height of the tree (a single leaf has height 1).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Cumulative search statistics.
    pub fn stats(&self) -> RTreeStats {
        RTreeStats {
            queries: self.queries.load(Ordering::Relaxed),
            nodes_visited: self.nodes_visited.load(Ordering::Relaxed),
            distance_calcs: self.distance_calcs.load(Ordering::Relaxed),
        }
    }

    /// Reset the cumulative search statistics.
    pub fn reset_stats(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.nodes_visited.store(0, Ordering::Relaxed);
        self.distance_calcs.store(0, Ordering::Relaxed);
    }

    /// Insert a point with an explicit id (Guttman insertion, quadratic
    /// split).
    pub fn insert(&mut self, id: u32, p: Point2) {
        if let Some((left, right)) = Self::insert_rec(&mut self.root, id, p) {
            // Root split: grow the tree by one level.
            self.root = {
                let mut new_root = Node::Interior {
                    bbox: Aabb::EMPTY,
                    children: vec![left, right],
                };
                new_root.recompute_bbox();
                new_root
            };
            self.height += 1;
        }
        self.size += 1;
    }

    /// Recursive insertion; returns `Some((left, right))` when `node` had
    /// to split, with the two replacement halves.
    fn insert_rec(node: &mut Node, id: u32, p: Point2) -> Option<(Node, Node)> {
        match node {
            Node::Leaf { entries, .. } => {
                entries.push((id, p));
                if entries.len() > MAX_ENTRIES {
                    let split = Self::split_leaf(std::mem::take(entries));
                    return Some(split);
                }
                node.recompute_bbox();
                None
            }
            Node::Interior { children, .. } => {
                // Choose the child whose bbox needs least enlargement
                // (ties: smaller area).
                let target = Aabb::from_point(p);
                let best = (0..children.len())
                    .min_by(|&a, &b| {
                        let (ba, bb) = (children[a].bbox(), children[b].bbox());
                        ba.enlargement(&target)
                            .total_cmp(&bb.enlargement(&target))
                            .then(ba.area().total_cmp(&bb.area()))
                    })
                    .expect("interior nodes are never empty");

                if let Some((l, r)) = Self::insert_rec(&mut children[best], id, p) {
                    children[best] = l;
                    children.push(r);
                    if children.len() > MAX_ENTRIES {
                        let split = Self::split_interior(std::mem::take(children));
                        return Some(split);
                    }
                }
                node.recompute_bbox();
                None
            }
        }
    }

    /// Guttman quadratic split for leaf entries.
    fn split_leaf(entries: Vec<(u32, Point2)>) -> (Node, Node) {
        let boxes: Vec<Aabb> = entries.iter().map(|(_, p)| Aabb::from_point(*p)).collect();
        let (ga, gb) = Self::quadratic_assign(&boxes);
        let (mut ea, mut eb) = (Vec::new(), Vec::new());
        for (i, e) in entries.into_iter().enumerate() {
            if ga.contains(&i) {
                ea.push(e);
            } else {
                debug_assert!(gb.contains(&i));
                eb.push(e);
            }
        }
        let mut la = Node::Leaf {
            bbox: Aabb::EMPTY,
            entries: ea,
        };
        let mut lb = Node::Leaf {
            bbox: Aabb::EMPTY,
            entries: eb,
        };
        la.recompute_bbox();
        lb.recompute_bbox();
        (la, lb)
    }

    /// Guttman quadratic split for interior children.
    fn split_interior(children: Vec<Node>) -> (Node, Node) {
        let boxes: Vec<Aabb> = children.iter().map(|c| c.bbox()).collect();
        let (ga, gb) = Self::quadratic_assign(&boxes);
        let (mut ca, mut cb) = (Vec::new(), Vec::new());
        for (i, c) in children.into_iter().enumerate() {
            if ga.contains(&i) {
                ca.push(c);
            } else {
                debug_assert!(gb.contains(&i));
                cb.push(c);
            }
        }
        let mut na = Node::Interior {
            bbox: Aabb::EMPTY,
            children: ca,
        };
        let mut nb = Node::Interior {
            bbox: Aabb::EMPTY,
            children: cb,
        };
        na.recompute_bbox();
        nb.recompute_bbox();
        (na, nb)
    }

    /// Quadratic-cost seed picking + assignment over a set of boxes.
    /// Returns the two index groups; each has at least `MIN_ENTRIES`.
    fn quadratic_assign(boxes: &[Aabb]) -> (Vec<usize>, Vec<usize>) {
        let n = boxes.len();
        debug_assert!(n >= 2);

        // PickSeeds: the pair wasting the most area if grouped together.
        let (mut s1, mut s2, mut worst) = (0, 1, f64::NEG_INFINITY);
        for i in 0..n {
            for j in (i + 1)..n {
                let waste = boxes[i].union(&boxes[j]).area() - boxes[i].area() - boxes[j].area();
                if waste > worst {
                    worst = waste;
                    s1 = i;
                    s2 = j;
                }
            }
        }

        let mut ga = vec![s1];
        let mut gb = vec![s2];
        let mut bbox_a = boxes[s1];
        let mut bbox_b = boxes[s2];
        let mut remaining: Vec<usize> = (0..n).filter(|&i| i != s1 && i != s2).collect();

        while let Some(pos) = {
            if remaining.is_empty() {
                None
            } else if ga.len() + remaining.len() == MIN_ENTRIES {
                // Must give everything to A to satisfy minimum fill.
                ga.append(&mut remaining);
                None
            } else if gb.len() + remaining.len() == MIN_ENTRIES {
                gb.append(&mut remaining);
                None
            } else {
                // PickNext: entry with the greatest preference difference.
                Some(
                    (0..remaining.len())
                        .max_by(|&x, &y| {
                            let dx = (bbox_a.enlargement(&boxes[remaining[x]])
                                - bbox_b.enlargement(&boxes[remaining[x]]))
                            .abs();
                            let dy = (bbox_a.enlargement(&boxes[remaining[y]])
                                - bbox_b.enlargement(&boxes[remaining[y]]))
                            .abs();
                            dx.total_cmp(&dy)
                        })
                        .expect("remaining is non-empty"),
                )
            }
        } {
            let i = remaining.swap_remove(pos);
            let ea = bbox_a.enlargement(&boxes[i]);
            let eb = bbox_b.enlargement(&boxes[i]);
            let to_a = ea < eb
                || (ea == eb && bbox_a.area() < bbox_b.area())
                || (ea == eb && bbox_a.area() == bbox_b.area() && ga.len() <= gb.len());
            if to_a {
                bbox_a = bbox_a.union(&boxes[i]);
                ga.push(i);
            } else {
                bbox_b = bbox_b.union(&boxes[i]);
                gb.push(i);
            }
        }
        (ga, gb)
    }

    /// Ids of every indexed point within the closed ε-ball around `q`,
    /// in visit order. Updates the search statistics.
    pub fn query_eps(&self, q: &Point2, eps: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_eps_visit(q, eps, |id, _| out.push(id));
        out
    }

    /// Visitor-based range query; the visitor receives `(id, point)`.
    pub fn query_eps_visit(&self, q: &Point2, eps: f64, mut visit: impl FnMut(u32, Point2)) {
        let eps_sq = eps * eps;
        let query_box = Aabb::eps_box(*q, eps);
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut visited = 0u64;
        let mut dists = 0u64;

        let mut stack = vec![&self.root];
        while let Some(node) = stack.pop() {
            visited += 1;
            match node {
                Node::Leaf { entries, .. } => {
                    for (id, p) in entries {
                        dists += 1;
                        if p.distance_sq(q) <= eps_sq {
                            visit(*id, *p);
                        }
                    }
                }
                Node::Interior { children, .. } => {
                    for c in children {
                        let b = c.bbox();
                        // Prune on the bounding square first (cheap), then
                        // on the exact ball/box distance.
                        if b.intersects(&query_box) && b.min_dist_sq(*q) <= eps_sq {
                            stack.push(c);
                        }
                    }
                }
            }
        }
        self.nodes_visited.fetch_add(visited, Ordering::Relaxed);
        self.distance_calcs.fetch_add(dists, Ordering::Relaxed);
    }

    /// Count of points within the closed ε-ball around `q`.
    pub fn query_eps_count(&self, q: &Point2, eps: f64) -> usize {
        let mut n = 0;
        self.query_eps_visit(q, eps, |_, _| n += 1);
        n
    }

    /// Validate structural invariants (tests/debugging): bounding boxes
    /// tight, fill bounds respected below the root, uniform leaf depth.
    pub fn check_invariants(&self) {
        fn rec(node: &Node, is_root: bool, depth: usize, leaf_depth: &mut Option<usize>) {
            match node {
                Node::Leaf { bbox, entries } => {
                    assert!(is_root || !entries.is_empty(), "empty non-root leaf");
                    assert!(entries.len() <= MAX_ENTRIES, "leaf overfull");
                    for (_, p) in entries {
                        assert!(bbox.contains(*p), "leaf bbox not covering entry");
                    }
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "leaves at different depths"),
                        None => *leaf_depth = Some(depth),
                    }
                }
                Node::Interior { bbox, children } => {
                    assert!(!children.is_empty(), "empty interior node");
                    assert!(children.len() <= MAX_ENTRIES, "interior overfull");
                    let mut cover = Aabb::EMPTY;
                    for c in children {
                        cover = cover.union(&c.bbox());
                        rec(c, false, depth + 1, leaf_depth);
                    }
                    assert_eq!(*bbox, cover, "interior bbox not tight");
                }
            }
        }
        let mut leaf_depth = None;
        rec(&self.root, true, 0, &mut leaf_depth);
    }
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::brute_force_neighbors;

    fn grid_points(n: usize) -> Vec<Point2> {
        // n x n lattice with slight irrational offsets to avoid ties.
        (0..n * n)
            .map(|i| {
                let (x, y) = (i % n, i / n);
                Point2::new(x as f64 + 0.001 * (y as f64), y as f64 + 0.002 * (x as f64))
            })
            .collect()
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn bulk_load_indexes_everything() {
        let data = grid_points(20);
        let t = RTree::bulk_load(&data);
        assert_eq!(t.len(), data.len());
        t.check_invariants();
        // Query with a huge radius returns every id.
        let all = t.query_eps(&Point2::new(10.0, 10.0), 100.0);
        assert_eq!(all.len(), data.len());
    }

    #[test]
    fn bulk_load_query_matches_brute_force() {
        let data = grid_points(15);
        let t = RTree::bulk_load(&data);
        for eps in [0.5, 1.1, 2.5] {
            for q in data.iter().step_by(17) {
                assert_eq!(
                    sorted(t.query_eps(q, eps)),
                    brute_force_neighbors(&data, q, eps)
                );
            }
        }
    }

    #[test]
    fn incremental_insert_matches_brute_force() {
        let data = grid_points(12);
        let mut t = RTree::new();
        for (i, p) in data.iter().enumerate() {
            t.insert(i as u32, *p);
        }
        assert_eq!(t.len(), data.len());
        t.check_invariants();
        for q in data.iter().step_by(13) {
            assert_eq!(
                sorted(t.query_eps(q, 1.5)),
                brute_force_neighbors(&data, q, 1.5)
            );
        }
    }

    #[test]
    fn insert_grows_height() {
        let data = grid_points(20);
        let mut t = RTree::new();
        for (i, p) in data.iter().enumerate() {
            t.insert(i as u32, *p);
        }
        assert!(t.height() > 1, "400 points cannot fit in one leaf");
        t.check_invariants();
    }

    #[test]
    fn stats_accumulate() {
        let data = grid_points(10);
        let t = RTree::bulk_load(&data);
        assert_eq!(t.stats().queries, 0);
        t.query_eps(&data[0], 1.0);
        t.query_eps(&data[50], 1.0);
        let s = t.stats();
        assert_eq!(s.queries, 2);
        assert!(s.nodes_visited >= 2);
        assert!(s.distance_calcs >= 1);
        t.reset_stats();
        assert_eq!(t.stats(), RTreeStats::default());
    }

    #[test]
    fn empty_tree_queries_cleanly() {
        let t = RTree::new();
        assert!(t.is_empty());
        assert!(t.query_eps(&Point2::new(0.0, 0.0), 1.0).is_empty());
    }

    #[test]
    fn duplicate_points_all_returned() {
        let data = vec![Point2::new(1.0, 1.0); 40];
        let t = RTree::bulk_load(&data);
        let hits = t.query_eps(&Point2::new(1.0, 1.0), 0.0);
        assert_eq!(
            hits.len(),
            40,
            "eps=0 closed ball still matches exact duplicates"
        );
    }

    #[test]
    fn query_prunes_far_subtrees() {
        // Two distant clumps: querying one must not visit every node.
        let mut data = grid_points(10);
        data.extend(
            grid_points(10)
                .iter()
                .map(|p| Point2::new(p.x + 1000.0, p.y)),
        );
        let t = RTree::bulk_load(&data);
        t.query_eps(&Point2::new(0.0, 0.0), 1.0);
        let visited = t.stats().nodes_visited;
        let total_leaves = data.len().div_ceil(MAX_ENTRIES) as u64;
        assert!(
            visited < total_leaves,
            "visited {visited} nodes of >= {total_leaves} leaves — no pruning?"
        );
    }
}

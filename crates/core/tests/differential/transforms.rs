//! Metamorphic transforms: input changes with known output relations.
//!
//! Each transform here is *bit-exact* on the generators' binary lattice
//! (coordinates and ε are multiples of 1/128, far below 2⁵³):
//!
//! * permutation — point order changes, geometry untouched;
//! * lattice translation — differences `(a+t)−(b+t)` are exact;
//! * 90°/180°/270° rotation and axis reflection — coordinate swaps and
//!   negations, exact;
//! * joint (coords, ε) scaling by powers of two — exact multiplies;
//! * uniform k-fold duplication with `minpts × k` — every degree scales
//!   by exactly k, so the core set (and hence the partition over the
//!   original points) is preserved.
//!
//! Under every transform, DBSCAN's noise set and core partition are
//! invariant; only border attribution may legitimately move. So each
//! transformed run is (a) validated against the transformed input's own
//! ground truth, and (b) compared to the baseline run through
//! `oracle::equivalent_up_to_borders_with` after mapping labels back to
//! the original point order.

use crate::generators::{Case, Q};
use gpu_sim::Device;
use hybrid_dbscan_core::dbscan::{Clustering, PointLabel};
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan_core::oracle::{self, PointClass};
use proptest::TestRng;
use spatial::Point2;

fn cluster(device: &Device, data: &[Point2], eps: f64, minpts: usize) -> Clustering {
    HybridDbscan::new(device, HybridConfig::default())
        .run(data, eps, minpts)
        .expect("hybrid run failed")
        .clustering
}

/// Ground truth for the untransformed case, against which every
/// transformed run is compared.
struct Baseline<'a> {
    family: &'static str,
    classes: &'a [PointClass],
    base: &'a Clustering,
}

impl Baseline<'_> {
    /// Validate a transformed run both ways: against the transformed
    /// input's own ground truth, and against the baseline after `remap`
    /// has restored the original point order.
    fn check_invariant(
        &self,
        label: &str,
        transformed: &[Point2],
        eps: f64,
        minpts: usize,
        remap: impl Fn(&Clustering) -> Clustering,
    ) {
        let device = Device::k20c();
        let c = cluster(&device, transformed, eps, minpts);
        oracle::check_clustering(transformed, eps, minpts, &c).unwrap_or_else(|e| {
            panic!(
                "family `{}`, transform `{label}`: transformed output invalid: {e}",
                self.family
            )
        });
        let remapped = remap(&c);
        oracle::equivalent_up_to_borders_with(self.classes, self.base, &remapped).unwrap_or_else(
            |e| {
                panic!(
                    "family `{}`, transform `{label}`: partition not invariant: {e}",
                    self.family
                )
            },
        );
    }
}

/// Run every metamorphic transform against one case.
pub fn assert_all_invariant(case: &Case, rng: &mut TestRng) {
    let Case {
        data, eps, minpts, ..
    } = case;
    let (eps, minpts) = (*eps, *minpts);
    let n = data.len();
    let device = Device::k20c();
    let classes = oracle::classify(data, eps, minpts);
    let base = cluster(&device, data, eps, minpts);
    oracle::check_clustering_with(data, eps, &classes, &base)
        .unwrap_or_else(|e| panic!("family `{}`: baseline invalid: {e}", case.family));
    let baseline = Baseline {
        family: case.family,
        classes: &classes,
        base: &base,
    };
    let identity = |c: &Clustering| c.clone();

    // Permutation (Fisher-Yates from the case's rng).
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    let permuted: Vec<Point2> = perm.iter().map(|&i| data[i]).collect();
    baseline.check_invariant("permutation", &permuted, eps, minpts, |c| {
        let mut labels = vec![PointLabel::NOISE; n];
        for (i, &orig) in perm.iter().enumerate() {
            labels[orig] = c.labels()[i];
        }
        Clustering::from_labels(labels)
    });

    // Rigid translations, small and huge (2²⁰ lattice units = 8192.0 —
    // large absolute coordinates, unchanged differences).
    for (name, tx, ty) in [
        ("translate-small", 3i64, -7i64),
        ("translate-huge", 1 << 20, 1 << 20),
        ("translate-mixed", -(1 << 20), 12_345),
    ] {
        let (dx, dy) = (tx as f64 * Q, ty as f64 * Q);
        let moved: Vec<Point2> = data
            .iter()
            .map(|p| Point2::new(p.x + dx, p.y + dy))
            .collect();
        baseline.check_invariant(name, &moved, eps, minpts, identity);
    }

    // Rotations and a reflection (exact coordinate swaps/negations).
    for (name, f) in [
        (
            "rotate-90",
            (|p: &Point2| Point2::new(-p.y, p.x)) as fn(&Point2) -> Point2,
        ),
        ("rotate-180", |p| Point2::new(-p.x, -p.y)),
        ("rotate-270", |p| Point2::new(p.y, -p.x)),
        ("reflect-x", |p| Point2::new(p.x, -p.y)),
    ] {
        let turned: Vec<Point2> = data.iter().map(f).collect();
        baseline.check_invariant(name, &turned, eps, minpts, identity);
    }

    // Joint (coords, ε) scaling by powers of two.
    for s in [0.25, 0.5, 2.0, 8.0] {
        let scaled: Vec<Point2> = data.iter().map(|p| Point2::new(p.x * s, p.y * s)).collect();
        baseline.check_invariant("scale-pow2", &scaled, eps * s, minpts, identity);
    }

    // Uniform k-fold duplication with minpts × k: every ε-degree scales
    // by exactly k, preserving the core set. Compare on the first copy
    // of each original point (every cluster retains at least one core
    // first-copy, so the restriction loses no cluster).
    for k in [2usize, 3] {
        let dup: Vec<Point2> = data
            .iter()
            .flat_map(|p| std::iter::repeat_n(*p, k))
            .collect();
        baseline.check_invariant("duplicate-k", &dup, eps, minpts * k, |c| {
            let labels = (0..n).map(|i| c.labels()[i * k]).collect();
            Clustering::from_labels(labels)
        });
    }
}

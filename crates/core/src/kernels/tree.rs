//! The GPUCalcTree kernel: tree-based ε-neighborhood search.
//!
//! One thread computes the ε-neighborhood of one point by descending the
//! device-resident packed kd-tree ([`spatial::PackedKdTree`]) with a
//! fixed-size stack — the BVH-style traversal GPUs use when a grid is a
//! poor fit (skewed density, d > 2). The thread visits every node whose
//! subtree can intersect the closed ε-ball, scans reached leaves' id
//! ranges chunk-wise against the SoA coordinate arrays, and atomically
//! appends hits exactly like [`super::GpuCalcGlobal`].
//!
//! **Same contract as the grid kernels**: identical strided batch
//! assignment (Section VI), identical hit predicate (the ordered
//! mul-mul-add rounding chain of `PointN::distance_sq`, bit-identical to
//! `Point2::distance_sq` at `D = 2`), identical append accounting. Only
//! the candidate set generation differs, so the emitted pair *set* —
//! and after the canonical device sort, the neighbor table bytes — match
//! the grid backend exactly.
//!
//! **Cost shape**: traversal pays a [`ThreadCtx::read_global_dependent`]
//! surcharge per visited node (each child address depends on the parent's
//! node record — a pointer chase the scheduler cannot pipeline), while
//! leaf scans touch a candidate volume of roughly `(2ε)^d` around the
//! query versus the grid stencil's `(3ε)^d`. Dense or skewed regions and
//! higher dimensions amortize the per-node latency over bigger savings;
//! sparse uniform 2-D data does not — which is exactly the trade-off the
//! [`crate::backend`] selector navigates.

use super::{NeighborPair, SCAN_LANES};
use gpu_sim::error::DeviceError;
use gpu_sim::kernel::{BlockCtx, BlockKernel, ChargeBatch, ThreadCtx};
use gpu_sim::launch::LaunchConfig;
use gpu_sim::memory::{DeviceAppendBuffer, DeviceCounter};
use spatial::packed_tree::LEAF_AXIS;
use spatial::{PointsViewN, TreeView};

/// Traversal stack capacity: comfortably above the packed tree's depth
/// cap (24) plus the push-two-pop-one slack.
const STACK_CAP: usize = 32;

/// The dimension-generic ε-scan of a candidate id list — the ND analogue
/// of [`super::scan_cell_range`], shared by the tree and ND-grid kernels.
///
/// Chunked over [`SCAN_LANES`]; dimension 0 is computed first for the
/// whole chunk and the remaining dimensions are skipped when every lane
/// already has `fl(dx₀²) > ε²` (safe: f64 rounding is monotone and each
/// added square is non-negative). Lane arithmetic accumulates squares in
/// dimension order, the exact rounding sequence of
/// [`spatial::PointN::distance_sq`] — at `D = 2` bit-identical to the
/// 2-D kernels' scan. Charged per chunk: the id read, `D` coordinate
/// reads, and `3D − 1` distance flops per candidate (5 at `D = 2`,
/// matching the 2-D scan).
#[inline]
pub(crate) fn scan_ids_nd<const D: usize>(
    t: &mut ThreadCtx,
    points: PointsViewN<'_, D>,
    ids: &[u32],
    q: &[f64; D],
    eps_sq: f64,
    mut on_hits: impl FnMut(&mut ThreadCtx, &[u32]),
) {
    let mut k = 0usize;
    let end = ids.len();
    while k < end {
        let c = (end - k).min(SCAN_LANES);
        let mut batch = ChargeBatch {
            flops: (3 * D as u64 - 1) * c as u64,
            ..ChargeBatch::default()
        };
        batch.read_global::<u32>(c as u64);
        batch.read_global::<f64>((D * c) as u64);
        t.charge_batch(batch);

        let chunk = &ids[k..k + c];
        let mut d2 = [0.0f64; SCAN_LANES];
        let mut all_far = true;
        for (j, &id) in chunk.iter().enumerate() {
            let dx = q[0] - points.coords[0][id as usize];
            d2[j] = dx * dx;
            all_far &= d2[j] > eps_sq;
        }
        if !all_far {
            // Axis-major lane loop mirroring the SoA layout; `q` and
            // `coords` are indexed by the same axis on purpose.
            #[allow(clippy::needless_range_loop)]
            for axis in 1..D {
                for (j, &id) in chunk.iter().enumerate() {
                    let dx = q[axis] - points.coords[axis][id as usize];
                    d2[j] += dx * dx;
                }
            }
            let mut hits = [0u32; SCAN_LANES];
            let mut h = 0;
            for (j, &id) in chunk.iter().enumerate() {
                if d2[j] <= eps_sq {
                    hits[h] = id;
                    h += 1;
                }
            }
            if h > 0 {
                on_hits(t, &hits[..h]);
            }
        }
        k += c;
    }
}

/// Stack-based ε-ball traversal of the packed tree, invoking `on_hits`
/// per hit chunk. Shared by the calc and count kernels so both charge the
/// same traversal cost.
///
/// Per visited node the thread pays one *dependent* global read for the
/// 8-byte node record (split or leaf range — its address came from the
/// parent's visit) plus the 4-byte axis tag and the two bound
/// comparisons; leaves then scan their id range via [`scan_ids_nd`].
#[inline]
fn traverse_eps<const D: usize>(
    t: &mut ThreadCtx,
    points: PointsViewN<'_, D>,
    tree: &TreeView<'_>,
    q: &[f64; D],
    eps: f64,
    on_hits: &mut impl FnMut(&mut ThreadCtx, &[u32]),
) {
    let eps_sq = eps * eps;
    let mut lo = [0.0f64; D];
    let mut hi = [0.0f64; D];
    for k in 0..D {
        lo[k] = q[k] - eps;
        hi[k] = q[k] + eps;
    }
    let mut stack = [0u32; STACK_CAP];
    let mut sp = 1usize;
    while sp > 0 {
        sp -= 1;
        let node = stack[sp] as usize;
        // Node record fetch: one dependent hop (address chased from the
        // parent) for the 8-byte payload, plus the axis tag.
        t.read_global_dependent::<f64>(1);
        t.read_global::<u32>(1);
        let axis = tree.axes[node];
        if axis == LEAF_AXIS {
            let r = tree.ranges[node];
            scan_ids_nd(
                t,
                points,
                &tree.ids[r.start as usize..r.end as usize],
                q,
                eps_sq,
                &mut *on_hits,
            );
            continue;
        }
        let split = tree.splits[node];
        let a = axis as usize;
        t.charge_flops(2);
        if hi[a] >= split {
            stack[sp] = (2 * node + 2) as u32;
            sp += 1;
        }
        if lo[a] <= split {
            stack[sp] = (2 * node + 1) as u32;
            sp += 1;
        }
        debug_assert!(sp <= STACK_CAP);
    }
}

/// Thread-per-point ε-neighborhood kernel over the packed kd-tree.
pub struct GpuCalcTree<'a, const D: usize> {
    /// `D` (device-resident, spatially pre-sorted), SoA coordinates.
    pub points: PointsViewN<'a, D>,
    /// The packed node pool (splits/axes/ranges/ids buffers).
    pub tree: TreeView<'a>,
    /// Search radius.
    pub eps: f64,
    /// Batch number `l ∈ 0..n_batches`.
    pub batch: usize,
    /// Total number of batches `n_b`.
    pub n_batches: usize,
    /// `gpuResultSet`: the atomic result buffer.
    pub result: &'a DeviceAppendBuffer<NeighborPair>,
}

impl<const D: usize> GpuCalcTree<'_, D> {
    /// Identical strided partition to [`super::GpuCalcGlobal`] — the
    /// batching scheme is backend-independent.
    pub fn points_in_batch(n_points: usize, n_batches: usize, batch: usize) -> usize {
        super::GpuCalcGlobal::points_in_batch(n_points, n_batches, batch)
    }

    /// The launch configuration covering this batch at `block_dim`.
    pub fn launch_config(&self, block_dim: u32) -> LaunchConfig {
        let n = Self::points_in_batch(self.points.len(), self.n_batches, self.batch);
        LaunchConfig::for_elements(n.max(1), block_dim)
    }
}

impl<const D: usize> BlockKernel for GpuCalcTree<'_, D> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let n_points = self.points.len();
        let in_batch = Self::points_in_batch(n_points, self.n_batches, self.batch) as u64;

        ctx.for_each_thread(|t| {
            if t.gid >= in_batch {
                return;
            }
            let pi = (t.gid as usize) * self.n_batches + self.batch;
            debug_assert!(pi < n_points);

            // point <- D[gid'] (registers): D coordinates.
            t.read_global::<f64>(D as u64);
            let q: [f64; D] = std::array::from_fn(|k| self.points.coords[k][pi]);
            // ε-ball bounds: one sub and one add per dimension.
            t.charge_flops(2 * D as u64);

            traverse_eps(t, self.points, &self.tree, &q, self.eps, &mut |t, hits| {
                let mut charge = ChargeBatch {
                    atomics: hits.len() as u64,
                    ..ChargeBatch::default()
                };
                charge.write_global::<NeighborPair>(hits.len() as u64);
                t.charge_batch(charge);
                let mut out = [(0u32, 0u32); SCAN_LANES];
                for (o, &cand) in out.iter_mut().zip(hits) {
                    *o = (pi as u32, cand);
                }
                // Overflow is recorded by the buffer; a real kernel
                // cannot unwind, so neither do we.
                let _ = self.result.append_n(&out[..hits.len()]);
            });
        });
        Ok(())
    }
}

/// The Section VI result-size estimation kernel, tree flavor: counts
/// (never materializes) the neighbors of a strided sample.
pub struct TreeCountKernel<'a, const D: usize> {
    pub points: PointsViewN<'a, D>,
    pub tree: TreeView<'a>,
    pub eps: f64,
    /// Sample stride: thread `g` counts the neighbors of point
    /// `g · stride`.
    pub stride: usize,
    /// The device counter accumulating `e_b`.
    pub counter: &'a DeviceCounter,
}

impl<const D: usize> TreeCountKernel<'_, D> {
    /// Launch configuration covering the sample at `block_dim`.
    pub fn launch_config(&self, block_dim: u32) -> LaunchConfig {
        LaunchConfig::for_elements(
            super::NeighborCountKernel::sample_size(self.points.len(), self.stride).max(1),
            block_dim,
        )
    }
}

impl<const D: usize> BlockKernel for TreeCountKernel<'_, D> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let n_points = self.points.len();
        let stride = self.stride.max(1);
        let samples = super::NeighborCountKernel::sample_size(n_points, stride) as u64;

        ctx.for_each_thread(|t| {
            if t.gid >= samples {
                return;
            }
            let pi = (t.gid as usize) * stride;
            debug_assert!(pi < n_points);

            t.read_global::<f64>(D as u64);
            let q: [f64; D] = std::array::from_fn(|k| self.points.coords[k][pi]);
            t.charge_flops(2 * D as u64);

            let mut local = 0u64;
            traverse_eps(t, self.points, &self.tree, &q, self.eps, &mut |_, hits| {
                local += hits.len() as u64
            });
            // One atomic per thread, not per hit.
            t.charge_atomic();
            self.counter.add(local);
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{brute_force_pairs, estimate_result_capacity, mixed_points};
    use super::*;
    use gpu_sim::Device;
    use spatial::{GridIndex, PackedKdTree, Point2, PointN, PointStore, PointStoreN};

    fn nd_points<const D: usize>(n: usize, extent: f64) -> Vec<PointN<D>> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                PointN::new(std::array::from_fn(|k| {
                    (t * (0.357 + 0.191 * k as f64)).fract() * extent
                }))
            })
            .collect()
    }

    fn brute_pairs_nd<const D: usize>(data: &[PointN<D>], eps: f64) -> Vec<(u32, u32)> {
        let eps_sq = eps * eps;
        let mut out = Vec::new();
        for (i, p) in data.iter().enumerate() {
            for (j, q) in data.iter().enumerate() {
                if p.distance_sq(q) <= eps_sq {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn run_tree_kernel<const D: usize>(
        data: &[PointN<D>],
        eps: f64,
        n_batches: usize,
    ) -> Vec<(u32, u32)> {
        let device = Device::k20c();
        let store = PointStoreN::from_points(data);
        let tree = PackedKdTree::<D>::build(store.view());
        let counter = DeviceCounter::new(&device).unwrap();
        let count = TreeCountKernel {
            points: store.view(),
            tree: tree.view(),
            eps,
            stride: 1,
            counter: &counter,
        };
        device.launch(count.launch_config(256), &count).unwrap();
        let cap = counter.get() as usize + 64;
        let mut result = DeviceAppendBuffer::new(&device, cap).unwrap();
        for batch in 0..n_batches {
            let kernel = GpuCalcTree {
                points: store.view(),
                tree: tree.view(),
                eps,
                batch,
                n_batches,
                result: &result,
            };
            device.launch(kernel.launch_config(256), &kernel).unwrap();
        }
        assert!(!result.overflowed());
        let mut pairs = result.as_filled_slice().to_vec();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn matches_brute_force_2d() {
        let data = nd_points::<2>(300, 8.0);
        for eps in [0.3, 1.0, 2.5] {
            assert_eq!(run_tree_kernel(&data, eps, 1), brute_pairs_nd(&data, eps));
        }
    }

    #[test]
    fn matches_brute_force_3d_and_4d() {
        let p3 = nd_points::<3>(250, 5.0);
        let p4 = nd_points::<4>(180, 4.0);
        for eps in [0.6, 1.2] {
            assert_eq!(run_tree_kernel(&p3, eps, 1), brute_pairs_nd(&p3, eps));
            assert_eq!(run_tree_kernel(&p4, eps, 1), brute_pairs_nd(&p4, eps));
        }
    }

    #[test]
    fn batched_union_equals_unbatched() {
        let data = nd_points::<3>(400, 4.0);
        let eps = 0.8;
        let unbatched = run_tree_kernel(&data, eps, 1);
        for n_batches in [2, 3, 5, 7] {
            assert_eq!(
                run_tree_kernel(&data, eps, n_batches),
                unbatched,
                "n_batches = {n_batches}"
            );
        }
    }

    #[test]
    fn pairs_match_grid_kernel_exactly_in_2d() {
        // The tree backend must produce the *same pair set* as the grid
        // backend on the same (pre-sorted) database — the foundation of
        // the bitwise neighbor-table guarantee.
        let data2: Vec<Point2> = mixed_points(400);
        let eps = 0.7;
        let device = Device::k20c();
        let grid = GridIndex::build(&data2, eps);
        let store = PointStore::from_points(&data2);
        let cap = estimate_result_capacity(&device, &store, &grid, eps);
        let mut result = DeviceAppendBuffer::new(&device, cap).unwrap();
        let kernel = super::super::GpuCalcGlobal {
            points: store.view(),
            grid: grid.cells_view(),
            lookup: grid.lookup(),
            geom: grid.geometry(),
            eps,
            batch: 0,
            n_batches: 1,
            result: &result,
            skip_dense_at: None,
        };
        device.launch(kernel.launch_config(256), &kernel).unwrap();
        assert!(!result.overflowed());
        let mut grid_pairs = result.as_filled_slice().to_vec();
        grid_pairs.sort_unstable();

        let datan: Vec<PointN<2>> = data2.iter().map(|&p| PointN::from(p)).collect();
        let tree_pairs = run_tree_kernel(&datan, eps, 1);
        assert_eq!(tree_pairs, grid_pairs);
        assert_eq!(tree_pairs, brute_force_pairs(&data2, eps));
    }

    #[test]
    fn count_kernel_is_exact_at_stride_one() {
        let data = nd_points::<3>(300, 4.0);
        let eps = 0.9;
        let device = Device::k20c();
        let store = PointStoreN::from_points(&data);
        let tree = PackedKdTree::<3>::build(store.view());
        let counter = DeviceCounter::new(&device).unwrap();
        let kernel = TreeCountKernel {
            points: store.view(),
            tree: tree.view(),
            eps,
            stride: 1,
            counter: &counter,
        };
        let report = device.launch(kernel.launch_config(256), &kernel).unwrap();
        assert_eq!(counter.get() as usize, brute_pairs_nd(&data, eps).len());
        // The estimation kernel writes no result set.
        assert_eq!(report.counters.global_write_bytes, 0);
    }

    #[test]
    fn traversal_charges_dependent_reads() {
        // The tree kernel's defining cost: modeled cycles must exceed a
        // hypothetical kernel doing the same reads without the dependent
        // surcharge. Cheap sanity proxy: the kernel must report nonzero
        // read traffic and run longer on a deeper tree (more points).
        let small = nd_points::<2>(64, 4.0);
        let large = nd_points::<2>(4096, 4.0);
        let device = Device::k20c();
        let time_of = |data: &[PointN<2>]| {
            let store = PointStoreN::from_points(data);
            let tree = PackedKdTree::<2>::build(store.view());
            let counter = DeviceCounter::new(&device).unwrap();
            let kernel = TreeCountKernel {
                points: store.view(),
                tree: tree.view(),
                eps: 0.5,
                stride: 1,
                counter: &counter,
            };
            let report = device.launch(kernel.launch_config(256), &kernel).unwrap();
            assert!(report.counters.global_read_bytes > 0);
            report.duration
        };
        assert!(time_of(&large) > time_of(&small));
    }

    #[test]
    fn overflow_is_reported_not_lost() {
        let data = nd_points::<2>(200, 3.0);
        let device = Device::k20c();
        let store = PointStoreN::from_points(&data);
        let tree = PackedKdTree::<2>::build(store.view());
        let result = DeviceAppendBuffer::new(&device, 10).unwrap();
        let kernel = GpuCalcTree {
            points: store.view(),
            tree: tree.view(),
            eps: 1.0,
            batch: 0,
            n_batches: 1,
            result: &result,
        };
        device.launch(kernel.launch_config(256), &kernel).unwrap();
        assert!(result.overflowed());
        assert!(result.rejected() > 0);
    }
}

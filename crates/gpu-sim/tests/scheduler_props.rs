//! Property-based tests of the stream scheduler and timeline: the
//! overlap machinery must never violate ordering constraints, and its
//! makespan must always fall between the theoretical bounds.

use gpu_sim::stream::{schedule_chains, OpSpec};
use gpu_sim::time::SimDuration;
use gpu_sim::timeline::{Engine, Timeline};
use proptest::prelude::*;
use std::collections::HashMap;

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    (0u8..4, 1u32..1000).prop_map(|(engine, ms)| {
        let engine = match engine {
            0 => Engine::H2D,
            1 => Engine::Compute,
            2 => Engine::D2H,
            _ => Engine::Host(0),
        };
        OpSpec::new(engine, SimDuration::from_millis(ms as f64), "op")
    })
}

fn chains_strategy() -> impl Strategy<Value = Vec<Vec<OpSpec>>> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 0..6), 0..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn schedule_respects_all_orderings(chains in chains_strategy(), n_streams in 1usize..5) {
        let mut timeline = Timeline::new(3);
        let schedule = schedule_chains(&mut timeline, &chains, n_streams);

        // Every operation scheduled exactly once.
        let total_ops: usize = chains.iter().map(|c| c.len()).sum();
        prop_assert_eq!(schedule.ops.len(), total_ops);

        // Within a chain, operations run in order.
        for (chain, chain_ops) in chains.iter().enumerate() {
            let mut ops: Vec<_> = schedule.ops.iter().filter(|o| o.chain == chain).collect();
            ops.sort_by_key(|o| o.op_index);
            prop_assert_eq!(ops.len(), chain_ops.len());
            for w in ops.windows(2) {
                prop_assert!(
                    w[1].start >= w[0].end,
                    "chain {} op {} started before op {} ended",
                    chain, w[1].op_index, w[0].op_index
                );
            }
        }

        // Engines never run two operations at once.
        let mut by_engine: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
        for op in &schedule.ops {
            by_engine
                .entry(format!("{:?}", op.engine))
                .or_default()
                .push((op.start.as_secs(), op.end.as_secs()));
        }
        for (engine, mut spans) in by_engine {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                prop_assert!(
                    w[1].0 >= w[0].1 - 1e-12,
                    "engine {} overlaps: {:?} then {:?}", engine, w[0], w[1]
                );
            }
        }

        // A stream runs its chains in issue order.
        for s in 0..n_streams {
            let mut chain_spans: HashMap<usize, (f64, f64)> = HashMap::new();
            for op in schedule.ops.iter().filter(|o| o.stream == s) {
                let e = chain_spans.entry(op.chain).or_insert((f64::MAX, 0.0));
                e.0 = e.0.min(op.start.as_secs());
                e.1 = e.1.max(op.end.as_secs());
            }
            let mut chains_on_stream: Vec<_> = chain_spans.into_iter().collect();
            chains_on_stream.sort_by_key(|(c, _)| *c);
            for w in chains_on_stream.windows(2) {
                prop_assert!(
                    w[1].1 .0 >= w[0].1 .1 - 1e-12,
                    "stream {} chain {} started before chain {} finished",
                    s, w[1].0, w[0].0
                );
            }
        }
    }

    #[test]
    fn makespan_is_bounded(chains in chains_strategy(), n_streams in 1usize..5) {
        let mut timeline = Timeline::new(3);
        let schedule = schedule_chains(&mut timeline, &chains, n_streams);

        // Upper bound: fully serialized execution.
        let serial: f64 = chains
            .iter()
            .flatten()
            .map(|op| op.duration.as_secs())
            .sum();
        prop_assert!(schedule.makespan.as_secs() <= serial + 1e-9);

        // Lower bounds: the busiest engine, and the longest chain.
        let mut engine_load: HashMap<String, f64> = HashMap::new();
        for op in chains.iter().flatten() {
            // Host lanes spread over 3 lanes; skip them in this bound.
            if !matches!(op.engine, Engine::Host(_)) {
                *engine_load.entry(format!("{:?}", op.engine)).or_default() +=
                    op.duration.as_secs();
            }
        }
        let busiest = engine_load.values().cloned().fold(0.0, f64::max);
        prop_assert!(schedule.makespan.as_secs() >= busiest - 1e-9);

        let longest_chain = chains
            .iter()
            .map(|c| c.iter().map(|op| op.duration.as_secs()).sum::<f64>())
            .fold(0.0, f64::max);
        prop_assert!(schedule.makespan.as_secs() >= longest_chain - 1e-9);
    }

    #[test]
    fn more_streams_never_slow_the_schedule_down_much(chains in chains_strategy()) {
        // Greedy scheduling is not optimal, but 3 streams should never be
        // dramatically worse than 1 (sanity on the overlap machinery).
        let mut t1 = Timeline::new(3);
        let one = schedule_chains(&mut t1, &chains, 1);
        let mut t3 = Timeline::new(3);
        let three = schedule_chains(&mut t3, &chains, 3);
        prop_assert!(
            three.makespan.as_secs() <= one.makespan.as_secs() * 1.5 + 1e-9,
            "3 streams {} vs 1 stream {}",
            three.makespan.as_secs(),
            one.makespan.as_secs()
        );
    }
}

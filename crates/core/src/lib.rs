//! # hybrid-dbscan-core
//!
//! The paper's primary contribution: **Hybrid-DBSCAN** — GPU-accelerated
//! construction of the ε-neighborhood *neighbor table* `T`, an efficient
//! batching scheme that fits arbitrarily large result sets in limited GPU
//! memory, and host-side DBSCAN variants that consume `T` to maximize
//! clustering throughput.
//!
//! Module map (paper section in parentheses):
//!
//! * [`dbscan`] — Algorithm 1 over pluggable neighbor sources; cluster
//!   label containers and equivalence checks (§II-A).
//! * [`table`] — the neighbor table `T` (`[T_min, T_max]` ranges into the
//!   value array `B`) and its batched builder (§V).
//! * [`kernels`] — `GPUCalcGlobal` (Algorithm 2), `GPUCalcShared`
//!   (Algorithm 3), and the result-size estimation kernel (§IV, §VI).
//! * [`batch`] — the batching scheme: Equation 1, the α overestimation
//!   factor, static/variable buffer sizing, strided batch assignment
//!   (§VI, Figure 2).
//! * [`hybrid`] — Algorithm 4 end-to-end with 3-stream overlap (§V, §VI).
//! * [`pipeline`] — the multi-clustering producer-consumer pipeline,
//!   scenario S2 (§VII-E).
//! * [`reuse`] — neighbor-table reuse across `minpts` values, scenario S3
//!   (§VII-F).
//! * [`reference`] — the sequential R-tree DBSCAN the paper compares
//!   against, with neighbor-search time accounting (Table I).
//! * [`scenario`] — the published experiment parameter sets
//!   (Tables III and V).
//!
//! Extensions beyond the paper (DESIGN.md §5):
//!
//! * [`optics`] — OPTICS and its ε'-cut extraction, the technique the
//!   paper positions S3 against.
//! * [`disjoint_set`] — a lock-free union-find DBSCAN that parallelizes a
//!   *single* clustering over the GPU-built table (after Patwary et al.,
//!   the paper's reference [9]).
//! * [`gdbscan`] — G-DBSCAN (Andrade et al., the paper's reference [6]):
//!   the "cluster entirely on the GPU" competitor family, for head-to-head
//!   comparison with the hybrid approach.
//! * [`cuda_dclust`] — CUDA-DClust (Böhm et al., the paper's reference
//!   [5]): parallel chain expansion with host-side collision resolution,
//!   the original member of that family.
//! * [`oracle`] — brute-force exact-DBSCAN ground truth (core/border/noise
//!   classification, core components, validity and equivalence checks)
//!   backing the differential test harness in `tests/differential/`.
//! * [`shard`] — the sharded pipeline: ε-halo slab partitioning, one
//!   simulated device per shard (or sequential out-of-core tiling through
//!   one device), and the exact cross-shard table merge (DESIGN.md §14).
//! * [`backend`] — ε-search backend selection: grid vs packed kd-tree
//!   ([`kernels::GpuCalcTree`]), explicit or `Auto` from deterministic
//!   sampled cell statistics, recorded in provenance (DESIGN.md §16).
//! * [`nd`] — the hybrid table build and DBSCAN over d ∈ {2, 3, 4}
//!   data (`PointN<D>`), with either backend (DESIGN.md §16).

pub mod backend;
pub mod batch;
pub mod cuda_dclust;
pub mod dbscan;
pub mod disjoint_set;
pub mod gdbscan;
pub mod hybrid;
pub mod kernels;
pub mod nd;
pub mod optics;
pub mod oracle;
pub mod pipeline;
pub mod reference;
pub mod reuse;
pub mod scenario;
pub mod shard;
pub mod table;

pub use backend::{BackendDecision, ChosenBackend, IndexBackend};
pub use dbscan::{Clustering, Dbscan, PointLabel};
pub use hybrid::{HybridConfig, HybridDbscan, HybridResult};
pub use shard::{clustering_fingerprint, table_fingerprint, ShardConfig, ShardMode, ShardedHybrid};
pub use table::NeighborTable;

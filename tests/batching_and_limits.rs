//! Integration tests of the batching scheme against device memory limits:
//! buffer overflows must never corrupt results, constrained devices must
//! still cluster correctly, and the scheme's structural promises
//! (consistent batch sizes, pinned staging reuse) must hold end to end.

use hybrid_dbscan::core::batch::BatchConfig;
use hybrid_dbscan::core::hybrid::{HybridConfig, HybridDbscan, HybridError, KernelChoice};
use hybrid_dbscan::core::reference::ReferenceDbscan;
use hybrid_dbscan::datasets::spec;
use hybrid_dbscan::gpu_sim::error::DeviceError;
use hybrid_dbscan::gpu_sim::Device;
use hybrid_dbscan::spatial::Point2;

fn data(name: &str, scale: f64) -> Vec<Point2> {
    spec::by_name(name).unwrap().generate(scale).points
}

#[test]
fn default_alpha_never_needs_retries() {
    // The paper's claim: with the strided assignment and alpha = 0.05,
    // batch result sizes are consistent enough that buffers never
    // overflow. Verify over both dataset classes and several eps.
    let device = Device::k20c();
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    for name in ["SW1", "SDSS1"] {
        let d = data(name, 0.002);
        for eps in [0.1, 0.5, 1.0] {
            let handle = hybrid.build_table(&d, eps).unwrap();
            assert_eq!(handle.gpu.retries, 0, "{name} eps={eps} needed retries");
        }
    }
}

#[test]
fn batch_sizes_are_consistent() {
    // |R_l| should be within ~2x of each other thanks to the strided
    // uniform sampling (the property that lets alpha stay at 5%).
    let device = Device::k20c();
    let d = data("SW1", 0.003);
    let cfg = HybridConfig {
        batch: BatchConfig {
            static_threshold: 0,
            static_buffer_items: 40_000,
            ..BatchConfig::default()
        },
        ..HybridConfig::default()
    };
    let hybrid = HybridDbscan::new(&device, cfg);
    let handle = hybrid.build_table(&d, 0.4).unwrap();
    assert!(
        handle.gpu.n_batches >= 4,
        "need several batches, got {}",
        handle.gpu.n_batches
    );
    // Total pairs spread over n_b batches: every batch must have fit in
    // the buffer, and the average utilization should be substantial.
    let avg = handle.gpu.result_pairs / handle.gpu.n_batches;
    assert!(avg <= 40_000);
    assert!(
        avg * 3 >= 40_000,
        "buffers badly under-filled: avg {} of 40000",
        avg
    );
}

#[test]
fn tiny_device_still_clusters_correctly() {
    // 2 MB of "global memory": D + G + A + three result buffers must be
    // squeezed in by the memory-fitting logic, at the price of more
    // batches.
    let d = data("SDSS1", 0.002);
    let device = Device::tiny(2 * 1024 * 1024);
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    let result = hybrid.run(&d, 0.5, 4).unwrap();
    assert!(result.gpu.n_batches > 1, "tiny device must batch");
    let reference = ReferenceDbscan::new(0.5, 4).run(&d);
    assert_eq!(result.clustering.labels(), reference.clustering.labels());
    assert_eq!(device.used_bytes(), 0);
}

#[test]
fn impossible_device_reports_out_of_memory() {
    // Too small even for the input data.
    let d = data("SDSS1", 0.002);
    let device = Device::tiny(1024);
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    match hybrid.run(&d, 0.5, 4) {
        Err(HybridError::Device(DeviceError::OutOfMemory { .. })) => {}
        other => panic!("expected OutOfMemory, got {other:?}"),
    }
    assert_eq!(
        device.used_bytes(),
        0,
        "failed runs must not leak device memory"
    );
}

#[test]
fn shared_kernel_respects_tiny_buffers_via_packing() {
    // The load-bound cell packing must keep the shared kernel inside its
    // buffers even when a single dense cell dominates.
    let mut d = data("SW1", 0.002);
    // Add an extreme clump: 800 coincident-ish points in one cell.
    for i in 0..800 {
        d.push(Point2::new(
            5.0 + (i % 10) as f64 * 1e-4,
            5.0 + (i / 10) as f64 * 1e-4,
        ));
    }
    let device = Device::k20c();
    let cfg = HybridConfig {
        kernel: KernelChoice::Shared,
        batch: BatchConfig {
            static_threshold: 0,
            static_buffer_items: 10_000, // far below the clump's 640k pairs
            ..BatchConfig::default()
        },
        ..HybridConfig::default()
    };
    let hybrid = HybridDbscan::new(&device, cfg);
    let result = hybrid.run(&d, 0.3, 4).unwrap();
    let reference = ReferenceDbscan::new(0.3, 4).run(&d);
    assert_eq!(result.clustering.labels(), reference.clustering.labels());
}

#[test]
fn result_pairs_scale_with_eps() {
    // Larger eps -> strictly more neighbor pairs (monotone result sets).
    let device = Device::k20c();
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    let d = data("SDSS1", 0.002);
    let mut last = 0;
    for eps in [0.1, 0.2, 0.4, 0.8] {
        let handle = hybrid.build_table(&d, eps).unwrap();
        assert!(
            handle.gpu.result_pairs >= last,
            "pairs must grow with eps: {} then {}",
            last,
            handle.gpu.result_pairs
        );
        last = handle.gpu.result_pairs;
    }
    // Self-pairs are a hard floor.
    assert!(last >= d.len(), "every point pairs with itself at least");
}

#[test]
fn modeled_gpu_time_grows_with_workload() {
    let device = Device::k20c();
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    let d = data("SDSS1", 0.002);
    let small = hybrid.build_table(&d, 0.1).unwrap();
    let large = hybrid.build_table(&d, 1.0).unwrap();
    assert!(large.gpu.modeled_time > small.gpu.modeled_time);
    assert!(large.gpu.result_pairs > 10 * small.gpu.result_pairs);
}

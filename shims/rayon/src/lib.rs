//! Offline stand-in for `rayon`.
//!
//! The workspace uses rayon for *throughput*, never for semantics: every
//! `par_iter`/`into_par_iter` site is a pure map/reduce over independent
//! items (simulated thread blocks, union-find phases, device-side sorts).
//! This shim keeps the exact call-site API but executes sequentially by
//! returning the corresponding `std` iterators, which preserves results
//! bit-for-bit (and even strengthens determinism). Host wall-clock numbers
//! are slower; all *modeled* device times are unaffected, because those
//! are computed analytically from cost counters, not measured.
//!
//! [`current_num_threads`] truthfully reports `1` so tests that assert on
//! real block overlap know to skip themselves.

/// Number of worker threads in the (sequential) pool: always 1.
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    /// `into_par_iter()` — sequential: any `IntoIterator` already qualifies.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }
    impl<I: IntoIterator + Sized> IntoParallelIterator for I {}

    /// `par_iter()` over a slice — sequential `slice::iter`.
    pub trait IntoParallelRefIterator {
        type Item;
        fn par_iter(&self) -> std::slice::Iter<'_, Self::Item>;
    }
    impl<T> IntoParallelRefIterator for [T] {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }
    }
    impl<T> IntoParallelRefIterator for Vec<T> {
        type Item = T;
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.as_slice().iter()
        }
    }

    /// `par_iter_mut()` over a slice — sequential `slice::iter_mut`.
    pub trait IntoParallelRefMutIterator {
        type Item;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, Self::Item>;
    }
    impl<T> IntoParallelRefMutIterator for [T] {
        type Item = T;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }
    }
    impl<T> IntoParallelRefMutIterator for Vec<T> {
        type Item = T;
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.as_mut_slice().iter_mut()
        }
    }

    /// `par_sort_unstable` and friends — sequential `sort_unstable`.
    pub trait ParallelSliceMut<T> {
        fn as_seq_mut_slice(&mut self) -> &mut [T];

        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.as_seq_mut_slice().sort_unstable();
        }

        fn par_sort_unstable_by<F: FnMut(&T, &T) -> std::cmp::Ordering>(&mut self, compare: F) {
            self.as_seq_mut_slice().sort_unstable_by(compare);
        }

        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
            self.as_seq_mut_slice().sort_unstable_by_key(key);
        }
    }
    impl<T> ParallelSliceMut<T> for [T] {
        fn as_seq_mut_slice(&mut self) -> &mut [T] {
            self
        }
    }
    impl<T> ParallelSliceMut<T> for Vec<T> {
        fn as_seq_mut_slice(&mut self) -> &mut [T] {
            self.as_mut_slice()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn api_parity_smoke() {
        let v: Vec<u32> = (0u32..100).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v.len(), 100);
        let s: u32 = v.par_iter().sum();
        assert_eq!(s, 9900);
        let mut pairs = vec![(3u32, 1u32), (1, 2), (2, 0)];
        pairs.par_sort_unstable();
        assert_eq!(pairs, vec![(1, 2), (2, 0), (3, 1)]);
        assert_eq!(super::current_num_threads(), 1);
    }
}

//! Criterion benches for the multi-clustering pipeline and table reuse:
//! wall time of the actually-concurrent executions (the modeled totals
//! are covered by `repro figure4`/`figure5`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::Device;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan_core::pipeline::{MultiClusterPipeline, PipelineConfig};
use hybrid_dbscan_core::reuse::TableReuse;
use hybrid_dbscan_core::scenario::Variant;

fn bench_pipeline(c: &mut Criterion) {
    let device = Device::k20c();
    let data = datasets::spec::SDSS1.generate(0.002).points;
    let variants: Vec<Variant> = [0.2, 0.35, 0.5, 0.65, 0.8]
        .iter()
        .map(|&e| Variant::new(e, 4))
        .collect();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for consumers in [1usize, 3] {
        group.bench_with_input(
            BenchmarkId::new("consumers", consumers),
            &consumers,
            |b, &consumers| {
                let pipeline = MultiClusterPipeline::new(
                    &device,
                    PipelineConfig {
                        consumers,
                        ..Default::default()
                    },
                );
                b.iter(|| pipeline.run(&data, &variants).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_reuse(c: &mut Criterion) {
    let device = Device::k20c();
    let data = datasets::spec::SDSS1.generate(0.002).points;
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    let handle = hybrid.build_table(&data, 0.4).unwrap();
    let minpts: Vec<usize> = (1..=16).map(|k| k * 8).collect();

    let mut group = c.benchmark_group("table-reuse");
    group.sample_size(10);
    group.bench_function("measure-variants", |b| {
        b.iter(|| TableReuse::cluster_variants(&handle, &minpts))
    });
    for threads in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| TableReuse::run_concurrent(&handle, &minpts, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_reuse);
criterion_main!(benches);

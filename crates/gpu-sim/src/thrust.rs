//! Device-side primitives in the style of the CUDA Thrust library.
//!
//! Algorithm 4 of the paper leaves the kernel's result set on the GPU and
//! sorts it by key with `thrust::sort_by_key` so identical keys become
//! adjacent before the D2H transfer. We reproduce the *contract* (stable
//! grouping of keys, executed "on the device") and the *cost* (a modeled
//! device duration derived from radix-sort throughput); the functional
//! sort runs on the host pool.

use crate::device::Device;
use crate::time::SimDuration;
use rayon::prelude::*;

/// Sustained pair-sort throughput of a Kepler-class device running Thrust
/// radix sort on 8-byte key/value pairs, pairs per second.
const SORT_PAIRS_PER_SEC: f64 = 500.0e6;
/// Fixed overhead of a device sort invocation (temporary allocation,
/// kernel launches of the radix passes).
const SORT_OVERHEAD_US: f64 = 30.0;

/// Modeled duration of a device `sort_by_key` over `n` pairs.
pub fn sort_by_key_time(n: usize) -> SimDuration {
    SimDuration::from_micros(SORT_OVERHEAD_US)
        + SimDuration::from_secs(n as f64 / SORT_PAIRS_PER_SEC)
}

/// Sort `(key, value)` pairs by key on the device, returning the modeled
/// device duration.
///
/// Ordering is total (`(key, value)` lexicographic) so results are
/// deterministic even though append order into the source
/// `DeviceAppendBuffer` varies with host thread interleaving — this is
/// the canonicalization step the threading determinism policy (DESIGN.md)
/// requires of every append-buffer consumer. A total order has exactly
/// one sorted arrangement, so *any* correct sort produces the same
/// output; the functional sort here is an LSD radix sort over the packed
/// `(key << 32) | value` u64 — the same algorithm Thrust's `sort_by_key`
/// actually runs, and several times faster on the host than a
/// comparison sort because the pair comparator never executes.
///
/// The host-side sort does **not** hold the device `compute_lock`: its
/// modeled Compute-engine serialization is enforced where it belongs, on
/// the `schedule_chains` timeline ("sort" ops occupy `Engine::Compute`),
/// while the functional sort parallelizes freely on the pool so one
/// stream's sort can overlap another stream's kernel wall-clock.
pub fn sort_by_key(_device: &Device, pairs: &mut [(u32, u32)]) -> SimDuration {
    radix_sort_pairs(pairs);
    sort_by_key_time(pairs.len())
}

/// Number of pairs below which the std comparison sort beats the radix
/// passes' fixed costs (two scratch arrays, four 64 Ki histograms).
const RADIX_MIN_PAIRS: usize = 1 << 12;
/// Number of pairs below which the parallel scatter machinery (per-chunk
/// histograms, offset matrix, pool dispatch) costs more than it saves.
/// Below it the serial paths run — the output is identical either way
/// (total order ⇒ every correct sort is bitwise-canonical).
const RADIX_PAR_MIN_PAIRS: usize = 1 << 16;

/// LSD radix sort of `(u32, u32)` pairs in `(key, value)` lexicographic
/// order: pack each pair into `(key << 32) | value` (u64 order ≡ pair
/// order), then four stable counting passes over 16-bit digits, least
/// significant first. A pass whose digit is constant across the input is
/// detected from its histogram and skipped — result-set keys/values
/// rarely fill all 32 bits, so small inputs usually run 2 of 4 passes.
fn radix_sort_pairs(pairs: &mut [(u32, u32)]) {
    let n = pairs.len();
    if n < RADIX_MIN_PAIRS {
        pairs.sort_unstable();
        return;
    }
    let parallel = n >= RADIX_PAR_MIN_PAIRS && rayon::current_num_threads() > 1;
    // Presorted-key regime: kernels append result chunks in thread order,
    // so with few host threads the buffer's *keys* are already
    // non-decreasing — only the values inside each equal-key run need
    // ordering. One O(n) check buys skipping the grouping passes
    // entirely; with more interleaving the check fails and the generic
    // paths below produce the identical total order.
    if pairs.is_sorted_by_key(|&(k, _)| k) {
        if parallel {
            sort_value_runs_parallel(pairs);
        } else {
            sort_value_runs(pairs);
        }
        return;
    }
    // Dense-key regime (result sets: keys are point ids, so
    // max_key < |D| ≲ n): one stable counting pass groups the keys, then
    // each key's value run sorts locally — O(n + Σ r·log r) with
    // cache-resident run sorts, beating full-width radix passes.
    let max_key = pairs.iter().map(|&(k, _)| k).max().unwrap_or(0) as usize;
    if max_key < 4 * n {
        if parallel {
            par_counting_sort_by_key(pairs, max_key + 1);
        } else {
            counting_sort_by_key(pairs, max_key + 1);
        }
        return;
    }
    if parallel {
        par_radix_sort_u64(pairs);
        return;
    }
    let mut src: Vec<u64> = pairs
        .iter()
        .map(|&(k, v)| (u64::from(k) << 32) | u64::from(v))
        .collect();
    let mut dst: Vec<u64> = vec![0u64; n];
    for pass in 0..4 {
        let shift = pass * 16;
        let mut hist = vec![0u32; 1 << 16];
        for &x in &src {
            hist[((x >> shift) & 0xFFFF) as usize] += 1;
        }
        // Constant digit ⇒ the scatter would be the identity permutation.
        if hist[((src[0] >> shift) & 0xFFFF) as usize] as usize == n {
            continue;
        }
        let mut offset = 0u32;
        for h in hist.iter_mut() {
            let count = *h;
            *h = offset;
            offset += count;
        }
        for &x in &src {
            let d = ((x >> shift) & 0xFFFF) as usize;
            dst[hist[d] as usize] = x;
            hist[d] += 1;
        }
        std::mem::swap(&mut src, &mut dst);
    }
    for (p, &x) in pairs.iter_mut().zip(&src) {
        *p = ((x >> 32) as u32, x as u32);
    }
}

/// Shared mutable base pointer for parallel scatters whose destination
/// indices are proven disjoint across chunks by the offset construction.
#[derive(Clone, Copy)]
struct ScatterPtr<T>(*mut T);
// SAFETY: every parallel writer targets indices carved out for it alone
// (digit-major, chunk-minor offset windows / disjoint key runs).
unsafe impl<T: Send> Send for ScatterPtr<T> {}
unsafe impl<T: Send> Sync for ScatterPtr<T> {}

impl<T> ScatterPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}

/// Source chunk count for the parallel passes. The output is invariant
/// to this value — the stable scatter with chunk-major offsets
/// reproduces exactly the serial left-to-right order — so it may track
/// the thread count without breaking bitwise thread-equivalence.
fn par_sort_chunks(n: usize) -> usize {
    (2 * rayon::current_num_threads())
        .min(n.div_ceil(1 << 15))
        .clamp(1, 64)
}

/// Per-chunk digit histograms: `hists[c][d]` = occurrences of digit `d`
/// in source chunk `c`. Each chunk's histogram is a pure function of its
/// slice, so the parallel map is deterministic.
fn par_digit_histograms<T, D>(
    src: &[T],
    n_chunks: usize,
    n_digits: usize,
    digit: &D,
) -> Vec<Vec<u32>>
where
    T: Sync,
    D: Fn(&T) -> usize + Sync,
{
    let n = src.len();
    let chunk_len = n.div_ceil(n_chunks);
    (0..n_chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(n);
            let mut hist = vec![0u32; n_digits];
            for x in &src[lo..hi] {
                hist[digit(x)] += 1;
            }
            hist
        })
        .collect()
}

/// Turn per-chunk histograms into per-chunk scatter cursors, in place:
/// `hists[c][d]` becomes the destination index of chunk `c`'s first
/// element with digit `d`. Digit-major, chunk-minor — precisely the
/// order a serial stable counting pass emits, so the parallel scatter is
/// a bit-exact reproduction of it. Returns the exclusive digit starts
/// (`starts[d]..starts[d+1]` = digit `d`'s run).
fn offsets_in_place(hists: &mut [Vec<u32>], n_digits: usize) -> Vec<u32> {
    let mut starts = Vec::with_capacity(n_digits + 1);
    let mut total = 0u32;
    for d in 0..n_digits {
        starts.push(total);
        for hist in hists.iter_mut() {
            let count = hist[d];
            hist[d] = total;
            total += count;
        }
    }
    starts.push(total);
    starts
}

/// One parallel stable counting pass: scatter `src` into `dst` ordered by
/// `digit`, stable within equal digits. Chunks write disjoint destination
/// windows (see [`offsets_in_place`]) so the pass is race-free and
/// byte-identical to the serial scatter.
fn par_stable_scatter<T, D>(src: &[T], dst: &mut [T], offsets: &mut [Vec<u32>], digit: &D)
where
    T: Copy + Send + Sync,
    D: Fn(&T) -> usize + Sync,
{
    let n = src.len();
    let n_chunks = offsets.len();
    let chunk_len = n.div_ceil(n_chunks);
    let base = ScatterPtr(dst.as_mut_ptr());
    offsets.par_iter_mut().enumerate().for_each(|(c, cursor)| {
        let lo = c * chunk_len;
        let hi = (lo + chunk_len).min(n);
        for x in &src[lo..hi] {
            let d = digit(x);
            // SAFETY: cursor[d] walks this chunk's private window for
            // digit d; windows are disjoint across (chunk, digit).
            unsafe { base.get().add(cursor[d] as usize).write(*x) };
            cursor[d] += 1;
        }
    });
}

/// Parallel LSD radix sort over the packed `(key << 32) | value` u64:
/// four 16-bit passes, each a per-chunk-histogram-partitioned stable
/// scatter, with the serial path's constant-digit skip. Produces the
/// unique `(key, value)` total order — bit-identical to the serial sort.
fn par_radix_sort_u64(pairs: &mut [(u32, u32)]) {
    let n = pairs.len();
    let n_chunks = par_sort_chunks(n);
    let mut src: Vec<u64> = pairs
        .par_iter()
        .map(|&(k, v)| (u64::from(k) << 32) | u64::from(v))
        .collect();
    let mut dst: Vec<u64> = vec![0u64; n];
    for pass in 0..4 {
        let shift = pass * 16;
        let digit = |x: &u64| ((x >> shift) & 0xFFFF) as usize;
        let mut hists = par_digit_histograms(&src, n_chunks, 1 << 16, &digit);
        // Constant digit ⇒ the scatter would be the identity permutation.
        let d0 = digit(&src[0]);
        let d0_total: u32 = hists.iter().map(|h| h[d0]).sum();
        if d0_total as usize == n {
            continue;
        }
        offsets_in_place(&mut hists, 1 << 16);
        par_stable_scatter(&src, &mut dst, &mut hists, &digit);
        std::mem::swap(&mut src, &mut dst);
    }
    let base = ScatterPtr(pairs.as_mut_ptr());
    let chunk_len = n.div_ceil(n_chunks);
    (0..n_chunks).into_par_iter().for_each(|c| {
        let lo = c * chunk_len;
        let hi = (lo + chunk_len).min(n);
        for (i, &x) in src[lo..hi].iter().enumerate() {
            // SAFETY: chunks unpack disjoint index ranges.
            unsafe { base.get().add(lo + i).write(((x >> 32) as u32, x as u32)) };
        }
    });
}

/// Parallel counting sort on the key: a histogram-partitioned stable
/// scatter of the values into per-key runs, parallel in-run value sorts
/// (runs are disjoint), and a parallel key write-back over disjoint run
/// ranges. Same structure — and bit-identical output — as the serial
/// [`counting_sort_by_key`].
fn par_counting_sort_by_key(pairs: &mut [(u32, u32)], n_keys: usize) {
    let n = pairs.len();
    let n_chunks = par_sort_chunks(n)
        // Keep the per-chunk histograms (n_chunks × n_keys u32) bounded
        // by the input's own footprint.
        .min((2 * n).div_ceil(n_keys))
        .max(1);
    if n_chunks < 2 {
        counting_sort_by_key(pairs, n_keys);
        return;
    }
    let digit = |p: &(u32, u32)| p.0 as usize;
    let mut hists = par_digit_histograms(pairs, n_chunks, n_keys, &digit);
    let starts = offsets_in_place(&mut hists, n_keys);

    // Stable scatter of the values into their key runs.
    let mut values = vec![0u32; n];
    {
        let base = ScatterPtr(values.as_mut_ptr());
        let chunk_len = n.div_ceil(n_chunks);
        hists.par_iter_mut().enumerate().for_each(|(c, cursor)| {
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(n);
            for &(k, v) in &pairs[lo..hi] {
                // SAFETY: disjoint (chunk, key) windows, as above.
                unsafe { base.get().add(cursor[k as usize] as usize).write(v) };
                cursor[k as usize] += 1;
            }
        });
    }

    // Sort each key's value run and write the keys back; key ranges are
    // chunked so both loops touch disjoint regions of `values`/`pairs`.
    let key_chunks = (8 * rayon::current_num_threads()).clamp(1, 256);
    let keys_per_chunk = n_keys.div_ceil(key_chunks);
    let vals = ScatterPtr(values.as_mut_ptr());
    let out = ScatterPtr(pairs.as_mut_ptr());
    (0..key_chunks).into_par_iter().for_each(|kc| {
        let k_lo = kc * keys_per_chunk;
        let k_hi = (k_lo + keys_per_chunk).min(n_keys);
        for k in k_lo..k_hi {
            let (s, e) = (starts[k] as usize, starts[k + 1] as usize);
            if e == s {
                continue;
            }
            // SAFETY: key runs are disjoint slices of `values`, and the
            // write-back covers the same disjoint range of `pairs`.
            let run = unsafe { std::slice::from_raw_parts_mut(vals.get().add(s), e - s) };
            run.sort_unstable();
            for (i, &v) in run.iter().enumerate() {
                unsafe { out.get().add(s + i).write((k as u32, v)) };
            }
        }
    });
}

/// Parallel variant of [`sort_value_runs`]: discover run boundaries with
/// one serial scan (cheap, branch-predictable), then sort the disjoint
/// runs on the pool. Each run's sort is a pure function of its contents.
fn sort_value_runs_parallel(pairs: &mut [(u32, u32)]) {
    let n = pairs.len();
    let mut runs: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < n {
        let key = pairs[i].0;
        let start = i;
        while i < n && pairs[i].0 == key {
            i += 1;
        }
        if i - start > 1 {
            runs.push((start as u32, i as u32));
        }
    }
    let base = ScatterPtr(pairs.as_mut_ptr());
    runs.par_iter().for_each(|&(s, e)| {
        // SAFETY: runs are disjoint subslices.
        let run =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(s as usize), (e - s) as usize) };
        run.sort_unstable_by_key(|&(_, v)| v);
    });
}

/// Sort each equal-key run by value, in place. Requires keys already
/// non-decreasing; yields the `(key, value)` lexicographic total order.
fn sort_value_runs(pairs: &mut [(u32, u32)]) {
    let mut i = 0usize;
    while i < pairs.len() {
        let key = pairs[i].0;
        let mut j = i + 1;
        while j < pairs.len() && pairs[j].0 == key {
            j += 1;
        }
        pairs[i..j].sort_unstable_by_key(|&(_, v)| v);
        i = j;
    }
}

/// Counting sort on the key (one stable scatter of the values into
/// per-key runs), then an in-place `sort_unstable` of each run. Requires
/// keys in `0..n_keys`.
fn counting_sort_by_key(pairs: &mut [(u32, u32)], n_keys: usize) {
    let n = pairs.len();
    // ends[k] = cursor for key k during the scatter; afterwards the
    // exclusive end of k's run.
    let mut ends = vec![0u32; n_keys + 1];
    for &(k, _) in pairs.iter() {
        ends[k as usize + 1] += 1;
    }
    for k in 0..n_keys {
        ends[k + 1] += ends[k];
    }
    let mut values = vec![0u32; n];
    for &(k, v) in pairs.iter() {
        let slot = ends[k as usize];
        values[slot as usize] = v;
        ends[k as usize] = slot + 1;
    }
    let mut rest: &mut [u32] = &mut values;
    let mut consumed = 0usize;
    for &end in ends.iter().take(n_keys) {
        let end = end as usize;
        let (run, tail) = std::mem::take(&mut rest).split_at_mut(end - consumed);
        run.sort_unstable();
        rest = tail;
        consumed = end;
    }
    let mut i = 0usize;
    for (k, &end) in ends.iter().take(n_keys).enumerate() {
        let end = end as usize;
        while i < end {
            pairs[i] = (k as u32, values[i]);
            i += 1;
        }
    }
}

/// Device-side reduction (sum) of a `u64` array, with a modeled duration.
/// Like [`sort_by_key`], the functional work runs on the host pool
/// without holding the `compute_lock` — engine serialization is a
/// property of the modeled timeline, not of host execution.
pub fn reduce_sum(device: &Device, values: &[u64]) -> (u64, SimDuration) {
    let sum = values.par_iter().sum();
    // Reduction is bandwidth-bound: one read pass.
    let bytes = std::mem::size_of_val(values) as f64;
    let t = SimDuration::from_micros(10.0)
        + SimDuration::from_secs(bytes / (device.props().mem_bandwidth_gbps * 1e9));
    (sum, t)
}

/// Device-side exclusive prefix scan, with a modeled duration.
pub fn exclusive_scan(device: &Device, values: &[u32]) -> (Vec<u32>, SimDuration) {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u32;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    // Scan reads and writes each element once.
    let bytes = 2.0 * std::mem::size_of_val(values) as f64;
    let t = SimDuration::from_micros(10.0)
        + SimDuration::from_secs(bytes / (device.props().mem_bandwidth_gbps * 1e9));
    (out, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix_sort_matches_comparison_sort() {
        // Pseudo-random pairs exercising all four digit passes, plus a
        // small-key regime where the upper passes are constant and skipped.
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for (n, mask) in [
            (100_000usize, u64::MAX),
            (100_000, 0x0000_FFFF_0000_FFFF),
            (5000, 0x0000_0FFF_0000_0FFF),
            (100, u64::MAX), // below RADIX_MIN_PAIRS: std-sort path
            (0, u64::MAX),
        ] {
            let mut pairs: Vec<(u32, u32)> = (0..n)
                .map(|_| {
                    let r = step() & mask;
                    ((r >> 32) as u32, r as u32)
                })
                .collect();
            let mut expect = pairs.clone();
            expect.sort_unstable();
            radix_sort_pairs(&mut pairs);
            assert_eq!(pairs, expect, "n = {n}, mask = {mask:#x}");
        }
    }

    #[test]
    fn presorted_keys_with_shuffled_values_match_comparison_sort() {
        // The fast path: keys already non-decreasing (as a
        // block-sequential kernel appends them), values scrambled within
        // runs. Large enough to clear RADIX_MIN_PAIRS.
        let mut x = 0xDEAD_BEEF_CAFE_F00Du64;
        let mut step = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let n = 50_000usize;
        let mut pairs: Vec<(u32, u32)> = (0..n).map(|i| ((i / 13) as u32, step() as u32)).collect();
        let mut expect = pairs.clone();
        expect.sort_unstable();
        radix_sort_pairs(&mut pairs);
        assert_eq!(pairs, expect);
    }

    #[test]
    fn sort_groups_identical_keys() {
        let d = Device::k20c();
        let mut pairs = vec![(3, 1), (1, 9), (3, 0), (2, 5), (1, 2), (3, 7)];
        let t = sort_by_key(&d, &mut pairs);
        assert!(t > SimDuration::ZERO);
        assert_eq!(pairs, vec![(1, 2), (1, 9), (2, 5), (3, 0), (3, 1), (3, 7)]);
        // Keys are grouped (the property neighbor-table construction needs).
        for w in pairs.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn sort_time_scales_with_input() {
        assert!(sort_by_key_time(10_000_000) > sort_by_key_time(10_000));
        // ~500M pairs/s: 500M pairs should take about a second.
        let t = sort_by_key_time(500_000_000);
        assert!((t.as_secs() - 1.0).abs() < 0.01);
    }

    #[test]
    fn reduce_sum_correct() {
        let d = Device::k20c();
        let values: Vec<u64> = (1..=1000).collect();
        let (sum, t) = reduce_sum(&d, &values);
        assert_eq!(sum, 500_500);
        assert!(t > SimDuration::ZERO);
    }

    #[test]
    fn exclusive_scan_correct() {
        let d = Device::k20c();
        let (scan, _) = exclusive_scan(&d, &[3, 1, 4, 1, 5]);
        assert_eq!(scan, vec![0, 3, 4, 8, 9]);
        let (empty, _) = exclusive_scan(&d, &[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn large_parallel_sort_is_correct() {
        let d = Device::k20c();
        let n = 100_000u32;
        let mut pairs: Vec<(u32, u32)> = (0..n)
            .map(|i| ((i.wrapping_mul(2654435761)) % 1000, i))
            .collect();
        sort_by_key(&d, &mut pairs);
        for w in pairs.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(pairs.len(), n as usize);
    }
}

//! The analytic SIMT cost model.
//!
//! Kernels charge abstract events (flops, global/shared memory traffic,
//! atomics) per simulated thread as they execute. [`crate::kernel`]
//! aggregates thread cycles to warp granularity (lockstep: a warp costs the
//! *maximum* over its threads, so divergence and idle lanes are paid for),
//! sums warps into per-block cycles, and this module turns block cycles
//! into a kernel duration by scheduling blocks onto SMs at the achievable
//! occupancy, with a device-bandwidth bound.
//!
//! Constants are calibrated to a Kepler-class device (Tesla K20c) only to
//! the degree the paper's *comparative* results require — per DESIGN.md,
//! absolute times are not expected to match the paper's testbed.

use crate::launch::LaunchConfig;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-event cycle/byte charges and scheduling constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles per floating-point op (fused multiply-add counts as one).
    /// The paper's kernels compute double-precision distances; Kepler
    /// issues DP at 1/3 the SP rate, hence the default of 3.
    pub cycles_per_flop: f64,
    /// Effective cycles per 32-bit global-memory access issued by a
    /// thread. Calibrated to the *exposed* latency of dependent gather
    /// loads (index chase through A into D), which occupancy only
    /// partially hides — the dominant cost of both ε-neighborhood kernels
    /// on Kepler.
    pub cycles_per_global_word: f64,
    /// Effective cycles per 32-bit shared-memory access. The default of 2
    /// reflects the 2-way bank conflicts of 64-bit (f64 coordinate)
    /// accesses on Kepler's 4-byte-banked shared memory.
    pub cycles_per_shared_word: f64,
    /// Cycles per global atomic operation (contended RMW on Kepler).
    pub cycles_per_atomic: f64,
    /// Fixed cycles charged to every block (scheduling/launch bookkeeping).
    /// This is what makes block-per-cell kernels with tiny cells expensive.
    pub block_overhead_cycles: f64,
    /// Fixed host-side kernel launch overhead.
    pub launch_overhead: SimDuration,
    /// Fraction of memory cycles hidden per unit occupancy: at occupancy
    /// `o`, memory cycles are scaled by `1 - latency_hiding * o`.
    pub latency_hiding: f64,
    /// Fraction of charged global *reads* served by the on-chip cache
    /// hierarchy (Kepler read-only/L2 cache): redundant per-thread reads
    /// of shared grid cells mostly hit cache, so only the miss fraction
    /// reaches DRAM for the bandwidth bound.
    pub read_cache_hit: f64,
    /// Cycles charged to every warp at each block-level barrier
    /// (`__syncthreads()`), penalizing barrier-heavy kernels.
    pub barrier_cycles: f64,
    /// Extra cycles per *dependent* global read — a load whose address is
    /// computed from the value of the previous load (pointer/index chase,
    /// e.g. descending a packed tree node by node). Streaming reads charge
    /// only `cycles_per_global_word` because independent loads pipeline;
    /// a dependent chain exposes issue-to-use latency the scheduler cannot
    /// overlap within the thread, so each hop pays this surcharge on top
    /// of the word cost. This is what makes tree traversal pay for its
    /// depth where the grid's direct cell indexing does not.
    pub dependent_read_cycles: f64,
}

impl CostModel {
    /// Defaults calibrated for a K20c-class device.
    pub fn kepler() -> Self {
        CostModel {
            cycles_per_flop: 3.0,
            cycles_per_global_word: 100.0,
            cycles_per_shared_word: 2.0,
            cycles_per_atomic: 24.0,
            block_overhead_cycles: 600.0,
            launch_overhead: SimDuration::from_micros(8.0),
            latency_hiding: 0.5,
            read_cache_hit: 0.75,
            barrier_cycles: 40.0,
            // ~half the exposed global-word latency: the chased node is
            // usually resident in the read-only cache (tree pools are
            // small), but the address dependence still serializes issue.
            dependent_read_cycles: 50.0,
        }
    }
}

/// Event counters accumulated by a kernel execution (per-thread during
/// execution, merged to kernel totals in the report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Floating-point operations.
    pub flops: u64,
    /// Bytes read from global memory.
    pub global_read_bytes: u64,
    /// Bytes written to global memory.
    pub global_write_bytes: u64,
    /// Bytes read from or written to shared memory.
    pub shared_bytes: u64,
    /// Global atomic operations.
    pub atomics: u64,
}

impl Counters {
    /// Cycles this event mix costs a single thread under `model`.
    pub fn thread_cycles(&self, model: &CostModel) -> f64 {
        self.flops as f64 * model.cycles_per_flop
            + (self.global_read_bytes + self.global_write_bytes) as f64 / 4.0
                * model.cycles_per_global_word
            + self.shared_bytes as f64 / 4.0 * model.cycles_per_shared_word
            + self.atomics as f64 * model.cycles_per_atomic
    }

    pub fn merge(&mut self, other: &Counters) {
        self.flops += other.flops;
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.shared_bytes += other.shared_bytes;
        self.atomics += other.atomics;
    }

    /// Total bytes that hit the global-memory system.
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }
}

/// Convert aggregate block cycles into a kernel duration.
///
/// * `block_cycles` — per-block warp-cycle costs (sum of per-warp maxima,
///   as accumulated by `BlockCtx::phase`).
/// * `cfg` — the launch configuration (for occupancy).
///
/// The model:
/// 1. Memory-bandwidth bound: DRAM traffic (cache-filtered reads + all
///    writes) over device bandwidth.
/// 2. Issue bound: total warp cycles over the device's aggregate issue
///    width (`sm_count × warp_schedulers` warps per cycle), scaled by a
///    latency-hiding factor that improves with occupancy.
/// 3. Kernel time = max(issue bound, bandwidth bound) + overheads.
pub fn kernel_duration(
    props: &crate::device::DeviceProps,
    model: &CostModel,
    cfg: &LaunchConfig,
    block_cycles: &[f64],
    totals: &Counters,
) -> SimDuration {
    if block_cycles.is_empty() {
        return model.launch_overhead;
    }
    let occupancy = cfg.occupancy(props);

    // Memory-bandwidth bound: reads mostly hit the on-chip caches.
    let dram_bytes = totals.global_read_bytes as f64 * (1.0 - model.read_cache_hit)
        + totals.global_write_bytes as f64;
    let bw_time = dram_bytes / (props.mem_bandwidth_gbps * 1e9);

    // Issue bound: warp cycles over aggregate scheduler width; higher
    // occupancy hides a fraction of stall cycles.
    let hiding = 1.0 - model.latency_hiding * occupancy;
    let total_cycles: f64 =
        block_cycles.iter().sum::<f64>() + model.block_overhead_cycles * block_cycles.len() as f64;
    let issue_width = (props.sm_count * props.warp_schedulers) as f64;
    let compute_time = total_cycles * hiding / issue_width / (props.clock_ghz * 1e9);

    model.launch_overhead + SimDuration::from_secs(compute_time.max(bw_time))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProps;

    fn props() -> DeviceProps {
        DeviceProps::k20c()
    }

    #[test]
    fn thread_cycles_compose_linearly() {
        let m = CostModel::kepler();
        let c = Counters {
            flops: 10,
            global_read_bytes: 40,
            ..Default::default()
        };
        assert_eq!(
            c.thread_cycles(&m),
            10.0 * m.cycles_per_flop + 10.0 * m.cycles_per_global_word
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Counters {
            flops: 1,
            atomics: 2,
            ..Default::default()
        };
        let b = Counters {
            flops: 3,
            shared_bytes: 8,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.flops, 4);
        assert_eq!(a.atomics, 2);
        assert_eq!(a.shared_bytes, 8);
    }

    #[test]
    fn empty_kernel_costs_launch_overhead_only() {
        let m = CostModel::kepler();
        let cfg = LaunchConfig::new(0, 256);
        let d = kernel_duration(&props(), &m, &cfg, &[], &Counters::default());
        assert_eq!(d, m.launch_overhead);
    }

    #[test]
    fn more_blocks_cost_more() {
        let m = CostModel::kepler();
        let cfg = LaunchConfig::new(1000, 256);
        let one = kernel_duration(&props(), &m, &cfg, &[1000.0; 100], &Counters::default());
        let two = kernel_duration(&props(), &m, &cfg, &[1000.0; 10000], &Counters::default());
        assert!(two > one);
    }

    #[test]
    fn bandwidth_bound_kicks_in() {
        let m = CostModel::kepler();
        let cfg = LaunchConfig::new(16, 256);
        // Tiny compute but a huge memory footprint: duration must be at
        // least DRAM traffic / bandwidth. Writes are not cache-filtered.
        let totals = Counters {
            global_write_bytes: 208_000_000_000,
            ..Default::default()
        };
        let d = kernel_duration(&props(), &m, &cfg, &[1.0; 16], &totals);
        assert!(
            d.as_secs() >= 1.0,
            "208 GB at 208 GB/s is >= 1 s, got {}",
            d.as_secs()
        );
        // Reads are filtered by the cache-hit fraction.
        let reads = Counters {
            global_read_bytes: 208_000_000_000,
            ..Default::default()
        };
        let dr = kernel_duration(&props(), &m, &cfg, &[1.0; 16], &reads);
        assert!(dr < d, "cached reads must cost less than writes");
        assert!(dr.as_secs() >= 0.2, "cache miss fraction still pays DRAM");
    }

    #[test]
    fn block_overhead_penalizes_many_tiny_blocks() {
        let m = CostModel::kepler();
        // Same total work split into 100 vs 100_000 blocks.
        let few_cfg = LaunchConfig::new(100, 256);
        let many_cfg = LaunchConfig::new(100_000, 256);
        let few = kernel_duration(
            &props(),
            &m,
            &few_cfg,
            &[10_000.0; 100],
            &Counters::default(),
        );
        let many = kernel_duration(
            &props(),
            &m,
            &many_cfg,
            &[10.0; 100_000],
            &Counters::default(),
        );
        assert!(
            many > few,
            "per-block overhead must dominate for tiny blocks: {} vs {}",
            many.as_micros(),
            few.as_micros()
        );
    }
}

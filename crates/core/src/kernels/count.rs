//! The result-size estimation kernel (Section VI of the paper).
//!
//! To size the batch buffers, the batching scheme needs an estimate `a_b`
//! of the total result-set size. This kernel computes the *exact* neighbor
//! count `e_b` of a uniformly distributed sample of `f·|D|` points
//! (`f = 0.01` by default) — uniform because the database is spatially
//! sorted, so a fixed stride is a uniform spatial sample. It returns only
//! a single counter ("does not return a result set R, which requires
//! significant overhead"), so it runs in negligible time; the estimate is
//! then `a_b = e_b / f`.

use super::{load_cell_range, scan_cell_range};
use gpu_sim::error::DeviceError;
use gpu_sim::kernel::{BlockCtx, BlockKernel};
use gpu_sim::launch::LaunchConfig;
use gpu_sim::memory::DeviceCounter;
use spatial::grid::CellsView;
use spatial::{GridGeometry, PointsView};

/// Counts neighbors-within-ε over a strided sample of the database.
pub struct NeighborCountKernel<'a> {
    /// `D` (device-resident, spatially sorted), as the SoA coordinate view.
    pub points: PointsView<'a>,
    /// `G`, in either layout.
    pub grid: CellsView<'a>,
    /// `A`.
    pub lookup: &'a [u32],
    /// Grid geometry.
    pub geom: GridGeometry,
    /// Search radius.
    pub eps: f64,
    /// Sample stride: thread `g` counts the neighbors of point
    /// `g · stride`. A stride of `1/f` samples the fraction `f`.
    pub stride: usize,
    /// The device counter accumulating `e_b`.
    pub counter: &'a DeviceCounter,
}

impl NeighborCountKernel<'_> {
    /// Number of sample points for a database of `n` at `stride`.
    pub fn sample_size(n: usize, stride: usize) -> usize {
        n.div_ceil(stride.max(1))
    }

    /// Launch configuration covering the sample at `block_dim`.
    pub fn launch_config(&self, block_dim: u32) -> LaunchConfig {
        LaunchConfig::for_elements(
            Self::sample_size(self.points.len(), self.stride).max(1),
            block_dim,
        )
    }
}

impl BlockKernel for NeighborCountKernel<'_> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let n_points = self.points.len();
        let stride = self.stride.max(1);
        let samples = Self::sample_size(n_points, stride) as u64;
        let eps_sq = self.eps * self.eps;

        ctx.for_each_thread(|t| {
            if t.gid >= samples {
                return;
            }
            let pi = (t.gid as usize) * stride;
            debug_assert!(pi < n_points);

            t.read_global::<spatial::Point2>(1);
            let (qx, qy) = (self.points.xs[pi], self.points.ys[pi]);
            t.charge_flops(10);
            let (cells, n_cells) = self
                .geom
                .neighbor_cells(self.geom.cell_of(&self.points.get(pi)));

            let mut local = 0u64;
            for &cell_id in &cells[..n_cells] {
                let range = load_cell_range(t, &self.grid, cell_id);
                scan_cell_range(
                    t,
                    self.points,
                    self.lookup,
                    range,
                    qx,
                    qy,
                    eps_sq,
                    |_, hits| local += hits.len() as u64,
                );
            }
            // One atomic per thread, not per hit.
            t.charge_atomic();
            self.counter.add(local);
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::mixed_points;
    use super::*;
    use gpu_sim::Device;
    use spatial::distance::brute_force_count;
    use spatial::{GridIndex, Point2, PointStore};

    fn count(data: &[Point2], eps: f64, stride: usize) -> (u64, gpu_sim::KernelReport) {
        let device = Device::k20c();
        let grid = GridIndex::build(data, eps);
        let store = PointStore::from_points(data);
        let counter = DeviceCounter::new(&device).unwrap();
        let kernel = NeighborCountKernel {
            points: store.view(),
            grid: grid.cells_view(),
            lookup: grid.lookup(),
            geom: grid.geometry(),
            eps,
            stride,
            counter: &counter,
        };
        let report = device.launch(kernel.launch_config(256), &kernel).unwrap();
        (counter.get(), report)
    }

    #[test]
    fn stride_one_counts_exactly() {
        let data = mixed_points(250);
        let eps = 0.8;
        let expected: usize = data.iter().map(|q| brute_force_count(&data, q, eps)).sum();
        let (got, _) = count(&data, eps, 1);
        assert_eq!(got as usize, expected);
    }

    #[test]
    fn strided_count_matches_sampled_brute_force() {
        let data = mixed_points(400);
        let eps = 0.5;
        let stride = 7;
        let expected: usize = data
            .iter()
            .step_by(stride)
            .map(|q| brute_force_count(&data, q, eps))
            .sum();
        let (got, _) = count(&data, eps, stride);
        assert_eq!(got as usize, expected);
    }

    #[test]
    fn estimate_scales_to_total() {
        // The 1-in-100 sample times 100 should land near the true total
        // for a reasonably mixed dataset.
        let data = mixed_points(5000);
        let eps = 0.5;
        let (sampled, _) = count(&data, eps, 100);
        let (exact, _) = count(&data, eps, 1);
        let estimate = sampled * 100;
        let ratio = estimate as f64 / exact as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "estimate {estimate} vs exact {exact} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn atomics_are_one_per_sample_thread() {
        let data = mixed_points(512);
        let (_, report) = count(&data, 0.5, 2);
        assert_eq!(report.counters.atomics, 256);
    }

    #[test]
    fn sample_size_arithmetic() {
        assert_eq!(NeighborCountKernel::sample_size(1000, 100), 10);
        assert_eq!(NeighborCountKernel::sample_size(1001, 100), 11);
        assert_eq!(NeighborCountKernel::sample_size(5, 100), 1);
        assert_eq!(NeighborCountKernel::sample_size(100, 1), 100);
    }

    #[test]
    fn count_kernel_is_much_cheaper_than_listing() {
        // The estimation kernel writes no result set: its global write
        // traffic must be zero.
        let data = mixed_points(1000);
        let (_, report) = count(&data, 1.0, 100);
        assert_eq!(report.counters.global_write_bytes, 0);
    }
}

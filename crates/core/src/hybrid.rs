//! Hybrid-DBSCAN (Algorithm 4): the end-to-end pipeline.
//!
//! ```text
//! host                         device (simulated)
//! ────────────────────────────────────────────────────────────────
//! spatial pre-sort of D
//! grid construction (G, A)
//!            ── H2D: D, G, A ──────────────▶
//!                                estimation kernel → e_b
//! batch plan (Eq. 1)
//! pinned staging buffers
//! for each batch l (3 streams):
//!                                GPUCalcGlobal/Shared (strided)
//!                                thrust sort_by_key on R_l
//!            ◀── D2H into pinned staging ──
//! ingest R_l values into T
//! ────────────────────────────────────────────────────────────────
//! DBSCAN(T, minpts) — possibly many times with different minpts
//! ```
//!
//! The *functional* work executes eagerly (kernels really compute the
//! pairs, the sort really sorts, the builder really assembles `T`); the
//! *device timing* is modeled, and the per-batch operation chains are
//! replayed through the stream scheduler to produce the overlapped
//! GPU-phase makespan — deterministic regardless of host load. Every op
//! in those chains is modeled, including the host-lane table ingest (a
//! bandwidth model over the staged pair count): wall-measured time must
//! never enter the schedule, or `modeled_time` would vary run to run and
//! with the rayon pool's thread count (see DESIGN.md, "Threading model &
//! determinism policy"). Only the host DBSCAN stage and the explicitly
//! named `wall_time` fields are wall-clock measurements.

use crate::backend::{select_backend, BackendDecision, ChosenBackend, IndexBackend};
use crate::batch::{BatchConfig, BatchPlan};
use crate::dbscan::{Clustering, Dbscan, TableSource};
use crate::kernels::{
    GpuCalcGlobal, GpuCalcShared, GpuCalcTree, NeighborCountKernel, NeighborPair, TreeCountKernel,
};
use crate::table::{NeighborTable, NeighborTableBuilder};
use gpu_sim::device::Device;
use gpu_sim::error::DeviceError;
use gpu_sim::hostmem::PinnedBuffer;
use gpu_sim::memory::{DeviceAppendBuffer, DeviceBuffer, DeviceCounter};
use gpu_sim::profiler::KernelProfile;
use gpu_sim::stream::{schedule_chains, OpSpec};
use gpu_sim::thrust;
use gpu_sim::time::{SimDuration, SimTime};
use gpu_sim::timeline::{Engine, Timeline};
use obs::Recorder;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use spatial::grid::{CellRange, CellsView};
use spatial::presort::spatial_sort_permutation;
use spatial::{GridIndex, PackedKdTree, Point2, PointStore, PointsViewN, TreeView};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Which ε-neighborhood kernel to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelChoice {
    /// GPUCalcGlobal (Algorithm 2) — the paper's winner, used by default.
    Global,
    /// GPUCalcShared (Algorithm 3) — evaluated in Table II.
    Shared,
}

/// Configuration of a Hybrid-DBSCAN run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridConfig {
    pub kernel: KernelChoice,
    /// Which ε-search index to build and traverse (grid, tree, or
    /// per-workload auto-selection). The shared kernel always uses the
    /// grid regardless of this setting. Defaults to `Grid` — the paper's
    /// structure, and bit-for-bit the pre-backend pipeline.
    pub backend: IndexBackend,
    /// Threads per block (paper: 256).
    pub block_dim: u32,
    /// Batching-scheme tunables.
    pub batch: BatchConfig,
    /// Host threads ingesting batch results into `T` (paper: the 3
    /// batching threads double as constructors).
    pub host_lanes: usize,
    /// Overflow-recovery retries (each doubles `n_b`). The published α
    /// makes retries unnecessary; this guards adversarial estimates.
    pub max_retries: usize,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig {
            kernel: KernelChoice::Global,
            backend: IndexBackend::Grid,
            block_dim: 256,
            batch: BatchConfig::default(),
            host_lanes: 3,
            max_retries: 4,
        }
    }
}

/// Sustained host-lane ingest throughput, pairs per second: one pass of
/// run detection over the sorted keys plus a memcpy-class copy of the
/// 8-byte pairs into the builder's per-batch segment.
const INGEST_PAIRS_PER_SEC: f64 = 400.0e6;
/// Fixed per-batch ingest overhead (builder bookkeeping, segment setup).
const INGEST_OVERHEAD_US: f64 = 5.0;

/// Modeled duration of ingesting `n` staged pairs into the table builder.
///
/// A pure function of the pair count — the determinism policy (DESIGN.md)
/// forbids wall-measured durations in the scheduled op chains, since the
/// schedule's makespan feeds [`GpuPhaseReport::modeled_time`], which must
/// be bitwise identical across runs and thread counts.
pub(crate) fn ingest_time_model(n: usize) -> SimDuration {
    SimDuration::from_micros(INGEST_OVERHEAD_US)
        + SimDuration::from_secs(n as f64 / INGEST_PAIRS_PER_SEC)
}

/// Timing and profiling of the GPU phase (neighbor-table construction).
#[derive(Debug, Clone)]
pub struct GpuPhaseReport {
    /// Modeled time of the whole table-construction phase: uploads,
    /// estimation, pinned allocation, and the overlapped batch schedule.
    /// This is the paper's "Hybrid: GPU Time" curve.
    pub modeled_time: SimDuration,
    /// Host wall-clock time actually spent (for honesty in reports).
    pub wall_time: std::time::Duration,
    /// The batch plan actually executed. If overflow retries occurred this
    /// is the *retried* plan (doubled `n_batches`), not the initial one —
    /// post-retry telemetry must describe the run that produced the
    /// results, and `plan.n_batches` always equals [`Self::n_batches`].
    pub plan: BatchPlan,
    /// Batches actually run (= `plan.n_batches`).
    pub n_batches: usize,
    /// Total result-set pairs produced (`|R|` = `|B|`).
    pub result_pairs: usize,
    /// Pairs produced by each executed batch, in batch order — the
    /// planned-vs-actual telemetry behind the batching scheme's
    /// estimation-accuracy metrics.
    pub per_batch_pairs: Vec<usize>,
    /// Aggregated kernel launches.
    pub kernel_profile: KernelProfile,
    /// Estimation-kernel sample count `e_b`.
    pub e_b: u64,
    /// Which ε-search backend ran, and why (the `Auto` policy's inputs).
    pub backend: BackendDecision,
    /// Overflow retries performed.
    pub retries: usize,
    /// Batches run by overflowed (discarded) passes across all retries.
    pub discarded_batches: usize,
    /// Pairs materialized then thrown away by overflowed passes — the
    /// true cost of a bad estimate.
    pub discarded_pairs: usize,
    /// Component breakdown of `modeled_time` (the serial preamble parts)
    /// and of the overlapped batch schedule (per-engine sums; these
    /// overlap, so they exceed `batch_schedule_time`).
    pub breakdown: GpuPhaseBreakdown,
    /// The full batch schedule (per-op placements); render with
    /// [`gpu_sim::stream::Schedule::render_gantt`] to visualize the
    /// copy/compute overlap.
    pub schedule: gpu_sim::stream::Schedule,
}

/// Where the GPU phase spends its modeled time.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct GpuPhaseBreakdown {
    pub upload_time: SimDuration,
    pub estimation_time: SimDuration,
    pub pinned_alloc_time: SimDuration,
    /// Makespan of the overlapped per-batch schedule.
    pub batch_schedule_time: SimDuration,
    /// Serial sums per operation kind (overlapped in the schedule).
    pub kernel_time: SimDuration,
    pub sort_time: SimDuration,
    pub d2h_time: SimDuration,
    pub ingest_time: SimDuration,
}

/// Timing breakdown of a full run (the three curves of Figure 3).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HybridTimings {
    /// Table construction (modeled device + overlapped host).
    pub gpu_phase: SimDuration,
    /// Host DBSCAN over the table (measured).
    pub dbscan: SimDuration,
    /// `gpu_phase + dbscan`.
    pub total: SimDuration,
}

/// The output of [`HybridDbscan::run`].
#[derive(Debug, Clone)]
pub struct HybridResult {
    /// Cluster labels in the *caller's* point order.
    pub clustering: Clustering,
    pub timings: HybridTimings,
    pub gpu: GpuPhaseReport,
}

/// A constructed neighbor table together with the permutation needed to
/// translate between caller order and table (spatially sorted) order.
pub struct TableHandle {
    /// `T`, keyed in spatially-sorted id space (device layout).
    pub table: NeighborTable,
    /// `perm[k]` = original index of sorted position `k`.
    pub perm: Vec<u32>,
    /// Visit order for DBSCAN: sorted-space ids in ascending original-id
    /// order (`visit_order[i] = sorted position of original point i`), so
    /// table-driven runs match the reference implementation's border
    /// assignments exactly.
    pub visit_order: Vec<u32>,
    pub gpu: GpuPhaseReport,
}

/// Errors from a Hybrid-DBSCAN run.
#[derive(Debug)]
pub enum HybridError {
    Device(DeviceError),
    /// The result buffers kept overflowing even after doubling `n_b`
    /// `max_retries` times.
    RetriesExhausted {
        attempts: usize,
    },
}

impl std::fmt::Display for HybridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HybridError::Device(e) => write!(f, "device error: {e}"),
            HybridError::RetriesExhausted { attempts } => {
                write!(f, "batch buffers overflowed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for HybridError {}

impl From<DeviceError> for HybridError {
    fn from(e: DeviceError) -> Self {
        HybridError::Device(e)
    }
}

/// Output of one batch pass: the filled builder, per-batch operation
/// chains for scheduling, the kernel profile, and the per-batch pair
/// counts.
type BatchPassOutput = (
    NeighborTableBuilder,
    Vec<Vec<OpSpec>>,
    KernelProfile,
    Vec<usize>,
);

/// Result of one full pass over the batches.
enum BatchPass {
    /// No buffer overflowed: the pass's outputs are final.
    Complete(BatchPassOutput),
    /// At least one batch overflowed. The pass ran *every* batch anyway
    /// (the append cursor counts attempts past capacity), so the true
    /// `|R|` is now known exactly and the caller can replan with
    /// Equation 1 instead of blindly doubling `n_b`.
    Overflowed {
        /// Exact total append attempts across all batches (= `|R|`).
        required_total: u64,
        /// Largest single-batch requirement — the minimal buffer size
        /// that makes the current batch assignment overflow-free.
        max_required: usize,
        /// Pairs materialized (then discarded) by the failed pass.
        produced_pairs: usize,
        /// Batches the failed pass ran (all of them — discarded work).
        batches: usize,
    },
}

/// Device-resident `G`, in either layout. Dense is the single flat range
/// array (one H2D transfer, exactly as before the sparse layout existed);
/// sparse uploads the non-empty keys and their ranges as two buffers —
/// O(|D|) device memory instead of O(nx·ny).
pub(crate) enum GridBuffers {
    Dense {
        ranges: DeviceBuffer<CellRange>,
    },
    Sparse {
        keys: DeviceBuffer<u32>,
        ranges: DeviceBuffer<CellRange>,
    },
}

impl GridBuffers {
    /// Upload `G` to the device, returning the summed H2D transfer time.
    pub(crate) fn upload(
        device: &Device,
        grid: &GridIndex,
    ) -> Result<(Self, SimDuration), DeviceError> {
        match grid.cells_view() {
            CellsView::Dense(ranges) => {
                let (buf, t) = DeviceBuffer::from_host(device, ranges, false)?;
                Ok((GridBuffers::Dense { ranges: buf }, t))
            }
            CellsView::Sparse { keys, ranges } => {
                let (k_buf, t_k) = DeviceBuffer::from_host(device, keys, false)?;
                let (r_buf, t_r) = DeviceBuffer::from_host(device, ranges, false)?;
                Ok((
                    GridBuffers::Sparse {
                        keys: k_buf,
                        ranges: r_buf,
                    },
                    t_k + t_r,
                ))
            }
        }
    }

    /// The device-resident `G` as the layout-agnostic kernel view.
    pub(crate) fn view(&self) -> CellsView<'_> {
        match self {
            GridBuffers::Dense { ranges } => CellsView::Dense(ranges.as_slice()),
            GridBuffers::Sparse { keys, ranges } => CellsView::Sparse {
                keys: keys.as_slice(),
                ranges: ranges.as_slice(),
            },
        }
    }
}

/// Device-resident packed kd-tree: the four SoA node-pool buffers
/// (splits, axes, leaf ranges, reordered ids — the tree's `A`).
pub(crate) struct TreeBuffers {
    splits: DeviceBuffer<f64>,
    axes: DeviceBuffer<u32>,
    ranges: DeviceBuffer<CellRange>,
    ids: DeviceBuffer<u32>,
}

impl TreeBuffers {
    /// Upload the node pool, returning the summed H2D transfer time.
    pub(crate) fn upload(
        device: &Device,
        tree: &PackedKdTree<2>,
    ) -> Result<(Self, SimDuration), DeviceError> {
        let v = tree.view();
        let (splits, t0) = DeviceBuffer::from_host(device, v.splits, false)?;
        let (axes, t1) = DeviceBuffer::from_host(device, v.axes, false)?;
        let (ranges, t2) = DeviceBuffer::from_host(device, v.ranges, false)?;
        let (ids, t3) = DeviceBuffer::from_host(device, v.ids, false)?;
        Ok((
            TreeBuffers {
                splits,
                axes,
                ranges,
                ids,
            },
            t0 + t1 + t2 + t3,
        ))
    }

    pub(crate) fn view(&self) -> TreeView<'_> {
        TreeView {
            splits: self.splits.as_slice(),
            axes: self.axes.as_slice(),
            ranges: self.ranges.as_slice(),
            ids: self.ids.as_slice(),
        }
    }
}

/// The host-side ε-search index plus its device-resident buffers — one
/// variant per backend. Built once per `build_table` call; the batch
/// loop dispatches kernels on the borrowed [`SearchView`].
enum SearchIndex {
    Grid {
        grid: GridIndex,
        g_buf: GridBuffers,
        a_buf: DeviceBuffer<u32>,
    },
    Tree {
        #[allow(dead_code)] // owns the host copy backing the buffers
        tree: PackedKdTree<2>,
        bufs: TreeBuffers,
    },
}

/// Borrowed, `Copy` kernel-facing view of the active search structure.
#[derive(Clone, Copy)]
enum SearchView<'a> {
    Grid {
        cells: CellsView<'a>,
        lookup: &'a [u32],
        geom: spatial::GridGeometry,
    },
    Tree {
        tree: TreeView<'a>,
    },
}

impl SearchIndex {
    fn view(&self) -> SearchView<'_> {
        match self {
            SearchIndex::Grid { grid, g_buf, a_buf } => SearchView::Grid {
                cells: g_buf.view(),
                lookup: a_buf.as_slice(),
                geom: grid.geometry(),
            },
            SearchIndex::Tree { bufs, .. } => SearchView::Tree { tree: bufs.view() },
        }
    }
}

/// The host-side index before its device upload — split from
/// [`SearchIndex`] so `ConstructIndex` stays inside the `index_build`
/// span while the H2D transfers land in `h2d_upload`.
enum HostIndex {
    Grid(GridIndex),
    Tree(PackedKdTree<2>),
}

impl HostIndex {
    fn upload(self, device: &Device) -> Result<(SearchIndex, SimDuration), DeviceError> {
        match self {
            HostIndex::Grid(grid) => {
                let (g_buf, up_g) = GridBuffers::upload(device, &grid)?;
                let (a_buf, up_a) = DeviceBuffer::from_host(device, grid.lookup(), false)?;
                Ok((SearchIndex::Grid { grid, g_buf, a_buf }, up_g + up_a))
            }
            HostIndex::Tree(tree) => {
                let (bufs, up_t) = TreeBuffers::upload(device, &tree)?;
                Ok((SearchIndex::Tree { tree, bufs }, up_t))
            }
        }
    }
}

/// The Hybrid-DBSCAN engine (Algorithm 4).
pub struct HybridDbscan {
    device: Device,
    config: HybridConfig,
    recorder: Option<Arc<Recorder>>,
    /// Device index for recorded timeline ops (sharded runs give each
    /// shard its own lane group in the Chrome trace).
    trace_device: u32,
}

impl HybridDbscan {
    pub fn new(device: &Device, config: HybridConfig) -> Self {
        HybridDbscan {
            device: device.clone(),
            config,
            recorder: None,
            trace_device: 0,
        }
    }

    /// Attach an [`obs::Recorder`]: every subsequent run records spans,
    /// device-timeline operations, and batching/kernel metrics into it.
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Record device-timeline ops under device index `device` (default 0)
    /// so per-shard runs land on distinct Chrome-trace lane groups.
    pub fn with_trace_lane(mut self, device: u32) -> Self {
        self.trace_device = device;
        self
    }

    pub fn config(&self) -> &HybridConfig {
        &self.config
    }

    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Full Algorithm 4: construct `T` on the (simulated) GPU, then run
    /// DBSCAN over it. Labels are returned in the caller's point order.
    pub fn run(
        &self,
        data: &[Point2],
        eps: f64,
        minpts: usize,
    ) -> Result<HybridResult, HybridError> {
        let rec = self.recorder.as_deref();
        let run_span = rec.map(|r| {
            let mut s = r.span("hybrid_dbscan", "run");
            s.arg("n_points", data.len())
                .arg("eps", eps)
                .arg("minpts", minpts);
            s
        });
        let handle = self.build_table(data, eps)?;
        let dbscan_span = rec.map(|r| r.span("dbscan", "host"));
        let (clustering, dbscan_time) = Self::cluster_with_table(&handle, minpts);
        drop(dbscan_span);
        if let Some(r) = rec {
            r.metrics()
                .observe("dbscan.duration_ms", dbscan_time.as_millis());
            r.metrics()
                .gauge_set("dbscan.clusters", clustering.num_clusters() as f64);
        }
        drop(run_span);
        let timings = HybridTimings {
            gpu_phase: handle.gpu.modeled_time,
            dbscan: dbscan_time,
            total: handle.gpu.modeled_time + dbscan_time,
        };
        Ok(HybridResult {
            clustering,
            timings,
            gpu: handle.gpu,
        })
    }

    /// Run DBSCAN over an existing table handle (the data-reuse path,
    /// scenario S3). Returns labels in caller order plus the measured
    /// DBSCAN duration.
    ///
    /// The table lives in sorted-id space; DBSCAN walks it in the caller's
    /// original point order (via [`TableHandle::visit_order`]) and the
    /// labels are mapped back, so the result is *identical* to the
    /// reference implementation's — not merely equivalent.
    pub fn cluster_with_table(handle: &TableHandle, minpts: usize) -> (Clustering, SimDuration) {
        let t0 = Instant::now();
        let clustering = Dbscan::new(minpts)
            .run_with_order(&TableSource::new(&handle.table), Some(&handle.visit_order));
        let dbscan_time: SimDuration = t0.elapsed().into();
        (clustering.unpermute(&handle.perm), dbscan_time)
    }

    /// Construct the neighbor table `T` for `data` at `eps` (lines 2-8 of
    /// Algorithm 4, including the batching scheme of Section VI).
    pub fn build_table(&self, data: &[Point2], eps: f64) -> Result<TableHandle, HybridError> {
        assert!(!data.is_empty(), "cannot cluster an empty database");
        assert!(
            eps > 0.0 && eps.is_finite(),
            "eps must be positive and finite"
        );
        let wall_start = Instant::now();
        let cfg = &self.config;
        let rec = self.recorder.as_deref();
        let mut table_span = rec.map(|r| {
            let mut s = r.span("build_table", "hybrid");
            s.arg("n_points", data.len()).arg("eps", eps);
            s
        });

        // Spatial pre-sort (Section IV): improves locality and makes the
        // strided batch assignment a uniform spatial sample.
        let index_span = rec.map(|r| r.span("index_build", "host"));
        let perm = spatial_sort_permutation(data);
        let sorted: Vec<Point2> = perm.apply(data);

        // ε-search backend selection (grid vs packed kd-tree). Both
        // backends enumerate the exact closed ε-ball, so the pair set —
        // and therefore the table — is bitwise identical either way; the
        // choice only moves modeled cost. `Auto` decides from sampled
        // cell-occupancy statistics; the shared kernel is cell-driven and
        // always forces the grid.
        let decision = select_backend(
            cfg.backend,
            matches!(cfg.kernel, KernelChoice::Shared),
            &sorted,
            eps,
        );

        // ConstructIndex(D, eps) on the host, plus the SoA coordinate
        // mirror the kernels' inner loops scan (host-side layout only —
        // the device upload below stays the one Point2 array).
        let store = PointStore::from_points(&sorted);
        let host_index = match decision.chosen {
            ChosenBackend::Grid => HostIndex::Grid(GridIndex::build(&sorted, eps)),
            ChosenBackend::Tree => {
                HostIndex::Tree(PackedKdTree::build(PointsViewN::from(store.view())))
            }
        };
        drop(index_span);

        // H2D uploads of D plus the search index — (G, A) for the grid,
        // the four SoA node-pool arrays for the tree (pageable: one-off
        // inputs). D stays one Point2 transfer — the SoA mirror is
        // host-side layout only — and the buffer is held for
        // device-memory accounting.
        let upload_span = rec.map(|r| r.span("h2d_upload", "host"));
        let (_d_buf, up_d) = DeviceBuffer::from_host(&self.device, &sorted, false)?;
        let (index, up_index) = host_index.upload(&self.device)?;
        drop(upload_span);
        let search = index.view();

        // Result-size estimation kernel over the f-sample. Both count
        // kernels are exact at a given stride, so `e_b` — and with it the
        // batch plan — is identical across backends.
        let est_span = rec.map(|r| r.span("estimation_kernel", "host"));
        let counter = DeviceCounter::new(&self.device)?;
        // The stride and the estimate scaling must come from the same
        // place (BatchConfig), or the realized sample fraction and the
        // assumed one drift apart and bias a_b.
        let stride = cfg.batch.stride_for(sorted.len());
        let est_report = match search {
            SearchView::Grid {
                cells,
                lookup,
                geom,
            } => {
                let count_kernel = NeighborCountKernel {
                    points: store.view(),
                    grid: cells,
                    lookup,
                    geom,
                    eps,
                    stride,
                    counter: &counter,
                };
                self.device
                    .launch(count_kernel.launch_config(cfg.block_dim), &count_kernel)?
            }
            SearchView::Tree { tree } => {
                let count_kernel = TreeCountKernel {
                    points: PointsViewN::from(store.view()),
                    tree,
                    eps,
                    stride,
                    counter: &counter,
                };
                self.device
                    .launch(count_kernel.launch_config(cfg.block_dim), &count_kernel)?
            }
        };
        let e_b = counter.get();
        drop(counter);
        if let Some(mut s) = est_span {
            s.arg("e_b", e_b).arg("stride", stride);
        }

        // Batch plan (Equation 1), fitted to the remaining device memory
        // with a small headroom. The plan scales e_b by the realized
        // sample size, not by 1/f (see BatchConfig::estimate_total).
        let mut plan = cfg.batch.plan(e_b, sorted.len());
        let n_buffers = cfg.batch.n_streams.min(plan.n_batches).max(1);
        let headroom = self.device.available_bytes() / 10;
        plan = plan
            .fit_to_memory(
                self.device.available_bytes().saturating_sub(headroom),
                std::mem::size_of::<NeighborPair>(),
                n_buffers,
            )
            .ok_or(DeviceError::OutOfMemory {
                requested_bytes: std::mem::size_of::<NeighborPair>(),
                available_bytes: self.device.available_bytes(),
            })?;

        // For the shared kernel, batches are load-bound cell packings
        // rather than point strides; one dense cell may force a larger
        // buffer than Equation 1 chose.
        let shared_batches: Option<Vec<Vec<u32>>> = match cfg.kernel {
            KernelChoice::Global => None,
            KernelChoice::Shared => {
                let SearchIndex::Grid { grid, .. } = &index else {
                    unreachable!("shared kernel always runs on the grid backend")
                };
                let (batches, required) = pack_shared_cells(grid, plan.buffer_items);
                if required > plan.buffer_items {
                    let budget = self
                        .device
                        .available_bytes()
                        .saturating_sub(self.device.available_bytes() / 10);
                    let pair = std::mem::size_of::<NeighborPair>();
                    if required * pair * n_buffers > budget {
                        return Err(HybridError::Device(DeviceError::OutOfMemory {
                            requested_bytes: required * pair * n_buffers,
                            available_bytes: budget,
                        }));
                    }
                    plan.buffer_items = required;
                }
                plan.n_batches = batches.len().max(1);
                Some(batches)
            }
        };

        // Pinned staging buffers, one per stream.
        let n_buffers = cfg.batch.n_streams.min(plan.n_batches).max(1);
        let pinned: Vec<PinnedBuffer<NeighborPair>> = (0..n_buffers)
            .map(|_| PinnedBuffer::new(&self.device, plan.buffer_items))
            .collect();
        let pinned_alloc_time: SimDuration = pinned.iter().map(|p| p.alloc_time()).sum();

        // Device result buffers, one per stream, reused across batches.
        let mut dev_buffers: Vec<DeviceAppendBuffer<NeighborPair>> = (0..n_buffers)
            .map(|_| DeviceAppendBuffer::new(&self.device, plan.buffer_items))
            .collect::<Result<_, _>>()?;

        // Execute batches, replanning from the exact counted |R| on
        // overflow.
        let batch_span = rec.map(|r| r.span("batch_loop", "host"));
        let mut pinned = pinned;
        let mut attempt_plan = plan;
        let mut retries = 0;
        let mut discarded_batches = 0usize;
        let mut discarded_pairs = 0usize;
        let (builder, chains, profile, per_batch_pairs) = loop {
            match self.run_batches(
                &store,
                search,
                eps,
                &attempt_plan,
                shared_batches.as_deref(),
                &mut dev_buffers,
                &mut pinned,
            )? {
                BatchPass::Complete(out) => break out,
                BatchPass::Overflowed {
                    required_total,
                    max_required,
                    produced_pairs,
                    batches,
                } => {
                    retries += 1;
                    discarded_batches += batches;
                    discarded_pairs += produced_pairs;
                    if retries > cfg.max_retries {
                        return Err(HybridError::RetriesExhausted { attempts: retries });
                    }
                    if attempt_plan.n_batches < sorted.len() {
                        // The failed pass counted every append attempt,
                        // so |R| is known exactly: apply Equation 1 to
                        // the true total with a small safety margin.
                        // This lands on the minimal batch count instead
                        // of overshooting by powers of two, keeping the
                        // executed n_b monotone in the configured α.
                        // Per-batch skew can still defeat the uniform-
                        // batch assumption; fall back to doubling then.
                        let margin = attempt_plan.effective_alpha.max(cfg.batch.alpha).max(0.05);
                        let replanned = attempt_plan.replan_for_total(required_total, margin);
                        attempt_plan = if replanned.n_batches > attempt_plan.n_batches {
                            replanned
                        } else {
                            attempt_plan.with_doubled_batches()
                        };
                        // More batches than points is pure overhead.
                        attempt_plan.n_batches = attempt_plan.n_batches.min(sorted.len());
                    } else {
                        // Already one point per batch and still
                        // overflowing: the buffer is smaller than a
                        // single ε-neighborhood, and no batch split can
                        // fix that. Grow the buffers to the exact
                        // largest requirement — deterministic success
                        // on the next pass, where the old blind
                        // doubling could under-size and overflow again.
                        attempt_plan.buffer_items =
                            attempt_plan.buffer_items.max(max_required).max(1);
                        dev_buffers = (0..n_buffers)
                            .map(|_| {
                                DeviceAppendBuffer::new(&self.device, attempt_plan.buffer_items)
                            })
                            .collect::<Result<_, _>>()?;
                        pinned = (0..n_buffers)
                            .map(|_| PinnedBuffer::new(&self.device, attempt_plan.buffer_items))
                            .collect();
                    }
                }
            }
        };
        if let Some(mut s) = batch_span {
            s.arg("n_batches", attempt_plan.n_batches)
                .arg("retries", retries);
        }
        let total_pairs: usize = per_batch_pairs.iter().sum();

        // Modeled GPU-phase time: serial preamble (uploads, estimation,
        // pinned allocation) + the overlapped 3-stream batch schedule.
        let mut timeline = Timeline::new(cfg.host_lanes.max(1));
        let schedule = schedule_chains(&mut timeline, &chains, cfg.batch.n_streams);
        let sum_label = |label: &str| -> SimDuration {
            chains
                .iter()
                .flatten()
                .filter(|op| op.label == label)
                .map(|op| op.duration)
                .sum()
        };
        let breakdown = GpuPhaseBreakdown {
            upload_time: up_d + up_index,
            estimation_time: est_report.duration,
            pinned_alloc_time,
            batch_schedule_time: schedule.makespan,
            kernel_time: sum_label("kernel"),
            sort_time: sum_label("sort"),
            d2h_time: sum_label("d2h"),
            ingest_time: sum_label("ingest"),
        };
        let modeled_time =
            up_d + up_index + est_report.duration + pinned_alloc_time + schedule.makespan;

        let table = builder.finalize();
        let mut kernel_profile = profile;
        if let Some(r) = rec {
            self.record_gpu_phase(
                r,
                &schedule,
                &breakdown,
                &est_report,
                &kernel_profile,
                &attempt_plan,
                &per_batch_pairs,
                &decision,
                e_b,
                retries,
                discarded_batches,
                discarded_pairs,
            );
        }
        kernel_profile.record(&est_report);

        let gpu = GpuPhaseReport {
            modeled_time,
            wall_time: wall_start.elapsed(),
            plan: attempt_plan,
            n_batches: attempt_plan.n_batches,
            result_pairs: total_pairs,
            per_batch_pairs,
            kernel_profile,
            e_b,
            backend: decision,
            retries,
            discarded_batches,
            discarded_pairs,
            breakdown,
            schedule,
        };
        if let Some(s) = table_span.as_mut() {
            s.arg("backend", decision.chosen.name());
            s.arg("modeled_ms", format!("{:.3}", modeled_time.as_millis()));
            s.set_sim(SimTime::ZERO, modeled_time);
        }
        drop(table_span);
        // visit_order[original id] = sorted position.
        let perm_slice = perm.as_slice();
        let mut visit_order = vec![0u32; perm_slice.len()];
        for (k, &orig) in perm_slice.iter().enumerate() {
            visit_order[orig as usize] = k as u32;
        }
        Ok(TableHandle {
            table,
            perm: perm_slice.to_vec(),
            visit_order,
            gpu,
        })
    }

    /// Record the GPU phase into an [`obs::Recorder`]: the device-timeline
    /// track (preamble + overlapped batch schedule, same labels as
    /// [`gpu_sim::stream::Schedule::render_gantt`]) and the batching /
    /// kernel metrics.
    #[allow(clippy::too_many_arguments)]
    fn record_gpu_phase(
        &self,
        r: &Recorder,
        schedule: &gpu_sim::stream::Schedule,
        breakdown: &GpuPhaseBreakdown,
        est_report: &gpu_sim::KernelReport,
        batch_profile: &KernelProfile,
        plan: &BatchPlan,
        per_batch_pairs: &[usize],
        decision: &BackendDecision,
        e_b: u64,
        retries: usize,
        discarded_batches: usize,
        discarded_pairs: usize,
    ) {
        // Device track: the serial preamble occupies its engines back to
        // back, then the batch schedule replays shifted past it.
        let dev = self.trace_device;
        let mut t = SimTime::ZERO;
        r.record_device_op_on(dev, Engine::H2D, "upload", 0, 0, t, breakdown.upload_time);
        t = t + breakdown.upload_time;
        r.record_device_op_on(
            dev,
            Engine::Compute,
            "estimation",
            0,
            0,
            t,
            breakdown.estimation_time,
        );
        t = t + breakdown.estimation_time;
        r.record_device_op_on(
            dev,
            Engine::Host(0),
            "pinned_alloc",
            0,
            0,
            t,
            breakdown.pinned_alloc_time,
        );
        t = t + breakdown.pinned_alloc_time;
        r.record_schedule_on(dev, schedule, t - SimTime::ZERO);

        // Batching-scheme telemetry: how good was the estimate, and how
        // much of the overestimated buffers did the batches actually use?
        let m = r.metrics();
        let actual: usize = per_batch_pairs.iter().sum();
        m.counter_add("batch.e_b", e_b);
        m.gauge_set(
            "estimation.sample_fraction",
            self.config.batch.sample_fraction,
        );
        m.counter_add("batch.batches_run", per_batch_pairs.len() as u64);
        m.counter_add("batch.retries", retries as u64);
        m.counter_add("batch.discarded_batches", discarded_batches as u64);
        m.counter_add("batch.discarded_pairs", discarded_pairs as u64);
        m.counter_add("batch.result_pairs", actual as u64);
        m.gauge_set("batch.estimated_total", plan.estimated_total as f64);
        m.gauge_set("batch.overestimation_factor", 1.0 + plan.effective_alpha);
        if plan.estimated_total > 0 {
            m.gauge_set(
                "batch.estimation_accuracy",
                actual as f64 / plan.estimated_total as f64,
            );
        }
        let capacity = (plan.buffer_items * per_batch_pairs.len()).max(1);
        m.gauge_set("batch.buffer_utilization", actual as f64 / capacity as f64);
        for &pairs in per_batch_pairs {
            m.observe("batch.pairs", pairs as f64);
            m.observe(
                "batch.fill_fraction",
                pairs as f64 / plan.buffer_items.max(1) as f64,
            );
        }

        // Backend-selection telemetry: what ran and what the sampled
        // statistics said (zeros when the decision didn't need stats).
        m.counter_add(
            match decision.chosen {
                ChosenBackend::Grid => "backend.grid_runs",
                ChosenBackend::Tree => "backend.tree_runs",
            },
            1,
        );
        m.gauge_set("backend.cell_cv", decision.cell_cv);
        m.gauge_set("backend.mean_occupancy", decision.mean_occupancy);

        // Per-kernel profile metrics (the estimation launch is kept
        // separate from the batch kernels so their occupancies don't mix).
        let kernel_name = match (decision.chosen, self.config.kernel) {
            (ChosenBackend::Tree, _) => "gpucalc_tree",
            (ChosenBackend::Grid, KernelChoice::Global) => "gpucalc_global",
            (ChosenBackend::Grid, KernelChoice::Shared) => "gpucalc_shared",
        };
        obs::bench::record_kernel_profile(m, kernel_name, batch_profile);
        m.counter_add("kernel.estimation.launches", 1);
        m.gauge_set("kernel.estimation.occupancy", est_report.occupancy);
        let est_secs = est_report.duration.as_secs();
        m.gauge_set(
            "kernel.estimation.gmem_gbps",
            if est_secs == 0.0 {
                0.0
            } else {
                est_report.counters.global_bytes() as f64 / est_secs / 1e9
            },
        );

        // Schedule-shape metrics: overlap achieved by the 3 streams.
        let serial = schedule.serial_time().as_secs();
        let makespan = schedule.makespan.as_secs();
        m.gauge_set("schedule.makespan_ms", schedule.makespan.as_millis());
        m.gauge_set(
            "schedule.overlap_factor",
            if makespan == 0.0 {
                0.0
            } else {
                serial / makespan
            },
        );
    }

    /// Run all batches of `plan` as a wall-clock pipeline mirroring the
    /// modeled stream schedule: one pool-driven worker per stream, each
    /// owning its device/pinned buffer pair and executing its batches
    /// (`l ≡ stream (mod n_buffers)`, the serial loop's exact buffer
    /// assignment) kernel → sort → D2H → ingest in order. Kernels still
    /// serialize on the device's compute engine, but the host-side sort,
    /// staging copy, and table ingest of batch *l* now overlap the kernel
    /// of batch *l+1* in wall-clock, exactly as the modeled 3-stream
    /// schedule overlaps them on the timeline.
    ///
    /// Returns [`BatchPass::Overflowed`] (with exact per-batch
    /// requirement counts for replanning) if any batch overflowed its
    /// buffer, otherwise the filled builder, the per-batch operation
    /// chains for scheduling, the kernel profile, and the per-batch pair
    /// counts.
    ///
    /// INVARIANT (threading policy, DESIGN.md): every outcome a worker
    /// produces — kernel report, sorted sequence, staged length, modeled
    /// durations — is a pure function of its batch index, and the drain
    /// loop below merges them in batch order. The pipeline therefore
    /// yields bit-identical tables, profiles, and `modeled_time` at every
    /// thread count, including 1 (where the workers simply run one after
    /// another).
    #[allow(clippy::too_many_arguments)]
    fn run_batches(
        &self,
        store: &PointStore,
        search: SearchView<'_>,
        eps: f64,
        plan: &BatchPlan,
        shared_batches: Option<&[Vec<u32>]>,
        dev_buffers: &mut [DeviceAppendBuffer<NeighborPair>],
        pinned: &mut [PinnedBuffer<NeighborPair>],
    ) -> Result<BatchPass, HybridError> {
        let cfg = &self.config;
        let n_b = shared_batches.map_or(plan.n_batches, |b| b.len().max(1));
        let n_buffers = dev_buffers.len();
        let builder = NeighborTableBuilder::new(eps, store.len(), n_b);

        /// What one batch hands from its stream worker to the drain loop.
        struct BatchOutcome {
            /// `None` marks an empty shared-kernel batch (no launch).
            report: Option<gpu_sim::KernelReport>,
            sort_time: SimDuration,
            d2h_time: SimDuration,
            staged_len: usize,
            /// Exact pairs this batch needed: every append attempt,
            /// counted past capacity. A pure function of the batch, so
            /// an overflowed pass yields the true `|R|` deterministically.
            required: usize,
        }
        let outcomes: Vec<Mutex<Option<BatchOutcome>>> =
            (0..n_b).map(|_| Mutex::new(None)).collect();
        let abort = AtomicBool::new(false);
        let overflowed = AtomicBool::new(false);
        // Lowest-batch-index error among those observed wins, so the
        // surfaced error does not depend on worker interleaving.
        let first_error: Mutex<Option<(usize, HybridError)>> = Mutex::new(None);

        let worker = |stream: usize,
                      buf: &mut DeviceAppendBuffer<NeighborPair>,
                      stage: &mut PinnedBuffer<NeighborPair>| {
            let mut l = stream;
            while l < n_b && !abort.load(Ordering::Relaxed) {
                buf.reset();

                // Kernel launch (functional execution + modeled duration);
                // the device's compute engine admits one kernel at a time.
                let launched = match (search, cfg.kernel) {
                    (SearchView::Tree { tree }, _) => {
                        let kernel = GpuCalcTree {
                            points: PointsViewN::from(store.view()),
                            tree,
                            eps,
                            batch: l,
                            n_batches: n_b,
                            result: buf,
                        };
                        Some(
                            self.device
                                .launch(kernel.launch_config(cfg.block_dim), &kernel),
                        )
                    }
                    (
                        SearchView::Grid {
                            cells,
                            lookup,
                            geom,
                        },
                        KernelChoice::Global,
                    ) => {
                        let kernel = GpuCalcGlobal {
                            points: store.view(),
                            grid: cells,
                            lookup,
                            geom,
                            eps,
                            batch: l,
                            n_batches: n_b,
                            result: buf,
                            skip_dense_at: None,
                        };
                        Some(
                            self.device
                                .launch(kernel.launch_config(cfg.block_dim), &kernel),
                        )
                    }
                    (
                        SearchView::Grid {
                            cells,
                            lookup,
                            geom,
                        },
                        KernelChoice::Shared,
                    ) => {
                        let batch_cells: &[u32] =
                            &shared_batches.expect("shared kernel requires a cell packing")[l];
                        if batch_cells.is_empty() {
                            None
                        } else {
                            let kernel = GpuCalcShared {
                                points: store.view(),
                                grid: cells,
                                lookup,
                                geom,
                                eps,
                                schedule: batch_cells,
                                result: buf,
                            };
                            Some(
                                self.device
                                    .launch(kernel.launch_config(cfg.block_dim), &kernel),
                            )
                        }
                    }
                };
                let report = match launched {
                    None => {
                        // Empty shared batch: no launch, empty chain.
                        *outcomes[l].lock() = Some(BatchOutcome {
                            report: None,
                            sort_time: SimDuration::ZERO,
                            d2h_time: SimDuration::ZERO,
                            staged_len: 0,
                            required: 0,
                        });
                        l += n_buffers;
                        continue;
                    }
                    Some(Ok(report)) => report,
                    Some(Err(e)) => {
                        let mut slot = first_error.lock();
                        if slot.as_ref().is_none_or(|&(l0, _)| l < l0) {
                            *slot = Some((l, e.into()));
                        }
                        abort.store(true, Ordering::Relaxed);
                        return;
                    }
                };

                if buf.overflowed() {
                    // Keep going instead of aborting: the remaining
                    // batches still run their kernels, so every batch
                    // reports its exact requirement and the retry can
                    // replan from the true |R| (which *worker* notices
                    // first is schedule-dependent, but per-batch
                    // requirements are not — the whole pass's pairs are
                    // discarded and only the counts escape).
                    overflowed.store(true, Ordering::Relaxed);
                    *outcomes[l].lock() = Some(BatchOutcome {
                        report: Some(report),
                        sort_time: SimDuration::ZERO,
                        d2h_time: SimDuration::ZERO,
                        staged_len: 0,
                        required: buf.len() + buf.rejected(),
                    });
                    l += n_buffers;
                    continue;
                }
                if overflowed.load(Ordering::Relaxed) {
                    // Another batch already overflowed: this pass is
                    // doomed, so skip the canonicalization / transfer /
                    // ingest and just report this batch's exact count.
                    *outcomes[l].lock() = Some(BatchOutcome {
                        report: Some(report),
                        sort_time: SimDuration::ZERO,
                        d2h_time: SimDuration::ZERO,
                        staged_len: 0,
                        required: buf.len(),
                    });
                    l += n_buffers;
                    continue;
                }

                // Host-side sort by key (Thrust), so identical keys are
                // adjacent before the transfer. INVARIANT (threading
                // policy, DESIGN.md): this total-order sort is the
                // canonicalization of the append buffer — block append
                // order varies with host scheduling, and every
                // downstream consumer (staging copy, table ingest) sees
                // only the sorted, schedule-independent sequence.
                let sort_time = thrust::sort_by_key(&self.device, buf.as_filled_mut_slice());

                // D2H straight into this stream's pinned staging area.
                // The staging buffer is reused by batch l + n_buffers —
                // same stream, so reuse serializes by construction
                // (Algorithm 4's rationale for copying values out into
                // buffer B).
                let (staged_len, d2h_time) = buf.download_into(stage);

                // Host: copy the values out of staging into T, off the
                // driving thread — the builder's lock-free claims let
                // streams ingest concurrently. The chain op's duration
                // is modeled from the staged pair count, never measured.
                builder.ingest_batch(l, &stage.as_slice()[..staged_len]);

                *outcomes[l].lock() = Some(BatchOutcome {
                    report: Some(report),
                    sort_time,
                    d2h_time,
                    staged_len,
                    required: staged_len,
                });
                l += n_buffers;
            }
        };

        // Drive the stream workers. With one buffer or one thread the
        // pipeline degenerates to the workers running back to back on
        // this thread — same batch work, same outcomes.
        if n_buffers > 1 && rayon::current_num_threads() > 1 {
            rayon::scope(|s| {
                for (stream, (buf, stage)) in
                    dev_buffers.iter_mut().zip(pinned.iter_mut()).enumerate()
                {
                    let worker = &worker;
                    s.spawn(move |_| worker(stream, buf, stage));
                }
            });
        } else {
            for (stream, (buf, stage)) in dev_buffers.iter_mut().zip(pinned.iter_mut()).enumerate()
            {
                worker(stream, buf, stage);
            }
        }

        if let Some((_, e)) = first_error.into_inner() {
            return Err(e);
        }
        if overflowed.load(Ordering::Relaxed) {
            let mut required_total = 0u64;
            let mut max_required = 0usize;
            let mut produced_pairs = 0usize;
            for slot in &outcomes {
                let out = slot
                    .lock()
                    .take()
                    .expect("pipeline finished without an outcome for some batch");
                required_total += out.required as u64;
                max_required = max_required.max(out.required);
                produced_pairs += out.required.min(plan.buffer_items);
            }
            return Ok(BatchPass::Overflowed {
                required_total,
                max_required,
                produced_pairs,
                batches: n_b,
            });
        }

        // Drain outcomes in batch index order. `KernelProfile::record`
        // folds f64 sums and `schedule_chains` consumes chains
        // positionally, so this ordered merge — not the workers'
        // completion order — is what keeps `modeled_time_bits` and the
        // profile bit-identical to the serial loop.
        let mut chains: Vec<Vec<OpSpec>> = Vec::with_capacity(n_b);
        let mut profile = KernelProfile::new();
        let mut per_batch_pairs: Vec<usize> = Vec::with_capacity(n_b);
        for slot in &outcomes {
            let out = slot
                .lock()
                .take()
                .expect("pipeline finished without an outcome for some batch");
            match out.report {
                None => {
                    chains.push(Vec::new());
                    per_batch_pairs.push(0);
                }
                Some(report) => {
                    profile.record(&report);
                    per_batch_pairs.push(out.staged_len);
                    let ingest_time = ingest_time_model(out.staged_len);
                    chains.push(vec![
                        OpSpec::new(Engine::Compute, report.duration, "kernel"),
                        OpSpec::new(Engine::Compute, out.sort_time, "sort"),
                        OpSpec::new(Engine::D2H, out.d2h_time, "d2h"),
                        OpSpec::new(
                            Engine::Host(chains.len() % cfg.host_lanes.max(1)),
                            ingest_time,
                            "ingest",
                        ),
                    ]);
                }
            }
        }

        Ok(BatchPass::Complete((
            builder,
            chains,
            profile,
            per_batch_pairs,
        )))
    }
}

/// Pack the non-empty cells of `grid` into batches for the shared kernel.
///
/// The paper's strided point assignment does not apply to a block-per-cell
/// kernel: one dense cell can emit more pairs than a whole batch budget.
/// Instead we bound each cell's output conservatively by
/// `m_h × Σ_{h' ∈ adj(h)} m_{h'}` (every pair a cell's blocks can emit is
/// counted) and first-fit cells, in schedule order, into batches whose
/// summed bound stays within `capacity`. Overflow is therefore impossible
/// by construction. Returns the batches and the capacity actually needed
/// (which exceeds `capacity` only when a single cell's bound does).
fn pack_shared_cells(grid: &GridIndex, capacity: usize) -> (Vec<Vec<u32>>, usize) {
    let cells = grid.cells_view();
    let geom = grid.geometry();
    let mut required = capacity.max(1);
    let mut bounds = Vec::with_capacity(grid.non_empty_cells().len());
    for &h in grid.non_empty_cells() {
        let m = cells.range_of(h).len();
        let (adj, n_adj) = geom.neighbor_cells(h as usize);
        let neighborhood: usize = adj[..n_adj].iter().map(|&a| cells.range_of(a).len()).sum();
        let bound = m * neighborhood;
        required = required.max(bound);
        bounds.push((h, bound));
    }
    let mut batches: Vec<Vec<u32>> = Vec::new();
    let mut current: Vec<u32> = Vec::new();
    let mut load = 0usize;
    for (h, bound) in bounds {
        if load + bound > required && !current.is_empty() {
            batches.push(std::mem::take(&mut current));
            load = 0;
        }
        current.push(h);
        load += bound;
    }
    if !current.is_empty() {
        batches.push(current);
    }
    (batches, required)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::GridSource;
    use crate::kernels::test_support::mixed_points;

    /// A 1-D line with a denser middle third. Per-point neighbor counts
    /// are near-constant within each region and strided batches sample
    /// both regions evenly, so per-batch result sizes have low skew —
    /// the regime of the paper's datasets, unlike `mixed_points`.
    fn gradient_line_points(n: usize) -> Vec<Point2> {
        let mut x = 0.0f64;
        (0..n)
            .map(|i| {
                let step = if (n / 3..2 * n / 3).contains(&i) {
                    0.07
                } else {
                    0.1
                };
                x += step;
                Point2::new(x, 0.5)
            })
            .collect()
    }

    fn tiny_batch_config(buffer_items: usize) -> BatchConfig {
        BatchConfig {
            alpha: 0.05,
            sample_fraction: 0.05,
            static_threshold: 0, // always static sizing
            static_buffer_items: buffer_items,
            n_streams: 3,
        }
    }

    #[test]
    fn run_matches_direct_grid_dbscan() {
        let data = mixed_points(600);
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(&device, HybridConfig::default());
        for (eps, minpts) in [(0.5, 4), (1.0, 8), (0.25, 2)] {
            let result = hybrid.run(&data, eps, minpts).unwrap();
            let grid = GridIndex::build(&data, eps);
            let direct = Dbscan::new(minpts).run(&GridSource::new(&grid, &data));
            assert!(
                result.clustering.equivalent_to(&direct),
                "eps={eps} minpts={minpts}: {} vs {} clusters",
                result.clustering.num_clusters(),
                direct.num_clusters()
            );
        }
    }

    #[test]
    fn multi_batch_run_matches_single_batch() {
        let data = mixed_points(800);
        let device = Device::k20c();
        let one = HybridDbscan::new(&device, HybridConfig::default());
        let many_cfg = HybridConfig {
            batch: tiny_batch_config(2000), // forces several batches
            ..HybridConfig::default()
        };
        let many = HybridDbscan::new(&device, many_cfg);

        let r1 = one.run(&data, 0.6, 4).unwrap();
        let rn = many.run(&data, 0.6, 4).unwrap();
        assert!(rn.gpu.n_batches > 1, "test must exercise batching");
        assert!(r1.clustering.equivalent_to(&rn.clustering));
        assert_eq!(r1.gpu.result_pairs, rn.gpu.result_pairs);
    }

    #[test]
    fn shared_kernel_produces_identical_clustering() {
        let data = mixed_points(500);
        let device = Device::k20c();
        let global = HybridDbscan::new(&device, HybridConfig::default());
        let shared = HybridDbscan::new(
            &device,
            HybridConfig {
                kernel: KernelChoice::Shared,
                ..HybridConfig::default()
            },
        );
        let rg = global.run(&data, 0.7, 4).unwrap();
        let rs = shared.run(&data, 0.7, 4).unwrap();
        assert!(rg.clustering.equivalent_to(&rs.clustering));
        assert_eq!(rg.gpu.result_pairs, rs.gpu.result_pairs);
    }

    #[test]
    fn shared_kernel_multi_batch_matches() {
        let data = mixed_points(500);
        let device = Device::k20c();
        let cfg = HybridConfig {
            kernel: KernelChoice::Shared,
            batch: tiny_batch_config(3000),
            ..HybridConfig::default()
        };
        let hybrid = HybridDbscan::new(&device, cfg);
        let r = hybrid.run(&data, 0.7, 4).unwrap();
        assert!(r.gpu.n_batches > 1);
        let grid = GridIndex::build(&data, 0.7);
        let direct = Dbscan::new(4).run(&GridSource::new(&grid, &data));
        assert!(r.clustering.equivalent_to(&direct));
    }

    #[test]
    fn overflow_recovery_replans_batches() {
        let data = mixed_points(400);
        let device = Device::k20c();
        // Lie to the planner: a strongly negative α makes Equation 1 plan
        // far too few batches for the (exact, stride-1) estimate, so the
        // static per-stream buffers must overflow and the retry path
        // kicks in. (The old trick of a sample "fraction" above 1 no
        // longer works: the estimate is scaled by the realized sample
        // size, so any f with stride 1 yields an exact a_b.)
        let cfg = HybridConfig {
            batch: BatchConfig {
                alpha: -0.9,
                sample_fraction: 1.0,
                static_threshold: 0,       // static-buffer path
                static_buffer_items: 2000, // far below |R| / n_b
                n_streams: 3,
            },
            max_retries: 16,
            ..HybridConfig::default()
        };
        let hybrid = HybridDbscan::new(&device, cfg);
        let r = hybrid.run(&data, 1.0, 4).unwrap();
        assert!(r.gpu.retries > 0, "undersized plan must trigger retries");
        // The failed pass counted the true |R|, so the executed plan is
        // the minimal Equation-1 plan for it (margin 5%), not a blind
        // power-of-two overshoot.
        let minimal = (1.05 * r.gpu.result_pairs as f64 / 2000.0).ceil() as usize;
        assert_eq!(r.gpu.plan.n_batches, minimal.min(data.len()));
        assert_eq!(r.gpu.plan.estimated_total, r.gpu.result_pairs as u64);
        // Discarded-work accounting covers every retried batch.
        assert!(r.gpu.discarded_batches > 0);
        assert!(r.gpu.discarded_pairs > 0);
        // And the result is still correct.
        let grid = GridIndex::build(&data, 1.0);
        let direct = Dbscan::new(4).run(&GridSource::new(&grid, &data));
        assert!(r.clustering.equivalent_to(&direct));
    }

    #[test]
    fn executed_batches_monotone_entering_retry_free_region() {
        // Regression for the α-sweep anomaly: a retry at a small α used
        // to *double* n_b, making the executed batch count jump far above
        // what a slightly larger (retry-free) α needs (the ablation
        // showed 310 + retry at α=0.00 vs 162 at α=0.05). With the exact
        // replan, the executed n_b must be non-increasing until the sweep
        // enters the retry-free region (beyond that it legitimately grows
        // with α, since buffers are fixed and Equation 1 scales with it).
        //
        // Calibration (all deterministic): |R| = 33,314 at eps 0.35, so
        // with b_b = 980 the α=0.00 plan of 34 batches has a max fill of
        // 985 (0.5% skew vs 0.02% headroom — overflow), while every
        // α ≥ 0.01 plan fits. The replan executes ceil(1.05·|R|/980) =
        // 36 batches; the old doubling executed 68.
        let data = gradient_line_points(4000);
        let device = Device::k20c();
        let mut executed: Vec<(f64, usize, usize)> = Vec::new();
        for alpha in [0.0, 0.01, 0.05, 0.2, 0.5] {
            let cfg = HybridConfig {
                batch: BatchConfig {
                    alpha,
                    sample_fraction: 1.0, // exact estimate: a_b = |R|
                    static_threshold: 0,
                    static_buffer_items: 980,
                    n_streams: 3,
                },
                max_retries: 8,
                ..HybridConfig::default()
            };
            let hybrid = HybridDbscan::new(&device, cfg);
            let r = hybrid.run(&data, 0.35, 4).unwrap();
            executed.push((alpha, r.gpu.retries, r.gpu.n_batches));
        }
        assert!(
            executed.iter().any(|&(_, retries, _)| retries > 0),
            "sweep must exercise the retry path: {executed:?}"
        );
        let first_retry_free = executed
            .iter()
            .position(|&(_, retries, _)| retries == 0)
            .expect("some α must be retry-free");
        for w in executed[..=first_retry_free].windows(2) {
            assert!(
                w[1].2 <= w[0].2,
                "executed n_batches must be non-increasing entering the \
                 retry-free region: {executed:?}"
            );
        }
        // No power-of-two overshoot: a retried α may not execute more
        // than ~25% above the first retry-free batch count.
        let baseline = executed[first_retry_free].2 as f64;
        for &(alpha, retries, n) in &executed[..first_retry_free] {
            assert!(
                retries > 0 && (n as f64) <= baseline * 1.25,
                "α={alpha}: executed {n} vs retry-free {baseline}: {executed:?}"
            );
        }
        // Pin the executed sweep shape (deterministic pipeline).
        let shape: Vec<(usize, usize)> = executed.iter().map(|&(_, r, n)| (r, n)).collect();
        assert_eq!(
            shape,
            vec![(1, 36), (0, 35), (0, 36), (0, 41), (0, 51)],
            "{executed:?}"
        );
    }

    #[test]
    fn post_retry_report_and_metrics_describe_executed_plan() {
        // After overflow recovery the report's plan (and the recorded
        // telemetry) must describe the *retried* plan, not the initial
        // one, and count the retries.
        let data = mixed_points(400);
        let device = Device::k20c();
        let cfg = HybridConfig {
            batch: BatchConfig {
                alpha: -0.9,
                sample_fraction: 1.0,
                static_threshold: 0,
                static_buffer_items: 2000,
                n_streams: 3,
            },
            max_retries: 16,
            ..HybridConfig::default()
        };
        let rec = Arc::new(obs::Recorder::new());
        let hybrid = HybridDbscan::new(&device, cfg).with_recorder(rec.clone());
        let r = hybrid.run(&data, 1.0, 4).unwrap();
        assert!(r.gpu.retries > 0, "test must exercise the retry path");
        // The executed plan is the one in the report.
        assert_eq!(r.gpu.plan.n_batches, r.gpu.n_batches);
        assert_eq!(r.gpu.per_batch_pairs.len(), r.gpu.n_batches);
        let initial = cfg.batch.plan(r.gpu.e_b, data.len());
        assert!(
            r.gpu.plan.n_batches > initial.n_batches,
            "retried plan must have more batches than the initial plan"
        );
        // Telemetry: the retry counter and the batch count reflect the
        // executed run.
        let m = rec.metrics().snapshot();
        assert_eq!(m.counters["batch.retries"], r.gpu.retries as u64);
        assert_eq!(m.counters["batch.batches_run"], r.gpu.n_batches as u64);
        assert_eq!(
            m.counters["batch.discarded_batches"],
            r.gpu.discarded_batches as u64
        );
        assert_eq!(
            m.counters["batch.discarded_pairs"],
            r.gpu.discarded_pairs as u64
        );
        assert!(
            r.gpu.discarded_batches > 0,
            "retried passes must be accounted as discarded work"
        );
        assert_eq!(
            m.histograms["batch.pairs"].count, r.gpu.n_batches as u64,
            "per-batch telemetry must come from the executed plan"
        );
    }

    #[test]
    fn fractional_sample_stride_estimate_is_unbiased() {
        // Regression for the estimation-stride bias: with f = 0.03 the
        // stride is round(1/0.03) = 33, whose realized fraction differs
        // from f. The report's estimated total must equal the unbiased
        // scaling of e_b by the realized sample size.
        // Large enough that the MIN_SAMPLE stride clamp is inactive and
        // the f-derived stride is what the kernel actually runs.
        let data = mixed_points(3000);
        let device = Device::k20c();
        let cfg = HybridConfig {
            batch: BatchConfig {
                sample_fraction: 0.03,
                ..BatchConfig::default()
            },
            ..HybridConfig::default()
        };
        let hybrid = HybridDbscan::new(&device, cfg);
        let r = hybrid.run(&data, 0.6, 4).unwrap();
        let batch = &cfg.batch;
        assert_eq!(batch.stride_for(data.len()), 33);
        let sample = batch.sample_size(data.len());
        assert_eq!(sample, data.len().div_ceil(33));
        let unbiased = (r.gpu.e_b as f64 * data.len() as f64 / sample as f64).ceil() as u64;
        assert_eq!(r.gpu.plan.estimated_total, unbiased.max(1));
        // The naive e_b / f scaling differs — the bias this fixes.
        let naive = (r.gpu.e_b as f64 / 0.03).ceil() as u64;
        assert_ne!(
            naive, unbiased,
            "test data must exercise the non-integral-stride bias"
        );
    }

    #[test]
    fn table_reuse_across_minpts() {
        let data = mixed_points(500);
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(&device, HybridConfig::default());
        let handle = hybrid.build_table(&data, 0.8).unwrap();
        let grid = GridIndex::build(&data, 0.8);
        for minpts in [2, 4, 8, 16] {
            let (clustering, _) = HybridDbscan::cluster_with_table(&handle, minpts);
            let direct = Dbscan::new(minpts).run(&GridSource::new(&grid, &data));
            assert!(clustering.equivalent_to(&direct), "minpts = {minpts}");
        }
    }

    #[test]
    fn timings_are_populated() {
        let data = mixed_points(300);
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(&device, HybridConfig::default());
        let r = hybrid.run(&data, 0.5, 4).unwrap();
        assert!(r.timings.gpu_phase > SimDuration::ZERO);
        assert!(r.timings.total.as_secs() >= r.timings.gpu_phase.as_secs());
        assert!(r.gpu.result_pairs > 0);
        assert!(r.gpu.e_b > 0);
        assert!(r.gpu.kernel_profile.launches >= 2, "estimation + >=1 batch");
    }

    #[test]
    fn device_memory_is_released_after_run() {
        let data = mixed_points(300);
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(&device, HybridConfig::default());
        let _ = hybrid.run(&data, 0.5, 4).unwrap();
        assert_eq!(
            device.used_bytes(),
            0,
            "all device allocations must be dropped"
        );
    }

    #[test]
    fn tiny_device_forces_memory_fitting() {
        // A device with little memory: the plan must shrink buffers and
        // still produce correct results.
        let data = mixed_points(400);
        let device = Device::tiny(2 * 1024 * 1024);
        let hybrid = HybridDbscan::new(&device, HybridConfig::default());
        let r = hybrid.run(&data, 0.8, 4).unwrap();
        let grid = GridIndex::build(&data, 0.8);
        let direct = Dbscan::new(4).run(&GridSource::new(&grid, &data));
        assert!(r.clustering.equivalent_to(&direct));
    }

    #[test]
    fn per_batch_pairs_sum_to_total() {
        let data = mixed_points(800);
        let device = Device::k20c();
        let cfg = HybridConfig {
            batch: tiny_batch_config(2000),
            ..HybridConfig::default()
        };
        let hybrid = HybridDbscan::new(&device, cfg);
        let r = hybrid.run(&data, 0.6, 4).unwrap();
        assert!(r.gpu.per_batch_pairs.len() > 1);
        assert_eq!(r.gpu.per_batch_pairs.len(), r.gpu.n_batches);
        assert_eq!(
            r.gpu.per_batch_pairs.iter().sum::<usize>(),
            r.gpu.result_pairs
        );
    }

    #[test]
    fn recorder_captures_spans_device_track_and_metrics() {
        let data = mixed_points(400);
        let device = Device::k20c();
        let rec = Arc::new(obs::Recorder::new());
        let hybrid = HybridDbscan::new(&device, HybridConfig::default()).with_recorder(rec.clone());
        let r = hybrid.run(&data, 0.6, 4).unwrap();

        // Host spans: the run tree exists and is parented correctly.
        let spans = rec.spans();
        let run_span = spans.iter().find(|s| s.name == "hybrid_dbscan").unwrap();
        let build = spans.iter().find(|s| s.name == "build_table").unwrap();
        assert_eq!(build.parent, Some(run_span.id));
        assert!(
            build.sim_dur_us.is_some(),
            "build_table carries its sim window"
        );
        for name in ["index_build", "estimation_kernel", "batch_loop", "dbscan"] {
            assert!(spans.iter().any(|s| s.name == name), "missing span {name}");
        }

        // Device track: preamble + schedule ops, labels matching the
        // Gantt, total op count = 3 preamble + schedule ops.
        let ops = rec.device_ops();
        assert_eq!(ops.len(), 3 + r.gpu.schedule.ops.len());
        for label in r.gpu.schedule.op_labels() {
            assert!(
                ops.iter().any(|o| o.label == label),
                "missing device op {label}"
            );
        }

        // Metrics: estimation accuracy and kernel telemetry present.
        let m = rec.metrics().snapshot();
        assert_eq!(m.counters["batch.e_b"], r.gpu.e_b);
        assert_eq!(m.counters["batch.result_pairs"], r.gpu.result_pairs as u64);
        let acc = m.gauges["batch.estimation_accuracy"];
        assert!(acc > 0.0 && acc.is_finite(), "accuracy {acc}");
        assert!(m.gauges["kernel.gpucalc_global.mean_occupancy"] > 0.0);
        assert!(m.gauges["kernel.estimation.occupancy"] > 0.0);
        assert_eq!(m.histograms["batch.pairs"].count, r.gpu.n_batches as u64);
    }

    #[test]
    fn device_lane_events_do_not_overlap_in_recorder() {
        let data = mixed_points(600);
        let device = Device::k20c();
        let cfg = HybridConfig {
            batch: tiny_batch_config(2000),
            ..HybridConfig::default()
        };
        let rec = Arc::new(obs::Recorder::new());
        let hybrid = HybridDbscan::new(&device, cfg).with_recorder(rec.clone());
        let r = hybrid.build_table(&data, 0.6).unwrap();
        assert!(r.gpu.n_batches > 1);
        let mut ops = rec.device_ops();
        ops.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        for engine in [Engine::H2D, Engine::Compute, Engine::D2H, Engine::Host(0)] {
            let lane: Vec<_> = ops.iter().filter(|o| o.engine == engine).collect();
            for w in lane.windows(2) {
                assert!(
                    w[1].start_us >= w[0].start_us + w[0].dur_us - 1e-6,
                    "overlap on {engine:?}: {w:?}"
                );
            }
        }
    }

    #[test]
    fn labels_are_in_caller_order() {
        // Shuffle the input; the two coincident-cluster memberships must
        // land on the right original indices.
        let mut data = Vec::new();
        for i in 0..40 {
            data.push(Point2::new(100.0 + (i % 7) as f64 * 0.01, 0.0)); // clump B first
        }
        for i in 0..40 {
            data.push(Point2::new((i % 7) as f64 * 0.01, 0.0)); // clump A second
        }
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(&device, HybridConfig::default());
        let r = hybrid.run(&data, 0.5, 3).unwrap();
        let labels = r.clustering.labels();
        // Points 0..40 (clump at x~100) share one label; 40..80 the other.
        for i in 1..40 {
            assert_eq!(labels[i], labels[0]);
            assert_eq!(labels[40 + i], labels[40]);
        }
        assert_ne!(labels[0], labels[40]);
    }

    #[test]
    fn tree_backend_matches_grid_bitwise() {
        let data = mixed_points(600);
        let device = Device::k20c();
        let grid = HybridDbscan::new(&device, HybridConfig::default());
        let tree = HybridDbscan::new(
            &device,
            HybridConfig {
                backend: IndexBackend::Tree,
                ..HybridConfig::default()
            },
        );
        let hg = grid.build_table(&data, 0.6).unwrap();
        let ht = tree.build_table(&data, 0.6).unwrap();
        assert_eq!(hg.gpu.backend.chosen, ChosenBackend::Grid);
        assert_eq!(ht.gpu.backend.chosen, ChosenBackend::Tree);
        // Exact count kernels on both sides → identical e_b → identical
        // batch plan → (after the canonical device sort) identical tables.
        assert_eq!(hg.gpu.e_b, ht.gpu.e_b);
        assert_eq!(hg.gpu.n_batches, ht.gpu.n_batches);
        assert_eq!(hg.gpu.per_batch_pairs, ht.gpu.per_batch_pairs);
        assert_eq!(
            crate::shard::table_fingerprint(&hg.table),
            crate::shard::table_fingerprint(&ht.table)
        );
        let (cg, _) = HybridDbscan::cluster_with_table(&hg, 4);
        let (ct, _) = HybridDbscan::cluster_with_table(&ht, 4);
        assert_eq!(
            crate::shard::clustering_fingerprint(&cg),
            crate::shard::clustering_fingerprint(&ct)
        );
    }

    #[test]
    fn tree_backend_multi_batch_matches_grid() {
        let data = mixed_points(800);
        let device = Device::k20c();
        let mk = |backend| {
            HybridConfig {
                backend,
                batch: tiny_batch_config(2000), // forces several batches
                ..HybridConfig::default()
            }
        };
        let hg = HybridDbscan::new(&device, mk(IndexBackend::Grid))
            .build_table(&data, 0.6)
            .unwrap();
        let ht = HybridDbscan::new(&device, mk(IndexBackend::Tree))
            .build_table(&data, 0.6)
            .unwrap();
        assert!(ht.gpu.n_batches > 1, "test must exercise batching");
        assert_eq!(hg.gpu.per_batch_pairs, ht.gpu.per_batch_pairs);
        assert_eq!(
            crate::shard::table_fingerprint(&hg.table),
            crate::shard::table_fingerprint(&ht.table)
        );
    }

    #[test]
    fn auto_backend_resolves_and_matches_grid() {
        let data = mixed_points(600);
        let device = Device::k20c();
        let auto = HybridDbscan::new(
            &device,
            HybridConfig {
                backend: IndexBackend::Auto,
                ..HybridConfig::default()
            },
        );
        let ha = auto.build_table(&data, 0.6).unwrap();
        assert_eq!(ha.gpu.backend.requested, IndexBackend::Auto);
        assert_eq!(ha.gpu.backend.reason, "auto");
        let hg = HybridDbscan::new(&device, HybridConfig::default())
            .build_table(&data, 0.6)
            .unwrap();
        assert_eq!(
            crate::shard::table_fingerprint(&hg.table),
            crate::shard::table_fingerprint(&ha.table)
        );
    }

    #[test]
    fn shared_kernel_overrides_tree_request() {
        let data = mixed_points(400);
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(
            &device,
            HybridConfig {
                kernel: KernelChoice::Shared,
                backend: IndexBackend::Tree,
                ..HybridConfig::default()
            },
        );
        let r = hybrid.run(&data, 0.7, 4).unwrap();
        assert_eq!(r.gpu.backend.chosen, ChosenBackend::Grid);
        assert_eq!(r.gpu.backend.reason, "shared-kernel");
        let grid = GridIndex::build(&data, 0.7);
        let direct = Dbscan::new(4).run(&GridSource::new(&grid, &data));
        assert!(r.clustering.equivalent_to(&direct));
    }
}

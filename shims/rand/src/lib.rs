//! Offline stand-in for `rand` 0.9.
//!
//! Implements the slice of the rand 0.9 API the workspace touches —
//! `StdRng::seed_from_u64`, `Rng::random::<T>()`, `Rng::random_range`,
//! `random_bool` — over a SplitMix64 core. Deterministic per seed, which
//! is all the synthetic dataset generators require. **Streams differ from
//! the real `rand`**, so generated datasets are reproducible against this
//! shim, not against upstream rand.

use std::ops::Range;

/// Types samplable uniformly over their "natural" domain
/// (`f64` → `[0, 1)`, integers → full width, `bool` → fair coin).
pub trait Standard: Sized {
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> f64 {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut rngs::StdRng) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut rngs::StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut rngs::StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait RangeSample: Copy {
    fn sample_range(rng: &mut rngs::StdRng, range: Range<Self>) -> Self;
}

macro_rules! impl_range_sample_uint {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range(rng: &mut rngs::StdRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end - range.start) as u64;
                // Multiply-shift rejection-free mapping; bias is < 2^-64
                // per draw, irrelevant for synthetic data generation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}
impl_range_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_sample_int {
    ($($t:ty : $u:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range(rng: &mut rngs::StdRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end as i128 - range.start as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (range.start as i128 + hi as i128) as $t
            }
        }
    )*};
}
impl_range_sample_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl RangeSample for f64 {
    fn sample_range(rng: &mut rngs::StdRng, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty random_range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// The slice of `rand::Rng` the workspace uses.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn random<T: Standard>(&mut self) -> T
    where
        Self: AsStdRng,
    {
        T::sample(self.as_std_rng())
    }

    fn random_range<T: RangeSample>(&mut self, range: Range<T>) -> T
    where
        Self: AsStdRng,
    {
        T::sample_range(self.as_std_rng(), range)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: AsStdRng,
    {
        f64::sample(self.as_std_rng()) < p
    }
}

/// Helper so the `Rng` default methods can hand the concrete core to the
/// sampling traits.
pub trait AsStdRng {
    fn as_std_rng(&mut self) -> &mut rngs::StdRng;
}

/// `rand::SeedableRng`, seed-from-u64 form only.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{AsStdRng, Rng, SeedableRng};

    /// SplitMix64: tiny, full-period, passes BigCrush on its own — more
    /// than adequate for synthetic dataset generation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        #[inline]
        pub(crate) fn step(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl AsStdRng for StdRng {
        fn as_std_rng(&mut self) -> &mut StdRng {
            self
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let k = rng.random_range(0usize..10);
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..1000 {
            let v = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

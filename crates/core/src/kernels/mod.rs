//! The GPU kernels of Section IV, implemented against the `gpu-sim`
//! SIMT device.
//!
//! * [`GpuCalcGlobal`] — Algorithm 2: one thread per point, global memory
//!   only, with the strided batch assignment of Section VI baked into the
//!   gid→point mapping (Figure 2).
//! * [`GpuCalcShared`] — Algorithm 3: one block per non-empty grid cell
//!   (driven by the schedule `S`), origin/comparison cells paged through
//!   shared memory in block-size tiles with `__syncthreads()` barriers.
//! * [`NeighborCountKernel`] — the result-size estimation kernel of
//!   Section VI: counts (never materializes) the neighbors of a uniform
//!   sample of points.
//!
//! All kernels emit key/value pairs `(k_j, v_j)` where `v_j ∈ N_ε(k_j)`,
//! appended to a [`DeviceAppendBuffer`] through the atomic cursor — the
//! `atomic: gpuResultSet ∪ result` of the pseudo-code. Append overflow is
//! recorded in the buffer rather than corrupting memory; the batching
//! scheme's job is to make it never happen.

mod count;
mod global;
mod shared;

pub use count::NeighborCountKernel;
pub use global::GpuCalcGlobal;
pub use shared::GpuCalcShared;

/// A result-set item: `key` is a point id, `value` a point id within ε of
/// it. Layout matches the 8-byte pairs the device sort operates on.
pub type NeighborPair = (u32, u32);

#[cfg(test)]
pub(crate) mod test_support {
    use spatial::Point2;

    /// A small mixed-density point set exercising multi-cell grids.
    pub fn mixed_points(n: usize) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                if i % 3 == 0 {
                    // Clumped third.
                    Point2::new(
                        2.0 + (t * 0.618).fract() * 0.5,
                        2.0 + (t * 0.414).fract() * 0.5,
                    )
                } else {
                    // Spread remainder.
                    Point2::new((t * 0.777).fract() * 10.0, (t * 0.333).fract() * 10.0)
                }
            })
            .collect()
    }

    /// All (key, value) neighbor pairs by brute force, sorted.
    pub fn brute_force_pairs(data: &[Point2], eps: f64) -> Vec<(u32, u32)> {
        let eps_sq = eps * eps;
        let mut out = Vec::new();
        for (i, p) in data.iter().enumerate() {
            for (j, q) in data.iter().enumerate() {
                if p.distance_sq(q) <= eps_sq {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

//! Artifact provenance: who produced a document, from what tree, when.
//!
//! Every JSON artifact the workspace emits (`BENCH_suite.json`,
//! `BENCH_threads.json`, `PROFILE.json`, `SHARD_fingerprints.json`, the
//! run-ledger records) carries a [`Provenance`] header so a number can
//! always be traced back to the commit, toolchain, and pool configuration
//! that produced it. Without this, cross-run comparison is guesswork: the
//! 4-thread `build_table` regression of PR 8 went unnoticed for two PRs
//! precisely because the overwritten artifacts carried no identity.
//!
//! Collection ([`Provenance::collect`]) is best-effort: `git`/`rustc` are
//! queried through subprocesses and degrade to `"unknown"` when absent,
//! so artifact emission never fails on a stripped container. The header
//! itself is versioned ([`HEADER_VERSION`]) independently of the schema
//! of the document that embeds it.

use crate::json::{JsonValue, JsonWriter};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Version of the provenance header layout itself.
pub const HEADER_VERSION: u64 = 1;

/// Identity of one artifact-producing run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Provenance {
    /// Header layout version ([`HEADER_VERSION`]).
    pub header_version: u64,
    /// Schema id of the embedding document (e.g. `hybrid-dbscan/bench-suite`).
    pub schema: String,
    /// Schema version of the embedding document.
    pub schema_version: u64,
    /// Abbreviated commit sha, `"unknown"` when git is unavailable.
    pub git_sha: String,
    /// True when the working tree had uncommitted changes.
    pub git_dirty: bool,
    /// `rustc -V` output, `"unknown"` when unavailable.
    pub rustc: String,
    /// `RAYON_NUM_THREADS` as seen by the run, `"unset"` when absent.
    pub rayon_num_threads: String,
    /// Hostname, `"unknown"` when undeterminable.
    pub host: String,
    /// `os/arch` pair, e.g. `linux/x86_64`.
    pub os: String,
    /// Wall timestamp of collection, seconds since the Unix epoch.
    pub timestamp_unix: u64,
    /// Workload ids covered by the embedding document.
    pub workloads: Vec<String>,
}

fn command_line(cmd: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(cmd).args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().next()?.trim();
    if line.is_empty() {
        None
    } else {
        Some(line.to_string())
    }
}

fn hostname() -> Option<String> {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.is_empty() {
            return Some(h);
        }
    }
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
}

impl Provenance {
    /// Collect the header for a document of the given schema. Subprocess
    /// failures degrade to `"unknown"` rather than erroring: provenance
    /// must never be the reason an artifact fails to be written.
    pub fn collect(schema: &str, schema_version: u64, workloads: Vec<String>) -> Provenance {
        let git_sha = command_line("git", &["rev-parse", "--short=12", "HEAD"])
            .unwrap_or_else(|| "unknown".into());
        // `--untracked-files=no`: an untracked scratch file is not a
        // modified tree, and the dirty flag exists to catch exactly the
        // "benched uncommitted code" case.
        let git_dirty = Command::new("git")
            .args(["status", "--porcelain", "--untracked-files=no"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| !o.stdout.is_empty())
            .unwrap_or(false);
        Provenance {
            header_version: HEADER_VERSION,
            schema: schema.to_string(),
            schema_version,
            git_sha,
            git_dirty,
            rustc: command_line("rustc", &["-V"]).unwrap_or_else(|| "unknown".into()),
            rayon_num_threads: std::env::var("RAYON_NUM_THREADS")
                .ok()
                .filter(|v| !v.is_empty())
                .unwrap_or_else(|| "unset".into()),
            host: hostname().unwrap_or_else(|| "unknown".into()),
            os: format!("{}/{}", std::env::consts::OS, std::env::consts::ARCH),
            timestamp_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            workloads,
        }
    }

    /// Write `"provenance": {...}` into an open object.
    pub fn write_field(&self, w: &mut JsonWriter) {
        w.key("provenance");
        w.begin_object();
        w.field_uint("header_version", self.header_version);
        w.field_str("schema", &self.schema);
        w.field_uint("schema_version", self.schema_version);
        w.field_str("git_sha", &self.git_sha);
        w.field_bool("git_dirty", self.git_dirty);
        w.field_str("rustc", &self.rustc);
        w.field_str("rayon_num_threads", &self.rayon_num_threads);
        w.field_str("host", &self.host);
        w.field_str("os", &self.os);
        w.field_uint("timestamp_unix", self.timestamp_unix);
        w.key("workloads");
        w.begin_array();
        for id in &self.workloads {
            w.string(id);
        }
        w.end_array();
        w.end_object();
    }

    /// Parse the header out of a parsed document's `"provenance"` member.
    /// Returns `Ok(None)` when the member is absent (pre-header
    /// documents), `Err` when present but malformed.
    pub fn parse_field(doc: &JsonValue) -> Result<Option<Provenance>, String> {
        let Some(p) = doc.get("provenance") else {
            return Ok(None);
        };
        let s = |key: &str| -> Result<String, String> {
            p.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("provenance: missing string field '{key}'"))
        };
        let u = |key: &str| -> Result<u64, String> {
            p.get(key)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("provenance: missing integer field '{key}'"))
        };
        let workloads = p
            .get("workloads")
            .and_then(JsonValue::as_arr)
            .ok_or("provenance: missing 'workloads' array")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "provenance: non-string workload id".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Some(Provenance {
            header_version: u("header_version")?,
            schema: s("schema")?,
            schema_version: u("schema_version")?,
            git_sha: s("git_sha")?,
            git_dirty: p
                .get("git_dirty")
                .and_then(JsonValue::as_bool)
                .ok_or("provenance: missing boolean field 'git_dirty'")?,
            rustc: s("rustc")?,
            rayon_num_threads: s("rayon_num_threads")?,
            host: s("host")?,
            os: s("os")?,
            timestamp_unix: u("timestamp_unix")?,
            workloads,
        }))
    }

    /// `YYYY-MM-DD HH:MM:SS UTC` rendering of [`Self::timestamp_unix`]
    /// (hand-rolled civil-from-days — no chrono in this workspace).
    pub fn timestamp_utc(&self) -> String {
        format_utc(self.timestamp_unix)
    }
}

/// Format a Unix timestamp as `YYYY-MM-DD HH:MM:SS UTC` using the
/// standard days-from-civil inverse (Howard Hinnant's algorithm).
pub fn format_utc(unix: u64) -> String {
    let days = (unix / 86_400) as i64;
    let secs = unix % 86_400;
    let (h, m, s) = (secs / 3600, (secs / 60) % 60, secs % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02} {h:02}:{m:02}:{s:02} UTC")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> Provenance {
        Provenance {
            header_version: HEADER_VERSION,
            schema: "hybrid-dbscan/bench-suite".into(),
            schema_version: 2,
            git_sha: "ee9aa08269b9".into(),
            git_dirty: true,
            rustc: "rustc 1.95.0".into(),
            rayon_num_threads: "4".into(),
            host: "ci-box".into(),
            os: "linux/x86_64".into(),
            timestamp_unix: 1_754_611_200,
            workloads: vec!["s1/sw1-eps0.2/global".into(), "micro/sw1-eps0.2".into()],
        }
    }

    #[test]
    fn header_round_trips_through_shared_parser() {
        let p = sample();
        let mut w = JsonWriter::new();
        w.begin_object();
        p.write_field(&mut w);
        w.end_object();
        let doc = parse(&w.finish()).expect("valid JSON");
        let back = Provenance::parse_field(&doc)
            .expect("parses")
            .expect("present");
        assert_eq!(back, p);
    }

    #[test]
    fn absent_header_parses_as_none() {
        let doc = parse(r#"{"schema":"x"}"#).unwrap();
        assert_eq!(Provenance::parse_field(&doc), Ok(None));
    }

    #[test]
    fn malformed_header_is_an_error_not_none() {
        let doc = parse(r#"{"provenance":{"git_sha":"abc"}}"#).unwrap();
        assert!(Provenance::parse_field(&doc).is_err());
    }

    #[test]
    fn collect_populates_every_field() {
        let p = Provenance::collect("hybrid-dbscan/test", 1, vec!["w1".into()]);
        assert_eq!(p.header_version, HEADER_VERSION);
        assert_eq!(p.schema, "hybrid-dbscan/test");
        assert_eq!(p.schema_version, 1);
        assert!(!p.git_sha.is_empty());
        assert!(!p.rustc.is_empty());
        assert!(!p.host.is_empty());
        assert!(p.os.contains('/'));
        assert_eq!(p.workloads, vec!["w1".to_string()]);
        // Collection must not panic or fail even if git/rustc are
        // missing; the timestamp is the only field guaranteed non-zero
        // on a live clock.
        assert!(p.timestamp_unix > 0);
    }

    #[test]
    fn utc_formatting_matches_known_dates() {
        assert_eq!(format_utc(0), "1970-01-01 00:00:00 UTC");
        assert_eq!(format_utc(86_399), "1970-01-01 23:59:59 UTC");
        // 2026-08-08 00:00:00 UTC.
        assert_eq!(format_utc(1_786_147_200), "2026-08-08 00:00:00 UTC");
        // Leap day.
        assert_eq!(format_utc(1_709_164_800), "2024-02-29 00:00:00 UTC");
    }
}

//! A device-resident packed kd-tree: the tree-based ε-search backend.
//!
//! [`crate::kdtree::KdTree`] is a host-only pointer tree; GPU traversal
//! needs a flat, SoA layout. [`PackedKdTree`] stores the tree as an
//! *implicit level-order heap* (node `k` has children `2k+1`, `2k+2` —
//! no child pointers at all) over three parallel arrays:
//!
//! * `splits[k]` — the splitting coordinate of internal node `k`;
//! * `axes[k]` — its splitting dimension, or [`LEAF_AXIS`] for a leaf;
//! * `ranges[k]` — for leaves, the `[start, end)` range into `ids`.
//!
//! `ids` is the tree's analogue of the grid's lookup array `A`: point ids
//! reordered so every leaf owns a contiguous range (`|ids| = |D|`). The
//! four arrays upload to the simulated device as plain buffers and a
//! kernel traverses them with a fixed-size stack — no recursion, no
//! pointers, exactly the layout GPU BVH traversals use.
//!
//! # Build
//!
//! Median split (`select_nth_unstable_by`) on the cycling axis
//! `depth mod D`, comparing `(coordinate, id)` — a total order, so the
//! partition (and therefore the whole tree) is deterministic and
//! identical at every thread count. Split semantics match
//! [`crate::kdtree::KdTree`]: the left subtree holds coordinates
//! `<= splits[k]`, the right holds `>= splits[k]`, and an ε-query
//! descends left when `q[a] - eps <= split` and right when
//! `q[a] + eps >= split` (closed ball on both sides).
//!
//! Leaves hold at most `leaf_size` points except when the depth cap is
//! reached; with median splits a segment at depth `t` has at most
//! `ceil(n / 2^t)` points, so the cap `ceil(log2(n / leaf_size))` always
//! suffices and the node pool — sized `2^(depth+1) - 1` — stays within a
//! small constant factor of `n / leaf_size`.

use crate::grid::CellRange;
use crate::nd::{PointN, PointsViewN};

/// Default leaf capacity for planar (d ≤ 2) databases. Small enough
/// that a leaf is spatially tight (the tree's advantage over the grid's
/// 3ε stencil in dense regions), large enough that the per-leaf
/// traversal overhead amortizes over a SIMD-friendly scan.
pub const TREE_LEAF_SIZE: usize = 32;

/// Default leaf capacity for d ≥ 3. Higher dimensions inflate the
/// ε-ball's bounding box relative to its volume, so a query overlaps
/// proportionally more of each leaf it touches; smaller leaves keep the
/// scanned-candidate count close to the true result size, and the extra
/// traversal depth (one or two dependent reads per query) is cheaper
/// than the over-scan it avoids.
pub const TREE_LEAF_SIZE_ND: usize = 8;

/// The default leaf capacity for a `d`-dimensional database.
pub const fn default_leaf_size(d: usize) -> usize {
    if d <= 2 {
        TREE_LEAF_SIZE
    } else {
        TREE_LEAF_SIZE_ND
    }
}

/// `axes` sentinel marking a leaf node.
pub const LEAF_AXIS: u32 = u32::MAX;

/// Hard cap on tree depth (and on the traversal stack). 2^24 leaves is
/// far beyond any database the simulated device fits.
const MAX_DEPTH: usize = 24;

/// Summary statistics of a built tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Allocated node slots (`2^(depth+1) - 1`, including unused slots).
    pub node_slots: usize,
    /// Reachable leaves holding at least one point.
    pub leaves: usize,
    /// Largest leaf population.
    pub max_leaf_len: usize,
    /// Depth actually used (root = 0).
    pub depth: usize,
}

/// Borrowed, `Copy` view of the packed node pool — what the (simulated)
/// GPU kernels capture, like [`crate::grid::CellsView`].
#[derive(Debug, Clone, Copy)]
pub struct TreeView<'a> {
    pub splits: &'a [f64],
    pub axes: &'a [u32],
    pub ranges: &'a [CellRange],
    pub ids: &'a [u32],
}

/// The packed kd-tree over a `D`-dimensional point database.
#[derive(Debug, Clone)]
pub struct PackedKdTree<const D: usize> {
    splits: Vec<f64>,
    axes: Vec<u32>,
    ranges: Vec<CellRange>,
    ids: Vec<u32>,
    leaf_size: usize,
    depth: usize,
}

impl<const D: usize> PackedKdTree<D> {
    /// Build over the SoA coordinate view with the dimension's default
    /// leaf size ([`default_leaf_size`]).
    pub fn build(points: PointsViewN<'_, D>) -> Self {
        Self::build_with_leaf_size(points, default_leaf_size(D))
    }

    /// Build over a point slice (convenience for tests and host callers).
    pub fn build_from_points(points: &[PointN<D>]) -> Self {
        let store = crate::nd::PointStoreN::from_points(points);
        Self::build(store.view())
    }

    /// Build with an explicit leaf capacity (`>= 1`).
    pub fn build_with_leaf_size(points: PointsViewN<'_, D>, leaf_size: usize) -> Self {
        assert!(D > 0, "zero-dimensional tree");
        let n = points.len();
        assert!(n > 0, "cannot index an empty database");
        let leaf_size = leaf_size.max(1);

        // Depth needed so every median-split segment fits a leaf:
        // ceil(log2(ceil(n / leaf_size))), capped.
        let n_leaves = n.div_ceil(leaf_size);
        let mut depth = 0usize;
        while (1usize << depth) < n_leaves && depth < MAX_DEPTH {
            depth += 1;
        }
        let slots = (1usize << (depth + 1)) - 1;

        let mut tree = PackedKdTree {
            splits: vec![0.0; slots],
            axes: vec![LEAF_AXIS; slots],
            ranges: vec![CellRange::EMPTY; slots],
            ids: (0..n as u32).collect(),
            leaf_size,
            depth,
        };
        tree.build_node(points, 0, 0, n, 0);
        tree
    }

    /// Recursively build node `node` over `ids[start..end)` at `depth`.
    fn build_node(
        &mut self,
        points: PointsViewN<'_, D>,
        node: usize,
        start: usize,
        end: usize,
        depth: usize,
    ) {
        let len = end - start;
        if len <= self.leaf_size || depth == self.depth {
            // Leaf: axes[node] stays LEAF_AXIS.
            self.ranges[node] = CellRange::new(start as u32, end as u32);
            return;
        }
        let axis = depth % D;
        let coords = points.coords[axis];
        let mid = len / 2;
        // Total order (coordinate, id): the partition is unique, so the
        // tree is deterministic on duplicate coordinates too.
        self.ids[start..end].select_nth_unstable_by(mid, |&a, &b| {
            coords[a as usize]
                .total_cmp(&coords[b as usize])
                .then(a.cmp(&b))
        });
        let split = coords[self.ids[start + mid] as usize];
        self.splits[node] = split;
        self.axes[node] = axis as u32;
        self.build_node(points, 2 * node + 1, start, start + mid, depth + 1);
        self.build_node(points, 2 * node + 2, start + mid, end, depth + 1);
    }

    /// The borrowed node-pool view the kernels capture.
    pub fn view(&self) -> TreeView<'_> {
        TreeView {
            splits: &self.splits,
            axes: &self.axes,
            ranges: &self.ranges,
            ids: &self.ids,
        }
    }

    /// The reordered id array (the tree's `A`).
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// Allocated node slots (for device-memory accounting).
    pub fn node_slots(&self) -> usize {
        self.splits.len()
    }

    pub fn leaf_size(&self) -> usize {
        self.leaf_size
    }

    /// Summary statistics.
    pub fn stats(&self) -> TreeStats {
        let mut leaves = 0;
        let mut max_leaf_len = 0;
        for (k, &a) in self.axes.iter().enumerate() {
            if a == LEAF_AXIS && !self.ranges[k].is_empty() {
                leaves += 1;
                max_leaf_len = max_leaf_len.max(self.ranges[k].len());
            }
        }
        TreeStats {
            node_slots: self.splits.len(),
            leaves,
            max_leaf_len,
            depth: self.depth,
        }
    }

    /// Host-side ε-range query: visit the id of every point within the
    /// closed ε-ball around `q`. `points` must be the view the tree was
    /// built from. Hit decisions use the ordered accumulation of
    /// [`PointN::distance_sq`], bit-identical to the kernel scan.
    pub fn query_eps_visit(
        &self,
        points: PointsViewN<'_, D>,
        q: &PointN<D>,
        eps: f64,
        mut visit: impl FnMut(u32),
    ) {
        let eps_sq = eps * eps;
        let mut lo = [0.0f64; D];
        let mut hi = [0.0f64; D];
        for k in 0..D {
            lo[k] = q.coords[k] - eps;
            hi[k] = q.coords[k] + eps;
        }
        let mut stack = [0u32; MAX_DEPTH + 2];
        let mut sp = 1usize;
        while sp > 0 {
            sp -= 1;
            let node = stack[sp] as usize;
            let axis = self.axes[node];
            if axis == LEAF_AXIS {
                let r = self.ranges[node];
                for &id in &self.ids[r.start as usize..r.end as usize] {
                    if points.get(id as usize).distance_sq(q) <= eps_sq {
                        visit(id);
                    }
                }
                continue;
            }
            let split = self.splits[node];
            let a = axis as usize;
            // Push right first so the left subtree is visited first
            // (ascending id ranges — deterministic visit order).
            if hi[a] >= split {
                stack[sp] = (2 * node + 2) as u32;
                sp += 1;
            }
            if lo[a] <= split {
                stack[sp] = (2 * node + 1) as u32;
                sp += 1;
            }
        }
    }

    /// Host-side ε-range query, collecting ascending ids.
    pub fn query_eps(&self, points: PointsViewN<'_, D>, q: &PointN<D>, eps: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_eps_visit(points, q, eps, |id| out.push(id));
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nd::{brute_force_neighbors_nd, PointStoreN};

    fn pseudo_points<const D: usize>(n: usize, extent: f64) -> Vec<PointN<D>> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                PointN::new(std::array::from_fn(|k| {
                    (t * (0.311 + 0.17 * k as f64)).fract() * extent
                }))
            })
            .collect()
    }

    fn check_against_brute<const D: usize>(points: &[PointN<D>], eps: f64, leaf: usize) {
        let store = PointStoreN::from_points(points);
        let tree = PackedKdTree::<D>::build_with_leaf_size(store.view(), leaf);
        for q in points {
            assert_eq!(
                tree.query_eps(store.view(), q, eps),
                brute_force_neighbors_nd(points, q, eps),
                "D = {D}, eps = {eps}, leaf = {leaf}"
            );
        }
    }

    #[test]
    fn query_matches_brute_force_2d() {
        let pts = pseudo_points::<2>(300, 8.0);
        for eps in [0.3, 1.0, 4.0] {
            for leaf in [1, 4, 32] {
                check_against_brute(&pts, eps, leaf);
            }
        }
    }

    #[test]
    fn query_matches_brute_force_3d_and_4d() {
        let p3 = pseudo_points::<3>(250, 5.0);
        let p4 = pseudo_points::<4>(200, 4.0);
        for eps in [0.5, 1.5] {
            check_against_brute(&p3, eps, 8);
            check_against_brute(&p4, eps, 8);
        }
    }

    #[test]
    fn ids_are_a_permutation_and_leaves_partition() {
        let pts = pseudo_points::<2>(500, 10.0);
        let tree = PackedKdTree::<2>::build_from_points(&pts);
        let mut ids = tree.ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, (0..500u32).collect::<Vec<_>>());
        // Leaf ranges are disjoint and cover ids exactly once: total
        // lengths sum to n.
        let v = tree.view();
        let total: usize = v
            .axes
            .iter()
            .zip(v.ranges)
            .filter(|(&a, _)| a == LEAF_AXIS)
            .map(|(_, r)| r.len())
            .sum();
        assert_eq!(total, 500);
        let stats = tree.stats();
        assert!(stats.max_leaf_len <= TREE_LEAF_SIZE.max(1));
        assert!(stats.leaves >= 500 / TREE_LEAF_SIZE);
    }

    #[test]
    fn build_is_deterministic_on_duplicates() {
        let mut pts = vec![PointN::new([1.0, 1.0]); 40];
        pts.extend(pseudo_points::<2>(60, 2.0));
        let a = PackedKdTree::<2>::build_from_points(&pts);
        let b = PackedKdTree::<2>::build_from_points(&pts);
        assert_eq!(a.ids(), b.ids());
        assert_eq!(a.view().splits, b.view().splits);
        assert_eq!(a.view().axes, b.view().axes);
        // All-identical points all pair up.
        let store = PointStoreN::from_points(&pts);
        let hits = a.query_eps(store.view(), &pts[0], 0.0);
        assert_eq!(hits.len(), 40);
    }

    #[test]
    fn single_point_and_tiny_databases() {
        for n in [1usize, 2, 3] {
            let pts = pseudo_points::<3>(n, 1.0);
            let store = PointStoreN::from_points(&pts);
            let tree = PackedKdTree::<3>::build(store.view());
            for q in &pts {
                assert_eq!(
                    tree.query_eps(store.view(), q, 10.0).len(),
                    n,
                    "everything within a huge eps"
                );
            }
        }
    }

    #[test]
    fn eps_boundary_is_closed() {
        // 3-4-5 triangle: the boundary point at exactly eps = 5 is a hit.
        let pts = vec![PointN::new([0.0, 0.0]), PointN::new([3.0, 4.0])];
        let store = PointStoreN::from_points(&pts);
        let tree = PackedKdTree::<2>::build(store.view());
        assert_eq!(tree.query_eps(store.view(), &pts[0], 5.0), vec![0, 1]);
        assert_eq!(tree.query_eps(store.view(), &pts[0], 4.999), vec![0]);
    }

    #[test]
    fn depth_is_bounded_and_pool_is_compact() {
        let pts = pseudo_points::<2>(10_000, 50.0);
        let tree = PackedKdTree::<2>::build_from_points(&pts);
        let stats = tree.stats();
        // ceil(10000/32) = 313 leaves -> depth 9, pool 1023 slots.
        assert_eq!(stats.depth, 9);
        assert_eq!(stats.node_slots, 1023);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_database_panics() {
        let _ = PackedKdTree::<2>::build_from_points(&[]);
    }
}

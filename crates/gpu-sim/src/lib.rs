//! # gpu-sim — a software SIMT device
//!
//! This crate simulates the CUDA device the paper's kernels ran on
//! (an NVIDIA Tesla K20c), so that the full Hybrid-DBSCAN pipeline can be
//! reproduced and measured on machines without a GPU.
//!
//! The simulator is *functional* and *temporal*:
//!
//! * **Functional** — kernels really execute. Thread blocks run in parallel
//!   on a host thread pool; the threads *within* a block are simulated
//!   sequentially in barrier-delimited phases, which makes per-block shared
//!   memory ordinary data while preserving CUDA's block-synchronous
//!   semantics. Device buffers move real bytes; atomic result buffers
//!   behave like CUDA's `atomicAdd`-indexed output arrays; buffer
//!   capacities and the 5 GB global-memory limit are enforced.
//! * **Temporal** — kernels charge a SIMT cost model as they run
//!   (global/shared transactions, flops, atomics, warp-divergence via
//!   warp-max cycle aggregation). The model converts per-block cycles into
//!   a kernel duration by scheduling blocks onto SMs at the achievable
//!   occupancy, bounded by device memory bandwidth. Host↔device transfers
//!   are charged with a latency + bandwidth model (pinned vs pageable).
//!   Streams schedule their operations onto a discrete-event [`timeline`]
//!   with distinct H2D / compute / D2H engines, reproducing CUDA's
//!   copy-compute overlap.
//!
//! The intent is not cycle accuracy but *shape* accuracy: the relative
//! behaviour that drives the paper's results (thread-per-point vs
//! block-per-cell kernels, batching, transfer overlap) is preserved.

pub mod cost;
pub mod device;
pub mod error;
pub mod hostmem;
pub mod kernel;
pub mod launch;
pub mod memory;
pub mod profiler;
pub mod stream;
pub mod thrust;
pub mod time;
pub mod timeline;
pub mod transfer;

pub use device::{Device, DeviceProps};
pub use error::DeviceError;
pub use kernel::{BlockCtx, BlockKernel, ChargeBatch, KernelReport, ThreadCtx};
pub use launch::LaunchConfig;
pub use memory::{DeviceAppendBuffer, DeviceBuffer, DeviceCounter, RawAlloc};
pub use time::{SimDuration, SimTime};

//! Minimal hand-rolled JSON emission and parsing.
//!
//! The workspace builds without crates.io access, so JSON is written (and
//! read back) by hand rather than through serde_json. Only the small
//! surface the exporters and the benchmark harness need: string escaping,
//! an object/array writer over a private `String` buffer, and a
//! recursive-descent parser ([`parse`]) used to load baseline documents
//! and to round-trip-validate every document the workspace emits.
//! Numbers are emitted with enough precision for microsecond timestamps
//! (`{:.3}`); non-finite floats degrade to `0`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` into a JSON string literal (without surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Incremental writer for one JSON object or array level. Tracks whether a
/// comma is needed; values are appended through the typed methods.
///
/// The buffer is private by design: raw pushes bypass the comma state and
/// produce malformed documents (this exact bug shipped a malformed
/// `BENCH_threads.json` before [`JsonWriter::field_bool`] existed). Every
/// value kind the workspace emits has a typed method.
pub struct JsonWriter {
    buf: String,
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    pub fn new() -> Self {
        JsonWriter {
            buf: String::new(),
            needs_comma: Vec::new(),
        }
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.buf.push(',');
            }
            *last = true;
        }
    }

    pub fn begin_array(&mut self) {
        self.pre_value();
        self.buf.push('[');
        self.needs_comma.push(false);
    }

    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.buf.push(']');
    }

    pub fn begin_object(&mut self) {
        self.pre_value();
        self.buf.push('{');
        self.needs_comma.push(false);
    }

    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.buf.push('}');
    }

    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
        // The value that follows is part of this key-value pair, not a new
        // element, so suppress the comma the value writer would add.
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
    }

    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.buf.push('"');
        escape_into(&mut self.buf, s);
        self.buf.push('"');
    }

    pub fn uint(&mut self, v: u64) {
        self.pre_value();
        let _ = write!(self.buf, "{v}");
    }

    pub fn boolean(&mut self, v: bool) {
        self.pre_value();
        self.buf.push_str(if v { "true" } else { "false" });
    }

    /// Float with microsecond-grade precision; NaN/inf degrade to 0.
    /// Values that round to zero at 3 decimals lose their sign — `-0.0`
    /// (e.g. a clipped-interval sum) must not emit as `-0.000`.
    pub fn float(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            let v = if v > -0.0005 && v <= 0.0 { 0.0 } else { v };
            let _ = write!(self.buf, "{v:.3}");
        } else {
            self.buf.push('0');
        }
    }

    /// Convenience: `"key": "value"` string field.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    pub fn field_uint(&mut self, k: &str, v: u64) {
        self.key(k);
        self.uint(v);
    }

    pub fn field_float(&mut self, k: &str, v: f64) {
        self.key(k);
        self.float(v);
    }

    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.boolean(v);
    }

    pub fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unbalanced begin/end");
        self.buf
    }
}

impl Default for JsonWriter {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parsed JSON value. Numbers are `f64` — sufficient for every document
/// the workspace emits (3-decimal floats and counts far below 2^53).
/// Full 64-bit patterns do not fit: `BENCH_threads.json` emits its
/// numeric `modeled_time_bits` for parseability validation only (never
/// re-read through this type), and `PROFILE.json` — which must be a
/// byte-exact fixed point of `parse → to_json` — carries the same field
/// as a hex *string* instead.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonParseError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonParseError {}

/// Parse a complete JSON document (trailing garbage is an error).
pub fn parse(s: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after JSON document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonParseError {
        JsonParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, JsonParseError> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| self.err("unexpected end of input"))
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonParseError> {
        let got = self.peek()?;
        if got != c {
            return Err(self.err(format!("expected '{}', got '{}'", c as char, got as char)));
        }
        self.pos += 1;
        Ok(())
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true").map(|_| JsonValue::Bool(true)),
            b'f' => self.literal("false").map(|_| JsonValue::Bool(false)),
            b'n' => self.literal("null").map(|_| JsonValue::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), JsonParseError> {
        self.skip_ws();
        if !self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            return Err(self.err(format!("expected literal '{lit}'")));
        }
        self.pos += lit.len();
        Ok(())
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                c => return Err(self.err(format!("expected ',' or '}}', got '{}'", c as char))),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                c => return Err(self.err(format!("expected ',' or ']', got '{}'", c as char))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let end = self.pos + 4;
                            let hex = self
                                .bytes
                                .get(self.pos..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err(format!("bad \\u escape '{hex}'")))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos = end;
                        }
                        e => return Err(self.err(format!("unsupported escape \\{}", e as char))),
                    }
                }
                c => {
                    // Multi-byte UTF-8: copy the raw continuation bytes.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.pos - 1;
                        while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                            self.pos += 1;
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?;
                        out.push_str(chunk);
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse()
            .map(JsonValue::Num)
            .map_err(|_| self.err(format!("bad number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_chars() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn writes_nested_structure() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "x");
        w.key("items");
        w.begin_array();
        w.uint(1);
        w.uint(2);
        w.end_array();
        w.field_float("t", 1.5);
        w.end_object();
        assert_eq!(w.finish(), r#"{"name":"x","items":[1,2],"t":1.500}"#);
    }

    #[test]
    fn non_finite_floats_degrade_to_zero() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.float(f64::NAN);
        w.float(f64::INFINITY);
        w.end_array();
        assert_eq!(w.finish(), "[0,0]");
    }

    #[test]
    fn negative_zero_emits_unsigned() {
        // A clipped-interval sum can produce -0.0; "-0.000" is valid
        // JSON but reads as a bug in every report that embeds it.
        let mut w = JsonWriter::new();
        w.begin_array();
        w.float(-0.0);
        w.float(-0.0004);
        w.float(-0.001);
        w.end_array();
        assert_eq!(w.finish(), "[0.000,0.000,-0.001]");
    }

    #[test]
    fn bool_fields_keep_comma_state() {
        // Regression: the threads experiment used to push `true` past the
        // writer, so the following key lacked its separating comma.
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_bool("a", true);
        w.field_bool("b", false);
        w.field_uint("c", 1);
        w.end_object();
        let text = w.finish();
        assert_eq!(text, r#"{"a":true,"b":false,"c":1}"#);
        assert!(parse(&text).is_ok());
    }

    #[test]
    fn parses_every_value_kind() {
        let doc = r#"{"s":"x\n\"y\"","n":-1.5e2,"b":[true,false,null],"o":{},"u":7}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x\n\"y\""));
        assert_eq!(v.get("n").and_then(JsonValue::as_f64), Some(-150.0));
        assert_eq!(v.get("u").and_then(JsonValue::as_u64), Some(7));
        let arr = v.get("b").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[2], JsonValue::Null);
        assert!(v.get("o").and_then(JsonValue::as_obj).unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            r#"{"a":1 "b":2}"#, // the missing-comma bug this PR fixes
            r#"{"a":1,}"#,
            r#"[1,2"#,
            r#"{"a"}"#,
            r#"truefalse"#,
            r#"{"a":1} x"#,
            "",
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn parse_reports_error_position() {
        let err = parse(r#"{"a":1 "b":2}"#).unwrap_err();
        assert_eq!(err.pos, 7);
        assert!(err.to_string().contains("byte 7"));
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("name", "weird \"name\"\\with\nescapes");
        w.field_bool("flag", true);
        w.key("xs");
        w.begin_array();
        w.float(1.25);
        w.uint(u64::MAX);
        w.end_array();
        w.end_object();
        let text = w.finish();
        let v = parse(&text).unwrap();
        assert_eq!(
            v.get("name").and_then(JsonValue::as_str),
            Some("weird \"name\"\\with\nescapes")
        );
        assert_eq!(v.get("flag").and_then(JsonValue::as_bool), Some(true));
    }
}

//! The neighbor table `T` (Section V of the paper).
//!
//! `T` maps every point `p_i ∈ D` to its ε-neighborhood as a range
//! `[T_i_min, T_i_max]` into a flat value array `B`: if `p_j` is within ε
//! of `p_i`, then `j ∈ {B[T_i_min], …, B[T_i_max]}`. The GPU returns the
//! result set `R` as key/value pairs sorted by key; construction scans the
//! sorted keys once, copies the values into `B`, and records the range per
//! key.
//!
//! Because the batching scheme produces `T` incrementally — each batch
//! covers a strided subset of the points — [`NeighborTableBuilder`] lets
//! several worker threads ingest their batches concurrently: each batch
//! owns a private value segment; `finalize` concatenates the segments and
//! rebases the recorded ranges. Ranges of different batches never overlap
//! (a point belongs to exactly one batch), so no synchronization beyond
//! segment ownership is required.

use parking_lot::Mutex;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

/// Below these sizes the parallel paths in [`NeighborTableBuilder`] fall
/// back to the serial scan — the outputs are identical either way (the
/// parallel code is a pure reindexing of the same computation); the gates
/// only avoid pool overhead on small inputs.
const PAR_INGEST_MIN_PAIRS: usize = 1 << 15;
const PAR_REBASE_MIN_POINTS: usize = 1 << 14;
const PAR_CONCAT_MIN_VALUES: usize = 1 << 16;

/// Per-point neighbor range into the value array `B`. Stored half-open
/// (`start..end`); the paper's inclusive `T_max` is `end - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
struct TableRange {
    start: u64,
    end: u64,
}

/// The completed neighbor table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborTable {
    eps: f64,
    ranges: Vec<TableRange>,
    values: Vec<u32>,
}

impl NeighborTable {
    /// Build a table directly from a fully sorted key/value result set
    /// (the single-batch fast path). Pairs must be sorted by key.
    pub fn from_sorted_pairs(eps: f64, n_points: usize, pairs: &[(u32, u32)]) -> Self {
        let builder = NeighborTableBuilder::new(eps, n_points, 1);
        builder.ingest_batch(0, pairs);
        builder.finalize()
    }

    /// Assemble a table directly from per-point `[start, end)` ranges into
    /// a prebuilt value array — the sharded pipeline's row-merge path,
    /// where each range comes from the shard owning that point. Every
    /// range must lie within `values` (debug-asserted).
    pub(crate) fn from_parts(eps: f64, ranges: Vec<(u64, u64)>, values: Vec<u32>) -> Self {
        debug_assert!(ranges
            .iter()
            .all(|&(s, e)| s <= e && e <= values.len() as u64));
        NeighborTable {
            eps,
            ranges: ranges
                .into_iter()
                .map(|(start, end)| TableRange { start, end })
                .collect(),
            values,
        }
    }

    /// The ε this table was computed for.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Number of points in the underlying database.
    pub fn num_points(&self) -> usize {
        self.ranges.len()
    }

    /// Total number of stored neighbor entries, `|B|` (= `|R|`, the result
    /// set size the batching scheme estimates).
    pub fn num_entries(&self) -> usize {
        self.values.len()
    }

    /// The ε-neighborhood of point `id` (ids into the database the table
    /// was built over). Includes `id` itself.
    pub fn neighbors(&self, id: u32) -> &[u32] {
        let r = self.ranges[id as usize];
        &self.values[r.start as usize..r.end as usize]
    }

    /// Number of neighbors of `id` without materializing the slice.
    pub fn neighbor_count(&self, id: u32) -> usize {
        let r = self.ranges[id as usize];
        (r.end - r.start) as usize
    }

    /// Approximate heap footprint in bytes (the host-memory cost of
    /// retaining `T` for reuse).
    pub fn memory_bytes(&self) -> usize {
        self.ranges.len() * std::mem::size_of::<TableRange>()
            + self.values.len() * std::mem::size_of::<u32>()
    }

    /// Persist the table in a compact little-endian binary format, so a
    /// preprocessed ε-neighborhood can be reused across sessions (the
    /// paper's data-reuse story, extended to disk):
    /// `magic, version, eps, n_points, |B|, ranges…, values…`.
    pub fn save(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        w.write_all(Self::MAGIC)?;
        w.write_all(&1u32.to_le_bytes())?;
        w.write_all(&self.eps.to_le_bytes())?;
        w.write_all(&(self.ranges.len() as u64).to_le_bytes())?;
        w.write_all(&(self.values.len() as u64).to_le_bytes())?;
        for r in &self.ranges {
            w.write_all(&r.start.to_le_bytes())?;
            w.write_all(&r.end.to_le_bytes())?;
        }
        for v in &self.values {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Load a table written by [`NeighborTable::save`], validating the
    /// header and every range.
    pub fn load(r: &mut impl std::io::Read) -> std::io::Result<NeighborTable> {
        use std::io::{Error, ErrorKind};
        fn read<const N: usize>(r: &mut impl std::io::Read) -> std::io::Result<[u8; N]> {
            let mut b = [0u8; N];
            r.read_exact(&mut b)?;
            Ok(b)
        }
        let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());

        if &read::<8>(r)? != NeighborTable::MAGIC {
            return Err(bad("not a neighbor-table file (bad magic)"));
        }
        let version = u32::from_le_bytes(read::<4>(r)?);
        if version != 1 {
            return Err(bad("unsupported neighbor-table version"));
        }
        let eps = f64::from_le_bytes(read::<8>(r)?);
        if !(eps.is_finite() && eps > 0.0) {
            return Err(bad("invalid eps"));
        }
        let n_points = u64::from_le_bytes(read::<8>(r)?) as usize;
        let n_values = u64::from_le_bytes(read::<8>(r)?) as usize;
        let mut ranges = Vec::with_capacity(n_points);
        for _ in 0..n_points {
            let start = u64::from_le_bytes(read::<8>(r)?);
            let end = u64::from_le_bytes(read::<8>(r)?);
            if start > end || end > n_values as u64 {
                return Err(bad("corrupt range"));
            }
            ranges.push(TableRange { start, end });
        }
        let mut values = Vec::with_capacity(n_values);
        for _ in 0..n_values {
            let v = u32::from_le_bytes(read::<4>(r)?);
            if (v as usize) >= n_points {
                return Err(bad("value id out of range"));
            }
            values.push(v);
        }
        Ok(NeighborTable {
            eps,
            ranges,
            values,
        })
    }

    const MAGIC: &'static [u8; 8] = b"HDBSCNT1";
}

/// Concurrent, batch-at-a-time builder for [`NeighborTable`].
///
/// Ingest is lock-free on the hot path so the stream pipeline's workers
/// never serialize on a builder-wide mutex: each key is *claimed* with a
/// CAS on its `owner` slot (which doubles as the duplicate-batch check),
/// the winning batch then owns that key's range cell outright, and each
/// batch's value segment lands in its own pre-sized slot. The only mutex
/// is per-segment and touched exactly once per batch.
pub struct NeighborTableBuilder {
    eps: f64,
    n_points: usize,
    /// Per-point ranges, *local* to the owning batch's segment until
    /// finalize rebases them. A successful CAS on `owner[i]` is the
    /// exclusive write ticket for `ranges[i]`.
    ranges: Vec<UnsafeCell<TableRange>>,
    /// Which batch wrote each point's range (for rebasing); u32::MAX if
    /// the point has no entries yet.
    owner: Vec<AtomicU32>,
    /// One value segment slot per batch, each written exactly once by its
    /// own batch — the mutex is never contended, it just makes the
    /// one-shot hand-off safe.
    segments: Vec<Mutex<Vec<u32>>>,
}

// SAFETY: each `ranges` cell is written only by the thread whose batch
// won the `owner` CAS for that index, and read only by `finalize`, which
// consumes `self` (exclusive access after all ingests complete).
unsafe impl Sync for NeighborTableBuilder {}

impl NeighborTableBuilder {
    /// Create a builder for `n_points` points filled by `n_batches`
    /// batches.
    pub fn new(eps: f64, n_points: usize, n_batches: usize) -> Self {
        NeighborTableBuilder {
            eps,
            n_points,
            ranges: (0..n_points)
                .map(|_| UnsafeCell::new(TableRange::default()))
                .collect(),
            owner: (0..n_points).map(|_| AtomicU32::new(u32::MAX)).collect(),
            segments: (0..n_batches.max(1))
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Ingest batch `batch_idx`'s result set (sorted by key). Safe to call
    /// from multiple threads with distinct `batch_idx` values; each batch
    /// must cover a disjoint set of keys (guaranteed by the strided batch
    /// assignment).
    ///
    /// This performs the host-side work Algorithm 4 describes: copy the
    /// *values* out of the pinned staging area into `B` (the keys are
    /// consumed on the fly to delimit ranges and never copied).
    pub fn ingest_batch(&self, batch_idx: usize, pairs: &[(u32, u32)]) {
        // Keys must arrive in contiguous runs (the device sort guarantees
        // this; id translation permutes run labels but preserves runs).
        #[cfg(debug_assertions)]
        {
            let mut seen = std::collections::HashSet::new();
            let mut prev = None;
            for &(k, _) in pairs {
                if prev != Some(k) {
                    assert!(seen.insert(k), "key {k} appears in two separate runs");
                    prev = Some(k);
                }
            }
        }

        // Copy values and compute per-key local ranges outside the lock.
        // Large batches scan on the pool; the parallel scan computes the
        // exact same (segment, local) as the serial one — run boundaries
        // depend only on adjacent-pair equality, which is chunk-local.
        let (segment, local) =
            if pairs.len() >= PAR_INGEST_MIN_PAIRS && rayon::current_num_threads() > 1 {
                Self::scan_runs_parallel(pairs)
            } else {
                Self::scan_runs_serial(pairs)
            };

        // Claim each key with a CAS and write its range lock-free: no
        // builder-wide lock, so concurrent stream workers never contend.
        for (key, range) in local {
            assert!(
                (key as usize) < self.n_points,
                "key {key} out of range for {} points",
                self.n_points
            );
            let claim = self.owner[key as usize].compare_exchange(
                u32::MAX,
                batch_idx as u32,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            assert!(
                claim.is_ok(),
                "key {key} ingested by two batches — strided assignment violated"
            );
            // SAFETY: the CAS above makes this thread the unique writer
            // of this cell; `finalize` reads only after consuming `self`.
            unsafe { *self.ranges[key as usize].get() = range };
        }
        let mut slot = self.segments[batch_idx].lock();
        assert!(slot.is_empty(), "batch {batch_idx} ingested twice");
        *slot = segment;
    }

    /// Serial run scan: values in order plus one `(key, local range)` per
    /// contiguous key run.
    fn scan_runs_serial(pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<(u32, TableRange)>) {
        // Bulk value copy first (one vectorizable pass), then a second
        // pass for the run boundaries — faster than interleaving pushes.
        let segment: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
        let mut local: Vec<(u32, TableRange)> = Vec::new();
        let mut i = 0;
        while i < pairs.len() {
            let key = pairs[i].0;
            let start = i;
            while i < pairs.len() && pairs[i].0 == key {
                i += 1;
            }
            local.push((
                key,
                TableRange {
                    start: start as u64,
                    end: i as u64,
                },
            ));
        }
        (segment, local)
    }

    /// Parallel run scan with identical output to
    /// [`Self::scan_runs_serial`]: run *starts* (`i == 0` or a key change
    /// at `i`) are detected per chunk — the predicate only reads
    /// `pairs[i-1]`/`pairs[i]`, so chunk boundaries cannot change it —
    /// then flattened in chunk order, which is index order.
    fn scan_runs_parallel(pairs: &[(u32, u32)]) -> (Vec<u32>, Vec<(u32, TableRange)>) {
        const CHUNK: usize = 32 * 1024;
        let n = pairs.len();
        let per_chunk: Vec<Vec<usize>> = (0..n.div_ceil(CHUNK))
            .into_par_iter()
            .map(|c| {
                let lo = c * CHUNK;
                let hi = (lo + CHUNK).min(n);
                let mut starts = Vec::new();
                for i in lo..hi {
                    if i == 0 || pairs[i].0 != pairs[i - 1].0 {
                        starts.push(i);
                    }
                }
                starts
            })
            .collect();
        let starts: Vec<usize> = per_chunk.into_iter().flatten().collect();

        let local: Vec<(u32, TableRange)> = (0..starts.len())
            .into_par_iter()
            .map(|r| {
                let start = starts[r];
                let end = starts.get(r + 1).copied().unwrap_or(n);
                (
                    pairs[start].0,
                    TableRange {
                        start: start as u64,
                        end: end as u64,
                    },
                )
            })
            .collect();
        let segment: Vec<u32> = pairs.par_iter().map(|p| p.1).collect();
        (segment, local)
    }

    /// Concatenate the batch segments into `B` and rebase ranges.
    pub fn finalize(self) -> NeighborTable {
        let eps = self.eps;
        let mut ranges: Vec<TableRange> = self
            .ranges
            .into_iter()
            .map(UnsafeCell::into_inner)
            .collect();
        let owner: Vec<u32> = self.owner.into_iter().map(AtomicU32::into_inner).collect();
        let segments: Vec<Vec<u32>> = self.segments.into_iter().map(Mutex::into_inner).collect();

        // Prefix offsets of each batch's segment within B.
        let mut offsets = Vec::with_capacity(segments.len());
        let mut total = 0u64;
        for seg in &segments {
            offsets.push(total);
            total += seg.len() as u64;
        }

        // Rebase each point's local range by its batch offset. The shift
        // per point is a pure function of (owner, offsets) — parallel and
        // serial paths write identical tables.
        let rebase = |(i, range): (usize, &mut TableRange)| {
            if owner[i] != u32::MAX {
                let off = offsets[owner[i] as usize];
                range.start += off;
                range.end += off;
            }
            // Unowned points keep the default empty 0..0 range.
        };
        if ranges.len() >= PAR_REBASE_MIN_POINTS && rayon::current_num_threads() > 1 {
            ranges.par_iter_mut().enumerate().for_each(rebase);
        } else {
            ranges.iter_mut().enumerate().for_each(rebase);
        }

        // Concatenate segments into B; segment destinations are disjoint,
        // so large tables copy on the pool.
        let values = if total as usize >= PAR_CONCAT_MIN_VALUES && rayon::current_num_threads() > 1
        {
            let mut values = vec![0u32; total as usize];
            let mut pieces: Vec<(&mut [u32], &[u32])> = Vec::with_capacity(segments.len());
            let mut rest: &mut [u32] = &mut values;
            for seg in &segments {
                let (head, tail) = rest.split_at_mut(seg.len());
                pieces.push((head, seg.as_slice()));
                rest = tail;
            }
            pieces
                .par_iter_mut()
                .for_each(|(dst, src)| dst.copy_from_slice(src));
            values
        } else {
            let mut values = Vec::with_capacity(total as usize);
            for seg in &segments {
                values.extend_from_slice(seg);
            }
            values
        };

        NeighborTable {
            eps,
            ranges,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_batch_table() {
        // Point 0 -> {0, 1}; point 1 -> {0, 1, 2}; point 2 -> {1, 2}.
        let pairs = [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 1), (2, 2)];
        let t = NeighborTable::from_sorted_pairs(0.5, 3, &pairs);
        assert_eq!(t.neighbors(0), &[0, 1]);
        assert_eq!(t.neighbors(1), &[0, 1, 2]);
        assert_eq!(t.neighbors(2), &[1, 2]);
        assert_eq!(t.num_entries(), 7);
        assert_eq!(t.num_points(), 3);
        assert_eq!(t.eps(), 0.5);
        assert_eq!(t.neighbor_count(1), 3);
    }

    #[test]
    fn point_with_no_pairs_has_empty_neighborhood() {
        let pairs = [(0, 0), (2, 2)];
        let t = NeighborTable::from_sorted_pairs(1.0, 3, &pairs);
        assert_eq!(t.neighbors(1), &[] as &[u32]);
        assert_eq!(t.neighbor_count(1), 0);
    }

    #[test]
    fn multi_batch_strided_assembly() {
        // 6 points, 2 batches: batch 0 owns even keys, batch 1 odd keys.
        let builder = NeighborTableBuilder::new(1.0, 6, 2);
        builder.ingest_batch(0, &[(0, 0), (0, 2), (2, 2), (4, 4), (4, 5)]);
        builder.ingest_batch(1, &[(1, 1), (3, 3), (3, 4), (5, 4), (5, 5)]);
        let t = builder.finalize();
        assert_eq!(t.neighbors(0), &[0, 2]);
        assert_eq!(t.neighbors(1), &[1]);
        assert_eq!(t.neighbors(2), &[2]);
        assert_eq!(t.neighbors(3), &[3, 4]);
        assert_eq!(t.neighbors(4), &[4, 5]);
        assert_eq!(t.neighbors(5), &[4, 5]);
        assert_eq!(t.num_entries(), 10);
    }

    #[test]
    fn batch_ingest_order_does_not_matter() {
        let mk = |order: [usize; 3]| {
            let builder = NeighborTableBuilder::new(1.0, 9, 3);
            let batches = [
                vec![(0u32, 0u32), (3, 3), (6, 6)],
                vec![(1, 1), (4, 4), (7, 7)],
                vec![(2, 2), (5, 5), (8, 8)],
            ];
            for &b in &order {
                builder.ingest_batch(b, &batches[b]);
            }
            builder.finalize()
        };
        let a = mk([0, 1, 2]);
        let b = mk([2, 0, 1]);
        for id in 0..9 {
            assert_eq!(a.neighbors(id), b.neighbors(id));
        }
    }

    #[test]
    fn concurrent_ingest() {
        let n_points = 3000;
        let n_batches = 3;
        let builder = NeighborTableBuilder::new(1.0, n_points, n_batches);
        rayon::scope(|s| {
            for b in 0..n_batches {
                let builder = &builder;
                s.spawn(move |_| {
                    let pairs: Vec<(u32, u32)> = (0..n_points as u32)
                        .filter(|i| (*i as usize) % n_batches == b)
                        .flat_map(|i| [(i, i), (i, (i + 1) % n_points as u32)])
                        .collect();
                    builder.ingest_batch(b, &pairs);
                });
            }
        });
        let t = builder.finalize();
        for i in 0..n_points as u32 {
            assert_eq!(t.neighbors(i), &[i, (i + 1) % n_points as u32]);
        }
    }

    #[test]
    #[should_panic(expected = "ingested by two batches")]
    fn duplicate_key_across_batches_panics() {
        let builder = NeighborTableBuilder::new(1.0, 4, 2);
        builder.ingest_batch(0, &[(0, 0)]);
        builder.ingest_batch(1, &[(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_key_panics() {
        let builder = NeighborTableBuilder::new(1.0, 2, 1);
        builder.ingest_batch(0, &[(5, 0)]);
    }

    #[test]
    fn save_load_roundtrip() {
        let pairs = [(0u32, 0u32), (0, 1), (1, 0), (1, 1), (3, 3)];
        let t = NeighborTable::from_sorted_pairs(0.75, 4, &pairs);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = NeighborTable::load(&mut buf.as_slice()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.eps(), 0.75);
        assert_eq!(back.neighbors(1), &[0, 1]);
        assert_eq!(back.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn load_rejects_garbage() {
        assert!(NeighborTable::load(&mut &b"not a table at all"[..]).is_err());
        // Truncated file.
        let t = NeighborTable::from_sorted_pairs(1.0, 2, &[(0, 0), (1, 1)]);
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(NeighborTable::load(&mut buf.as_slice()).is_err());
        // Corrupt a range end past |B|.
        let mut buf2 = Vec::new();
        t.save(&mut buf2).unwrap();
        // ranges start after 8+4+8+8+8 = 36 bytes; corrupt first range end.
        buf2[44..52].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(NeighborTable::load(&mut buf2.as_slice()).is_err());
    }

    #[test]
    fn memory_bytes_accounts_table() {
        let pairs = [(0u32, 0u32), (1, 1)];
        let t = NeighborTable::from_sorted_pairs(1.0, 2, &pairs);
        assert_eq!(t.memory_bytes(), 2 * 16 + 2 * 4);
    }
}

//! Kernel execution: the block-synchronous SIMT model.
//!
//! A kernel implements [`BlockKernel::run_block`], which executes one
//! thread block. Inside a block, the CUDA thread structure is simulated in
//! *barrier-delimited phases*: [`BlockCtx::phase`] runs a closure once per
//! thread id, and the implicit barrier between phases corresponds to
//! `__syncthreads()`. Because the threads of a block are simulated
//! sequentially on one host thread, shared memory is ordinary data
//! allocated with [`BlockCtx::alloc_shared`] and phases may freely read
//! what earlier phases wrote — exactly the guarantee `__syncthreads()`
//! provides on hardware.
//!
//! Blocks themselves run in parallel on the host's rayon pool, matching
//! CUDA's guarantee that distinct blocks only communicate through global
//! memory atomics.
//!
//! ## Cost accounting
//!
//! Each simulated thread charges events ([`ThreadCtx`] charge methods) as
//! it executes. At each phase boundary the per-thread cycle counts are
//! folded at **warp granularity**: a warp costs the *maximum* over its 32
//! lanes (SIMT lockstep), so divergent or idle lanes are paid for — the
//! effect that makes the paper's block-per-cell shared-memory kernel lose
//! to the thread-per-point global kernel on sparse cells. Per-block cycles
//! are then converted to a kernel duration by [`crate::cost`].

use crate::cost::{kernel_duration, Counters};
use crate::device::Device;
use crate::error::DeviceError;
use crate::launch::LaunchConfig;
use crate::time::SimDuration;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Per-thread execution context handed to phase closures.
pub struct ThreadCtx {
    /// Thread index within the block (`threadIdx.x`).
    pub tid: u32,
    /// Global thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub gid: u64,
    counters: Counters,
    cycles: f64,
    flop_cost: f64,
    global_word_cost: f64,
    shared_word_cost: f64,
    atomic_cost: f64,
    dependent_read_cost: f64,
}

impl ThreadCtx {
    /// Charge `n` floating-point operations.
    #[inline]
    pub fn charge_flops(&mut self, n: u64) {
        self.counters.flops += n;
        self.cycles += n as f64 * self.flop_cost;
    }

    /// Charge a global-memory read of `bytes`.
    #[inline]
    pub fn charge_global_read(&mut self, bytes: u64) {
        self.counters.global_read_bytes += bytes;
        self.cycles += bytes as f64 / 4.0 * self.global_word_cost;
    }

    /// Charge a global-memory read of `n` elements of type `T`.
    #[inline]
    pub fn read_global<T>(&mut self, n: u64) {
        self.charge_global_read(n * std::mem::size_of::<T>() as u64);
    }

    /// Charge a global-memory write of `bytes`.
    #[inline]
    pub fn charge_global_write(&mut self, bytes: u64) {
        self.counters.global_write_bytes += bytes;
        self.cycles += bytes as f64 / 4.0 * self.global_word_cost;
    }

    /// Charge a global-memory write of `n` elements of type `T`.
    #[inline]
    pub fn write_global<T>(&mut self, n: u64) {
        self.charge_global_write(n * std::mem::size_of::<T>() as u64);
    }

    /// Charge shared-memory traffic of `bytes` (read or write).
    #[inline]
    pub fn charge_shared(&mut self, bytes: u64) {
        self.counters.shared_bytes += bytes;
        self.cycles += bytes as f64 / 4.0 * self.shared_word_cost;
    }

    /// Charge shared-memory traffic of `n` elements of type `T`.
    #[inline]
    pub fn access_shared<T>(&mut self, n: u64) {
        self.charge_shared(n * std::mem::size_of::<T>() as u64);
    }

    /// Charge `n` *dependent* global reads of element type `T` — loads
    /// whose addresses chain through previous loads (tree/pointer
    /// traversal). Counts the same bytes as [`ThreadCtx::read_global`]
    /// plus the cost model's per-hop latency surcharge
    /// ([`crate::cost::CostModel::dependent_read_cycles`]), which is an
    /// integer constant so the cycle total stays exact in f64.
    #[inline]
    pub fn read_global_dependent<T>(&mut self, n: u64) {
        self.read_global::<T>(n);
        self.cycles += n as f64 * self.dependent_read_cost;
    }

    /// Charge one global atomic RMW (e.g. the result-set `atomicAdd`).
    #[inline]
    pub fn charge_atomic(&mut self) {
        self.counters.atomics += 1;
        self.cycles += self.atomic_cost;
    }

    /// Charge an aggregated batch of events in one call.
    ///
    /// Semantically identical to issuing the individual charge calls
    /// element by element; kernels use it to account a whole inner-loop
    /// chunk at once so the host-side bookkeeping overhead is paid per
    /// chunk, not per candidate. With the integer-valued cost models
    /// shipped in this crate the cycle total is *bitwise* identical to
    /// per-element accounting: every term below is an exact integer in
    /// f64 (byte counts are multiples of 4, and dividing by 4.0 is exact
    /// regardless), and f64 addition of exact integers below 2^53 is
    /// exact and therefore associative. See the `chunked accounting`
    /// test, which pins this equivalence.
    #[inline]
    pub fn charge_batch(&mut self, b: ChargeBatch) {
        self.counters.flops += b.flops;
        self.counters.global_read_bytes += b.global_read_bytes;
        self.counters.global_write_bytes += b.global_write_bytes;
        self.counters.shared_bytes += b.shared_bytes;
        self.counters.atomics += b.atomics;
        self.cycles += b.flops as f64 * self.flop_cost
            + b.global_read_bytes as f64 / 4.0 * self.global_word_cost
            + b.global_write_bytes as f64 / 4.0 * self.global_word_cost
            + b.shared_bytes as f64 / 4.0 * self.shared_word_cost
            + b.atomics as f64 * self.atomic_cost;
    }
}

/// An aggregated set of cost events, charged in one call via
/// [`ThreadCtx::charge_batch`]. Counts are raw event totals (bytes for
/// memory traffic), exactly as the per-element charge methods take them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChargeBatch {
    /// Floating-point operations.
    pub flops: u64,
    /// Global-memory bytes read.
    pub global_read_bytes: u64,
    /// Global-memory bytes written.
    pub global_write_bytes: u64,
    /// Shared-memory bytes accessed (read or write).
    pub shared_bytes: u64,
    /// Global atomic RMW operations.
    pub atomics: u64,
}

impl ChargeBatch {
    /// Accumulate `n` global reads of element type `T` into the batch.
    #[inline]
    pub fn read_global<T>(&mut self, n: u64) {
        self.global_read_bytes += n * std::mem::size_of::<T>() as u64;
    }

    /// Accumulate `n` global writes of element type `T` into the batch.
    #[inline]
    pub fn write_global<T>(&mut self, n: u64) {
        self.global_write_bytes += n * std::mem::size_of::<T>() as u64;
    }

    /// Accumulate `n` shared-memory accesses of element type `T`.
    #[inline]
    pub fn access_shared<T>(&mut self, n: u64) {
        self.shared_bytes += n * std::mem::size_of::<T>() as u64;
    }
}

/// Per-block execution context.
pub struct BlockCtx {
    /// `blockIdx.x`.
    pub block_idx: u32,
    /// `blockDim.x`.
    pub block_dim: u32,
    /// `gridDim.x`.
    pub grid_dim: u32,
    warp_size: u32,
    shared_used: usize,
    shared_limit: usize,
    flop_cost: f64,
    global_word_cost: f64,
    shared_word_cost: f64,
    atomic_cost: f64,
    dependent_read_cost: f64,
    barrier_cost: f64,
    block_cycles: f64,
    counters: Counters,
}

impl BlockCtx {
    /// Allocate a shared-memory array of `len` `T`s, checked against the
    /// per-block shared-memory limit (48 KB on the K20c).
    pub fn alloc_shared<T: Default + Clone>(&mut self, len: usize) -> Result<Vec<T>, DeviceError> {
        let bytes = len * std::mem::size_of::<T>();
        self.shared_used += bytes;
        if self.shared_used > self.shared_limit {
            return Err(DeviceError::SharedMemExceeded {
                requested_bytes: self.shared_used,
                limit_bytes: self.shared_limit,
            });
        }
        Ok(vec![T::default(); len])
    }

    /// Execute one barrier-delimited phase: `f` runs once per thread id in
    /// `0..block_dim`, then per-thread cycles are folded to warp granularity
    /// (max over lanes) and accumulated into the block cost — the
    /// `__syncthreads()` accounting point.
    pub fn phase(&mut self, mut f: impl FnMut(&mut ThreadCtx)) {
        let mut warp_max = 0.0f64;
        let mut phase_cycles = 0.0f64;
        for tid in 0..self.block_dim {
            let mut t = ThreadCtx {
                tid,
                gid: self.block_idx as u64 * self.block_dim as u64 + tid as u64,
                counters: Counters::default(),
                cycles: 0.0,
                flop_cost: self.flop_cost,
                global_word_cost: self.global_word_cost,
                shared_word_cost: self.shared_word_cost,
                atomic_cost: self.atomic_cost,
                dependent_read_cost: self.dependent_read_cost,
            };
            f(&mut t);
            self.counters.merge(&t.counters);
            warp_max = warp_max.max(t.cycles);
            if (tid + 1) % self.warp_size == 0 {
                phase_cycles += warp_max;
                warp_max = 0.0;
            }
        }
        if !self.block_dim.is_multiple_of(self.warp_size) {
            phase_cycles += warp_max;
        }
        // Block cost accumulates in *warp cycles*: the sum over warps of
        // the per-warp (lockstep max) cost, plus a per-warp barrier charge
        // at the phase boundary. The cost model divides by the device's
        // aggregate warp-issue width.
        let n_warps = self.block_dim.div_ceil(self.warp_size) as f64;
        self.block_cycles += phase_cycles + self.barrier_cost * n_warps;
    }

    /// Single-phase helper for kernels with no `__syncthreads()` (the
    /// global-memory kernel is one phase end to end).
    pub fn for_each_thread(&mut self, f: impl FnMut(&mut ThreadCtx)) {
        self.phase(f);
    }
}

/// A kernel executable at block granularity.
pub trait BlockKernel: Sync {
    /// Execute one thread block. Appends to device buffers happen through
    /// shared references (atomics), mirroring CUDA global-memory semantics.
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError>;
}

/// The outcome of a kernel launch: functional side effects live in the
/// device buffers the kernel wrote; this report carries the modeled
/// timing and the profiler counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelReport {
    /// The launch configuration.
    pub config: LaunchConfig,
    /// Total threads launched (`n_GPU` in Table II of the paper).
    pub threads_launched: u64,
    /// Modeled kernel duration.
    pub duration: SimDuration,
    /// Aggregate event counters.
    pub counters: Counters,
    /// Achieved occupancy in `(0, 1]`.
    pub occupancy: f64,
}

impl Device {
    /// Launch `kernel` over `cfg.grid_dim` blocks.
    ///
    /// Blocks execute in parallel on the rayon pool; the simulated compute
    /// engine admits one kernel at a time (single-compute-engine device),
    /// so concurrent launches from different host threads serialize, as
    /// the paper observes ("there is very little kernel execution overlap,
    /// as each invocation saturates GPU resources").
    ///
    /// Determinism: per-block `(cycles, counters)` come back from an
    /// index-addressed `collect` and are folded in block order below, so
    /// the modeled duration is bitwise identical at every thread count.
    /// Side effects into `DeviceAppendBuffer` may land in any order;
    /// consumers canonicalize (DESIGN.md, threading policy).
    pub fn launch<K: BlockKernel>(
        &self,
        cfg: LaunchConfig,
        kernel: &K,
    ) -> Result<KernelReport, DeviceError> {
        cfg.validate(self.props())?;
        let _compute_guard = self.inner.lock_compute();

        let props = self.props();
        let model = self.cost_model();

        let results: Vec<Result<(f64, Counters), DeviceError>> = (0..cfg.grid_dim)
            .into_par_iter()
            .map(|block_idx| {
                let mut ctx = BlockCtx {
                    block_idx,
                    block_dim: cfg.block_dim,
                    grid_dim: cfg.grid_dim,
                    warp_size: props.warp_size,
                    shared_used: 0,
                    shared_limit: props.shared_mem_per_block,
                    flop_cost: model.cycles_per_flop,
                    global_word_cost: model.cycles_per_global_word,
                    shared_word_cost: model.cycles_per_shared_word,
                    atomic_cost: model.cycles_per_atomic,
                    dependent_read_cost: model.dependent_read_cycles,
                    barrier_cost: model.barrier_cycles,
                    block_cycles: 0.0,
                    counters: Counters::default(),
                };
                kernel.run_block(&mut ctx)?;
                Ok((ctx.block_cycles, ctx.counters))
            })
            .collect();

        let mut block_cycles = Vec::with_capacity(cfg.grid_dim as usize);
        let mut totals = Counters::default();
        for r in results {
            let (cycles, counters) = r?;
            block_cycles.push(cycles);
            totals.merge(&counters);
        }

        let duration = kernel_duration(props, model, &cfg, &block_cycles, &totals);
        Ok(KernelReport {
            config: cfg,
            threads_launched: cfg.total_threads(),
            duration,
            counters: totals,
            occupancy: cfg.occupancy(props),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{DeviceAppendBuffer, DeviceCounter};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Kernel that counts its own threads via a device counter.
    struct CountThreads<'a> {
        counter: &'a DeviceCounter,
        n: u64,
    }

    impl BlockKernel for CountThreads<'_> {
        fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
            let n = self.n;
            let counter = self.counter;
            ctx.for_each_thread(|t| {
                if t.gid < n {
                    t.charge_atomic();
                    counter.add(1);
                }
            });
            Ok(())
        }
    }

    #[test]
    fn launch_covers_all_threads_once() {
        let d = Device::k20c();
        let c = DeviceCounter::new(&d).unwrap();
        let n = 10_000u64;
        let cfg = LaunchConfig::for_elements(n as usize, 256);
        let report = d.launch(cfg, &CountThreads { counter: &c, n }).unwrap();
        assert_eq!(c.get(), n);
        assert_eq!(report.threads_launched, cfg.total_threads());
        assert!(report.duration > SimDuration::ZERO);
        assert_eq!(report.counters.atomics, n);
    }

    /// Kernel demonstrating cross-phase shared memory: phase 1 stages
    /// values, phase 2 reduces them.
    struct SharedReduce<'a> {
        out: &'a DeviceAppendBuffer<u64>,
    }

    impl BlockKernel for SharedReduce<'_> {
        fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
            let mut shared: Vec<u64> = ctx.alloc_shared(ctx.block_dim as usize)?;
            ctx.phase(|t| {
                shared[t.tid as usize] = t.gid;
                t.access_shared::<u64>(1);
            });
            // After the barrier, thread 0 sees every lane's write.
            let (block_idx, block_dim) = (ctx.block_idx, ctx.block_dim);
            let out = self.out;
            ctx.phase(|t| {
                if t.tid == 0 {
                    let sum: u64 = shared.iter().sum();
                    t.access_shared::<u64>(block_dim as u64);
                    t.charge_atomic();
                    let _ = block_idx;
                    out.append(sum).unwrap();
                }
            });
            Ok(())
        }
    }

    #[test]
    fn shared_memory_survives_phase_barrier() {
        let d = Device::k20c();
        let mut out = DeviceAppendBuffer::<u64>::new(&d, 4).unwrap();
        let cfg = LaunchConfig::new(4, 64);
        d.launch(cfg, &SharedReduce { out: &out }).unwrap();
        let mut sums = out.as_filled_slice().to_vec();
        sums.sort_unstable();
        // Block b covers gids [64b, 64b+63]; sum = 64*64b + 2016.
        let expected: Vec<u64> = (0..4).map(|b| 64 * 64 * b + 2016).collect();
        assert_eq!(sums, expected);
    }

    /// Kernel with one hot lane per warp: warp-max accounting must charge
    /// the whole warp the hot lane's cost.
    struct DivergentKernel {
        heavy_flops: u64,
    }

    impl BlockKernel for DivergentKernel {
        fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
            let heavy = self.heavy_flops;
            ctx.for_each_thread(|t| {
                if t.tid % 32 == 0 {
                    t.charge_flops(heavy);
                } else {
                    t.charge_flops(1);
                }
            });
            Ok(())
        }
    }

    /// A uniform kernel doing the same *total* flops as the divergent one.
    struct UniformKernel {
        flops_per_thread: u64,
    }

    impl BlockKernel for UniformKernel {
        fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
            let f = self.flops_per_thread;
            ctx.for_each_thread(|t| t.charge_flops(f));
            Ok(())
        }
    }

    #[test]
    fn divergence_costs_more_than_uniform_work() {
        let d = Device::k20c();
        let cfg = LaunchConfig::new(8192, 256);
        // Divergent: one lane per warp does 32000 flops, 31 lanes do 1.
        let div = d
            .launch(
                cfg,
                &DivergentKernel {
                    heavy_flops: 32_000,
                },
            )
            .unwrap();
        // Uniform: every lane does the warp-average ~1001 flops.
        let uni = d
            .launch(
                cfg,
                &UniformKernel {
                    flops_per_thread: 1001,
                },
            )
            .unwrap();
        assert!(
            div.duration.as_secs() > 5.0 * uni.duration.as_secs(),
            "warp-max must punish divergence: {} vs {}",
            div.duration.as_micros(),
            uni.duration.as_micros()
        );
    }

    #[test]
    fn shared_alloc_limit_enforced() {
        struct Hog;
        impl BlockKernel for Hog {
            fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
                let _a: Vec<u8> = ctx.alloc_shared(40 * 1024)?;
                let _b: Vec<u8> = ctx.alloc_shared(10 * 1024)?; // 50 KB total
                Ok(())
            }
        }
        let d = Device::k20c();
        let err = d.launch(LaunchConfig::new(1, 32), &Hog).unwrap_err();
        assert!(matches!(err, DeviceError::SharedMemExceeded { .. }));
    }

    #[test]
    fn blocks_run_in_parallel() {
        // Record the maximum number of concurrently-running blocks.
        struct Concurrency<'a> {
            current: &'a AtomicU64,
            peak: &'a AtomicU64,
        }
        impl BlockKernel for Concurrency<'_> {
            fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
                let c = self.current.fetch_add(1, Ordering::SeqCst) + 1;
                self.peak.fetch_max(c, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(5));
                self.current.fetch_sub(1, Ordering::SeqCst);
                ctx.for_each_thread(|_| {});
                Ok(())
            }
        }
        let d = Device::k20c();
        let (current, peak) = (AtomicU64::new(0), AtomicU64::new(0));
        // Install a 4-thread pool view so block overlap is exercised
        // regardless of RAYON_NUM_THREADS (the global pool grows to
        // match; the 5ms sleeps make overlap happen even on one core).
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        pool.install(|| {
            d.launch(
                LaunchConfig::new(32, 32),
                &Concurrency {
                    current: &current,
                    peak: &peak,
                },
            )
        })
        .unwrap();
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "blocks should overlap on the pool"
        );
    }

    /// Charges the canonical per-candidate sequence of the ε-neighborhood
    /// inner loop (id read, point read, distance flops, occasional
    /// atomic+write) one element at a time.
    struct PerElement {
        candidates: u64,
    }

    impl BlockKernel for PerElement {
        fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
            let n = self.candidates;
            ctx.for_each_thread(|t| {
                for i in 0..n {
                    t.read_global::<u32>(1);
                    t.read_global::<[f64; 2]>(1);
                    t.charge_flops(5);
                    if i % 7 == 0 {
                        t.charge_atomic();
                        t.write_global::<[u32; 2]>(1);
                    }
                }
            });
            Ok(())
        }
    }

    /// The same work accounted as one [`ChargeBatch`] per 8-wide chunk.
    struct Chunked {
        candidates: u64,
    }

    impl BlockKernel for Chunked {
        fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
            let n = self.candidates;
            ctx.for_each_thread(|t| {
                let mut i = 0;
                while i < n {
                    let c = (n - i).min(8);
                    let mut batch = ChargeBatch {
                        flops: 5 * c,
                        ..ChargeBatch::default()
                    };
                    batch.read_global::<u32>(c);
                    batch.read_global::<[f64; 2]>(c);
                    for j in i..i + c {
                        if j % 7 == 0 {
                            batch.atomics += 1;
                            batch.global_write_bytes += std::mem::size_of::<[u32; 2]>() as u64;
                        }
                    }
                    t.charge_batch(batch);
                    i += c;
                }
            });
            Ok(())
        }
    }

    #[test]
    fn chunked_accounting_is_bitwise_identical_to_per_element() {
        // The guarantee the kernels' chunk-wise inner loop rests on:
        // charging a whole chunk through ChargeBatch reproduces the
        // per-element modeled cost *exactly* — same counters, and a
        // bitwise-equal duration (integer cost constants make every f64
        // addition exact; see the charge_batch docs).
        let d = Device::k20c();
        let cfg = LaunchConfig::new(16, 128);
        for candidates in [0u64, 1, 5, 8, 13, 100, 257] {
            let per = d.launch(cfg, &PerElement { candidates }).unwrap();
            let chk = d.launch(cfg, &Chunked { candidates }).unwrap();
            assert_eq!(per.counters, chk.counters, "candidates = {candidates}");
            assert_eq!(
                per.duration.as_secs().to_bits(),
                chk.duration.as_secs().to_bits(),
                "modeled duration must be bit-identical (candidates = {candidates}): \
                 {} vs {}",
                per.duration.as_micros(),
                chk.duration.as_micros()
            );
        }
    }

    #[test]
    fn invalid_launch_is_rejected_before_execution() {
        struct Never;
        impl BlockKernel for Never {
            fn run_block(&self, _: &mut BlockCtx) -> Result<(), DeviceError> {
                panic!("must not run");
            }
        }
        let d = Device::k20c();
        assert!(d.launch(LaunchConfig::new(1, 7), &Never).is_err());
    }
}

//! Quickstart: cluster a small synthetic dataset with Hybrid-DBSCAN.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hybrid_dbscan::prelude::*;

fn main() {
    // Three Gaussian blobs plus scattered background noise.
    let mut points = Vec::new();
    let blobs = [(10.0, 10.0), (30.0, 12.0), (20.0, 30.0)];
    let mut state = 42u64;
    let mut next = || {
        // xorshift — deterministic without pulling in rand.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for &(cx, cy) in &blobs {
        for _ in 0..400 {
            let (u, v) = (next(), next());
            let r = (-2.0 * u.max(1e-12).ln()).sqrt();
            let (dx, dy) = (
                r * (std::f64::consts::TAU * v).cos(),
                r * (std::f64::consts::TAU * v).sin(),
            );
            points.push(Point2::new(cx + dx * 0.8, cy + dy * 0.8));
        }
    }
    for _ in 0..200 {
        points.push(Point2::new(next() * 40.0, next() * 40.0));
    }

    // A simulated Tesla K20c — the paper's experimental card.
    let device = Device::k20c();
    println!("device: {}", device.props().name);

    // Algorithm 4: build the neighbor table on the (simulated) GPU, then
    // cluster on the host.
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    let result = hybrid.run(&points, 0.8, 5).expect("clustering failed");

    println!(
        "clustered {} points: {} clusters, {} noise points",
        points.len(),
        result.clustering.num_clusters(),
        result.clustering.noise_count()
    );
    println!("cluster sizes: {:?}", result.clustering.cluster_sizes());
    println!(
        "timings: GPU phase {:.2} ms (modeled) + DBSCAN {:.2} ms = {:.2} ms",
        result.timings.gpu_phase.as_millis(),
        result.timings.dbscan.as_millis(),
        result.timings.total.as_millis()
    );
    println!(
        "GPU phase: {} batches, {} neighbor pairs, {}",
        result.gpu.n_batches,
        result.gpu.result_pairs,
        result.gpu.kernel_profile.summary()
    );

    // Cross-check against the sequential reference implementation.
    let reference = ReferenceDbscan::new(0.8, 5).run(&points);
    assert_eq!(
        result.clustering.labels(),
        reference.clustering.labels(),
        "hybrid must reproduce the reference labels exactly"
    );
    println!(
        "reference implementation: {:.2} ms ({:.0}% in R-tree search) — identical labels",
        reference.total_time.as_millis(),
        reference.search_fraction() * 100.0
    );
}

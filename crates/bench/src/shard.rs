//! **Shard-scaling workloads** — the sharded pipeline in the benchmark
//! suite, plus the `repro shard` smoke comparison.
//!
//! Two entry points:
//!
//! * [`run_shard_workloads`] — appended to the `repro bench` suite: SW1
//!   at **10× the suite scale**, run unsharded (k = 1), 2-way concurrent,
//!   and 4-way out-of-core through a deliberately undersized device. The
//!   concurrent row records the modeled speedup over k = 1; the
//!   out-of-core row records the device-memory high-water mark against
//!   the limit the unsharded build cannot fit in. Fingerprint mismatches
//!   between any sharded table and the unsharded one are fatal — the
//!   bench must never time a wrong answer.
//! * [`print`] — `repro shard`: the CI smoke step. Builds the table
//!   unsharded and at k = 2 in both modes, compares table and clustering
//!   fingerprints, and exits nonzero on any mismatch.

use crate::common::{baseline_refresh, DatasetCache, Options, TextTable};
use crate::stats;
use gpu_sim::Device;
use hybrid_dbscan_core::disjoint_set::dbscan_disjoint_set;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan_core::shard::{ShardConfig, ShardMode, ShardedHybrid, ShardedTableHandle};
use hybrid_dbscan_core::{clustering_fingerprint, table_fingerprint};
use obs::bench::WorkloadResult;
use obs::json::JsonWriter;
use obs::ledger::{GateOutcome, LedgerEntry, LedgerRecord, StagePoint, RECORD_VERSION};
use obs::provenance::Provenance;
use spatial::Point2;
use std::time::Instant;

/// Schema id / version of `SHARD_fingerprints.json` (the smoke run's
/// provenance-stamped fingerprint artifact).
pub const SCHEMA: &str = "hybrid-dbscan/shard-fingerprints";
pub const SCHEMA_VERSION: u64 = 1;

/// The shard workload dataset and parameters (S1's SW1 pairing).
const DATASET: &str = "SW1";
const EPS: f64 = 0.2;
const MINPTS: usize = 4;

/// The shard workloads run at 10× the suite's point counts (ISSUE 8):
/// sharding is only interesting once the dataset presses on one device.
const SCALE_FACTOR: f64 = 10.0;

/// The out-of-core device limit for the k = 4 workload: one byte short
/// of the raw point array `D`. The batching scheme already adapts
/// *buffer* sizes to whatever memory is available
/// (`BatchPlan::fit_to_memory`), so the only thing that genuinely cannot
/// shrink is the resident per-point state — capping the device below
/// `|D| × sizeof(Point2)` guarantees the unsharded upload cannot even
/// begin, while a quarter-shard (plus its ε-halo) fits with room for
/// grid and result buffers.
fn ooc_device_limit(n_points: usize) -> usize {
    n_points * std::mem::size_of::<Point2>() - 1
}

fn sharded_build(
    device: &Device,
    mode: ShardMode,
    shards: usize,
    points: &[Point2],
) -> (ShardedTableHandle, f64) {
    let cfg = ShardConfig {
        shards,
        mode,
        hybrid: HybridConfig::default(),
    };
    let t0 = Instant::now();
    let handle = ShardedHybrid::new(device, cfg)
        .build_table(points, EPS)
        .unwrap_or_else(|e| panic!("sharded build (k={shards}, {mode:?}) failed: {e}"));
    (handle, t0.elapsed().as_secs_f64() * 1e3)
}

fn workload_result(
    id: &str,
    points: usize,
    handle: &ShardedTableHandle,
    build_ms: f64,
) -> WorkloadResult {
    let mut out = WorkloadResult {
        id: id.to_string(),
        scenario: "shard".to_string(),
        dataset: DATASET.to_string(),
        kernel: "global".to_string(),
        eps: EPS,
        minpts: MINPTS as u64,
        points: points as u64,
        ..WorkloadResult::default()
    };
    out.stages
        .insert("build_table".into(), stats::summarize(&[build_ms]));
    out.stages.insert(
        "modeled".into(),
        stats::summarize(&[handle.modeled_time.as_millis()]),
    );
    out.metrics
        .insert("shards".into(), handle.shards.len() as f64);
    out.metrics
        .insert("peak_bytes".into(), handle.peak_bytes as f64);
    out.metrics.insert(
        "halo_points".into(),
        handle.shards.iter().map(|s| s.halo_points).sum::<usize>() as f64,
    );
    out.metrics.insert(
        "result_pairs".into(),
        handle.shards.iter().map(|s| s.result_pairs).sum::<usize>() as f64,
    );
    out.modeled_time_bits = Some(handle.modeled_time.as_secs().to_bits());
    out
}

/// The `repro bench` shard-scaling rows. Single-trial by design: every
/// reported stage except the wall build time is modeled, and the wall
/// time of a 10×-scale build is too expensive to repeat.
pub fn run_shard_workloads(opts: &Options) -> Vec<WorkloadResult> {
    let scale = (opts.scale * SCALE_FACTOR).min(1.0);
    let mut cache = DatasetCache::new(scale);
    let points = cache.get(DATASET).points.clone();
    let mut out = Vec::new();

    // k = 1: the unsharded baseline (and the footprint measurement the
    // out-of-core device limit derives from).
    let base_device = Device::k20c();
    let (base, base_ms) = sharded_build(&base_device, ShardMode::Concurrent, 1, &points);
    let base_print = table_fingerprint(&base.table);
    out.push(workload_result(
        "shard/sw1-10x-eps0.2/k1",
        points.len(),
        &base,
        base_ms,
    ));

    // k = 2 concurrent: one device per shard, modeled time = slowest
    // shard. The speedup over k = 1 is the shard-scaling headline.
    let (conc, conc_ms) = sharded_build(&Device::k20c(), ShardMode::Concurrent, 2, &points);
    assert_eq!(
        table_fingerprint(&conc.table),
        base_print,
        "2-shard concurrent table diverged from unsharded"
    );
    let speedup = base.modeled_time.as_millis() / conc.modeled_time.as_millis();
    let mut wl = workload_result(
        "shard/sw1-10x-eps0.2/k2-concurrent",
        points.len(),
        &conc,
        conc_ms,
    );
    wl.metrics.insert("speedup_vs_k1".into(), speedup);
    out.push(wl);

    // k = 4 out-of-core: a device the unsharded build cannot fit in,
    // shards tiling through it sequentially.
    let limit = ooc_device_limit(points.len());
    let tiny = Device::tiny(limit);
    assert!(
        HybridDbscan::new(&tiny, HybridConfig::default())
            .build_table(&points, EPS)
            .is_err(),
        "the out-of-core device limit ({limit} B) must not fit the unsharded build"
    );
    let (ooc, ooc_ms) = sharded_build(&Device::tiny(limit), ShardMode::OutOfCore, 4, &points);
    assert_eq!(
        table_fingerprint(&ooc.table),
        base_print,
        "4-shard out-of-core table diverged from unsharded"
    );
    assert!(
        ooc.peak_bytes <= limit,
        "out-of-core peak {} exceeded the {limit} B device limit",
        ooc.peak_bytes
    );
    let mut wl = workload_result(
        "shard/sw1-10x-eps0.2/k4-outofcore",
        points.len(),
        &ooc,
        ooc_ms,
    );
    wl.metrics.insert("device_limit_bytes".into(), limit as f64);
    out.push(wl);

    eprintln!(
        "# shard: 2-shard modeled speedup {speedup:.2}x over k=1; \
         out-of-core peak {:.1} MiB within the {:.1} MiB limit",
        ooc.peak_bytes as f64 / (1024.0 * 1024.0),
        limit as f64 / (1024.0 * 1024.0),
    );
    out
}

/// `repro shard` — the CI smoke step: sharded vs unsharded fingerprint
/// comparison at k = 2 in both modes (plus k = 4 out-of-core), fatal on
/// any mismatch. Returns the process exit code.
pub fn print(opts: &Options) -> i32 {
    println!("== Shard smoke: sharded vs unsharded fingerprints (fatal on mismatch) ==\n");
    let mut cache = DatasetCache::new(opts.scale);
    let points = cache.get(DATASET).points.clone();

    let device = Device::k20c();
    let reference = HybridDbscan::new(&device, HybridConfig::default())
        .build_table(&points, EPS)
        .expect("unsharded build");
    let ref_table = table_fingerprint(&reference.table);
    let ref_clusters = clustering_fingerprint(
        &dbscan_disjoint_set(&reference.table, MINPTS).unpermute(&reference.perm),
    );

    let mut t = TextTable::new(&[
        "config", "modeled", "peak MiB", "halo pts", "table", "clusters",
    ]);
    struct SmokeRow {
        id: String,
        shards: usize,
        mode: &'static str,
        modeled_ms: f64,
        modeled_bits: u64,
        peak_bytes: usize,
        halo_points: usize,
        table_fp: u64,
        clusters_fp: u64,
        table_ok: bool,
        clusters_ok: bool,
    }
    let mut rows: Vec<SmokeRow> = Vec::new();
    let mut failed = false;
    for (label, k, mode) in [
        ("k=2 concurrent", 2, ShardMode::Concurrent),
        ("k=2 out-of-core", 2, ShardMode::OutOfCore),
        ("k=4 out-of-core", 4, ShardMode::OutOfCore),
    ] {
        let (handle, _) = sharded_build(&Device::k20c(), mode, k, &points);
        let table_fp = table_fingerprint(&handle.table);
        let clusters_fp = clustering_fingerprint(
            &dbscan_disjoint_set(&handle.table, MINPTS).unpermute(&handle.perm),
        );
        let table_ok = table_fp == ref_table;
        let clusters_ok = clusters_fp == ref_clusters;
        failed |= !(table_ok && clusters_ok);
        let verdict = |ok: bool| if ok { "match" } else { "MISMATCH" }.to_string();
        t.row(vec![
            label.to_string(),
            format!("{:.2} ms", handle.modeled_time.as_millis()),
            format!("{:.1}", handle.peak_bytes as f64 / (1024.0 * 1024.0)),
            handle
                .shards
                .iter()
                .map(|s| s.halo_points)
                .sum::<usize>()
                .to_string(),
            verdict(table_ok),
            verdict(clusters_ok),
        ]);
        let mode_name = match mode {
            ShardMode::Concurrent => "concurrent",
            ShardMode::OutOfCore => "outofcore",
        };
        rows.push(SmokeRow {
            id: format!("shard/smoke/k{k}-{mode_name}"),
            shards: k,
            mode: mode_name,
            modeled_ms: handle.modeled_time.as_millis(),
            modeled_bits: handle.modeled_time.as_secs().to_bits(),
            peak_bytes: handle.peak_bytes,
            halo_points: handle.shards.iter().map(|s| s.halo_points).sum(),
            table_fp,
            clusters_fp,
            table_ok,
            clusters_ok,
        });
    }
    t.print();

    let prov = Provenance::collect(
        SCHEMA,
        SCHEMA_VERSION,
        rows.iter().map(|r| r.id.clone()).collect(),
    );

    // SHARD_fingerprints.json: the provenance-stamped fingerprint witness
    // of this smoke run (fingerprints as 16-hex-digit strings — they are
    // full 64-bit patterns the JSON number space cannot carry).
    let hex = |v: u64| format!("{v:016x}");
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", SCHEMA);
    w.field_uint("version", SCHEMA_VERSION);
    prov.write_field(&mut w);
    w.key("reference");
    w.begin_object();
    w.field_str("table_fingerprint", &hex(ref_table));
    w.field_str("clustering_fingerprint", &hex(ref_clusters));
    w.end_object();
    w.key("configs");
    w.begin_array();
    for r in &rows {
        w.begin_object();
        w.field_str("id", &r.id);
        w.field_uint("shards", r.shards as u64);
        w.field_str("mode", r.mode);
        w.field_float("modeled_ms", r.modeled_ms);
        w.field_uint("peak_bytes", r.peak_bytes as u64);
        w.field_uint("halo_points", r.halo_points as u64);
        w.field_str("table_fingerprint", &hex(r.table_fp));
        w.field_str("clustering_fingerprint", &hex(r.clusters_fp));
        w.field_bool("matches_reference", r.table_ok && r.clusters_ok);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    let json = w.finish();
    if let Err(e) = obs::json::parse(&json) {
        eprintln!("# shard: INTERNAL ERROR: emitted fingerprint doc does not parse: {e}");
        return 1;
    }
    let path = opts
        .csv_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."))
        .join("SHARD_fingerprints.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("# shard: wrote {}", path.display()),
        Err(e) => eprintln!("# shard: cannot write {}: {e}", path.display()),
    }

    // Run-ledger record: fingerprint equivalence is always strict.
    let mismatches = rows
        .iter()
        .filter(|r| !(r.table_ok && r.clusters_ok))
        .count();
    let entries = rows
        .iter()
        .map(|r| {
            let mut e = LedgerEntry {
                workload: r.id.clone(),
                modeled_time_bits: Some(r.modeled_bits),
                ..LedgerEntry::default()
            };
            e.stages.insert(
                "modeled".into(),
                StagePoint {
                    median_ms: r.modeled_ms,
                    mad_ms: 0.0,
                    wall: false,
                },
            );
            let m = &mut e.metrics;
            m.insert("shards".into(), r.shards as f64);
            m.insert("peak_bytes".into(), r.peak_bytes as f64);
            m.insert("halo_points".into(), r.halo_points as f64);
            m.insert(
                "matches_reference".into(),
                f64::from(u8::from(r.table_ok && r.clusters_ok)),
            );
            e
        })
        .collect();
    opts.append_ledger(&LedgerRecord {
        version: RECORD_VERSION,
        command: "shard".into(),
        scale: opts.scale,
        baseline_refresh: baseline_refresh(),
        provenance: prov,
        gate: GateOutcome {
            strict: true,
            regressions: mismatches as u64,
            advisories: 0,
            passed: !failed,
        },
        entries,
    });

    if failed {
        eprintln!("# shard: FINGERPRINT MISMATCH — sharded output diverged from unsharded");
        1
    } else {
        println!("\n# shard: all sharded fingerprints match the unsharded build");
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criterion, in miniature: the 10× shard workloads
    /// complete (the out-of-core one under a device limit the unsharded
    /// build provably exceeds — asserted inside `run_shard_workloads`)
    /// and the 2-shard row reports a real modeled speedup.
    #[test]
    fn shard_workloads_complete_and_scale() {
        let opts = Options {
            scale: 0.002,
            trials: 1,
            warmup: 0,
            ..Options::default()
        };
        let rows = run_shard_workloads(&opts);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].id, "shard/sw1-10x-eps0.2/k1");
        let speedup = rows[1].metrics["speedup_vs_k1"];
        assert!(
            speedup >= 1.6,
            "2-shard modeled speedup {speedup:.2}x below the 1.6x floor"
        );
        assert!(rows[2].metrics["peak_bytes"] <= rows[2].metrics["device_limit_bytes"]);
        for row in &rows {
            assert!(row.stages["modeled"].median_ms > 0.0);
        }
    }
}

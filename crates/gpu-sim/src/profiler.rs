//! Profiling utilities in the spirit of the NVIDIA Visual Profiler, which
//! the paper used to obtain Table II (kernel time and `n_GPU`).

use crate::cost::Counters;
use crate::kernel::KernelReport;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Aggregates kernel launches across a run (e.g. all batches of one
/// Hybrid-DBSCAN invocation) into headline metrics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelProfile {
    pub launches: u64,
    pub total_threads: u64,
    pub total_blocks: u64,
    pub total_duration: SimDuration,
    pub counters: Counters,
    occupancy_weighted: f64,
}

impl KernelProfile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one launch report into the profile.
    pub fn record(&mut self, report: &KernelReport) {
        self.launches += 1;
        self.total_threads += report.threads_launched;
        self.total_blocks += report.config.grid_dim as u64;
        self.total_duration += report.duration;
        self.counters.merge(&report.counters);
        self.occupancy_weighted += report.occupancy * report.duration.as_secs();
    }

    /// Duration-weighted mean occupancy across recorded launches.
    pub fn mean_occupancy(&self) -> f64 {
        let t = self.total_duration.as_secs();
        if t == 0.0 {
            0.0
        } else {
            self.occupancy_weighted / t
        }
    }

    /// Achieved global-memory throughput (GB/s) over kernel time.
    pub fn global_throughput_gbps(&self) -> f64 {
        let t = self.total_duration.as_secs();
        if t == 0.0 {
            0.0
        } else {
            self.counters.global_bytes() as f64 / t / 1e9
        }
    }

    /// The derived headline numbers as one plain struct — the contract
    /// between the profiler and the observability layer (`obs` records
    /// these into its metrics registry and the benchmark suite exports
    /// them as per-workload device counters).
    pub fn stats(&self) -> ProfileStats {
        ProfileStats {
            launches: self.launches,
            total_threads: self.total_threads,
            total_blocks: self.total_blocks,
            time_ms: self.total_duration.as_millis(),
            mean_occupancy: self.mean_occupancy(),
            gmem_gbps: self.global_throughput_gbps(),
            atomics: self.counters.atomics,
        }
    }

    /// A compact single-line summary, suitable for the experiment harness.
    pub fn summary(&self) -> String {
        let s = self.stats();
        format!(
            "launches={} threads={} blocks={} time={:.3} ms occ={:.2} gmem={:.1} GB/s atomics={}",
            s.launches,
            s.total_threads,
            s.total_blocks,
            s.time_ms,
            s.mean_occupancy,
            s.gmem_gbps,
            s.atomics,
        )
    }
}

/// Derived headline metrics of a [`KernelProfile`] (the simulated
/// equivalent of an `nvprof` summary row): everything is a plain number so
/// downstream consumers need no knowledge of `SimDuration` or `Counters`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileStats {
    pub launches: u64,
    pub total_threads: u64,
    pub total_blocks: u64,
    /// Total modeled kernel time, milliseconds.
    pub time_ms: f64,
    /// Duration-weighted mean occupancy.
    pub mean_occupancy: f64,
    /// Achieved global-memory throughput over kernel time, GB/s.
    pub gmem_gbps: f64,
    /// Global atomic operations.
    pub atomics: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::LaunchConfig;

    fn report(threads: u64, ms: f64, occ: f64) -> KernelReport {
        KernelReport {
            config: LaunchConfig::for_elements(threads as usize, 256),
            threads_launched: threads,
            duration: SimDuration::from_millis(ms),
            counters: Counters {
                flops: threads,
                global_read_bytes: threads * 8,
                ..Default::default()
            },
            occupancy: occ,
        }
    }

    #[test]
    fn profile_accumulates() {
        let mut p = KernelProfile::new();
        p.record(&report(1024, 1.0, 1.0));
        p.record(&report(2048, 3.0, 0.5));
        assert_eq!(p.launches, 2);
        assert_eq!(p.total_threads, 3072);
        assert!((p.total_duration.as_millis() - 4.0).abs() < 1e-9);
        assert_eq!(p.counters.flops, 3072);
    }

    #[test]
    fn mean_occupancy_is_duration_weighted() {
        let mut p = KernelProfile::new();
        p.record(&report(1024, 1.0, 1.0));
        p.record(&report(1024, 3.0, 0.5));
        // (1.0*1 + 0.5*3) / 4 = 0.625
        assert!((p.mean_occupancy() - 0.625).abs() < 1e-9);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = KernelProfile::new();
        assert_eq!(p.mean_occupancy(), 0.0);
        assert_eq!(p.global_throughput_gbps(), 0.0);
        assert!(p.summary().contains("launches=0"));
    }

    #[test]
    fn stats_match_accessors() {
        let mut p = KernelProfile::new();
        p.record(&report(1024, 1.0, 1.0));
        p.record(&report(1024, 3.0, 0.5));
        let s = p.stats();
        assert_eq!(s.launches, 2);
        assert_eq!(s.total_threads, 2048);
        assert!((s.time_ms - 4.0).abs() < 1e-9);
        assert!((s.mean_occupancy - p.mean_occupancy()).abs() < 1e-12);
        assert!((s.gmem_gbps - p.global_throughput_gbps()).abs() < 1e-12);
        assert_eq!(s.atomics, p.counters.atomics);
    }

    #[test]
    fn summary_contains_metrics() {
        let mut p = KernelProfile::new();
        p.record(&report(1024, 2.0, 0.8));
        let s = p.summary();
        assert!(s.contains("threads=1024"));
        assert!(s.contains("time=2.000 ms"));
    }
}

//! Deterministic parallel merge sort backing `par_sort_unstable*`.
//!
//! ## Thread-count invariance
//!
//! The output permutation of an unstable sort can legitimately differ
//! between *algorithms* when keys compare equal — and the workspace
//! requires bitwise-identical results at every `RAYON_NUM_THREADS`. So
//! the algorithm choice here depends **only on the input length**:
//!
//! * `n <= RUN`: sequential `sort_unstable_by` — at every thread count.
//! * `n > RUN`: run-sort + merge-path rounds — at every thread count,
//!   *including 1*. The merge is stable with left-priority ties and the
//!   run/segment boundaries derive from `n` alone, so the result is a
//!   pure function of the input, not of the schedule.
//!
//! Chunking hands each initial run and each merge segment to the pool as
//! one chunk; which thread executes a chunk never changes what the chunk
//! writes.

use crate::iter::SendPtr;
use crate::pool::run_parallel;
use std::cmp::Ordering;
use std::mem::MaybeUninit;
use std::ptr;

/// Initial sequential run length (and the sequential cutoff).
const RUN: usize = 4096;
/// Output elements per merge chunk. `SEG <= 2 * width` for every round
/// (width starts at `RUN`), and both are powers of two, so a segment
/// never spans a merge-pair boundary.
const SEG: usize = 8192;

pub(crate) fn par_sort_unstable_by<T, C>(v: &mut [T], cmp: &C)
where
    T: Send,
    C: Fn(&T, &T) -> Ordering + Sync,
{
    let n = v.len();
    if n <= RUN {
        v.sort_unstable_by(|a, b| cmp(a, b));
        return;
    }

    // Phase 1: sort each RUN-sized run in place, in parallel.
    let n_runs = n.div_ceil(RUN);
    {
        let base = SendPtr::new(v.as_mut_ptr());
        run_parallel(n_runs, "sort_runs", move |r| {
            let lo = r * RUN;
            let hi = (lo + RUN).min(n);
            // SAFETY: runs are disjoint; each chunk touches exactly one.
            let run = unsafe { std::slice::from_raw_parts_mut(base.get().add(lo), hi - lo) };
            run.sort_unstable_by(|a, b| cmp(a, b));
        });
    }

    // Phase 2: merge rounds, ping-ponging between `v` and scratch.
    let mut scratch: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    let v_ptr = v.as_mut_ptr();
    let s_ptr = scratch.as_mut_ptr().cast::<T>();

    // A comparator panic mid-merge leaves moved-from and moved-to copies
    // of `Drop` elements live in both buffers — unwinding would
    // double-drop, so abort instead. For `!needs_drop` types unwinding is
    // fine: `v` retains valid (if scrambled) values.
    let guard = AbortOnUnwind::arm(std::mem::needs_drop::<T>());

    let mut src: *mut T = v_ptr;
    let mut dst: *mut T = s_ptr;
    let mut width = RUN;
    while width < n {
        let n_segs = n.div_ceil(SEG);
        {
            let src = SendPtr::new(src);
            let dst = SendPtr::new(dst);
            run_parallel(n_segs, "sort_merge", move |s_idx| {
                let (src, dst) = (src.get() as *const T, dst.get());
                let k0g = s_idx * SEG;
                let k1g = (k0g + SEG).min(n);
                // The merge pair this segment falls inside.
                let pair = k0g / (2 * width);
                let lo = pair * 2 * width;
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                // SAFETY: lo <= k0g < k1g <= hi (SEG never spans a pair),
                // and distinct segments write disjoint dst ranges.
                unsafe {
                    let a = src.add(lo);
                    let la = mid - lo;
                    let b = src.add(mid);
                    let lb = hi - mid;
                    let k0 = k0g - lo;
                    let k1 = k1g.min(hi) - lo;
                    let i0 = co_rank(k0, a, la, b, lb, cmp);
                    let i1 = co_rank(k1, a, la, b, lb, cmp);
                    merge_into(
                        a.add(i0),
                        i1 - i0,
                        b.add(k0 - i0),
                        (k1 - i1) - (k0 - i0),
                        dst.add(lo + k0),
                        cmp,
                    );
                }
            });
        }
        std::mem::swap(&mut src, &mut dst);
        width *= 2;
    }

    if !ptr::eq(src, v_ptr) {
        // Sorted data ended in scratch; move it home.
        // SAFETY: both buffers hold n slots and do not overlap.
        unsafe { ptr::copy_nonoverlapping(src, v_ptr, n) };
    }
    guard.defuse();
    // `scratch` drops as Vec<MaybeUninit<T>> — never runs element drops,
    // so elements are dropped exactly once (by `v`).
}

/// Co-rank (merge path) search: the number of elements the first `k`
/// outputs of merging `a[..la]` and `b[..lb]` take from `a`, under the
/// left-priority tie rule (equal elements come from `a` first).
///
/// # Safety
/// `a`/`b` must be valid for `la`/`lb` reads and `k <= la + lb`.
unsafe fn co_rank<T, C>(k: usize, a: *const T, la: usize, b: *const T, lb: usize, cmp: &C) -> usize
where
    C: Fn(&T, &T) -> Ordering,
{
    // Invariant: answer in [lo, hi]. In-loop: i < la and 1 <= j <= lb.
    let mut lo = k.saturating_sub(lb);
    let mut hi = k.min(la);
    while lo < hi {
        let i = (lo + hi) / 2;
        let j = k - i;
        // Taking a[i] as output k is wrong iff b[j-1] must precede it.
        if unsafe { cmp(&*b.add(j - 1), &*a.add(i)) } == Ordering::Less {
            hi = i;
        } else {
            lo = i + 1;
        }
    }
    lo
}

/// Sequential stable merge of `a[..la]` and `b[..lb]` into `out`, taking
/// from `b` only when strictly smaller (left-priority ties).
///
/// # Safety
/// `a`, `b` valid for reads; `out` valid for `la + lb` writes; the source
/// and destination ranges must not overlap.
unsafe fn merge_into<T, C>(
    mut a: *const T,
    mut la: usize,
    mut b: *const T,
    mut lb: usize,
    mut out: *mut T,
    cmp: &C,
) where
    C: Fn(&T, &T) -> Ordering,
{
    unsafe {
        while la > 0 && lb > 0 {
            if cmp(&*b, &*a) == Ordering::Less {
                ptr::copy_nonoverlapping(b, out, 1);
                b = b.add(1);
                lb -= 1;
            } else {
                ptr::copy_nonoverlapping(a, out, 1);
                a = a.add(1);
                la -= 1;
            }
            out = out.add(1);
        }
        if la > 0 {
            ptr::copy_nonoverlapping(a, out, la);
        } else if lb > 0 {
            ptr::copy_nonoverlapping(b, out, lb);
        }
    }
}

/// Abort-on-unwind bomb for the merge phase of `Drop` types.
struct AbortOnUnwind {
    armed: bool,
}

impl AbortOnUnwind {
    fn arm(armed: bool) -> Self {
        AbortOnUnwind { armed }
    }

    fn defuse(mut self) {
        self.armed = false;
    }
}

impl Drop for AbortOnUnwind {
    fn drop(&mut self) {
        if self.armed {
            eprintln!("fatal: comparator panicked during parallel merge of Drop elements");
            std::process::abort();
        }
    }
}

//! CSV import/export for point datasets.
//!
//! The real SW- datasets are distributed as text files (see the paper's
//! reference [28]); this module lets users cluster their own data by
//! loading `x,y` CSV files, and lets the synthetic datasets be exported
//! for inspection or plotting.

use spatial::Point2;
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Save points as `x,y` lines (with a header).
pub fn save_csv(path: &Path, points: &[Point2]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "x,y")?;
    for p in points {
        writeln!(w, "{},{}", p.x, p.y)?;
    }
    w.flush()
}

/// Load points from an `x,y` CSV file. A header line (anything whose first
/// field does not parse as a number) is skipped; blank lines are ignored.
/// Malformed data lines produce an error naming the line number.
pub fn load_csv(path: &Path) -> io::Result<Vec<Point2>> {
    let r = BufReader::new(File::open(path)?);
    let mut points = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(p) => points.push(p),
            None if lineno == 0 => continue, // header
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: cannot parse '{}' as x,y", lineno + 1, line),
                ))
            }
        }
    }
    Ok(points)
}

fn parse_line(line: &str) -> Option<Point2> {
    let mut it = line.split(',');
    let x: f64 = it.next()?.trim().parse().ok()?;
    let y: f64 = it.next()?.trim().parse().ok()?;
    Some(Point2::new(x, y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "hybrid_dbscan_io_test_{name}_{}",
            std::process::id()
        ));
        p
    }

    #[test]
    fn roundtrip() {
        let path = tmp("roundtrip");
        let pts = vec![Point2::new(1.5, -2.25), Point2::new(0.0, 1e-9)];
        save_csv(&path, &pts).unwrap();
        let back = load_csv(&path).unwrap();
        assert_eq!(back, pts);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_is_skipped_and_blank_lines_ignored() {
        let path = tmp("header");
        std::fs::write(&path, "x,y\n\n1,2\n\n3,4\n").unwrap();
        let pts = load_csv(&path).unwrap();
        assert_eq!(pts, vec![Point2::new(1.0, 2.0), Point2::new(3.0, 4.0)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn headerless_file_loads() {
        let path = tmp("headerless");
        std::fs::write(&path, "1,2\n3,4\n").unwrap();
        assert_eq!(load_csv(&path).unwrap().len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn malformed_line_errors_with_line_number() {
        let path = tmp("malformed");
        std::fs::write(&path, "x,y\n1,2\noops\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        assert!(load_csv(Path::new("/definitely/not/here.csv")).is_err());
    }
}

//! Plain-text run summary: span tree, device-engine utilization, pool
//! worker utilization (when a pool profile was ingested), metrics.

use crate::{DeviceOp, PoolWorkerLane, Recorder, SpanRecord};
use gpu_sim::timeline::Engine;
use std::fmt::Write as _;

fn write_span_tree(out: &mut String, spans: &[SpanRecord], parent: Option<u64>, depth: usize) {
    for span in spans.iter().filter(|s| s.parent == parent) {
        let indent = "  ".repeat(depth + 1);
        let _ = write!(
            out,
            "{indent}{} [{}] {:.3} ms",
            span.name,
            span.cat,
            span.wall_dur_us / 1e3
        );
        if let Some(sim) = span.sim_dur_us {
            let _ = write!(out, " (sim {:.3} ms)", sim / 1e3);
        }
        for (k, v) in &span.args {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        write_span_tree(out, spans, Some(span.id), depth + 1);
    }
}

fn write_device_summary(out: &mut String, ops: &[DeviceOp]) {
    let mut lanes: Vec<Engine> = Vec::new();
    for op in ops {
        if !lanes.contains(&op.engine) {
            lanes.push(op.engine);
        }
    }
    lanes.sort_by_key(|e| crate::chrome::engine_tid(*e));
    let end_us = ops
        .iter()
        .map(|o| o.start_us + o.dur_us)
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "device timeline: {} ops, span {:.3} ms",
        ops.len(),
        end_us / 1e3
    );
    for lane in lanes {
        let busy: f64 = ops
            .iter()
            .filter(|o| o.engine == lane)
            .map(|o| o.dur_us)
            .sum();
        let count = ops.iter().filter(|o| o.engine == lane).count();
        let util = if end_us > 0.0 {
            busy / end_us * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:<8} {count:>4} ops  busy {:>10.3} ms  ({util:>5.1}% of span)",
            crate::chrome::engine_lane_name(lane),
            busy / 1e3,
        );
    }
}

fn write_pool_summary(out: &mut String, span_us: f64, lanes: &[PoolWorkerLane]) {
    let steals: u64 = lanes.iter().map(|l| l.steals).sum();
    let tasks: u64 = lanes.iter().map(|l| l.tasks).sum();
    let _ = writeln!(
        out,
        "pool workers: {} lanes, session {:.3} ms, {tasks} tasks ({steals} stolen)",
        lanes.len(),
        span_us / 1e3
    );
    for lane in lanes {
        let busy_pct = if span_us > 0.0 {
            lane.busy_us / span_us * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "  {:<16} busy {:>5.1}%  park {:>9.3} ms  queue-wait {:>8.3} ms  \
             {:>5} tasks ({} stolen, {} local)",
            lane.name,
            busy_pct,
            lane.park_us / 1e3,
            lane.queue_wait_us / 1e3,
            lane.tasks,
            lane.steals,
            lane.local_pops,
        );
    }
}

/// Render the full text report for a recorder.
pub fn render(rec: &Recorder) -> String {
    let spans = rec.spans();
    let ops = rec.device_ops();
    let metrics = rec.metrics().snapshot();

    let mut out = String::new();
    out.push_str("== run summary ==\n");
    if !spans.is_empty() {
        out.push_str("spans:\n");
        write_span_tree(&mut out, &spans, None, 0);
    }
    if !ops.is_empty() {
        write_device_summary(&mut out, &ops);
    }
    let pool_lanes = rec.pool_lanes();
    if !pool_lanes.is_empty() {
        write_pool_summary(&mut out, rec.pool_span_us(), &pool_lanes);
    }
    let metrics_text = metrics.to_text();
    if !metrics_text.is_empty() {
        out.push_str(&metrics_text);
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::Recorder;
    use gpu_sim::timeline::Engine;
    use gpu_sim::{SimDuration, SimTime};

    #[test]
    fn report_shows_spans_device_and_metrics() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("run", "hybrid");
            let _inner = rec.span("index_build", "hybrid");
        }
        rec.record_device_op(
            Engine::Compute,
            "kernel",
            0,
            0,
            SimTime::ZERO,
            SimDuration::from_secs(1.0),
        );
        rec.metrics().counter_add("batches", 4);
        let text = rec.text_report();
        assert!(text.contains("run summary"), "{text}");
        assert!(text.contains("run [hybrid]"), "{text}");
        assert!(text.contains("index_build"), "{text}");
        assert!(text.contains("Compute"), "{text}");
        assert!(text.contains("batches"), "{text}");
    }

    #[test]
    fn empty_recorder_renders_header_only() {
        let rec = Recorder::new();
        let text = rec.text_report();
        assert_eq!(text, "== run summary ==\n");
    }

    #[test]
    fn pool_summary_lists_each_worker_lane() {
        use crate::PoolWorkerLane;
        let rec = Recorder::new();
        rec.record_pool_lanes(
            1000.0,
            vec![
                PoolWorkerLane {
                    name: "main".into(),
                    busy_us: 900.0,
                    tasks: 3,
                    local_pops: 3,
                    ..Default::default()
                },
                PoolWorkerLane {
                    name: "rayon-worker-0".into(),
                    busy_us: 250.0,
                    park_us: 700.0,
                    parks: 2,
                    steals: 1,
                    tasks: 1,
                    ..Default::default()
                },
            ],
        );
        let text = rec.text_report();
        assert!(text.contains("pool workers: 2 lanes"), "{text}");
        assert!(text.contains("4 tasks (1 stolen)"), "{text}");
        assert!(text.contains("rayon-worker-0"), "{text}");
        assert!(text.contains("busy  90.0%"), "{text}");
    }
}

//! The grid index `(G, A)` of Section IV (Figure 1 of the paper).
//!
//! The data extent is covered by cells of ε length in both x and y, so the
//! ε-neighborhood of any point is fully contained in the point's own cell
//! plus its (at most 8) adjacent cells. The index is stored as two flat
//! arrays, exactly as on the GPU:
//!
//! * `G` — one [`CellRange`] per cell `C_h`, holding the
//!   `[A_min_h, A_max_h]` range of that cell's points in `A`;
//! * `A` (here [`GridIndex::lookup`]) — the lookup array of point ids,
//!   grouped by cell. Since every point lives in exactly one cell,
//!   `|A| = |D|` and no per-cell over-allocation is needed.
//!
//! Cells are linearized row-major: `h = cy * nx + cx`.
//!
//! # Dense vs sparse `G`
//!
//! The natural dense layout (`vec![CellRange; nx * ny]`) is O(nx·ny): at
//! small ε relative to the data extent (exactly the SW-dataset regime of
//! Table II) the cell count dwarfs `|D|` and the array is almost entirely
//! `EMPTY` — memory and cache misses for nothing. The index therefore
//! supports two layouts behind one query interface ([`CellsView`]):
//!
//! * [`GridLayout::Dense`] — the flat array; O(1) cell resolution.
//! * [`GridLayout::Sparse`] — only the non-empty cells, as a sorted key
//!   array plus a parallel range array; cell ids resolve by binary
//!   search. Build memory is O(|D|), independent of nx·ny.
//!
//! [`GridIndex::build`] picks the layout automatically: dense iff
//! `nx·ny <= max(DENSE_CELLS_MIN, DENSE_CELLS_PER_POINT · |D|)` — i.e. the
//! dense array is allowed to cost at most a small constant factor of the
//! point storage itself (see the constants for the rationale). Both
//! layouts produce bitwise-identical `A`, non-empty schedules, stats, and
//! query answers; only the representation of `G` differs.

use crate::aabb::Aabb;
use crate::point::Point2;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Below this many points the grid build's parallel paths (cell-id map,
/// sparse pair sort) cost more in pool dispatch than they save.
const PAR_MIN_POINTS: usize = 1 << 14;

/// Index range of one grid cell into the lookup array `A`.
///
/// The paper stores inclusive `[A_min, A_max]`; we store the conventional
/// half-open `[start, end)` (`end = A_max + 1`), which also represents empty
/// cells without a sentinel.
///
/// Invariant: `start <= end`, enforced (debug-asserted) at construction by
/// [`CellRange::new`]. [`CellRange::len`] is total: a malformed range (only
/// constructible by writing the public fields directly) reports length 0 in
/// release builds instead of wrapping to a near-`u32::MAX` length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellRange {
    pub start: u32,
    pub end: u32,
}

impl CellRange {
    pub const EMPTY: CellRange = CellRange { start: 0, end: 0 };

    /// Construct a range, enforcing `start <= end`.
    #[inline]
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(
            end >= start,
            "malformed CellRange: end {end} < start {start}"
        );
        CellRange { start, end }
    }

    /// Number of points in the cell. Total: saturates to 0 on a malformed
    /// range (debug builds catch the malformation instead).
    #[inline]
    pub fn len(&self) -> usize {
        debug_assert!(
            self.end >= self.start,
            "malformed CellRange: end {} < start {}",
            self.end,
            self.start
        );
        self.end.saturating_sub(self.start) as usize
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Representation of the cell array `G`. See the module docs for the
/// trade-off; [`GridIndex::build`] chooses automatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GridLayout {
    /// Flat `nx·ny` array; O(1) cell resolution, O(nx·ny) memory.
    Dense,
    /// Non-empty cells only (sorted keys + parallel ranges); O(log k)
    /// resolution, O(|D|) memory.
    Sparse,
}

/// Largest dense cell array built unconditionally. Below this, O(nx·ny)
/// is noise (32 KB of ranges) and dense O(1) resolution always wins.
pub const DENSE_CELLS_MIN: usize = 4096;

/// Dense is kept while `nx·ny <= DENSE_CELLS_PER_POINT · |D|`: a
/// `CellRange` is 8 bytes and a `Point2` 16, so factor 4 bounds the dense
/// `G` at 2× the memory of `D` itself. Past that the array is mostly
/// `EMPTY` padding and the index switches to the sparse layout.
pub const DENSE_CELLS_PER_POINT: usize = 4;

/// A borrowed view of the cell array `G`, in either layout — what the
/// (simulated) GPU kernels traverse. `Copy`, so kernels capture it by
/// value like the other device constants.
#[derive(Debug, Clone, Copy)]
pub enum CellsView<'a> {
    /// `ranges[h]` is cell `h`.
    Dense(&'a [CellRange]),
    /// `keys` is the sorted list of non-empty cell ids; `ranges[i]`
    /// belongs to cell `keys[i]`. Absent ids are empty cells.
    Sparse {
        keys: &'a [u32],
        ranges: &'a [CellRange],
    },
}

impl CellsView<'_> {
    /// The `[start, end)` range of cell `h` (`EMPTY` for an absent sparse
    /// cell). Dense: O(1). Sparse: binary search over the non-empty keys.
    #[inline]
    pub fn range_of(&self, h: u32) -> CellRange {
        match self {
            CellsView::Dense(ranges) => ranges[h as usize],
            CellsView::Sparse { keys, ranges } => match keys.binary_search(&h) {
                Ok(i) => ranges[i],
                Err(_) => CellRange::EMPTY,
            },
        }
    }

    /// Modeled extra global-memory words a GPU kernel touches to *resolve*
    /// a cell id before reading its `CellRange`: 0 for the dense layout
    /// (direct index), `ceil(log2(k + 1))` binary-search probes for the
    /// sparse layout over `k` non-empty cells.
    #[inline]
    pub fn probe_reads(&self) -> u64 {
        match self {
            CellsView::Dense(_) => 0,
            CellsView::Sparse { keys, .. } => (usize::BITS - keys.len().leading_zeros()) as u64,
        }
    }

    /// Number of stored `CellRange` entries (nx·ny dense, k sparse) —
    /// the device-resident footprint of `G`, for memory accounting.
    #[inline]
    pub fn stored_ranges(&self) -> usize {
        match self {
            CellsView::Dense(ranges) => ranges.len(),
            CellsView::Sparse { ranges, .. } => ranges.len(),
        }
    }
}

/// Summary statistics of a built grid, reported by the experiment harness
/// and used to reason about kernel efficiency (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridStats {
    /// Total number of cells `|G| = nx · ny`.
    pub total_cells: usize,
    /// Number of cells containing at least one point.
    pub non_empty_cells: usize,
    /// Largest cell population.
    pub max_points_per_cell: usize,
    /// Mean population over non-empty cells.
    pub avg_points_per_non_empty_cell: f64,
}

/// The geometric parameters of a grid — the "device constants" a GPU
/// kernel needs to map points to cells and enumerate adjacent cells,
/// independent of the `G`/`A` arrays. Copyable so it can be captured by
/// kernels directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridGeometry {
    pub eps: f64,
    pub origin_x: f64,
    pub origin_y: f64,
    pub nx: usize,
    pub ny: usize,
}

impl GridGeometry {
    /// Whether `p` lies within the grid's cell coverage
    /// `[origin, origin + n·eps)` on both axes — the domain on which
    /// [`Self::cell_of`] is meaningful. Every point of the indexed
    /// database satisfies this by construction (the grid allocates one
    /// cell of slack past the data AABB's max corner).
    #[inline]
    pub fn covers(&self, p: &Point2) -> bool {
        let fx = (p.x - self.origin_x) / self.eps;
        let fy = (p.y - self.origin_y) / self.eps;
        // Every comparison is false for NaN coordinates, so a NaN point
        // is (correctly) not covered.
        fx >= 0.0 && fy >= 0.0 && fx < self.nx as f64 && fy < self.ny as f64
    }

    /// Linear cell id containing `p`, or `None` if `p` lies outside the
    /// grid's cell coverage. Use this for query points that are not drawn
    /// from the indexed database: an out-of-extent point has no cell, and
    /// clamping it to a border cell would silently return a
    /// wrong-but-plausible neighborhood.
    #[inline]
    pub fn try_cell_of(&self, p: &Point2) -> Option<usize> {
        if !self.covers(p) {
            return None;
        }
        Some(self.cell_of_unchecked(p))
    }

    /// Linear cell id containing `p`.
    ///
    /// `p` must lie within the grid's cell coverage (debug-asserted). In
    /// release builds out-of-extent coordinates are clamped to the border
    /// cells — wrong-but-plausible — so callers with untrusted query
    /// points must use [`Self::try_cell_of`] instead.
    #[inline]
    pub fn cell_of(&self, p: &Point2) -> usize {
        debug_assert!(
            self.covers(p),
            "cell_of called with out-of-extent point ({}, {}); \
             grid covers [{}, {}) x [{}, {}) — use try_cell_of for \
             untrusted query points",
            p.x,
            p.y,
            self.origin_x,
            self.origin_x + self.nx as f64 * self.eps,
            self.origin_y,
            self.origin_y + self.ny as f64 * self.eps,
        );
        self.cell_of_unchecked(p)
    }

    #[inline]
    fn cell_of_unchecked(&self, p: &Point2) -> usize {
        let cx = (((p.x - self.origin_x) / self.eps) as usize).min(self.nx - 1);
        let cy = (((p.y - self.origin_y) / self.eps) as usize).min(self.ny - 1);
        cy * self.nx + cx
    }

    /// `(cx, cy)` coordinates of a linear cell id.
    #[inline]
    pub fn cell_coords(&self, h: usize) -> (usize, usize) {
        (h % self.nx, h / self.nx)
    }

    /// The `getNeighborCells` primitive of Algorithms 2 and 3: linear ids
    /// of the at-most-9 cells that can contain points within ε of points
    /// in cell `h`. Returns a fixed array with the first `count` entries
    /// valid — no allocation in kernel inner loops.
    #[inline]
    pub fn neighbor_cells(&self, h: usize) -> ([u32; 9], usize) {
        let (cx, cy) = self.cell_coords(h);
        let mut out = [0u32; 9];
        let mut n = 0;
        let x_lo = cx.saturating_sub(1);
        let x_hi = (cx + 1).min(self.nx - 1);
        let y_lo = cy.saturating_sub(1);
        let y_hi = (cy + 1).min(self.ny - 1);
        for y in y_lo..=y_hi {
            for x in x_lo..=x_hi {
                out[n] = (y * self.nx + x) as u32;
                n += 1;
            }
        }
        (out, n)
    }
}

/// The grid index over a point database `D` for a fixed ε.
///
/// # Figure 1 of the paper, as code
///
/// `G` holds per-cell ranges, `A` holds point ids grouped by cell, and
/// point ids in `A` index back into `D`:
///
/// ```
/// use spatial::{GridIndex, Point2};
///
/// // Three points in cell (0,0), one in cell (1,0), eps = 1.
/// let d = vec![
///     Point2::new(0.1, 0.1), // id 0
///     Point2::new(1.5, 0.5), // id 1 — the lone point of cell (1,0)
///     Point2::new(0.9, 0.2), // id 2
///     Point2::new(0.5, 0.6), // id 3
/// ];
/// let g = GridIndex::build(&d, 1.0);
///
/// // Cell C_h of the first point: a contiguous [start, end) range into A…
/// let h = g.cell_of(&d[0]);
/// let range = g.range_of(h);
/// let members = &g.lookup()[range.start as usize..range.end as usize];
/// // …listing exactly the ids located in that cell (0, 2 and 3 here),
/// // even though those points are not contiguous in D.
/// let mut m = members.to_vec();
/// m.sort();
/// assert_eq!(m, vec![0, 2, 3]);
///
/// // |A| = |D|: every point appears in exactly one cell's range.
/// assert_eq!(g.lookup().len(), d.len());
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    geom: GridGeometry,
    layout: GridLayout,
    /// `G`: dense layout stores nx·ny entries indexed by cell id; sparse
    /// layout stores one entry per non-empty cell, parallel to
    /// `non_empty` (which doubles as the sorted key array).
    ranges: Vec<CellRange>,
    /// `A`: point ids grouped by cell; `|A| = |D|`.
    lookup: Vec<u32>,
    /// Linear ids of non-empty cells, ascending — the schedule `S` consumed
    /// by the GPUCalcShared kernel (one block per non-empty cell), and the
    /// key array of the sparse layout.
    non_empty: Vec<u32>,
    max_per_cell: usize,
}

impl GridIndex {
    /// Build the index over `data` with cell width `eps`, choosing the
    /// `G` layout automatically (see the module docs for the threshold).
    ///
    /// `eps` must be finite and positive, and `data` non-empty.
    pub fn build(data: &[Point2], eps: f64) -> Self {
        let geom = Self::geometry_for(data, eps);
        let n_cells = geom.nx * geom.ny;
        let layout = if n_cells <= DENSE_CELLS_MIN.max(DENSE_CELLS_PER_POINT * data.len()) {
            GridLayout::Dense
        } else {
            GridLayout::Sparse
        };
        Self::build_into(data, geom, layout)
    }

    /// Build with an explicit layout (the automatic threshold is the
    /// right default; tests and benches use this to pin both paths on
    /// identical inputs).
    pub fn build_with_layout(data: &[Point2], eps: f64, layout: GridLayout) -> Self {
        Self::build_into(data, Self::geometry_for(data, eps), layout)
    }

    fn geometry_for(data: &[Point2], eps: f64) -> GridGeometry {
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be finite and positive"
        );
        assert!(!data.is_empty(), "cannot index an empty database");

        let bounds = Aabb::from_points(data.iter());
        // One cell of slack on the max edge so points exactly on the
        // boundary fall inside the last cell without clamping artifacts.
        let nx = (((bounds.max_x - bounds.min_x) / eps).floor() as usize) + 1;
        let ny = (((bounds.max_y - bounds.min_y) / eps).floor() as usize) + 1;
        // Cell ids must fit the kernels' u32 id arrays; 2^28 cells (~2 GB
        // of dense G, the practical ceiling on the simulated 5 GB device)
        // remains the documented limit for both layouts.
        assert!(
            nx.checked_mul(ny).is_some_and(|c| c <= 1 << 28),
            "grid of {nx} x {ny} cells exceeds the 2^28-cell limit; \
             eps {eps} is too small relative to the data extent"
        );
        GridGeometry {
            eps,
            origin_x: bounds.min_x,
            origin_y: bounds.min_y,
            nx,
            ny,
        }
    }

    fn build_into(data: &[Point2], geom: GridGeometry, layout: GridLayout) -> Self {
        let mut index = GridIndex {
            geom,
            layout,
            ranges: Vec::new(),
            lookup: vec![0; data.len()],
            non_empty: Vec::new(),
            max_per_cell: 0,
        };
        // Cell-id resolution (two divisions and a bounds check per point)
        // dominates both builds; it is a pure per-point map, so the
        // index-addressed parallel collect matches the serial map byte for
        // byte. The histogram/scatter passes that follow are cheap
        // sequential memory traffic over the precomputed ids.
        let cells: Vec<u32> = if data.len() >= PAR_MIN_POINTS && rayon::current_num_threads() > 1 {
            data.par_iter().map(|p| index.cell_of(p) as u32).collect()
        } else {
            data.iter().map(|p| index.cell_of(p) as u32).collect()
        };
        match layout {
            GridLayout::Dense => index.build_dense(&cells),
            GridLayout::Sparse => index.build_sparse(&cells),
        }
        index
    }

    /// Dense construction: a two-pass counting sort, `O(|D| + nx·ny)`
    /// time and memory. Within each cell, `A` keeps ids in ascending
    /// (data) order — the batching scheme's strided sampling relies on it.
    fn build_dense(&mut self, cells: &[u32]) {
        let n_cells = self.geom.nx * self.geom.ny;
        self.ranges = vec![CellRange::EMPTY; n_cells];

        // Pass 1: histogram cell populations.
        let mut counts = vec![0u32; n_cells];
        for &h in cells {
            counts[h as usize] += 1;
        }

        // Exclusive prefix sum -> per-cell start offsets, and cell ranges.
        let mut offset = 0u32;
        for (h, &c) in counts.iter().enumerate() {
            if c > 0 {
                self.ranges[h] = CellRange::new(offset, offset + c);
                self.non_empty.push(h as u32);
                self.max_per_cell = self.max_per_cell.max(c as usize);
            }
            offset += c;
        }

        // Pass 2: scatter point ids into A. Using a cursor per cell keeps
        // ids in ascending order within each cell (data order).
        let mut cursor: Vec<u32> = self.ranges.iter().map(|r| r.start).collect();
        for (i, &h) in cells.iter().enumerate() {
            self.lookup[cursor[h as usize] as usize] = i as u32;
            cursor[h as usize] += 1;
        }
    }

    /// Sparse construction: sort `(cell, id)` pairs, `O(|D| log |D|)` time
    /// and O(|D|) memory — never touches nx·ny. The sort key makes `A`
    /// identical to the dense build's: cells ascending, ids in data order
    /// within each cell.
    fn build_sparse(&mut self, cells: &[u32]) {
        let mut order: Vec<(u32, u32)> = cells
            .iter()
            .enumerate()
            .map(|(i, &h)| (h, i as u32))
            .collect();
        // (cell, id) pairs are pairwise distinct (ids are unique), so the
        // sorted order is unique: the parallel unstable sort matches the
        // serial one exactly.
        if order.len() >= PAR_MIN_POINTS && rayon::current_num_threads() > 1 {
            order.par_sort_unstable();
        } else {
            order.sort_unstable();
        }

        let k_estimate = order.len().min(64);
        self.non_empty = Vec::with_capacity(k_estimate);
        self.ranges = Vec::with_capacity(k_estimate);
        let mut run_start = 0u32;
        for (k, &(h, id)) in order.iter().enumerate() {
            self.lookup[k] = id;
            let next_differs = order.get(k + 1).is_none_or(|&(h2, _)| h2 != h);
            if next_differs {
                let end = k as u32 + 1;
                self.non_empty.push(h);
                self.ranges.push(CellRange::new(run_start, end));
                self.max_per_cell = self.max_per_cell.max((end - run_start) as usize);
                run_start = end;
            }
        }
    }

    /// Cell width ε the grid was built for.
    pub fn eps(&self) -> f64 {
        self.geom.eps
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.geom.nx, self.geom.ny)
    }

    /// The copyable geometric parameters (for GPU kernels).
    pub fn geometry(&self) -> GridGeometry {
        self.geom
    }

    /// The layout actually built (dense below the documented threshold,
    /// sparse above it — or whatever [`Self::build_with_layout`] forced).
    pub fn layout(&self) -> GridLayout {
        self.layout
    }

    /// The cell array `G`, as a layout-agnostic borrowed view — the form
    /// the kernels consume.
    pub fn cells_view(&self) -> CellsView<'_> {
        match self.layout {
            GridLayout::Dense => CellsView::Dense(&self.ranges),
            GridLayout::Sparse => CellsView::Sparse {
                keys: &self.non_empty,
                ranges: &self.ranges,
            },
        }
    }

    /// The `[start, end)` range of cell `h` into [`Self::lookup`]
    /// (`EMPTY` if the cell holds no points). O(1) dense, O(log k) sparse.
    #[inline]
    pub fn range_of(&self, h: usize) -> CellRange {
        self.cells_view().range_of(h as u32)
    }

    /// The lookup array `A` of point ids grouped by cell.
    pub fn lookup(&self) -> &[u32] {
        &self.lookup
    }

    /// Linear ids of non-empty cells — the schedule `S` for GPUCalcShared.
    pub fn non_empty_cells(&self) -> &[u32] {
        &self.non_empty
    }

    /// Largest cell population.
    pub fn max_points_per_cell(&self) -> usize {
        self.max_per_cell
    }

    /// Linear cell id containing point `p`, which must lie within the
    /// indexed extent (debug-asserted; see [`GridGeometry::cell_of`]).
    /// For query points not drawn from `D`, use [`Self::try_cell_of`].
    #[inline]
    pub fn cell_of(&self, p: &Point2) -> usize {
        self.geom.cell_of(p)
    }

    /// Linear cell id containing `p`, or `None` if `p` lies outside the
    /// grid's cell coverage (the safe variant for untrusted query points).
    #[inline]
    pub fn try_cell_of(&self, p: &Point2) -> Option<usize> {
        self.geom.try_cell_of(p)
    }

    /// `(cx, cy)` coordinates of a linear cell id.
    #[inline]
    pub fn cell_coords(&self, h: usize) -> (usize, usize) {
        self.geom.cell_coords(h)
    }

    /// The `getNeighborCells` primitive of Algorithms 2 and 3: the linear
    /// ids of the at-most-9 cells (the cell itself plus adjacent cells)
    /// that can contain points within ε of points in cell `h`. Returns the
    /// count and a fixed array (first `count` entries valid), avoiding any
    /// allocation in kernel inner loops.
    #[inline]
    pub fn neighbor_cells(&self, h: usize) -> ([u32; 9], usize) {
        self.geom.neighbor_cells(h)
    }

    /// ε-neighborhood query through the grid: ids of every point of `data`
    /// within the closed ε-ball around `q`. `data` must be the array the
    /// index was built from. Results are in cell-scan order (not sorted).
    pub fn query(&self, data: &[Point2], q: &Point2) -> Vec<u32> {
        let mut out = Vec::new();
        self.query_visit(data, q, |id| out.push(id));
        out
    }

    /// Visitor-based ε-neighborhood query (no allocation).
    #[inline]
    pub fn query_visit(&self, data: &[Point2], q: &Point2, mut visit: impl FnMut(u32)) {
        let eps_sq = self.geom.eps * self.geom.eps;
        let view = self.cells_view();
        let (cells, n) = self.neighbor_cells(self.cell_of(q));
        for &h in &cells[..n] {
            let range = view.range_of(h);
            for &id in &self.lookup[range.start as usize..range.end as usize] {
                if data[id as usize].distance_sq(q) <= eps_sq {
                    visit(id);
                }
            }
        }
    }

    /// Count of points within the closed ε-ball around `q`.
    pub fn query_count(&self, data: &[Point2], q: &Point2) -> usize {
        let mut n = 0;
        self.query_visit(data, q, |_| n += 1);
        n
    }

    /// Summary statistics for reporting.
    pub fn stats(&self) -> GridStats {
        let non_empty = self.non_empty.len();
        GridStats {
            total_cells: self.geom.nx * self.geom.ny,
            non_empty_cells: non_empty,
            max_points_per_cell: self.max_per_cell,
            avg_points_per_non_empty_cell: if non_empty == 0 {
                0.0
            } else {
                self.lookup.len() as f64 / non_empty as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::brute_force_neighbors;

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    fn demo_points() -> Vec<Point2> {
        vec![
            Point2::new(0.1, 0.1),
            Point2::new(0.2, 0.15),
            Point2::new(0.9, 0.9),
            Point2::new(2.5, 2.5),
            Point2::new(2.6, 2.4),
            Point2::new(5.0, 0.0),
        ]
    }

    #[test]
    fn lookup_is_a_permutation_of_ids() {
        let data = demo_points();
        for layout in [GridLayout::Dense, GridLayout::Sparse] {
            let g = GridIndex::build_with_layout(&data, 0.5, layout);
            let mut ids = g.lookup().to_vec();
            ids.sort_unstable();
            assert_eq!(ids, (0..data.len() as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn cell_ranges_partition_lookup() {
        let data = demo_points();
        for layout in [GridLayout::Dense, GridLayout::Sparse] {
            let g = GridIndex::build_with_layout(&data, 0.5, layout);
            // Ranges of non-empty cells are disjoint, ordered, and cover A.
            let mut prev_end = 0;
            for &h in g.non_empty_cells() {
                let r = g.range_of(h as usize);
                assert_eq!(r.start, prev_end, "ranges must be contiguous in cell order");
                assert!(r.end > r.start);
                prev_end = r.end;
            }
            assert_eq!(prev_end as usize, data.len());
        }
    }

    #[test]
    fn every_point_is_in_its_own_cell_range() {
        let data = demo_points();
        for layout in [GridLayout::Dense, GridLayout::Sparse] {
            let g = GridIndex::build_with_layout(&data, 0.5, layout);
            for (i, p) in data.iter().enumerate() {
                let r = g.range_of(g.cell_of(p));
                let members = &g.lookup()[r.start as usize..r.end as usize];
                assert!(
                    members.contains(&(i as u32)),
                    "point {i} missing from its cell ({layout:?})"
                );
            }
        }
    }

    #[test]
    fn query_matches_brute_force() {
        let data = demo_points();
        for eps in [0.2, 0.5, 1.0, 3.0] {
            for layout in [GridLayout::Dense, GridLayout::Sparse] {
                let g = GridIndex::build_with_layout(&data, eps, layout);
                for q in &data {
                    assert_eq!(
                        sorted(g.query(&data, q)),
                        brute_force_neighbors(&data, q, eps),
                        "eps = {eps}, q = {q:?}, layout = {layout:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_build_is_observably_identical_to_dense() {
        // Same A, same schedule, same stats, same per-cell ranges — only
        // the G representation differs. (The cross-crate property test in
        // hybrid-dbscan-core runs this over the adversarial generator
        // families; this is the unit-sized anchor.)
        let data = demo_points();
        for eps in [0.2, 0.5, 1.0, 3.0] {
            let d = GridIndex::build_with_layout(&data, eps, GridLayout::Dense);
            let s = GridIndex::build_with_layout(&data, eps, GridLayout::Sparse);
            assert_eq!(d.lookup(), s.lookup(), "eps = {eps}");
            assert_eq!(d.non_empty_cells(), s.non_empty_cells());
            assert_eq!(d.stats(), s.stats());
            assert_eq!(d.geometry(), s.geometry());
            for h in 0..d.dims().0 * d.dims().1 {
                assert_eq!(d.range_of(h), s.range_of(h), "cell {h}, eps = {eps}");
            }
        }
    }

    #[test]
    fn layout_auto_selection_follows_threshold() {
        // Few points spread far apart at tiny eps: nx*ny explodes past
        // the dense budget and the sparse layout must be chosen.
        let data = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1000.0, 1000.0),
            Point2::new(500.0, 250.0),
        ];
        let sparse = GridIndex::build(&data, 0.125);
        assert_eq!(sparse.layout(), GridLayout::Sparse);
        assert!(
            sparse.stats().total_cells > DENSE_CELLS_MIN.max(DENSE_CELLS_PER_POINT * data.len())
        );
        // The same points at a large eps stay dense.
        let dense = GridIndex::build(&data, 500.0);
        assert_eq!(dense.layout(), GridLayout::Dense);
        // Both answer queries identically to brute force.
        for q in &data {
            assert_eq!(
                sorted(sparse.query(&data, q)),
                sorted(dense.query(&data, q))
            );
        }
    }

    #[test]
    fn sparse_memory_is_independent_of_cell_count() {
        // The sparse G stores one range per non-empty cell even when the
        // grid has millions of cells.
        let data = vec![Point2::new(0.0, 0.0), Point2::new(4000.0, 4000.0)];
        let g = GridIndex::build(&data, 0.5); // ~64M cells
        assert_eq!(g.layout(), GridLayout::Sparse);
        assert_eq!(g.cells_view().stored_ranges(), 2);
        assert!(g.stats().total_cells > 60_000_000);
    }

    #[test]
    fn cells_view_probe_reads_model() {
        let dense = CellsView::Dense(&[]);
        assert_eq!(dense.probe_reads(), 0);
        let keys: Vec<u32> = (0..1000).collect();
        let ranges = vec![CellRange::EMPTY; 1000];
        let sparse = CellsView::Sparse {
            keys: &keys,
            ranges: &ranges,
        };
        assert_eq!(sparse.probe_reads(), 10); // ceil(log2(1001))
    }

    #[test]
    fn neighbor_cells_interior_is_nine() {
        // 5x5 grid: put points at the corners of a 4eps x 4eps extent.
        let data = vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 4.0),
            Point2::new(2.0, 2.0),
        ];
        let g = GridIndex::build(&data, 1.0);
        assert_eq!(g.dims(), (5, 5));
        let center = g.cell_of(&Point2::new(2.0, 2.0));
        let (_, n) = g.neighbor_cells(center);
        assert_eq!(n, 9);
        // Corner cell has only 4 neighbors (itself + 3).
        let corner = g.cell_of(&Point2::new(0.0, 0.0));
        let (_, n) = g.neighbor_cells(corner);
        assert_eq!(n, 4);
    }

    #[test]
    fn neighbor_cells_cover_eps_ball() {
        // Any two points within eps must be in mutually-neighboring cells.
        let data = vec![
            Point2::new(0.95, 0.95),
            Point2::new(1.05, 1.05), // across a cell boundary, within eps
            Point2::new(3.0, 3.0),
        ];
        let g = GridIndex::build(&data, 1.0);
        let q = g.query(&data, &data[0]);
        assert!(q.contains(&1), "cross-boundary neighbor must be found");
    }

    #[test]
    fn single_point_database() {
        let data = vec![Point2::new(7.0, -3.0)];
        let g = GridIndex::build(&data, 0.25);
        assert_eq!(g.dims(), (1, 1));
        assert_eq!(g.query(&data, &data[0]), vec![0]);
        assert_eq!(g.stats().non_empty_cells, 1);
    }

    #[test]
    fn boundary_point_on_max_edge() {
        let data = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 1.0)];
        let g = GridIndex::build(&data, 0.5);
        // The max-corner point must land in a valid cell and be queryable.
        assert_eq!(g.query_count(&data, &data[1]), 1);
    }

    #[test]
    fn stats_reflect_population() {
        let data = demo_points();
        for layout in [GridLayout::Dense, GridLayout::Sparse] {
            let g = GridIndex::build_with_layout(&data, 0.5, layout);
            let s = g.stats();
            assert_eq!(s.non_empty_cells, g.non_empty_cells().len());
            assert!(
                s.max_points_per_cell >= 2,
                "two points share the (0,0) cell"
            );
            assert!(s.avg_points_per_non_empty_cell >= 1.0);
            assert_eq!(s.total_cells, g.dims().0 * g.dims().1);
        }
    }

    #[test]
    #[should_panic]
    fn empty_database_panics() {
        let _ = GridIndex::build(&[], 1.0);
    }

    #[test]
    fn try_cell_of_rejects_out_of_extent_points() {
        let data = demo_points(); // extent [0.1, 5.0] x [0.1, 2.5]
        let g = GridIndex::build(&data, 0.5);
        // Inside: agrees with cell_of for every indexed point.
        for p in &data {
            assert_eq!(g.try_cell_of(p), Some(g.cell_of(p)));
        }
        // Outside on each side (and far outside): caught, not mis-binned.
        for q in [
            Point2::new(-1.0, 1.0),
            Point2::new(1.0, -1.0),
            Point2::new(100.0, 1.0),
            Point2::new(1.0, 100.0),
            Point2::new(f64::NAN, 1.0),
        ] {
            assert_eq!(g.try_cell_of(&q), None, "query {q:?} must be rejected");
        }
        // A point in the slack cell past the data max corner is still
        // covered (the grid allocates one cell of slack by construction).
        let geom = g.geometry();
        let slack = Point2::new(
            geom.origin_x + (geom.nx as f64 - 0.5) * geom.eps,
            geom.origin_y + (geom.ny as f64 - 0.5) * geom.eps,
        );
        assert!(g.try_cell_of(&slack).is_some());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out-of-extent")]
    fn cell_of_catches_out_of_extent_query_in_debug() {
        // The silent-clamp bug: an out-of-extent query used to be clamped
        // into a border cell and answered with a wrong-but-plausible
        // neighborhood. It must now be caught.
        let data = demo_points();
        let g = GridIndex::build(&data, 0.5);
        let _ = g.cell_of(&Point2::new(-50.0, -50.0));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "malformed CellRange")]
    fn malformed_cell_range_len_is_caught_in_debug() {
        let r = CellRange { start: 5, end: 3 };
        let _ = r.len();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "malformed CellRange")]
    fn malformed_cell_range_construction_is_caught_in_debug() {
        let _ = CellRange::new(5, 3);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn malformed_cell_range_len_saturates_in_release() {
        // The release-mode hazard this guards: `wrapping_sub` would report
        // a length near u32::MAX and a slice of A by [start, start + len)
        // would run far out of bounds. Saturating keeps `len` total.
        let r = CellRange { start: 5, end: 3 };
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
    }
}

//! ε-search backend selection: grid vs packed kd-tree, per workload.
//!
//! Both backends produce bitwise-identical neighbor tables (same pair
//! set, same canonical device sort, same batch plan); they differ only in
//! modeled cost. The grid's 9-cell (3ε)² stencil is unbeatable on
//! uniform, sparse 2-D data; the tree's tighter (2ε)² candidate volume
//! wins when density is highly skewed (dense cells make the stencil scan
//! expensive exactly where most points live) and in higher dimensions
//! (the stencil grows 3^d while the tree stays (2ε)^d) — at the price of
//! a per-node dependent-read traversal surcharge.
//!
//! [`select_backend`] implements the `Auto` policy from cheap,
//! deterministic dataset statistics: a strided sample of points is binned
//! into ε-cells (a `BTreeMap`, so iteration order — and therefore every
//! derived float — is identical at every thread count) and the
//! coefficient of variation of non-empty-cell occupancy plus the mean
//! occupancy decide. The decision and its inputs are surfaced as a
//! [`BackendDecision`] and recorded in run provenance.

use serde::{Deserialize, Serialize};
use spatial::Point2;
use std::collections::BTreeMap;

/// Which ε-search index the hybrid pipeline builds and traverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IndexBackend {
    /// The paper's grid index `(G, A)` — the default, and the forced
    /// choice for the cell-driven [`crate::kernels::GpuCalcShared`].
    #[default]
    Grid,
    /// The packed kd-tree ([`spatial::PackedKdTree`]).
    Tree,
    /// Decide per workload from sampled dataset statistics.
    Auto,
}

impl IndexBackend {
    pub fn name(&self) -> &'static str {
        match self {
            IndexBackend::Grid => "grid",
            IndexBackend::Tree => "tree",
            IndexBackend::Auto => "auto",
        }
    }
}

/// The backend actually executed (post-`Auto` resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChosenBackend {
    Grid,
    Tree,
}

impl ChosenBackend {
    pub fn name(&self) -> &'static str {
        match self {
            ChosenBackend::Grid => "grid",
            ChosenBackend::Tree => "tree",
        }
    }
}

/// How a backend was chosen for one workload — recorded in provenance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackendDecision {
    /// What the configuration asked for.
    pub requested: IndexBackend,
    /// What ran.
    pub chosen: ChosenBackend,
    /// Sampled coefficient of variation of non-empty ε-cell occupancy
    /// (0 when the decision didn't need stats — explicit request or a
    /// kernel constraint).
    pub cell_cv: f64,
    /// Sampled mean points per non-empty ε-cell, scaled back to the full
    /// database.
    pub mean_occupancy: f64,
    /// Why: "requested", "shared-kernel", or "auto".
    pub reason: &'static str,
}

/// Sample stride target: cap the statistics pass at ~4096 points so the
/// selector costs O(min(n, 4096)) regardless of database size.
const MAX_STAT_SAMPLE: usize = 4096;

/// Auto policy thresholds, calibrated against the bench suite's backend
/// ablation (see DESIGN.md §16): the tree must beat the grid on the
/// skewed-density workloads and lose on the uniform ones.
///
/// The traversal surcharge is amortized when a thread's own cell is
/// populous (the stencil scans ~9 such cells; the tree scans ~the ε-ball)
/// and when occupancy varies strongly (dense cells dominate total scan
/// cost superlinearly). Empirically the crossover on the suite sits near
/// CV ≈ 2: SDSS-class uniform data at ε = 0.2 measures CV ≈ 1.2 (grid
/// wins), while the SW/SKX skewed workloads measure CV ≥ 4 (tree wins).
const CV_THRESHOLD: f64 = 2.0;
const OCCUPANCY_THRESHOLD: f64 = 6.0;
/// Occupancy bar for the tree in d = 3. Each added dimension grows the
/// grid's stencil 3× but the tree's candidate ball only ~2×, so the
/// grid's relative over-scan worsens with d and the bar halves per
/// dimension above 3 (see [`nd_occupancy_threshold`]). Calibrated on the
/// jittered-lattice ablation workloads: the 3-D lattice at ε = 3
/// (occupancy ≈ 20) is a tree win, at ε ≤ 2 (occupancy ≤ 7) a grid win;
/// the 4-D lattice at ε = 2 (occupancy ≈ 5) is a tree win.
const ND_OCCUPANCY_THRESHOLD_3D: f64 = 8.0;

/// The `Auto` occupancy bar for a `d`-dimensional workload (d ≥ 3).
fn nd_occupancy_threshold(d: usize) -> f64 {
    ND_OCCUPANCY_THRESHOLD_3D / (1u64 << (d.saturating_sub(3)).min(32)) as f64
}

/// Deterministic sampled ε-cell statistics: `(cv, mean_occupancy)` over
/// non-empty cells of the strided sample, occupancy scaled by the stride
/// so it estimates full-database points per cell.
fn sampled_cell_stats(data: &[Point2], eps: f64) -> (f64, f64) {
    let stride = (data.len() / MAX_STAT_SAMPLE).max(1);
    // BTreeMap, not HashMap: iteration order must be deterministic or
    // the float accumulations below would vary run to run.
    let mut bins: BTreeMap<(i64, i64), u64> = BTreeMap::new();
    let mut sampled = 0u64;
    let mut i = 0;
    while i < data.len() {
        let p = &data[i];
        let key = (
            (p.y / eps).floor() as i64, //
            (p.x / eps).floor() as i64,
        );
        *bins.entry(key).or_insert(0) += 1;
        sampled += 1;
        i += stride;
    }
    if bins.is_empty() || sampled == 0 {
        return (0.0, 0.0);
    }
    let k = bins.len() as f64;
    let mean = sampled as f64 / k;
    let var = bins
        .values()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / k;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    (cv, mean * stride as f64)
}

/// Deterministic sampled cell statistics for `D`-dimensional data — the
/// ND generalization of [`sampled_cell_stats`], keyed by the full
/// `D`-tuple of ε-cell coordinates.
fn sampled_cell_stats_nd<const D: usize>(data: &[spatial::PointN<D>], eps: f64) -> (f64, f64) {
    let stride = (data.len() / MAX_STAT_SAMPLE).max(1);
    let mut bins: BTreeMap<[i64; D], u64> = BTreeMap::new();
    let mut sampled = 0u64;
    let mut i = 0;
    while i < data.len() {
        let p = &data[i];
        let key = std::array::from_fn(|k| (p.coords[k] / eps).floor() as i64);
        *bins.entry(key).or_insert(0) += 1;
        sampled += 1;
        i += stride;
    }
    if bins.is_empty() || sampled == 0 {
        return (0.0, 0.0);
    }
    let k = bins.len() as f64;
    let mean = sampled as f64 / k;
    let var = bins
        .values()
        .map(|&c| {
            let d = c as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / k;
    let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
    (cv, mean * stride as f64)
}

/// Resolve the configured backend for a `D`-dimensional workload.
///
/// The `Auto` policy folds dimensionality in: in d ≥ 3 the grid's 3^d
/// stencil (27, 81 sparse binary-search probes per point) loses to the
/// tree's (2ε)^d candidate volume at much milder density, so the
/// occupancy bar drops with the dimension; in 2-D the thresholds match
/// [`select_backend`].
pub fn select_backend_nd<const D: usize>(
    requested: IndexBackend,
    data: &[spatial::PointN<D>],
    eps: f64,
) -> BackendDecision {
    match requested {
        IndexBackend::Grid => BackendDecision {
            requested,
            chosen: ChosenBackend::Grid,
            cell_cv: 0.0,
            mean_occupancy: 0.0,
            reason: "requested",
        },
        IndexBackend::Tree => BackendDecision {
            requested,
            chosen: ChosenBackend::Tree,
            cell_cv: 0.0,
            mean_occupancy: 0.0,
            reason: "requested",
        },
        IndexBackend::Auto => {
            let (cv, occ) = sampled_cell_stats_nd(data, eps);
            let chosen = if D >= 3 {
                if occ >= nd_occupancy_threshold(D) {
                    ChosenBackend::Tree
                } else {
                    ChosenBackend::Grid
                }
            } else if cv >= CV_THRESHOLD && occ >= OCCUPANCY_THRESHOLD {
                ChosenBackend::Tree
            } else {
                ChosenBackend::Grid
            };
            BackendDecision {
                requested,
                chosen,
                cell_cv: cv,
                mean_occupancy: occ,
                reason: "auto",
            }
        }
    }
}

/// Resolve the configured backend for a 2-D workload.
///
/// `shared_kernel` callers always get the grid: GPUCalcShared is driven
/// by the non-empty-cell schedule, which only the grid defines.
pub fn select_backend(
    requested: IndexBackend,
    shared_kernel: bool,
    data: &[Point2],
    eps: f64,
) -> BackendDecision {
    if shared_kernel {
        return BackendDecision {
            requested,
            chosen: ChosenBackend::Grid,
            cell_cv: 0.0,
            mean_occupancy: 0.0,
            reason: "shared-kernel",
        };
    }
    match requested {
        IndexBackend::Grid => BackendDecision {
            requested,
            chosen: ChosenBackend::Grid,
            cell_cv: 0.0,
            mean_occupancy: 0.0,
            reason: "requested",
        },
        IndexBackend::Tree => BackendDecision {
            requested,
            chosen: ChosenBackend::Tree,
            cell_cv: 0.0,
            mean_occupancy: 0.0,
            reason: "requested",
        },
        IndexBackend::Auto => {
            let (cv, occ) = sampled_cell_stats(data, eps);
            let chosen = if cv >= CV_THRESHOLD && occ >= OCCUPANCY_THRESHOLD {
                ChosenBackend::Tree
            } else {
                ChosenBackend::Grid
            };
            BackendDecision {
                requested,
                chosen,
                cell_cv: cv,
                mean_occupancy: occ,
                reason: "auto",
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, extent: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Point2::new((t * 0.754).fract() * extent, (t * 0.569).fract() * extent)
            })
            .collect()
    }

    /// A few dense clumps over a sparse background — high occupancy CV.
    fn skewed(n: usize, extent: f64) -> Vec<Point2> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                if i % 4 != 0 {
                    let c = (i % 3) as f64 * extent / 3.0 + extent / 6.0;
                    Point2::new(c + (t * 0.618).fract() * 0.2, c + (t * 0.414).fract() * 0.2)
                } else {
                    Point2::new((t * 0.754).fract() * extent, (t * 0.569).fract() * extent)
                }
            })
            .collect()
    }

    #[test]
    fn explicit_requests_are_honored() {
        let data = uniform(100, 10.0);
        assert_eq!(
            select_backend(IndexBackend::Grid, false, &data, 1.0).chosen,
            ChosenBackend::Grid
        );
        assert_eq!(
            select_backend(IndexBackend::Tree, false, &data, 1.0).chosen,
            ChosenBackend::Tree
        );
    }

    #[test]
    fn shared_kernel_forces_grid() {
        let data = skewed(500, 12.0);
        let d = select_backend(IndexBackend::Tree, true, &data, 0.5);
        assert_eq!(d.chosen, ChosenBackend::Grid);
        assert_eq!(d.reason, "shared-kernel");
        let d = select_backend(IndexBackend::Auto, true, &data, 0.5);
        assert_eq!(d.chosen, ChosenBackend::Grid);
    }

    #[test]
    fn auto_picks_grid_on_uniform_sparse_data() {
        let data = uniform(2000, 40.0);
        let d = select_backend(IndexBackend::Auto, false, &data, 0.5);
        assert_eq!(d.chosen, ChosenBackend::Grid, "{d:?}");
        assert_eq!(d.reason, "auto");
    }

    #[test]
    fn auto_picks_tree_on_skewed_dense_data() {
        let data = skewed(4000, 12.0);
        let d = select_backend(IndexBackend::Auto, false, &data, 0.5);
        assert_eq!(d.chosen, ChosenBackend::Tree, "{d:?}");
        assert!(d.cell_cv >= 1.0, "{d:?}");
    }

    #[test]
    fn stats_are_deterministic_across_calls() {
        let data = skewed(10_000, 20.0);
        let a = select_backend(IndexBackend::Auto, false, &data, 0.3);
        let b = select_backend(IndexBackend::Auto, false, &data, 0.3);
        assert_eq!(a.cell_cv.to_bits(), b.cell_cv.to_bits());
        assert_eq!(a.mean_occupancy.to_bits(), b.mean_occupancy.to_bits());
    }
}

//! The efficient batching scheme (Section VI of the paper).
//!
//! The result set `R` (all ε-neighbor pairs) can exceed GPU global memory,
//! so the neighbor table is computed in `n_b` batches, each filling a
//! bounded device buffer of `b_b` items that is sorted, shipped to the
//! host, and drained into the table builder. The scheme must (i) never
//! overflow `b_b` — a real kernel would corrupt memory — while (ii)
//! keeping `n_b` minimal, because every extra batch is another transfer
//! on the slow host-GPU link, and (iii) not over-allocating pinned staging
//! memory.
//!
//! Mechanics, exactly as published:
//!
//! * Estimate the total result size `a_b` from the counting kernel's
//!   exact neighbor count `e_b` over a sample fraction `f = 0.01`. (The
//!   paper writes `a_b = e_b / f`; since the kernel samples at
//!   `stride = round(1/f)`, we scale by the *realized* sample size —
//!   `a_b = e_b · |D| / ceil(|D|/stride)` — which is unbiased even when
//!   `1/f` is non-integral or the stride does not divide `|D|`.)
//! * Overestimate by `α = 0.05`:  `n_b = ceil((1 + α) · a_b / b_b)`
//!   (Equation 1).
//! * Assign points to batches by *stride*: batch `l` processes points
//!   `{g · n_b + l}` of the spatially sorted database (Figure 2), so every
//!   batch is a uniform spatial sample and the `|R_l|` stay consistent —
//!   this is what lets a single global `α` be small.
//! * Buffer sizing: when the estimate is large (`≥ 3·10⁸` pairs) use a
//!   static `b_b = 10⁸`; when small, size the three per-stream buffers
//!   directly from the estimate with a doubled α
//!   (`b_b = a_b(1 + 2α) / n_streams`), since pinned allocation time would
//!   otherwise dominate small workloads. (The paper words the threshold in
//!   terms of `e_b`; dimensional consistency with `b_b` requires the
//!   *scaled* estimate, which is what we use.)

use serde::{Deserialize, Serialize};

/// Tunables of the batching scheme, with the paper's published defaults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchConfig {
    /// Overestimation factor α (paper: 0.05).
    pub alpha: f64,
    /// Sample fraction f for the estimation kernel (paper: 0.01).
    pub sample_fraction: f64,
    /// Estimated-total threshold above which the static buffer size is
    /// used (paper: 3·10⁸ pairs).
    pub static_threshold: u64,
    /// The static per-stream buffer size in pairs (paper: 10⁸).
    pub static_buffer_items: usize,
    /// Number of CUDA streams / per-stream buffers (paper: 3).
    pub n_streams: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            alpha: 0.05,
            sample_fraction: 0.01,
            static_threshold: 300_000_000,
            static_buffer_items: 100_000_000,
            n_streams: 3,
        }
    }
}

/// The concrete plan derived from an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchPlan {
    /// `n_b`: number of batches.
    pub n_batches: usize,
    /// `b_b`: per-stream device buffer capacity in pairs.
    pub buffer_items: usize,
    /// `a_b`: the estimated total result size.
    pub estimated_total: u64,
    /// The α actually applied (doubled for small estimates).
    pub effective_alpha: f64,
    /// Whether the variable (estimate-derived) buffer sizing was used.
    pub variable_buffer: bool,
}

impl BatchConfig {
    /// Minimum number of points the estimation kernel samples (when the
    /// database has that many). At the paper's `f = 0.01` a database of a
    /// few thousand points would otherwise be estimated from a handful of
    /// neighborhoods — or just one — and a single unlucky sample point
    /// yields buffers smaller than a single neighborhood, which no amount
    /// of batch-splitting can recover from.
    pub const MIN_SAMPLE: usize = 32;

    /// Sampling stride implied by the sample fraction alone:
    /// `round(1/f)`, the paper's setting.
    pub fn stride(&self) -> usize {
        (1.0 / self.sample_fraction).round().max(1.0) as usize
    }

    /// Sampling stride of the estimation kernel for a database of
    /// `n_points`: thread `g` counts the neighbors of point `g · stride`.
    /// This is `round(1/f)`, clamped so the realized sample keeps at
    /// least [`Self::MIN_SAMPLE`] points (all of them, for databases
    /// smaller than that). Every consumer of the sample (the kernel
    /// launch and the estimate scaling) must use this same stride.
    pub fn stride_for(&self, n_points: usize) -> usize {
        self.stride().min((n_points / Self::MIN_SAMPLE).max(1))
    }

    /// Number of points the estimation kernel actually samples for a
    /// database of `n_points`: `ceil(n / stride)`.
    pub fn sample_size(&self, n_points: usize) -> usize {
        n_points.div_ceil(self.stride_for(n_points)).max(1)
    }

    /// Scale the counting kernel's sample count `e_b` to the total
    /// estimate `a_b`.
    ///
    /// The paper writes `a_b = e_b / f`, but the kernel samples at
    /// `stride = round(1/f)` and covers `ceil(n / stride)` points, so for
    /// `f` where `1/f` is non-integral (or `n mod stride != 0`) the
    /// *realized* fraction differs from `f` and dividing by `f` would bias
    /// `a_b` systematically. Scaling by the realized sample size —
    /// `a_b = e_b · n / sample_size` — is unbiased for every `f` and `n`.
    pub fn estimate_total(&self, e_b: u64, n_points: usize) -> u64 {
        let sample = self.sample_size(n_points);
        (e_b as f64 * n_points as f64 / sample as f64).ceil() as u64
    }

    /// Build the batch plan for sample count `e_b` over a database of
    /// `n_points` (Equation 1).
    pub fn plan(&self, e_b: u64, n_points: usize) -> BatchPlan {
        let a_b = self.estimate_total(e_b, n_points).max(1);

        let (buffer_items, effective_alpha, variable) = if a_b >= self.static_threshold {
            (self.static_buffer_items, self.alpha, false)
        } else {
            // Small estimate: α doubles ("the total result set size
            // estimate is more uncertain and there is more variability in
            // |R_l| between batches") and the buffers are sized to finish
            // in one round of the streams.
            let alpha2 = 2.0 * self.alpha;
            let bb = ((a_b as f64 * (1.0 + alpha2)) / self.n_streams as f64).ceil() as usize;
            (bb.max(1), alpha2, true)
        };

        // Equation 1: n_b = ceil((1 + α) a_b / b_b).
        let n_batches =
            (((1.0 + effective_alpha) * a_b as f64) / buffer_items as f64).ceil() as usize;

        BatchPlan {
            n_batches: n_batches.max(1),
            buffer_items,
            estimated_total: a_b,
            effective_alpha,
            variable_buffer: variable,
        }
    }
}

impl BatchPlan {
    /// Expected result size of one batch under the uniform-stride
    /// assumption.
    pub fn expected_batch_size(&self) -> usize {
        (self.estimated_total as f64 / self.n_batches as f64).ceil() as usize
    }

    /// Shrink the plan so that `n_buffers` device buffers of `b_b` pairs
    /// (at `pair_bytes` each) fit in `available_bytes`, increasing
    /// `n_batches` to compensate. Returns `None` if even a minimal buffer
    /// cannot fit. This is a robustness extension beyond the paper (which
    /// assumes the static size always fits).
    pub fn fit_to_memory(
        mut self,
        available_bytes: usize,
        pair_bytes: usize,
        n_buffers: usize,
    ) -> Option<BatchPlan> {
        let max_items = available_bytes / pair_bytes.max(1) / n_buffers.max(1);
        if max_items == 0 {
            return None;
        }
        if self.buffer_items > max_items {
            self.buffer_items = max_items;
            self.n_batches = (((1.0 + self.effective_alpha) * self.estimated_total as f64)
                / self.buffer_items as f64)
                .ceil() as usize;
        }
        Some(self)
    }

    /// Double the batch count — the overflow-recovery fallback. (With the
    /// published α the estimate would have to be off by >5% for this to
    /// trigger; adversarial tests exercise it.)
    pub fn with_doubled_batches(mut self) -> BatchPlan {
        self.n_batches *= 2;
        self
    }

    /// Replan from an *exact* total result size (known after an
    /// overflowed pass counted every append attempt), keeping the buffer
    /// size and applying Equation 1 with `margin` as the α. Unlike
    /// [`Self::with_doubled_batches`] this converges to the minimal batch
    /// count for the true `|R|`, so the executed `n_b` stays monotone in
    /// the configured α instead of overshooting by powers of two.
    pub fn replan_for_total(mut self, exact_total: u64, margin: f64) -> BatchPlan {
        self.estimated_total = exact_total.max(1);
        self.effective_alpha = margin;
        self.n_batches = (((1.0 + margin) * self.estimated_total as f64) / self.buffer_items as f64)
            .ceil()
            .max(1.0) as usize;
        self
    }
}

/// The strided point→batch assignment of Figure 2: point `i` belongs to
/// batch `i mod n_b`.
#[inline]
pub fn batch_of(point_id: usize, n_batches: usize) -> usize {
    point_id % n_batches
}

/// The points of batch `l`: `{g · n_b + l | g = 0, 1, …}` (Figure 2's
/// x-axis labels, zero-indexed).
pub fn batch_points(
    n_points: usize,
    n_batches: usize,
    batch: usize,
) -> impl Iterator<Item = usize> {
    (batch..n_points).step_by(n_batches.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equation_1_exact() {
        // a_b = 1000, bb = 100, alpha = 0.05 -> nb = ceil(1050/100) = 11.
        let cfg = BatchConfig {
            alpha: 0.05,
            sample_fraction: 1.0, // stride 1: e_b is already the total
            static_threshold: 0,  // force the static path
            static_buffer_items: 100,
            n_streams: 3,
        };
        let plan = cfg.plan(1000, 5000);
        assert_eq!(plan.n_batches, 11);
        assert_eq!(plan.buffer_items, 100);
        assert_eq!(plan.effective_alpha, 0.05);
        assert!(!plan.variable_buffer);
    }

    #[test]
    fn small_estimates_use_three_variable_buffers() {
        let cfg = BatchConfig::default();
        // e_b = 1000 at f = 0.01 over n = 100_000 (stride 100, sample
        // 1000) -> a_b = 1000 * 100_000 / 1000 = 100_000, far below 3e8.
        let plan = cfg.plan(1000, 100_000);
        assert!(plan.variable_buffer);
        assert_eq!(plan.effective_alpha, 0.10);
        assert_eq!(plan.estimated_total, 100_000);
        // bb = 100_000 * 1.1 / 3 = 36_667; nb = ceil(1.1*1e5/36667) = 3.
        assert_eq!(plan.buffer_items, 36_667);
        assert_eq!(plan.n_batches, 3, "small runs finish in one stream round");
    }

    #[test]
    fn large_estimates_use_static_buffer() {
        let cfg = BatchConfig::default();
        // e_b = 5e6 at f = 0.01 over n = 1e6 -> a_b = 5e8 >= 3e8.
        let plan = cfg.plan(5_000_000, 1_000_000);
        assert!(!plan.variable_buffer);
        assert_eq!(plan.buffer_items, 100_000_000);
        // nb = ceil(1.05 * 5e8 / 1e8) = 6.
        assert_eq!(plan.n_batches, 6);
    }

    #[test]
    fn estimate_scales_by_realized_sample_size() {
        // f = 0.03: 1/f = 33.33 is non-integral, so the kernel's stride is
        // round(1/f) = 33 and the realized fraction differs from f. The
        // estimate must scale by the realized sample, not by 1/f.
        let cfg = BatchConfig {
            sample_fraction: 0.03,
            ..BatchConfig::default()
        };
        assert_eq!(cfg.stride(), 33);
        let n = 10_000;
        assert_eq!(cfg.stride_for(n), 33); // no MIN_SAMPLE clamp at this n
        assert_eq!(cfg.sample_size(n), 304); // ceil(10_000/33)
        let e_b = 304u64;
        // Unbiased: e_b * n / sample = 304 * 10_000 / 304 = 10_000.
        assert_eq!(cfg.estimate_total(e_b, n), 10_000);
        // The naive paper formula e_b / f would overestimate by the
        // stride-rounding bias (~1.3% here): ceil(304 / 0.03) = 10_134.
        let naive = (e_b as f64 / cfg.sample_fraction).ceil() as u64;
        assert_eq!(naive, 10_134);
        assert!(naive > cfg.estimate_total(e_b, n));
        // And the plan consumes the unbiased value.
        assert_eq!(cfg.plan(e_b, n).estimated_total, 10_000);
    }

    #[test]
    fn estimate_unbiased_when_stride_does_not_divide_n() {
        // Even with 1/f integral, n % stride != 0 inflates the realized
        // fraction: n = 10_050 at stride 100 samples 101 points, not
        // 100.5.
        let cfg = BatchConfig::default(); // f = 0.01
        let n = 10_050;
        assert_eq!(cfg.stride_for(n), 100);
        assert_eq!(cfg.sample_size(n), 101);
        // e_b * 10_050 / 101, not e_b * 100.
        assert_eq!(cfg.estimate_total(1010, n), 100_500);
        assert_eq!(cfg.estimate_total(101, n), 10_050);
    }

    #[test]
    fn small_databases_sample_everything() {
        // Below MIN_SAMPLE · stride points, the f-derived stride would
        // estimate from almost nothing; the clamp keeps the realized
        // sample at MIN_SAMPLE points, down to "all of them" for tiny
        // databases — where an exact estimate is effectively free.
        let cfg = BatchConfig::default(); // f = 0.01, stride 100
        assert_eq!(cfg.stride_for(60), 1);
        assert_eq!(cfg.sample_size(60), 60); // exhaustive: e_b is exact
        assert_eq!(cfg.estimate_total(777, 60), 777);
        assert_eq!(cfg.stride_for(2000), 62); // 2000/32
        assert_eq!(cfg.sample_size(2000), 33); // ceil(2000/62) >= MIN_SAMPLE
        assert!(cfg.sample_size(2000) >= BatchConfig::MIN_SAMPLE);
        // Large databases are unaffected.
        assert_eq!(cfg.stride_for(1_000_000), 100);
    }

    #[test]
    fn batch_buffers_always_cover_expected_size_with_margin() {
        let cfg = BatchConfig::default();
        for e_b in [1u64, 100, 10_000, 1_000_000, 50_000_000] {
            let plan = cfg.plan(e_b, 1_000_000);
            assert!(
                plan.expected_batch_size() <= plan.buffer_items,
                "e_b = {e_b}: expected {} > buffer {}",
                plan.expected_batch_size(),
                plan.buffer_items
            );
            // The α margin: buffer exceeds the expected size by ~alpha.
            let slack = plan.buffer_items as f64 / plan.expected_batch_size().max(1) as f64;
            assert!(slack >= 1.0, "slack {slack}");
        }
    }

    #[test]
    fn zero_estimate_still_plans_valid_batches() {
        let plan = BatchConfig::default().plan(0, 100);
        assert!(plan.n_batches >= 1);
        assert!(plan.buffer_items >= 1);
    }

    #[test]
    fn fit_to_memory_shrinks_buffers_and_grows_batches() {
        let cfg = BatchConfig::default();
        let plan = cfg.plan(5_000_000, 1_000_000); // static 1e8-item buffers
        let fitted = plan.fit_to_memory(240_000_000, 8, 3).unwrap();
        assert_eq!(fitted.buffer_items, 10_000_000);
        assert!(fitted.n_batches > plan.n_batches);
        // Impossible fit.
        assert!(plan.fit_to_memory(4, 8, 3).is_none());
    }

    #[test]
    fn fit_to_memory_no_change_when_already_fitting() {
        let cfg = BatchConfig::default();
        let plan = cfg.plan(1000, 100_000);
        let fitted = plan.fit_to_memory(usize::MAX, 8, 3).unwrap();
        assert_eq!(fitted, plan);
    }

    #[test]
    fn strided_assignment_matches_figure_2() {
        // Figure 2: n_b = 5; the first five points land in batches
        // 1..5 (1-indexed in the figure, 0..4 here), repeating.
        let nb = 5;
        for i in 0..20 {
            assert_eq!(batch_of(i, nb), i % 5);
        }
        let b0: Vec<usize> = batch_points(20, nb, 0).collect();
        assert_eq!(b0, vec![0, 5, 10, 15]);
        let b4: Vec<usize> = batch_points(20, nb, 4).collect();
        assert_eq!(b4, vec![4, 9, 14, 19]);
    }

    #[test]
    fn batch_points_partition_database() {
        let n = 103;
        let nb = 7;
        let mut seen = vec![false; n];
        for l in 0..nb {
            for i in batch_points(n, nb, l) {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn doubled_batches_fallback() {
        let plan = BatchConfig::default().plan(1000, 100_000);
        let doubled = plan.with_doubled_batches();
        assert_eq!(doubled.n_batches, plan.n_batches * 2);
    }

    #[test]
    fn replan_for_total_applies_equation_1_to_the_exact_total() {
        let cfg = BatchConfig {
            alpha: 0.0,
            sample_fraction: 1.0,
            static_threshold: 0,
            static_buffer_items: 100,
            n_streams: 3,
        };
        // The estimate said 1000 pairs (10 batches); the pass counted
        // 2000. Replanning at 5% margin gives ceil(1.05*2000/100) = 21
        // batches — not the 20 → 40 a blind doubling would produce.
        let plan = cfg.plan(1000, 5000);
        assert_eq!(plan.n_batches, 10);
        let replanned = plan.replan_for_total(2000, 0.05);
        assert_eq!(replanned.n_batches, 21);
        assert_eq!(replanned.estimated_total, 2000);
        assert_eq!(replanned.effective_alpha, 0.05);
        assert_eq!(replanned.buffer_items, plan.buffer_items);
    }
}

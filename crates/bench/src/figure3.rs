//! **Figure 3** (scenario S2) — response time vs ε for Hybrid-DBSCAN and
//! the reference implementation, per dataset.
//!
//! Paper shape: Hybrid beats the reference across the whole sweep (even at
//! small ε / small |D|, which is notable for a GPU method); hybrid time
//! splits roughly evenly between table construction ("GPU time") and
//! DBSCAN; all times grow with ε.

use crate::common::{fmt_secs, DatasetCache, Options, TextTable};
use gpu_sim::Device;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan_core::reference::ReferenceDbscan;
use hybrid_dbscan_core::scenario;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: String,
    pub eps: f64,
    pub minpts: usize,
    pub ref_secs: f64,
    pub hybrid_total_secs: f64,
    pub hybrid_dbscan_secs: f64,
    pub hybrid_gpu_secs: f64,
    pub clusters_ref: u32,
    pub clusters_hybrid: u32,
}

/// Run the S2 sweep for the selected datasets.
pub fn run(opts: &Options) -> Vec<Row> {
    let device = Device::k20c();
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    let mut cache = DatasetCache::new(opts.scale);
    // The paper plots SW1, SW4, SDSS1, SDSS3 (SDSS2 omitted as similar).
    let selected = opts.select(&["SW1", "SW4", "SDSS1", "SDSS3"]);
    let mut rows = Vec::new();

    for name in &selected {
        let data = cache.get(name).points.clone();
        for v in scenario::s2_variants(name) {
            let r = ReferenceDbscan::new(v.eps, v.minpts).run(&data);
            let h = hybrid
                .run(&data, v.eps, v.minpts)
                .expect("hybrid run failed");
            assert_eq!(
                h.clustering.labels(),
                r.clustering.labels(),
                "{name} eps={} minpts={}: hybrid != reference",
                v.eps,
                v.minpts
            );
            rows.push(Row {
                dataset: name.clone(),
                eps: v.eps,
                minpts: v.minpts,
                ref_secs: r.total_time.as_secs(),
                hybrid_total_secs: h.timings.total.as_secs(),
                hybrid_dbscan_secs: h.timings.dbscan.as_secs(),
                hybrid_gpu_secs: h.timings.gpu_phase.as_secs(),
                clusters_ref: r.clustering.num_clusters(),
                clusters_hybrid: h.clustering.num_clusters(),
            });
            let b = &h.gpu.breakdown;
            eprintln!(
                "# {name} eps={:.2}: ref {} | hybrid {} (gpu {} + dbscan {}), {} clusters [up {} est {} pin {} batches({}) {} = k {} s {} d2h {} ing {}]",
                v.eps,
                fmt_secs(rows.last().unwrap().ref_secs),
                fmt_secs(rows.last().unwrap().hybrid_total_secs),
                fmt_secs(rows.last().unwrap().hybrid_gpu_secs),
                fmt_secs(rows.last().unwrap().hybrid_dbscan_secs),
                rows.last().unwrap().clusters_hybrid,
                fmt_secs(b.upload_time.as_secs()),
                fmt_secs(b.estimation_time.as_secs()),
                fmt_secs(b.pinned_alloc_time.as_secs()),
                h.gpu.n_batches,
                fmt_secs(b.batch_schedule_time.as_secs()),
                fmt_secs(b.kernel_time.as_secs()),
                fmt_secs(b.sort_time.as_secs()),
                fmt_secs(b.d2h_time.as_secs()),
                fmt_secs(b.ingest_time.as_secs()),
            );
        }
    }
    rows
}

/// Print per-dataset series (the four panels of Figure 3).
pub fn print(opts: &Options) {
    println!("== Figure 3 (S2): response time vs eps — reference vs Hybrid-DBSCAN ==");
    println!("Paper shape: hybrid total < reference at every eps; GPU-time and");
    println!("DBSCAN-time curves are roughly equal; hybrid clusterings identical.\n");
    let rows = run(opts);
    opts.write_csv(
        "figure3",
        &[
            "dataset",
            "eps",
            "ref_secs",
            "hybrid_total_secs",
            "hybrid_dbscan_secs",
            "hybrid_gpu_secs",
            "clusters",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.eps.to_string(),
                    r.ref_secs.to_string(),
                    r.hybrid_total_secs.to_string(),
                    r.hybrid_dbscan_secs.to_string(),
                    r.hybrid_gpu_secs.to_string(),
                    r.clusters_hybrid.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let mut current = String::new();
    let mut table: Option<TextTable> = None;
    for r in &rows {
        if r.dataset != current {
            if let Some(t) = table.take() {
                t.print();
                println!();
            }
            current = r.dataset.clone();
            println!("--- {} (minpts = 4) ---", current);
            table = Some(TextTable::new(&[
                "eps",
                "Ref",
                "Hybrid total",
                "Hybrid DBSCAN",
                "Hybrid GPU",
                "speedup",
                "clusters",
            ]));
        }
        table.as_mut().unwrap().row(vec![
            format!("{:.2}", r.eps),
            fmt_secs(r.ref_secs),
            fmt_secs(r.hybrid_total_secs),
            fmt_secs(r.hybrid_dbscan_secs),
            fmt_secs(r.hybrid_gpu_secs),
            format!("{:.2}x", r.ref_secs / r.hybrid_total_secs.max(1e-12)),
            r.clusters_hybrid.to_string(),
        ]);
    }
    if let Some(t) = table {
        t.print();
    }
}

//! `repro profile` — run the benchmark-suite workloads under the pool
//! profiler and emit a scaling diagnosis (`PROFILE.json`).
//!
//! For every suite workload × thread count in `{1, 2, 4, 8}` the command
//! runs the full pipeline twice: once unprofiled (the determinism
//! reference) and once under [`rayon::profile::profile_pool`] with an
//! [`obs::Recorder`] attached. The profiled run yields per-stage serial
//! fractions, Amdahl ceilings, per-worker utilization, dispatch hotspots
//! and the device critical path ([`obs::analyze`]); the unprofiled run
//! pins the policy that instrumentation must not move modeled time bits.
//! Any bit mismatch — or a `PROFILE.json` that fails its own round-trip
//! validation — exits nonzero, which is what CI hangs its smoke test on.

use crate::common::{baseline_refresh, DatasetCache, Options, TextTable};
use crate::regress::{kernel_name, Workload, SUITE};
use gpu_sim::Device;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use obs::analyze::{analyze, ProfileDoc, ProfileRun, SCHEMA, SCHEMA_VERSION};
use obs::ledger::{GateOutcome, LedgerEntry, LedgerRecord, StagePoint, RECORD_VERSION};
use obs::provenance::Provenance;
use obs::Recorder;
use std::sync::Arc;

/// Thread counts each workload is profiled at (capped sweeps would hide
/// the scaling story the diagnosis exists to tell).
pub const THREAD_COUNTS: &[usize] = &[1, 2, 4, 8];

/// Profile one workload at one pool width. Returns the run record plus
/// the recorder (so the caller can export `--trace`/`--metrics` for the
/// final run).
fn profile_workload(
    device: &Device,
    cache: &mut DatasetCache,
    w: &Workload,
    threads: usize,
) -> (ProfileRun, Arc<Recorder>) {
    let points = cache.get(w.dataset).points.clone();
    let cfg = HybridConfig {
        kernel: w.kernel,
        ..HybridConfig::default()
    };
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool view");

    // Unprofiled reference: the modeled-bits sentinel the profiled run
    // must reproduce exactly.
    let reference = HybridDbscan::new(device, cfg);
    let bits_off = pool.install(|| {
        let result = reference
            .run(&points, w.eps, w.minpts)
            .expect("reference run");
        result.gpu.modeled_time.as_secs().to_bits()
    });

    // Profiled run: recorder spans + pool session.
    let rec = Arc::new(Recorder::new());
    let hybrid = HybridDbscan::new(device, cfg).with_recorder(rec.clone());
    let session = rayon::profile::profile_pool();
    let result = pool.install(|| hybrid.run(&points, w.eps, w.minpts).expect("profiled run"));
    let pool_profile = session.finish();
    rec.record_pool_profile(&pool_profile);

    let bits_on = result.gpu.modeled_time.as_secs().to_bits();
    let run = ProfileRun {
        workload: w.id.to_string(),
        scenario: w.scenario.to_string(),
        kernel: kernel_name(w.kernel).to_string(),
        threads: threads as u64,
        modeled_ms: result.gpu.modeled_time.as_millis(),
        modeled_time_bits: bits_on,
        bits_match_unprofiled: bits_on == bits_off,
        ..ProfileRun::from_analysis(&analyze(&rec))
    };
    (run, rec)
}

/// Stage lookup helper for the summary table.
fn stage<'a>(run: &'a ProfileRun, name: &str) -> Option<&'a obs::analyze::StageAnalysis> {
    run.stages.iter().find(|s| s.name == name)
}

/// Run the profiling sweep, print the diagnosis, write `PROFILE.json`.
/// Returns the process exit code: nonzero when profiling perturbed
/// modeled time bits or the emitted document failed validation.
pub fn print(opts: &Options) -> i32 {
    println!("== Scaling profile: suite workloads under the pool profiler ==");
    println!(
        "Each workload runs unprofiled then profiled at {:?} threads;",
        THREAD_COUNTS
    );
    println!("modeled time bits must be identical in both runs (determinism policy).\n");

    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let mut doc = ProfileDoc {
        version: SCHEMA_VERSION,
        scale: opts.scale,
        host_threads: rayon::current_num_threads() as u64,
        provenance: Some(Provenance::collect(
            SCHEMA,
            SCHEMA_VERSION,
            SUITE.iter().map(|w| w.id.to_string()).collect(),
        )),
        runs: Vec::new(),
    };
    let mut last_rec: Option<Arc<Recorder>> = None;
    for w in SUITE {
        for &threads in THREAD_COUNTS {
            let (run, rec) = profile_workload(&device, &mut cache, w, threads);
            doc.runs.push(run);
            last_rec = Some(rec);
        }
    }

    let mut t = TextTable::new(&[
        "workload",
        "threads",
        "build wall",
        "serial frac",
        "Amdahl max",
        "mean util",
        "steals",
        "bits ok",
    ]);
    for run in &doc.runs {
        let build = stage(run, "build_table");
        let mean_util = if run.workers.is_empty() {
            0.0
        } else {
            run.workers.iter().map(|w| w.utilization_pct).sum::<f64>() / run.workers.len() as f64
        };
        t.row(vec![
            run.workload.clone(),
            run.threads.to_string(),
            build.map_or("-".into(), |s| format!("{:.1} ms", s.wall_ms)),
            build.map_or("-".into(), |s| format!("{:.2}", s.serial_fraction)),
            build.map_or("-".into(), |s| format!("{:.1}x", s.amdahl_max_speedup)),
            format!("{mean_util:.0}%"),
            run.workers
                .iter()
                .map(|w| w.steals)
                .sum::<u64>()
                .to_string(),
            if run.bits_match_unprofiled {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.print();

    // Full diagnosis for the S1 workload at the widest pool — the run a
    // scaling investigation reads first.
    if let Some(run) = doc
        .runs
        .iter()
        .rev()
        .find(|r| r.scenario == "S1" && r.threads == *THREAD_COUNTS.last().unwrap() as u64)
    {
        println!(
            "\n--- diagnosis: {} at {} threads ---",
            run.workload, run.threads
        );
        for line in &run.diagnosis {
            println!("  {line}");
        }
        if !run.workers.is_empty() {
            let mut wt = TextTable::new(&["worker", "busy", "park", "queue-wait", "util", "tasks"]);
            for wu in &run.workers {
                wt.row(vec![
                    wu.name.clone(),
                    format!("{:.1} ms", wu.busy_ms),
                    format!("{:.1} ms", wu.park_ms),
                    format!("{:.2} ms", wu.queue_wait_ms),
                    format!("{:.0}%", wu.utilization_pct),
                    format!("{} ({} stolen)", wu.tasks, wu.steals),
                ]);
            }
            wt.print();
        }
        if !run.hotspots.is_empty() {
            println!("  top hotspots:");
            for h in run.hotspots.iter().take(4) {
                println!(
                    "    {:<12} {:>9.1} ms busy  {:>7.2} ms queue-wait  {} tasks",
                    h.label, h.busy_ms, h.queue_wait_ms, h.tasks
                );
            }
        }
    }

    let mismatches = doc.runs.iter().filter(|r| !r.bits_match_unprofiled).count();
    if mismatches > 0 {
        eprintln!("# profile: DETERMINISM VIOLATION — {mismatches} run(s) changed modeled bits");
    }

    // Self-validation: the document must reparse through the shared JSON
    // layer and re-emit byte-identically, like BENCH_suite.json.
    let json = doc.to_json();
    let valid = match ProfileDoc::parse(&json) {
        Ok(parsed) if parsed.to_json() == json => true,
        Ok(_) => {
            eprintln!("# profile: PROFILE.json is not a round-trip fixed point");
            false
        }
        Err(e) => {
            eprintln!("# profile: emitted PROFILE.json failed to parse: {e}");
            false
        }
    };

    // Ledger first, artifact second: PROFILE.json is clobbered by every
    // run, so the per-run history must be appended before the overwrite.
    // The determinism check is always enforced (strict), never advisory.
    let gate = GateOutcome {
        strict: true,
        regressions: mismatches as u64 + u64::from(!valid),
        advisories: 0,
        passed: mismatches == 0 && valid,
    };
    opts.append_ledger(&ledger_record(&doc, gate, opts));

    let path = opts
        .csv_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."))
        .join("PROFILE.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("# profile: wrote {}", path.display()),
        Err(e) => eprintln!("# profile: cannot write {}: {e}", path.display()),
    }
    if let Some(rec) = &last_rec {
        opts.write_observability(rec);
    }

    if mismatches > 0 || !valid {
        1
    } else {
        0
    }
}

/// Fold the profiling sweep into one run-ledger record: one entry per
/// workload × thread count, profiled stage wall times + the modeled
/// stage, attribution metrics, and the (always-strict) determinism gate.
fn ledger_record(doc: &ProfileDoc, gate: GateOutcome, opts: &Options) -> LedgerRecord {
    let entries = doc
        .runs
        .iter()
        .map(|run| {
            let mut e = LedgerEntry {
                workload: format!("profile/{}/t{}", run.workload, run.threads),
                modeled_time_bits: Some(run.modeled_time_bits),
                ..LedgerEntry::default()
            };
            for s in &run.stages {
                e.stages.insert(
                    s.name.clone(),
                    StagePoint {
                        median_ms: s.wall_ms,
                        mad_ms: 0.0,
                        wall: true,
                    },
                );
            }
            e.stages.insert(
                "modeled".into(),
                StagePoint {
                    median_ms: run.modeled_ms,
                    mad_ms: 0.0,
                    wall: false,
                },
            );
            let m = &mut e.metrics;
            m.insert("threads".into(), run.threads as f64);
            if !run.workers.is_empty() {
                m.insert(
                    "worker_util_pct".into(),
                    run.workers.iter().map(|w| w.utilization_pct).sum::<f64>()
                        / run.workers.len() as f64,
                );
                m.insert(
                    "pool_steals".into(),
                    run.workers.iter().map(|w| w.steals).sum::<u64>() as f64,
                );
            }
            if let Some(b) = run.stages.iter().find(|s| s.name == "build_table") {
                m.insert("serial_fraction_build".into(), b.serial_fraction);
            }
            m.insert(
                "bits_match_unprofiled".into(),
                f64::from(u8::from(run.bits_match_unprofiled)),
            );
            e
        })
        .collect();
    LedgerRecord {
        version: RECORD_VERSION,
        command: "profile".into(),
        scale: opts.scale,
        baseline_refresh: baseline_refresh(),
        provenance: doc
            .provenance
            .clone()
            .unwrap_or_else(|| Provenance::collect(SCHEMA, doc.version, Vec::new())),
        gate,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_run_emits_stages_and_matches_unprofiled_bits() {
        let mut cache = DatasetCache::new(0.002);
        let device = Device::k20c();
        let (run, _rec) = profile_workload(&device, &mut cache, &SUITE[0], 2);
        assert!(run.bits_match_unprofiled, "{run:?}");
        let names: Vec<&str> = run.stages.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"build_table"), "{names:?}");
        assert!(names.contains(&"dbscan"), "{names:?}");
        for s in &run.stages {
            assert!((0.0..=1.0).contains(&s.serial_fraction), "{s:?}");
            assert!(s.amdahl_max_speedup >= 1.0, "{s:?}");
            assert!(!s.dominant.is_empty());
        }
        assert!(!run.diagnosis.is_empty());
        // The device schedule always yields a critical path.
        assert!(!run.critical_path.is_empty());
    }
}

//! **Continuous benchmark suite with regression gating** — `repro bench`.
//!
//! Runs a fixed suite of S1/S2/S3 workloads (kernel variant × dataset ×
//! ε), each with warmup + N timed trials, and summarizes every stage
//! (`build_table`, `dbscan`, `disjoint_set`, and the modeled device time)
//! as median/MAD/IQR ([`crate::stats`]). Per-kernel device counters
//! (occupancy, global-memory GB/s, atomics) come from
//! [`gpu_sim::profiler::KernelProfile`] and are threaded through
//! [`obs::Metrics`] via [`obs::bench::record_kernel_profile`]. Results are
//! written to `BENCH_suite.json` in the [`obs::bench::BenchDoc`] schema.
//!
//! `repro bench --compare <baseline.json>` reloads a previous document
//! (the store lives under `results/baselines/`) and flags any stage whose
//! median moved beyond a noise threshold derived from the baseline's MAD
//! ([`noise_threshold`]). Gating is two-tier: the deterministic modeled
//! stage fails the run under `BENCH_STRICT=1` (mirroring the differential
//! sweep's `DIFF_STRICT` gate), while wall-clock stages are reported as
//! advisory drift — on a shared machine they can move 2× with load, so
//! they inform but never gate. See DESIGN.md, "Benchmark methodology &
//! regression policy".

use crate::common::{baseline_refresh, DatasetCache, Options, TextTable};
use crate::stats;
use gpu_sim::Device;
use hybrid_dbscan_core::disjoint_set::dbscan_disjoint_set;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan, KernelChoice};
use obs::bench::{BenchDoc, StageStats, WorkloadResult, SCHEMA_VERSION};
use obs::ledger::{GateOutcome, LedgerEntry, LedgerRecord, StagePoint, RECORD_VERSION};
use obs::provenance::Provenance;
use obs::Recorder;
use std::sync::Arc;
use std::time::Instant;

/// One suite entry. The id is the compare key and must stay stable across
/// PRs; retire ids rather than repurposing them.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    pub id: &'static str,
    pub scenario: &'static str,
    pub dataset: &'static str,
    pub eps: f64,
    pub minpts: usize,
    pub kernel: KernelChoice,
}

/// The fixed suite: the Table II kernel pairing (S1), the low end of the
/// SW4 multi-clustering sweep (S2), and a table-reuse row (S3). Chosen to
/// cover both kernels, both dataset families (uniform SDSS / skewed SW),
/// and a high-minpts clustering, while staying a few minutes at the
/// default `--scale`.
pub const SUITE: &[Workload] = &[
    Workload {
        id: "s1/sw1-eps0.2/global",
        scenario: "S1",
        dataset: "SW1",
        eps: 0.2,
        minpts: 4,
        kernel: KernelChoice::Global,
    },
    Workload {
        id: "s1/sw1-eps0.2/shared",
        scenario: "S1",
        dataset: "SW1",
        eps: 0.2,
        minpts: 4,
        kernel: KernelChoice::Shared,
    },
    Workload {
        id: "s2/sw4-eps0.1/global",
        scenario: "S2",
        dataset: "SW4",
        eps: 0.1,
        minpts: 4,
        kernel: KernelChoice::Global,
    },
    Workload {
        id: "s3/sdss1-eps0.2-minpts40/global",
        scenario: "S3",
        dataset: "SDSS1",
        eps: 0.2,
        minpts: 40,
        kernel: KernelChoice::Global,
    },
];

/// Stable JSON/display name of a kernel variant (shared with `repro
/// profile`, whose documents must use the same ids as the bench suite).
pub fn kernel_name(k: KernelChoice) -> &'static str {
    match k {
        KernelChoice::Global => "global",
        KernelChoice::Shared => "shared",
    }
}

/// Run one workload: `warmup` discarded runs, then `trials` timed runs.
fn run_workload(
    device: &Device,
    cache: &mut DatasetCache,
    w: &Workload,
    warmup: usize,
    trials: usize,
) -> WorkloadResult {
    let points = cache.get(w.dataset).points.clone();
    let cfg = HybridConfig {
        kernel: w.kernel,
        ..HybridConfig::default()
    };
    let rec = Arc::new(Recorder::new());
    let hybrid = HybridDbscan::new(device, cfg).with_recorder(rec.clone());

    let trials = trials.max(1);
    let mut build_ms = Vec::with_capacity(trials);
    let mut dbscan_ms = Vec::with_capacity(trials);
    let mut disjoint_ms = Vec::with_capacity(trials);
    let mut modeled_ms = Vec::with_capacity(trials);
    let mut out = WorkloadResult {
        id: w.id.to_string(),
        scenario: w.scenario.to_string(),
        dataset: w.dataset.to_string(),
        kernel: kernel_name(w.kernel).to_string(),
        eps: w.eps,
        minpts: w.minpts as u64,
        points: points.len() as u64,
        ..WorkloadResult::default()
    };

    for i in 0..warmup + trials {
        let t0 = Instant::now();
        let handle = hybrid.build_table(&points, w.eps).expect("build_table");
        let build = t0.elapsed().as_secs_f64() * 1e3;

        let (clustering, dbscan_time) = HybridDbscan::cluster_with_table(&handle, w.minpts);

        let t1 = Instant::now();
        let ds = dbscan_disjoint_set(&handle.table, w.minpts);
        let disjoint = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            clustering.num_clusters(),
            ds.num_clusters(),
            "{}: sequential and disjoint-set DBSCAN disagree",
            w.id
        );

        if i < warmup {
            continue;
        }
        build_ms.push(build);
        dbscan_ms.push(dbscan_time.as_millis());
        disjoint_ms.push(disjoint);
        modeled_ms.push(handle.gpu.modeled_time.as_millis());
        // Exact bit pattern of the modeled seconds: the determinism
        // witness the ledger/trend layer tracks across runs.
        out.modeled_time_bits = Some(handle.gpu.modeled_time.as_secs().to_bits());

        // Device counters and scalar telemetry from the last trial (they
        // are modeled, hence identical across trials).
        obs::bench::record_kernel_profile(
            rec.metrics(),
            kernel_name(w.kernel),
            &handle.gpu.kernel_profile,
        );
        out.counters
            .insert("kernels".into(), handle.gpu.kernel_profile.stats());
        out.metrics
            .insert("clusters".into(), clustering.num_clusters() as f64);
        out.metrics
            .insert("result_pairs".into(), handle.gpu.result_pairs as f64);
        out.metrics
            .insert("batches".into(), handle.gpu.n_batches as f64);
        out.metrics.insert("e_b".into(), handle.gpu.e_b as f64);
    }

    // Per-batch distribution percentiles from the recorder's histogram
    // (identical per trial — the batch split is modeled, not wall-timed).
    let snapshot = rec.metrics().snapshot();
    if let Some(h) = snapshot.histograms.get("batch.pairs") {
        out.metrics
            .insert("batch_pairs_p50".into(), h.percentile(0.5));
        out.metrics
            .insert("batch_pairs_p95".into(), h.percentile(0.95));
    }

    out.stages
        .insert("build_table".into(), stats::summarize(&build_ms));
    out.stages
        .insert("dbscan".into(), stats::summarize(&dbscan_ms));
    out.stages
        .insert("disjoint_set".into(), stats::summarize(&disjoint_ms));
    out.stages
        .insert("modeled".into(), stats::summarize(&modeled_ms));
    out
}

/// Run the full suite: the S1/S2/S3 pipeline workloads plus the
/// hot-path micro workload ([`crate::micro`]).
pub fn run_suite(opts: &Options) -> BenchDoc {
    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let mut workloads: Vec<WorkloadResult> = SUITE
        .iter()
        .map(|w| run_workload(&device, &mut cache, w, opts.warmup, opts.trials))
        .collect();
    workloads.push(crate::micro::run_micro(
        &device,
        &mut cache,
        opts.warmup,
        opts.trials,
    ));
    // Shard-scaling rows at 10× the suite scale (ISSUE 8): unsharded
    // baseline, 2-shard concurrent speedup, 4-shard out-of-core under a
    // device limit the unsharded build exceeds.
    workloads.extend(crate::shard::run_shard_workloads(opts));
    // Backend-ablation rows (ISSUE 10): every ablation workload under
    // grid, tree, and auto ε-search, fingerprint-checked cross-backend.
    workloads.extend(crate::backend_ablation::run_backend_workloads(opts));
    let workload_ids = workloads.iter().map(|w| w.id.clone()).collect();
    BenchDoc {
        version: SCHEMA_VERSION,
        scale: opts.scale,
        trials: opts.trials.max(1) as u64,
        warmup: opts.warmup as u64,
        host_threads: rayon::current_num_threads() as u64,
        provenance: Some(Provenance::collect(
            obs::bench::SCHEMA,
            SCHEMA_VERSION,
            workload_ids,
        )),
        workloads,
    }
}

// ---------------------------------------------------------------------
// Regression gating
// ---------------------------------------------------------------------

/// Stages measured in host wall-clock time. Their medians move with
/// machine load (a shared CI box can drift 2× between back-to-back
/// runs), so their deltas are reported but never gate — only the
/// deterministic modeled stage does, the same reason rustc-perf gates on
/// instruction counts rather than wall time.
pub fn is_wall_stage(stage: &str) -> bool {
    stage != "modeled"
}

/// Per-stage noise threshold (milliseconds) derived from the baseline.
///
/// Wall-clock stages: a delta must exceed `max(0.25 ms, 12% of the
/// baseline median, 4 × baseline MAD)`. The MAD term adapts to each
/// stage's measured run-to-run noise; the relative and absolute floors
/// keep single-trial baselines (MAD = 0) and microsecond-scale stages
/// from flagging jitter.
///
/// The modeled stage is deterministic (bitwise identical across runs and
/// thread counts by the determinism policy), so its threshold is only
/// wide enough to absorb the writer's 3-decimal formatting:
/// `max(0.01 ms, 0.1% of the baseline median, 4 × MAD)`.
pub fn noise_threshold(stage: &str, base: &StageStats) -> f64 {
    if is_wall_stage(stage) {
        (0.25_f64).max(0.12 * base.median_ms).max(4.0 * base.mad_ms)
    } else {
        (0.01_f64)
            .max(0.001 * base.median_ms)
            .max(4.0 * base.mad_ms)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Regression,
    Improvement,
}

/// One flagged stage comparison. `gating` is true for deterministic
/// stages (regressions there fail under `BENCH_STRICT=1`); wall-clock
/// stage deltas are advisory drift.
#[derive(Debug, Clone)]
pub struct StageDelta {
    pub workload: String,
    pub stage: String,
    pub base_ms: f64,
    pub cur_ms: f64,
    pub threshold_ms: f64,
    pub verdict: Verdict,
    pub gating: bool,
}

/// Outcome of comparing a run against a baseline.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Stage medians that moved beyond the noise threshold.
    pub deltas: Vec<StageDelta>,
    /// Stage comparisons actually performed.
    pub checked: usize,
    /// Workloads present in both documents but not comparable (point
    /// counts differ — e.g. the baseline was taken at another `--scale`).
    pub incomparable: Vec<String>,
    /// Baseline workloads absent from the current run.
    pub missing: Vec<String>,
}

impl CompareReport {
    /// Gating regressions: deterministic stages that got slower. These
    /// fail the run under `BENCH_STRICT=1`.
    pub fn regressions(&self) -> Vec<&StageDelta> {
        self.deltas
            .iter()
            .filter(|d| d.gating && d.verdict == Verdict::Regression)
            .collect()
    }

    /// Advisory wall-clock drift (either direction) beyond the noise
    /// threshold — reported, never fatal.
    pub fn wall_drift(&self) -> Vec<&StageDelta> {
        self.deltas.iter().filter(|d| !d.gating).collect()
    }
}

/// Compare `current` against `baseline`, stage by stage.
pub fn compare(baseline: &BenchDoc, current: &BenchDoc) -> CompareReport {
    let mut report = CompareReport::default();
    for base_wl in &baseline.workloads {
        let Some(cur_wl) = current.workload(&base_wl.id) else {
            report.missing.push(base_wl.id.clone());
            continue;
        };
        if cur_wl.points != base_wl.points {
            report.incomparable.push(format!(
                "{}: {} points vs baseline {} (different --scale?)",
                base_wl.id, cur_wl.points, base_wl.points
            ));
            continue;
        }
        for (stage, base) in &base_wl.stages {
            let Some(cur) = cur_wl.stages.get(stage) else {
                report.incomparable.push(format!(
                    "{}: stage '{stage}' missing from current run",
                    base_wl.id
                ));
                continue;
            };
            report.checked += 1;
            let threshold = noise_threshold(stage, base);
            let delta = cur.median_ms - base.median_ms;
            let verdict = if delta > threshold {
                Verdict::Regression
            } else if -delta > threshold {
                Verdict::Improvement
            } else {
                continue;
            };
            report.deltas.push(StageDelta {
                workload: base_wl.id.clone(),
                stage: stage.clone(),
                base_ms: base.median_ms,
                cur_ms: cur.median_ms,
                threshold_ms: threshold,
                verdict,
                gating: !is_wall_stage(stage),
            });
        }
    }
    report
}

/// Fold a suite run into one run-ledger record (per-workload stage
/// medians/MAD, modeled bits, scalar metrics, and the gate outcome).
pub fn ledger_record(doc: &BenchDoc, gate: GateOutcome) -> LedgerRecord {
    let entries = doc
        .workloads
        .iter()
        .map(|wl| {
            let mut e = LedgerEntry {
                workload: wl.id.clone(),
                modeled_time_bits: wl.modeled_time_bits,
                ..LedgerEntry::default()
            };
            for (stage, s) in &wl.stages {
                e.stages.insert(
                    stage.clone(),
                    StagePoint {
                        median_ms: s.median_ms,
                        mad_ms: s.mad_ms,
                        wall: is_wall_stage(stage),
                    },
                );
            }
            e.metrics
                .extend(wl.metrics.iter().map(|(k, v)| (k.clone(), *v)));
            e
        })
        .collect();
    LedgerRecord {
        version: RECORD_VERSION,
        command: "bench".into(),
        scale: doc.scale,
        baseline_refresh: baseline_refresh(),
        provenance: doc
            .provenance
            .clone()
            .unwrap_or_else(|| Provenance::collect(obs::bench::SCHEMA, doc.version, Vec::new())),
        gate,
        entries,
    }
}

// ---------------------------------------------------------------------
// CLI entry
// ---------------------------------------------------------------------

fn fmt_ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.2} s", v / 1e3)
    } else {
        format!("{v:.2} ms")
    }
}

fn print_doc(doc: &BenchDoc) {
    let mut t = TextTable::new(&[
        "Workload",
        "points",
        "build_table",
        "±MAD",
        "DBSCAN",
        "disjoint-set",
        "modeled GPU",
        "occ",
        "GB/s",
        "atomics",
    ]);
    for wl in doc
        .workloads
        .iter()
        .filter(|wl| wl.scenario != "micro" && wl.scenario != "backend")
    {
        let stage = |name: &str| wl.stages.get(name).cloned().unwrap_or_default();
        let counters = wl.counters.get("kernels").copied().unwrap_or_default();
        t.row(vec![
            wl.id.clone(),
            wl.points.to_string(),
            fmt_ms(stage("build_table").median_ms),
            fmt_ms(stage("build_table").mad_ms),
            fmt_ms(stage("dbscan").median_ms),
            fmt_ms(stage("disjoint_set").median_ms),
            fmt_ms(stage("modeled").median_ms),
            format!("{:.2}", counters.mean_occupancy),
            format!("{:.1}", counters.gmem_gbps),
            counters.atomics.to_string(),
        ]);
    }
    t.print();

    let backend: Vec<_> = doc
        .workloads
        .iter()
        .filter(|wl| wl.scenario == "backend")
        .collect();
    if !backend.is_empty() {
        println!("\n-- Backend ablation (modeled device time; identical tables checked) --");
        let mut t = TextTable::new(&["Workload", "points", "ran", "modeled", "cv", "occ"]);
        for wl in backend {
            t.row(vec![
                wl.id.clone(),
                wl.points.to_string(),
                wl.kernel.clone(),
                fmt_ms(
                    wl.stages
                        .get("modeled")
                        .map(|s| s.median_ms)
                        .unwrap_or_default(),
                ),
                format!(
                    "{:.2}",
                    wl.metrics.get("cell_cv").copied().unwrap_or_default()
                ),
                format!(
                    "{:.1}",
                    wl.metrics
                        .get("mean_occupancy")
                        .copied()
                        .unwrap_or_default()
                ),
            ]);
        }
        t.print();
    }

    let micro: Vec<_> = doc
        .workloads
        .iter()
        .filter(|wl| wl.scenario == "micro")
        .collect();
    if !micro.is_empty() {
        println!("\n-- Micro stages (host wall-clock, advisory) --");
        let mut t = TextTable::new(&["Workload", "stage", "median", "±MAD"]);
        for wl in micro {
            for (stage, s) in &wl.stages {
                t.row(vec![
                    wl.id.clone(),
                    stage.clone(),
                    fmt_ms(s.median_ms),
                    fmt_ms(s.mad_ms),
                ]);
            }
        }
        t.print();
    }
}

fn print_compare(report: &CompareReport, baseline_path: &std::path::Path) {
    println!(
        "\n-- Compare vs {} ({} stage comparisons) --",
        baseline_path.display(),
        report.checked
    );
    for note in report.missing.iter() {
        println!("  MISSING      {note} (workload not in current run)");
    }
    for note in report.incomparable.iter() {
        println!("  INCOMPARABLE {note}");
    }
    for d in &report.deltas {
        let tag = match (d.gating, d.verdict) {
            (true, Verdict::Regression) => "REGRESSION",
            (true, Verdict::Improvement) => "improvement",
            // Wall-clock stages drift with machine load; advisory only.
            (false, _) => "wall-drift",
        };
        println!(
            "  {tag:<12} {}/{}: {} -> {} (threshold {})",
            d.workload,
            d.stage,
            fmt_ms(d.base_ms),
            fmt_ms(d.cur_ms),
            fmt_ms(d.threshold_ms),
        );
    }
    if report.deltas.is_empty() {
        println!("  all stage medians within noise thresholds");
    }
    let n_reg = report.regressions().len();
    let n_gating = report.deltas.iter().filter(|d| d.gating).count();
    println!(
        "# {} regression(s), {} improvement(s), {} advisory wall-clock drift(s)",
        n_reg,
        n_gating - n_reg,
        report.wall_drift().len()
    );
}

/// Run the suite, write `BENCH_suite.json`, optionally compare against a
/// baseline. Returns the process exit code: nonzero only when
/// `BENCH_STRICT=1` and the comparison found regressions (or the baseline
/// could not be loaded).
pub fn print(opts: &Options) -> i32 {
    let strict = std::env::var("BENCH_STRICT")
        .map(|v| v == "1")
        .unwrap_or(false);
    println!("== Benchmark suite: S1/S2/S3 workloads, warmup + trials, device counters ==");
    println!(
        "{} workloads, warmup = {}, trials = {}; medians/MAD to BENCH_suite.json\n",
        SUITE.len(),
        opts.warmup,
        opts.trials.max(1)
    );

    let doc = run_suite(opts);
    print_doc(&doc);

    let text = doc.to_json();
    // Self-check: never ship a document the shared parser rejects.
    if let Err(e) = BenchDoc::parse(&text) {
        eprintln!("# bench: INTERNAL ERROR: emitted document does not parse: {e}");
        return 1;
    }
    let path = opts
        .csv_dir
        .clone()
        .unwrap_or_else(|| std::path::PathBuf::from("."))
        .join("BENCH_suite.json");
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &text) {
        Ok(()) => eprintln!("# bench: wrote {}", path.display()),
        Err(e) => eprintln!("# bench: cannot write {}: {e}", path.display()),
    }

    // Gate, then append the run (with its gate outcome) to the ledger —
    // the append happens on every path, comparison or not, so the ledger
    // is the complete run history.
    let mut gate = GateOutcome {
        strict,
        regressions: 0,
        advisories: 0,
        passed: true,
    };
    let mut exit = 0;
    if let Some(baseline_path) = &opts.compare {
        match std::fs::read_to_string(baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| BenchDoc::parse(&t))
        {
            Ok(baseline) => {
                let report = compare(&baseline, &doc);
                print_compare(&report, baseline_path);
                gate.regressions = report.regressions().len() as u64;
                gate.advisories = report.wall_drift().len() as u64;
                if !report.regressions().is_empty() {
                    if strict {
                        eprintln!("# bench: regressions found (BENCH_STRICT=1 — failing)");
                        gate.passed = false;
                        exit = 1;
                    } else {
                        eprintln!(
                            "# bench: regressions found (advisory; set BENCH_STRICT=1 to enforce)"
                        );
                    }
                }
            }
            Err(e) => {
                eprintln!(
                    "# bench: cannot load baseline {}: {e}",
                    baseline_path.display()
                );
                if strict {
                    gate.passed = false;
                    exit = 1;
                }
            }
        }
    }
    opts.append_ledger(&ledger_record(&doc, gate));
    exit
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-workload document with the given stage medians (the modeled
    /// stage is the gating one; build_table is wall-clock/advisory).
    fn doc_with(modeled_median: f64, build_median: f64, mad: f64) -> BenchDoc {
        let stage = |median: f64| StageStats {
            trials: 3,
            median_ms: median,
            mean_ms: median,
            mad_ms: mad,
            iqr_ms: 2.0 * mad,
            min_ms: median - mad,
            max_ms: median + mad,
        };
        let mut wl = WorkloadResult {
            id: "s1/test/global".into(),
            scenario: "S1".into(),
            dataset: "SW1".into(),
            kernel: "global".into(),
            eps: 0.2,
            minpts: 4,
            points: 1000,
            ..WorkloadResult::default()
        };
        wl.stages.insert("modeled".into(), stage(modeled_median));
        wl.stages.insert("build_table".into(), stage(build_median));
        BenchDoc {
            version: SCHEMA_VERSION,
            scale: 0.02,
            trials: 3,
            warmup: 1,
            host_threads: 4,
            provenance: None,
            workloads: vec![wl],
        }
    }

    #[test]
    fn synthetic_two_x_slowdown_is_flagged() {
        let base = doc_with(100.0, 100.0, 1.0);
        let slow = doc_with(200.0, 100.0, 1.0);
        let report = compare(&base, &slow);
        assert_eq!(report.checked, 2);
        let regs = report.regressions();
        assert_eq!(regs.len(), 1, "2x slowdown must be flagged: {report:?}");
        assert_eq!(regs[0].stage, "modeled");
        assert_eq!(regs[0].cur_ms, 200.0);
        assert!(regs[0].gating);
    }

    #[test]
    fn wall_clock_slowdown_is_advisory_drift_not_gating() {
        // The same 2x on a wall-clock stage is surfaced, but as drift:
        // machine load moves wall time, so it must never fail CI.
        let base = doc_with(100.0, 100.0, 1.0);
        let slow = doc_with(100.0, 200.0, 1.0);
        let report = compare(&base, &slow);
        assert!(report.regressions().is_empty(), "{report:?}");
        let drift = report.wall_drift();
        assert_eq!(drift.len(), 1);
        assert_eq!(drift[0].stage, "build_table");
        assert!(!drift[0].gating);
    }

    #[test]
    fn identical_docs_have_zero_regressions() {
        let base = doc_with(100.0, 100.0, 1.0);
        let report = compare(&base, &base.clone());
        assert_eq!(report.checked, 2);
        assert!(report.deltas.is_empty(), "{report:?}");
        assert!(report.incomparable.is_empty());
        assert!(report.missing.is_empty());
    }

    #[test]
    fn speedup_is_reported_as_improvement_not_regression() {
        let base = doc_with(100.0, 100.0, 1.0);
        let fast = doc_with(50.0, 100.0, 1.0);
        let report = compare(&base, &fast);
        assert!(report.regressions().is_empty());
        assert_eq!(report.deltas.len(), 1);
        assert_eq!(report.deltas[0].verdict, Verdict::Improvement);
        assert!(report.deltas[0].gating);
    }

    #[test]
    fn noise_threshold_tracks_mad_with_floors() {
        // Noisy wall baseline: the MAD term dominates.
        let noisy = StageStats {
            median_ms: 100.0,
            mad_ms: 10.0,
            ..StageStats::default()
        };
        assert_eq!(noise_threshold("build_table", &noisy), 40.0);
        // Quiet wall baseline: the relative floor dominates.
        let quiet = StageStats {
            median_ms: 100.0,
            mad_ms: 0.0,
            ..StageStats::default()
        };
        assert_eq!(noise_threshold("dbscan", &quiet), 12.0);
        // Microsecond-scale wall stage: the absolute floor dominates.
        let tiny = StageStats {
            median_ms: 0.01,
            mad_ms: 0.0,
            ..StageStats::default()
        };
        assert_eq!(noise_threshold("disjoint_set", &tiny), 0.25);
        // The deterministic modeled stage gets a much tighter band —
        // just wide enough for the writer's 3-decimal formatting.
        assert_eq!(noise_threshold("modeled", &quiet), 0.1);
        assert_eq!(noise_threshold("modeled", &tiny), 0.01);
        // A sub-threshold drift is not flagged.
        let base = doc_with(100.0, 100.0, 10.0);
        let drift = doc_with(100.0, 120.0, 10.0);
        assert!(compare(&base, &drift).deltas.is_empty());
    }

    #[test]
    fn scale_mismatch_is_incomparable_not_regression() {
        let base = doc_with(100.0, 100.0, 1.0);
        let mut other = doc_with(500.0, 500.0, 1.0);
        other.workloads[0].points = 2000;
        let report = compare(&base, &other);
        assert!(report.deltas.is_empty());
        assert_eq!(report.incomparable.len(), 1);
        assert!(report.incomparable[0].contains("s1/test/global"));
    }

    #[test]
    fn missing_workload_is_reported() {
        let base = doc_with(100.0, 100.0, 1.0);
        let empty = BenchDoc {
            workloads: Vec::new(),
            ..doc_with(1.0, 1.0, 0.0)
        };
        let report = compare(&base, &empty);
        assert_eq!(report.missing, vec!["s1/test/global".to_string()]);
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn ledger_record_carries_stages_bits_and_gate() {
        let mut doc = doc_with(100.0, 250.0, 1.0);
        doc.workloads[0].modeled_time_bits = Some(0xdead_beef_dead_beef);
        let gate = GateOutcome {
            strict: true,
            regressions: 1,
            advisories: 2,
            passed: false,
        };
        let rec = ledger_record(&doc, gate);
        assert_eq!(rec.command, "bench");
        assert!(!rec.gate.passed);
        assert_eq!(rec.gate.regressions, 1);
        let e = &rec.entries[0];
        assert_eq!(e.modeled_time_bits, Some(0xdead_beef_dead_beef));
        assert!(!e.stages["modeled"].wall, "modeled gates, never wall");
        assert!(e.stages["build_table"].wall);
        assert_eq!(e.stages["build_table"].median_ms, 250.0);
        let line = rec.to_json();
        let back = LedgerRecord::parse(&line).expect("record parses");
        assert_eq!(back.to_json(), line, "ledger round trip is exact");
    }

    #[test]
    fn suite_runs_round_trips_and_self_compares_clean() {
        // The acceptance criterion, in miniature: a real (tiny) suite run
        // emits a document the shared parser accepts, the parse is exact
        // (round-trip fixed point), and comparing the run against itself
        // reports zero regressions.
        let opts = Options {
            scale: 0.002,
            trials: 1,
            warmup: 0,
            ..Options::default()
        };
        let doc = run_suite(&opts);
        // The suite workloads plus the hot-path micro workload, the three
        // shard-scaling rows, and the backend ablation (3 backends per
        // ablation workload).
        assert_eq!(
            doc.workloads.len(),
            SUITE.len() + 1 + 3 + 3 * crate::backend_ablation::ABLATION.len()
        );
        let text = doc.to_json();
        let parsed = BenchDoc::parse(&text).expect("suite output must parse");
        assert_eq!(parsed.to_json(), text, "round-trip must be exact");
        for wl in &doc.workloads {
            if wl.scenario == "micro" {
                for stage in crate::micro::MICRO_STAGES {
                    assert!(wl.stages.contains_key(*stage), "{}: {stage}", wl.id);
                }
                continue;
            }
            if wl.scenario == "shard" || wl.scenario == "backend" {
                for stage in ["build_table", "modeled"] {
                    assert!(wl.stages.contains_key(stage), "{}: {stage}", wl.id);
                }
                continue;
            }
            for stage in ["build_table", "dbscan", "disjoint_set", "modeled"] {
                let s = wl
                    .stages
                    .get(stage)
                    .unwrap_or_else(|| panic!("{}: missing stage {stage}", wl.id));
                assert_eq!(s.trials, 1);
                assert!(s.median_ms >= 0.0);
            }
            let k = wl.counters.get("kernels").expect("kernel counters");
            assert!(k.launches > 0);
            assert!(k.mean_occupancy > 0.0);
            assert!(wl.metrics["result_pairs"] > 0.0);
        }
        let report = compare(&parsed, &doc);
        assert!(report.checked >= 4 * SUITE.len() + crate::micro::MICRO_STAGES.len());
        assert!(report.regressions().is_empty(), "{report:?}");
        assert!(report.incomparable.is_empty());
    }
}

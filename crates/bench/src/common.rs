//! Shared infrastructure for the experiment harness: dataset
//! materialization, option parsing, and table formatting.

use datasets::{spec, Dataset};
use obs::ledger::{Ledger, LedgerRecord};
use obs::Recorder;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Harness-wide options, parsed from the command line.
#[derive(Debug, Clone)]
pub struct Options {
    /// Dataset scale factor in (0, 1]; 1.0 reproduces the published sizes.
    /// Scaling shrinks the domain too, so densities (and the meaning of
    /// the published ε values) are preserved.
    pub scale: f64,
    /// Restrict to these datasets (uppercase names); empty = defaults per
    /// experiment.
    pub datasets: Vec<String>,
    /// Trials to average response times over (paper: 3).
    pub trials: usize,
    /// Untimed warmup runs before the timed trials (`bench` only).
    pub warmup: usize,
    /// Baseline document to compare the benchmark suite against
    /// (`bench --compare <path>`; regressions are advisory unless
    /// `BENCH_STRICT=1`).
    pub compare: Option<PathBuf>,
    /// When set, experiments also write their rows as CSV files here
    /// (for plotting).
    pub csv_dir: Option<PathBuf>,
    /// When set, instrumented experiments write a Chrome trace-event JSON
    /// file here (open with Perfetto / chrome://tracing).
    pub trace: Option<PathBuf>,
    /// When set, instrumented experiments write a metrics-snapshot JSON
    /// file here (counters, gauges, histograms).
    pub metrics: Option<PathBuf>,
    /// Run-ledger directory override (`--ledger DIR`). Defaults to
    /// `results/ledger/`; gated experiments append one record per run and
    /// `repro report` reads the trajectory back.
    pub ledger: Option<PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scale: 0.02,
            datasets: Vec::new(),
            trials: 1,
            warmup: 1,
            compare: None,
            csv_dir: None,
            trace: None,
            metrics: None,
            ledger: None,
        }
    }
}

impl Options {
    /// Parse `--scale X`, `--datasets a,b`, `--trials N` style flags.
    pub fn parse(args: &[String]) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    let v = args.get(i + 1).ok_or("--scale needs a value")?;
                    opts.scale = v.parse().map_err(|_| format!("bad scale '{v}'"))?;
                    if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                        return Err("scale must be in (0, 1]".into());
                    }
                    i += 2;
                }
                "--datasets" => {
                    let v = args.get(i + 1).ok_or("--datasets needs a value")?;
                    opts.datasets = v.split(',').map(|s| s.trim().to_uppercase()).collect();
                    i += 2;
                }
                "--trials" => {
                    let v = args.get(i + 1).ok_or("--trials needs a value")?;
                    opts.trials = v.parse().map_err(|_| format!("bad trials '{v}'"))?;
                    i += 2;
                }
                "--warmup" => {
                    let v = args.get(i + 1).ok_or("--warmup needs a value")?;
                    opts.warmup = v.parse().map_err(|_| format!("bad warmup '{v}'"))?;
                    i += 2;
                }
                "--compare" => {
                    let v = args.get(i + 1).ok_or("--compare needs a baseline path")?;
                    opts.compare = Some(PathBuf::from(v));
                    i += 2;
                }
                "--quick" => {
                    opts.scale = 0.005;
                    i += 1;
                }
                "--csv" => {
                    let v = args.get(i + 1).ok_or("--csv needs a directory")?;
                    opts.csv_dir = Some(PathBuf::from(v));
                    i += 2;
                }
                "--trace" => {
                    let (path, used) = optional_path(args, i, "trace.json");
                    opts.trace = Some(path);
                    i += used;
                }
                "--metrics" => {
                    let (path, used) = optional_path(args, i, "metrics.json");
                    opts.metrics = Some(path);
                    i += used;
                }
                "--ledger" => {
                    let v = args.get(i + 1).ok_or("--ledger needs a directory")?;
                    opts.ledger = Some(PathBuf::from(v));
                    i += 2;
                }
                other => return Err(format!("unknown option '{other}'")),
            }
        }
        Ok(opts)
    }

    /// The datasets to run: the explicit `--datasets` list, or `defaults`.
    pub fn select<'a>(&'a self, defaults: &'a [&'a str]) -> Vec<String> {
        if self.datasets.is_empty() {
            defaults.iter().map(|s| s.to_string()).collect()
        } else {
            self.datasets.clone()
        }
    }

    /// A shared [`Recorder`] when `--trace` or `--metrics` was requested;
    /// `None` keeps the uninstrumented fast path.
    pub fn recorder(&self) -> Option<Arc<Recorder>> {
        if self.trace.is_some() || self.metrics.is_some() {
            Some(Arc::new(Recorder::new()))
        } else {
            None
        }
    }

    /// Write the requested observability artifacts (`--trace` /
    /// `--metrics`) from `rec`.
    pub fn write_observability(&self, rec: &Recorder) {
        if let Some(path) = &self.trace {
            match std::fs::write(path, rec.chrome_trace_json()) {
                Ok(()) => eprintln!(
                    "# trace: wrote {} (open with https://ui.perfetto.dev)",
                    path.display()
                ),
                Err(e) => eprintln!("# trace: cannot write {}: {e}", path.display()),
            }
        }
        if let Some(path) = &self.metrics {
            match std::fs::write(path, rec.metrics_json()) {
                Ok(()) => eprintln!("# metrics: wrote {}", path.display()),
                Err(e) => eprintln!("# metrics: cannot write {}: {e}", path.display()),
            }
        }
    }

    /// The run ledger for this invocation: `--ledger DIR` or the
    /// repo-default `results/ledger/`.
    pub fn run_ledger(&self) -> Ledger {
        match &self.ledger {
            Some(dir) => Ledger::at(dir.clone()),
            None => Ledger::default_location(),
        }
    }

    /// Append `record` to the run ledger. I/O failures are reported, not
    /// fatal — observability must never take down a benchmark run.
    pub fn append_ledger(&self, record: &LedgerRecord) {
        match self.run_ledger().append(record) {
            Ok(path) => eprintln!(
                "# ledger: appended {} record to {}",
                record.command,
                path.display()
            ),
            Err(e) => eprintln!("# ledger: cannot append: {e}"),
        }
    }
}

/// `LEDGER_BASELINE_REFRESH=1` marks this run as an intentional baseline
/// refresh: `obs::trend` allows a `modeled_time_bits` change at (exactly)
/// such a record instead of gating on it.
pub fn baseline_refresh() -> bool {
    std::env::var("LEDGER_BASELINE_REFRESH").as_deref() == Ok("1")
}

/// Parse an optional path operand for flags like `--trace [path]`: uses
/// the next argument unless it is absent or another flag, falling back to
/// `default`. Returns the path and how many arguments were consumed.
fn optional_path(args: &[String], i: usize, default: &str) -> (PathBuf, usize) {
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => (PathBuf::from(v), 2),
        _ => (PathBuf::from(default), 1),
    }
}

/// Materializes datasets lazily and caches them for the run.
pub struct DatasetCache {
    scale: f64,
    cache: HashMap<String, Dataset>,
}

impl DatasetCache {
    pub fn new(scale: f64) -> Self {
        DatasetCache {
            scale,
            cache: HashMap::new(),
        }
    }

    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Get (generating on first use) the named dataset.
    pub fn get(&mut self, name: &str) -> &Dataset {
        let key = name.to_uppercase();
        self.cache.entry(key.clone()).or_insert_with(|| {
            let spec = spec::by_name(&key).unwrap_or_else(|| panic!("unknown dataset '{key}'"));
            eprintln!(
                "# generating {key} at scale {} ({} points)…",
                self.scale,
                (spec.full_size as f64 * self.scale).round() as usize
            );
            spec.generate(self.scale)
        })
    }
}

/// Fixed-width text table writer for harness output.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render with per-column alignment.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&format!(
            "{}\n",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1))
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    pub fn print(&self) {
        print!("{}", self.render());
    }
}

impl Options {
    /// Write experiment rows as `<name>.csv` under `--csv`, if requested.
    pub fn write_csv(&self, name: &str, header: &[&str], rows: &[Vec<String>]) {
        let Some(dir) = &self.csv_dir else { return };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("# csv: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        match std::fs::write(&path, out) {
            Ok(()) => eprintln!("# csv: wrote {}", path.display()),
            Err(e) => eprintln!("# csv: cannot write {}: {e}", path.display()),
        }
    }
}

/// Format seconds adaptively (ms below 1 s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else {
        format!("{s:.2} s")
    }
}

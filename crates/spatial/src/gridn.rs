//! Dimension-generic sparse grid index — the grid backend for d > 2.
//!
//! Same `(G, A)` structure as [`crate::grid`] with cells of ε side length,
//! generalized to `D` dimensions: cell ids are mixed-radix `u64` keys with
//! dimension 0 fastest-varying (at `D = 2` this is exactly the 2-D module's
//! row-major `h = cy·nx + cx`), and the ε-stencil spans the `3^D` adjacent
//! cells instead of 9. Only the sparse layout exists here: at d ≥ 3 the
//! dense cell array is `Π n_k` entries — hopeless for any ε small relative
//! to the extent — while the sparse layout stays O(|D|).
//!
//! This is the comparison backend the tree competes against in higher
//! dimensions: the `3^D` stencil (27 cells at d = 3, 81 at d = 4, each
//! needing a binary-search probe) is what makes grids degrade with
//! dimensionality while the kd-tree's candidate volume stays `(2ε)^d`.
//!
//! `D` is capped at 4 ([`MAX_GRID_DIM`]): the fixed stencil buffer is
//! `3^4 = 81` entries, and beyond that the stencil blowup makes the grid
//! pointless anyway.

use crate::grid::CellRange;
use crate::nd::{AabbN, PointN};

/// Largest supported dimensionality of the ND grid (stencil buffer bound).
pub const MAX_GRID_DIM: usize = 4;

/// Stencil buffer capacity: `3^MAX_GRID_DIM`.
pub const MAX_STENCIL: usize = 81;

/// Geometric parameters of a `D`-dimensional ε-grid — the device constants
/// a kernel needs to map points to cell keys and enumerate the stencil.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridGeometryN<const D: usize> {
    pub eps: f64,
    pub origin: [f64; D],
    /// Cells per dimension.
    pub dims: [usize; D],
}

impl<const D: usize> GridGeometryN<D> {
    /// Whether `p` lies within the cell coverage on every axis.
    #[inline]
    pub fn covers(&self, p: &PointN<D>) -> bool {
        (0..D).all(|k| {
            let f = (p.coords[k] - self.origin[k]) / self.eps;
            f >= 0.0 && f < self.dims[k] as f64
        })
    }

    /// Per-dimension cell coordinates of `p` (clamped to the border like
    /// the 2-D grid; debug-asserted in coverage).
    #[inline]
    pub fn cell_coords_of(&self, p: &PointN<D>) -> [usize; D] {
        debug_assert!(self.covers(p), "cell_coords_of on out-of-extent point");
        std::array::from_fn(|k| {
            (((p.coords[k] - self.origin[k]) / self.eps) as usize).min(self.dims[k] - 1)
        })
    }

    /// Mixed-radix linear key, dimension 0 fastest:
    /// `h = c_0 + n_0·(c_1 + n_1·(c_2 + …))`. At `D = 2` this equals the
    /// 2-D grid's `cy·nx + cx`.
    #[inline]
    pub fn key_of_coords(&self, c: &[usize; D]) -> u64 {
        let mut h = 0u64;
        for k in (0..D).rev() {
            h = h * self.dims[k] as u64 + c[k] as u64;
        }
        h
    }

    /// Linear cell key containing `p`.
    #[inline]
    pub fn key_of(&self, p: &PointN<D>) -> u64 {
        self.key_of_coords(&self.cell_coords_of(p))
    }

    /// Total cell count `Π n_k` (never materialized; diagnostic only).
    pub fn total_cells(&self) -> u128 {
        self.dims.iter().map(|&n| n as u128).product()
    }

    /// The `3^D` ε-stencil around the cell with coordinates `c`: keys of
    /// every cell that can contain points within ε of points in `c`,
    /// ascending. Returns a fixed buffer with the first `count` entries
    /// valid — no allocation in kernel inner loops.
    #[inline]
    pub fn stencil_of_coords(&self, c: &[usize; D]) -> ([u64; MAX_STENCIL], usize) {
        const {
            assert!(D >= 1 && D <= MAX_GRID_DIM, "grid dimension out of range");
        }
        let mut lo = [0usize; D];
        let mut hi = [0usize; D];
        for k in 0..D {
            lo[k] = c[k].saturating_sub(1);
            hi[k] = (c[k] + 1).min(self.dims[k] - 1);
        }
        let mut out = [0u64; MAX_STENCIL];
        let mut n = 0;
        // Odometer over the box [lo, hi], dimension 0 fastest — the keys
        // come out ascending because the key radix matches the iteration
        // order on every axis.
        let mut cur = lo;
        loop {
            out[n] = self.key_of_coords(&cur);
            n += 1;
            let mut k = 0;
            loop {
                if k == D {
                    return (out, n);
                }
                if cur[k] < hi[k] {
                    cur[k] += 1;
                    break;
                }
                cur[k] = lo[k];
                k += 1;
            }
        }
    }
}

/// Borrowed `Copy` view of the sparse ND cell array (the `G` the kernels
/// traverse): sorted non-empty keys plus parallel ranges into `A`.
#[derive(Debug, Clone, Copy)]
pub struct CellsViewN<'a> {
    pub keys: &'a [u64],
    pub ranges: &'a [CellRange],
}

impl CellsViewN<'_> {
    /// The `[start, end)` range of cell key `h` (`EMPTY` if absent).
    #[inline]
    pub fn range_of(&self, h: u64) -> CellRange {
        match self.keys.binary_search(&h) {
            Ok(i) => self.ranges[i],
            Err(_) => CellRange::EMPTY,
        }
    }

    /// Modeled binary-search probe reads per cell resolution —
    /// `ceil(log2(k + 1))`, like the 2-D sparse layout.
    #[inline]
    pub fn probe_reads(&self) -> u64 {
        (usize::BITS - self.keys.len().leading_zeros()) as u64
    }
}

/// The sparse `D`-dimensional grid index over a point database.
#[derive(Debug, Clone)]
pub struct GridIndexN<const D: usize> {
    geom: GridGeometryN<D>,
    /// Sorted non-empty cell keys.
    keys: Vec<u64>,
    /// Parallel to `keys`.
    ranges: Vec<CellRange>,
    /// `A`: point ids grouped by cell, ids in data order within a cell.
    lookup: Vec<u32>,
    max_per_cell: usize,
}

impl<const D: usize> GridIndexN<D> {
    /// Build the index over `data` with cell width `eps`.
    pub fn build(data: &[PointN<D>], eps: f64) -> Self {
        const {
            assert!(D >= 1 && D <= MAX_GRID_DIM, "grid dimension out of range");
        }
        assert!(
            eps.is_finite() && eps > 0.0,
            "eps must be finite and positive"
        );
        assert!(!data.is_empty(), "cannot index an empty database");

        let bounds = AabbN::from_points(data.iter());
        // One cell of slack past the max corner, as in the 2-D grid.
        let dims: [usize; D] =
            std::array::from_fn(|k| ((bounds.extent(k) / eps).floor() as usize) + 1);
        let geom = GridGeometryN {
            eps,
            origin: bounds.min,
            dims,
        };
        // u64 keys cannot overflow within any practical extent, but the
        // radix product must fit.
        assert!(
            geom.total_cells() <= u64::MAX as u128,
            "ND grid cell space exceeds u64 keys; eps {eps} is too small"
        );

        // Sparse build: sort (key, id) pairs — serial, deterministic.
        let mut order: Vec<(u64, u32)> = data
            .iter()
            .enumerate()
            .map(|(i, p)| (geom.key_of(p), i as u32))
            .collect();
        order.sort_unstable();

        let mut keys = Vec::new();
        let mut ranges: Vec<CellRange> = Vec::new();
        let mut lookup = vec![0u32; data.len()];
        let mut max_per_cell = 0usize;
        for (pos, &(h, id)) in order.iter().enumerate() {
            lookup[pos] = id;
            if keys.last() != Some(&h) {
                keys.push(h);
                ranges.push(CellRange::new(pos as u32, pos as u32 + 1));
            } else {
                let r = ranges.last_mut().unwrap();
                *r = CellRange::new(r.start, r.end + 1);
            }
            let len = ranges.last().unwrap().len();
            max_per_cell = max_per_cell.max(len);
        }

        GridIndexN {
            geom,
            keys,
            ranges,
            lookup,
            max_per_cell,
        }
    }

    pub fn geometry(&self) -> &GridGeometryN<D> {
        &self.geom
    }

    /// The lookup array `A`.
    pub fn lookup(&self) -> &[u32] {
        &self.lookup
    }

    /// The borrowed cell-array view the kernels capture.
    pub fn cells(&self) -> CellsViewN<'_> {
        CellsViewN {
            keys: &self.keys,
            ranges: &self.ranges,
        }
    }

    pub fn non_empty_cells(&self) -> usize {
        self.keys.len()
    }

    pub fn max_points_per_cell(&self) -> usize {
        self.max_per_cell
    }

    /// Host-side ε-neighborhood query: visit every id whose point lies
    /// within the closed ε-ball of `q`. `data` must be the indexed slice.
    pub fn query_visit(&self, data: &[PointN<D>], q: &PointN<D>, mut visit: impl FnMut(u32)) {
        debug_assert!(self.geom.covers(q), "query point outside indexed extent");
        let eps_sq = self.geom.eps * self.geom.eps;
        let c = self.geom.cell_coords_of(q);
        let (stencil, count) = self.geom.stencil_of_coords(&c);
        let cells = self.cells();
        for &h in &stencil[..count] {
            let r = cells.range_of(h);
            for &id in &self.lookup[r.start as usize..r.end as usize] {
                if data[id as usize].distance_sq(q) <= eps_sq {
                    visit(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nd::brute_force_neighbors_nd;
    use crate::{GridIndex, Point2};

    fn pseudo_points<const D: usize>(n: usize, extent: f64) -> Vec<PointN<D>> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                PointN::new(std::array::from_fn(|k| {
                    (t * (0.377 + 0.211 * k as f64)).fract() * extent
                }))
            })
            .collect()
    }

    fn query_sorted<const D: usize>(
        g: &GridIndexN<D>,
        data: &[PointN<D>],
        q: &PointN<D>,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        g.query_visit(data, q, |id| out.push(id));
        out.sort_unstable();
        out
    }

    #[test]
    fn queries_match_brute_force_2d_3d_4d() {
        let eps = 0.7;
        let p2 = pseudo_points::<2>(300, 6.0);
        let g2 = GridIndexN::build(&p2, eps);
        for q in &p2 {
            assert_eq!(
                query_sorted(&g2, &p2, q),
                brute_force_neighbors_nd(&p2, q, eps)
            );
        }
        let p3 = pseudo_points::<3>(250, 4.0);
        let g3 = GridIndexN::build(&p3, eps);
        for q in &p3 {
            assert_eq!(
                query_sorted(&g3, &p3, q),
                brute_force_neighbors_nd(&p3, q, eps)
            );
        }
        let p4 = pseudo_points::<4>(200, 3.0);
        let g4 = GridIndexN::build(&p4, eps);
        for q in &p4 {
            assert_eq!(
                query_sorted(&g4, &p4, q),
                brute_force_neighbors_nd(&p4, q, eps)
            );
        }
    }

    #[test]
    fn keys_match_2d_grid_row_major() {
        // At D = 2 the mixed-radix key must equal the 2-D grid's
        // h = cy·nx + cx on the same geometry.
        let pts2: Vec<Point2> = vec![
            Point2::new(0.1, 0.1),
            Point2::new(2.6, 0.4),
            Point2::new(1.4, 2.2),
            Point2::new(2.9, 2.9),
        ];
        let ptsn: Vec<PointN<2>> = pts2.iter().map(|&p| PointN::from(p)).collect();
        let g2 = GridIndex::build(&pts2, 1.0);
        let gn = GridIndexN::build(&ptsn, 1.0);
        for (p2, pn) in pts2.iter().zip(&ptsn) {
            assert_eq!(g2.cell_of(p2) as u64, gn.geometry().key_of(pn));
        }
        // And the lookup arrays must agree (same grouping, same order).
        assert_eq!(g2.lookup(), gn.lookup());
    }

    #[test]
    fn stencil_is_ascending_and_bounded() {
        let pts = pseudo_points::<3>(100, 5.0);
        let g = GridIndexN::build(&pts, 1.0);
        for p in &pts {
            let c = g.geometry().cell_coords_of(p);
            let (stencil, n) = g.geometry().stencil_of_coords(&c);
            assert!(n <= 27);
            assert!(stencil[..n].windows(2).all(|w| w[0] < w[1]));
        }
        // An interior cell of a 3-D grid has the full 27-cell stencil.
        let interior = [1usize, 1, 1];
        let dims_ok = g.geometry().dims.iter().all(|&d| d >= 3);
        if dims_ok {
            let (_, n) = g.geometry().stencil_of_coords(&interior);
            assert_eq!(n, 27);
        }
    }

    #[test]
    fn lookup_is_a_permutation() {
        let pts = pseudo_points::<4>(300, 4.0);
        let g = GridIndexN::build(&pts, 0.9);
        let mut ids = g.lookup().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, (0..300u32).collect::<Vec<_>>());
        assert!(g.non_empty_cells() > 0);
        assert!(g.max_points_per_cell() >= 1);
    }

    #[test]
    fn boundary_points_fall_inside() {
        // Points exactly on the AABB max corner land in the slack cell.
        let pts = vec![PointN::new([0.0, 0.0, 0.0]), PointN::new([2.0, 2.0, 2.0])];
        let g = GridIndexN::build(&pts, 1.0);
        assert!(g.geometry().covers(&pts[1]));
        assert_eq!(query_sorted(&g, &pts, &pts[1]), vec![1]);
    }
}

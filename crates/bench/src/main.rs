//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment> [--scale X] [--datasets A,B] [--trials N] [--quick]
//!
//! experiments:
//!   table1    fraction of sequential DBSCAN time in R-tree search
//!   table2    kernel efficiency (GPUCalcGlobal vs GPUCalcShared), S1
//!   figure2   strided batch-assignment diagram
//!   scenarios Tables III and V (the S2/S3 parameter definitions)
//!   figure3   response time vs eps, hybrid vs reference, S2
//!   figure4   multi-clustering totals + Table IV speedups, S2
//!   figure5   response time vs threads with table reuse, S3
//!   figure6   reuse speedup over per-variant reference, S3
//!   schedule  Gantt chart of the overlapped 3-stream batch schedule
//!   threads   host-pool scaling sweep on S1 (writes BENCH_threads.json)
//!   shard     sharded-vs-unsharded fingerprint smoke (fatal on mismatch)
//!   backend   grid/tree/auto ε-search ablation smoke (fatal on table
//!             mismatch; auto-selector accuracy gated by BENCH_STRICT=1)
//!   bench     continuous-benchmark suite with regression gating
//!             (writes BENCH_suite.json; --compare <baseline.json>)
//!   profile   suite workloads under the pool profiler at 1/2/4/8
//!             threads: serial fraction, Amdahl ceiling, per-worker
//!             utilization, critical path (writes PROFILE.json)
//!   report    cross-run trend report over the run ledger
//!             (writes REPORT.html; TREND_STRICT=1 to gate)
//!   ablations bandwidth / stream-count / block-size / index / alpha / split
//!   all       everything above in paper order
//! ```
//!
//! `--scale` sizes the synthetic datasets (default 0.02 of the published
//! sizes; the domain shrinks with sqrt(scale) so densities — and the
//! published ε values — stay meaningful). `--quick` is `--scale 0.005`.

use bench::common::Options;
use bench::{
    ablations, backend_ablation, figure2, figure3, figure4, figure5, figure6, profile, regress,
    report, scenarios, schedule, shard, table1, table2, threads,
};

fn run_ablations(opts: &Options) {
    ablations::gdbscan(opts);
    println!();
    ablations::bandwidth(opts);
    println!();
    ablations::streams(opts);
    println!();
    ablations::blocksize(opts);
    println!();
    ablations::index(opts);
    println!();
    ablations::alpha(opts);
    println!();
    ablations::hybrid_split(opts);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: repro <experiment> [options] (see --help)");
        std::process::exit(2);
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        println!(
            "repro <table1|table2|figure2|figure3|figure4|figure5|figure6|schedule|threads|shard|backend|bench|profile|report|ablations|all>\n      [--scale X] [--datasets A,B] [--trials N] [--warmup N] [--quick] [--csv DIR]\n      [--trace [FILE]] [--metrics [FILE]] [--compare BASELINE] [--ledger DIR]\n\n--trace writes a Chrome trace-event JSON (default trace.json; open with\nhttps://ui.perfetto.dev); --metrics writes a metrics snapshot JSON\n(default metrics.json). Instrumented experiments: table2, figure4,\nschedule, profile.\n\nthreads sweeps the rayon pool over {{1, 2, 4, all}} on the S1 workload and\nwrites BENCH_threads.json (set the process-wide default pool size with\nRAYON_NUM_THREADS).\n\nbench runs the fixed S1/S2/S3 benchmark suite (--warmup untimed runs,\nthen --trials timed trials per workload) and writes BENCH_suite.json\n(median/MAD/IQR per stage plus device counters). --compare BASELINE\nflags stages whose median regressed beyond the baseline's noise\nthreshold; advisory unless BENCH_STRICT=1. Baselines live under\nresults/baselines/ (see DESIGN.md, \"Benchmark methodology\").\n\nprofile runs each suite workload under the pool profiler at 1/2/4/8\nthreads and writes PROFILE.json: per-stage serial fraction and Amdahl\nmax speedup, per-worker utilization, dispatch hotspots, device critical\npath. Exits nonzero if profiling perturbs modeled time bits (the\ndeterminism policy) or PROFILE.json fails round-trip validation.\n\nbench/threads/profile/shard append one provenance-stamped record per\nrun to the run ledger (results/ledger/ or --ledger DIR). report loads\nthe ledger, runs cross-run step/bits-change detection, and writes the\nREPORT.html dashboard; trend regressions are advisory unless\nTREND_STRICT=1. Set LEDGER_BASELINE_REFRESH=1 on a run that\nintentionally changes modeled time bits."
        );
        return;
    }
    let opts = match Options::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "# scale = {} (of published dataset sizes), trials = {}",
        opts.scale, opts.trials
    );

    match cmd.as_str() {
        "table1" => table1::print(&opts),
        "table2" => table2::print(&opts),
        "figure2" => figure2::print(),
        "table3" | "table5" | "scenarios" => scenarios::print(),
        "figure3" => figure3::print(&opts),
        "figure4" | "table4" => figure4::print(&opts),
        "figure5" => figure5::print(&opts),
        "figure6" => figure6::print(&opts),
        "schedule" => schedule::print(&opts),
        "threads" => {
            let code = threads::print(&opts);
            if code != 0 {
                std::process::exit(code);
            }
        }
        "report" => {
            let code = report::print(&opts);
            if code != 0 {
                std::process::exit(code);
            }
        }
        "shard" => {
            let code = shard::print(&opts);
            if code != 0 {
                std::process::exit(code);
            }
        }
        "backend" => {
            let code = backend_ablation::print(&opts);
            if code != 0 {
                std::process::exit(code);
            }
        }
        "bench" => {
            let code = regress::print(&opts);
            if code != 0 {
                std::process::exit(code);
            }
        }
        "profile" => {
            let code = profile::print(&opts);
            if code != 0 {
                std::process::exit(code);
            }
        }
        "ablations" => run_ablations(&opts),
        "all" => {
            table1::print(&opts);
            println!("\n");
            table2::print(&opts);
            println!("\n");
            figure2::print();
            println!("\n");
            figure3::print(&opts);
            println!("\n");
            figure4::print(&opts);
            println!("\n");
            figure5::print(&opts);
            println!("\n");
            figure6::print(&opts);
            println!("\n");
            run_ablations(&opts);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            std::process::exit(2);
        }
    }
}

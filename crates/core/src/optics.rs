//! OPTICS (Ankerst et al., SIGMOD 1999) — the paper's counterpoint.
//!
//! The paper positions scenario S3 as "the opposite configuration of
//! OPTICS, where minpts is fixed and ε is varied": OPTICS computes, for a
//! fixed `minpts`, an *ordering* of the points with per-point reachability
//! distances, from which a DBSCAN-like clustering can be extracted for
//! any `ε' ≤ ε_max` — one pass, many densities. Hybrid-DBSCAN's neighbor
//! table plays the same role for the opposite knob: fixed ε, many
//! `minpts`.
//!
//! This module implements classic OPTICS over any [`NeighborSource`]
//! (including the GPU-built neighbor table, whose ε becomes `ε_max`) and
//! the ε'-cut cluster extraction. The test suite validates the defining
//! property: the extraction at `ε'` is equivalent to DBSCAN at `ε'` for
//! the same `minpts` (up to DBSCAN's inherent border-point ambiguity).

use crate::dbscan::{Clustering, NeighborSource, PointLabel};
use spatial::Point2;

/// One entry of the OPTICS ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderedPoint {
    /// Point id.
    pub id: u32,
    /// Reachability distance from the preceding structure
    /// (`f64::INFINITY` for points that start a new component).
    pub reachability: f64,
    /// Core distance at `minpts` (`f64::INFINITY` if not core within
    /// ε_max).
    pub core_distance: f64,
}

/// The OPTICS output: the cluster-ordering with reachability and core
/// distances.
#[derive(Debug, Clone)]
pub struct OpticsOrdering {
    pub eps_max: f64,
    pub minpts: usize,
    pub order: Vec<OrderedPoint>,
}

impl OpticsOrdering {
    /// Extract the DBSCAN-equivalent clustering at `eps_cut ≤ eps_max`
    /// (the classic ExtractDBSCAN procedure): scanning the ordering, a
    /// point with reachability > ε' starts a new cluster if its own core
    /// distance at ε' qualifies, else is noise.
    pub fn extract_dbscan(&self, eps_cut: f64) -> Clustering {
        assert!(
            eps_cut <= self.eps_max + 1e-12,
            "extraction eps {} exceeds the ordering's eps_max {}",
            eps_cut,
            self.eps_max
        );
        let n = self.order.len();
        let mut labels = vec![PointLabel::NOISE; n];
        let mut cluster: i64 = -1;
        for op in &self.order {
            if op.reachability > eps_cut {
                if op.core_distance <= eps_cut {
                    cluster += 1;
                    labels[op.id as usize] = PointLabel::cluster(cluster as u32);
                }
                // else: noise (leave the default label).
            } else if cluster >= 0 {
                labels[op.id as usize] = PointLabel::cluster(cluster as u32);
            }
        }
        Clustering::from_labels(labels)
    }

    /// The reachability plot values in order (∞ mapped to `None`).
    pub fn reachability_plot(&self) -> Vec<Option<f64>> {
        self.order
            .iter()
            .map(|o| {
                if o.reachability.is_finite() {
                    Some(o.reachability)
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Run OPTICS with `minpts` over `source` (whose search radius is
/// `eps_max`). `data` supplies coordinates for the distance computations
/// the neighbor table does not store.
pub fn optics<S: NeighborSource + ?Sized>(
    source: &S,
    data: &[Point2],
    eps_max: f64,
    minpts: usize,
) -> OpticsOrdering {
    let n = source.num_points();
    assert_eq!(n, data.len(), "source and coordinate array disagree");
    let mut processed = vec![false; n];
    let mut reachability = vec![f64::INFINITY; n];
    let mut core_distance = vec![f64::INFINITY; n];
    let mut order: Vec<OrderedPoint> = Vec::with_capacity(n);
    let mut neighbors: Vec<u32> = Vec::new();
    let mut dists: Vec<f64> = Vec::new();

    // Core distance: the minpts-th smallest distance within the
    // neighborhood (including self), if the point is core.
    let compute_core = |id: u32, neighbors: &[u32], dists: &mut Vec<f64>, data: &[Point2]| -> f64 {
        if neighbors.len() < minpts {
            return f64::INFINITY;
        }
        dists.clear();
        let p = data[id as usize];
        dists.extend(neighbors.iter().map(|&j| p.distance(&data[j as usize])));
        dists.sort_by(|a, b| a.total_cmp(b));
        dists[minpts - 1]
    };

    // Seeds: a simple binary-heap-free priority queue over reachability
    // (the classic algorithm uses a mutable-priority heap; a scan of the
    // pending set keeps this implementation obviously correct, and the
    // seed set stays small in practice).
    let mut seeds: Vec<u32> = Vec::new();

    for start in 0..n as u32 {
        if processed[start as usize] {
            continue;
        }
        processed[start as usize] = true;
        neighbors.clear();
        source.neighbors_of(start, &mut neighbors);
        let cd = compute_core(start, &neighbors, &mut dists, data);
        core_distance[start as usize] = cd;
        order.push(OrderedPoint {
            id: start,
            reachability: f64::INFINITY,
            core_distance: cd,
        });

        if cd.is_finite() {
            update_seeds(
                start,
                &neighbors,
                data,
                cd,
                &processed,
                &mut reachability,
                &mut seeds,
            );
        }

        while !seeds.is_empty() {
            // Pop the seed with the smallest reachability (ties: smaller id,
            // for determinism).
            let (pos, _) = seeds
                .iter()
                .enumerate()
                .min_by(|(_, &a), (_, &b)| {
                    reachability[a as usize]
                        .total_cmp(&reachability[b as usize])
                        .then(a.cmp(&b))
                })
                .expect("seeds non-empty");
            let q = seeds.swap_remove(pos);
            if processed[q as usize] {
                continue;
            }
            processed[q as usize] = true;
            neighbors.clear();
            source.neighbors_of(q, &mut neighbors);
            let cdq = compute_core(q, &neighbors, &mut dists, data);
            core_distance[q as usize] = cdq;
            order.push(OrderedPoint {
                id: q,
                reachability: reachability[q as usize],
                core_distance: cdq,
            });
            if cdq.is_finite() {
                update_seeds(
                    q,
                    &neighbors,
                    data,
                    cdq,
                    &processed,
                    &mut reachability,
                    &mut seeds,
                );
            }
        }
    }

    OpticsOrdering {
        eps_max,
        minpts,
        order,
    }
}

/// Relax the reachability of `center`'s unprocessed neighbors.
fn update_seeds(
    center: u32,
    neighbors: &[u32],
    data: &[Point2],
    core_dist: f64,
    processed: &[bool],
    reachability: &mut [f64],
    seeds: &mut Vec<u32>,
) {
    let p = data[center as usize];
    for &j in neighbors {
        if processed[j as usize] {
            continue;
        }
        let new_reach = core_dist.max(p.distance(&data[j as usize]));
        if new_reach < reachability[j as usize] {
            if reachability[j as usize].is_infinite() {
                seeds.push(j);
            }
            reachability[j as usize] = new_reach;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::{Dbscan, GridSource};
    use crate::kernels::test_support::mixed_points;
    use spatial::GridIndex;

    #[test]
    fn ordering_covers_every_point_once() {
        let data = mixed_points(300);
        let eps = 1.0;
        let grid = GridIndex::build(&data, eps);
        let src = GridSource::new(&grid, &data);
        let o = optics(&src, &data, eps, 4);
        assert_eq!(o.order.len(), data.len());
        let mut seen = vec![false; data.len()];
        for op in &o.order {
            assert!(!seen[op.id as usize], "point {} ordered twice", op.id);
            seen[op.id as usize] = true;
        }
    }

    #[test]
    fn extraction_at_eps_max_matches_dbscan_structure() {
        // ExtractDBSCAN(eps_max) recovers DBSCAN(eps_max)'s clusters up to
        // the usual border ambiguity: compare cluster counts and noise on
        // data without contested borders.
        let data = mixed_points(400);
        let eps = 0.7;
        let minpts = 4;
        let grid = GridIndex::build(&data, eps);
        let src = GridSource::new(&grid, &data);
        let o = optics(&src, &data, eps, minpts);
        let from_optics = o.extract_dbscan(eps);
        let direct = Dbscan::new(minpts).run(&src);
        assert_eq!(from_optics.num_clusters(), direct.num_clusters());
        // Core-point memberships must agree exactly (borders may differ):
        // verify via pairwise same-cluster relation on core points.
        let eps_sq = eps * eps;
        let is_core = |i: usize| {
            data.iter()
                .filter(|q| data[i].distance_sq(q) <= eps_sq)
                .count()
                >= minpts
        };
        let cores: Vec<usize> = (0..data.len()).filter(|&i| is_core(i)).collect();
        for w in cores.windows(2) {
            let (a, b) = (w[0], w[1]);
            let same_direct = direct.labels()[a] == direct.labels()[b];
            let same_optics = from_optics.labels()[a] == from_optics.labels()[b];
            assert_eq!(same_direct, same_optics, "core pair ({a},{b}) disagrees");
        }
    }

    #[test]
    fn smaller_cut_never_merges_clusters() {
        // Lowering eps' can only split clusters or grow noise, never merge.
        let data = mixed_points(400);
        let eps = 1.0;
        let grid = GridIndex::build(&data, eps);
        let src = GridSource::new(&grid, &data);
        let o = optics(&src, &data, eps, 4);
        let coarse = o.extract_dbscan(1.0);
        let fine = o.extract_dbscan(0.4);
        assert!(
            fine.num_clusters() >= coarse.num_clusters()
                || fine.noise_count() >= coarse.noise_count()
        );
        assert!(fine.noise_count() >= coarse.noise_count());
    }

    #[test]
    fn reachability_of_dense_clump_is_low() {
        // Points inside a tight clump have small reachability; the jump
        // into the clump from outside is visible in the plot.
        let mut data = vec![Point2::new(50.0, 50.0)];
        for i in 0..30 {
            data.push(Point2::new(0.01 * (i % 6) as f64, 0.01 * (i / 6) as f64));
        }
        let eps = 2.0;
        let grid = GridIndex::build(&data, eps);
        let src = GridSource::new(&grid, &data);
        let o = optics(&src, &data, eps, 3);
        // All clump members after the first have tiny reachability.
        let clump_reach: Vec<f64> = o
            .order
            .iter()
            .filter(|op| op.id != 0 && op.reachability.is_finite())
            .map(|op| op.reachability)
            .collect();
        assert!(clump_reach.len() >= 28);
        assert!(clump_reach.iter().all(|&r| r < 0.1), "{clump_reach:?}");
    }

    #[test]
    fn works_over_the_gpu_built_table() {
        use crate::dbscan::TableSource;
        use crate::hybrid::{HybridConfig, HybridDbscan};
        use gpu_sim::Device;
        use spatial::presort::spatial_sort;

        let data = mixed_points(300);
        let eps = 0.8;
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(&device, HybridConfig::default());
        let handle = hybrid.build_table(&data, eps).unwrap();
        // The table is in sorted space; pair it with the sorted coords.
        let sorted = spatial_sort(&data);
        let o = optics(&TableSource::new(&handle.table), &sorted, eps, 4);
        assert_eq!(o.order.len(), data.len());
        let from_table = o.extract_dbscan(eps);
        let grid = GridIndex::build(&data, eps);
        let direct = Dbscan::new(4).run(&GridSource::new(&grid, &data));
        assert_eq!(from_table.num_clusters(), direct.num_clusters());
    }

    #[test]
    #[should_panic(expected = "exceeds the ordering's eps_max")]
    fn extraction_beyond_eps_max_panics() {
        let data = mixed_points(50);
        let grid = GridIndex::build(&data, 0.5);
        let o = optics(&GridSource::new(&grid, &data), &data, 0.5, 3);
        let _ = o.extract_dbscan(1.0);
    }
}

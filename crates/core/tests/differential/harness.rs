//! The differential core: run everything, validate everything against
//! the oracle, compare everything pairwise, shrink on failure.

use crate::generators::Case;
use gpu_sim::Device;
use hybrid_dbscan_core::backend::IndexBackend;
use hybrid_dbscan_core::cuda_dclust::cuda_dclust;
use hybrid_dbscan_core::dbscan::{Clustering, Dbscan, GridSource, KdTreeSource, RTreeSource};
use hybrid_dbscan_core::gdbscan::g_dbscan;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan, KernelChoice};
use hybrid_dbscan_core::oracle;
use hybrid_dbscan_core::reference::ReferenceDbscan;
use spatial::distance::brute_force_neighbors;
use spatial::{GridIndex, KdTree, Point2, RTree};

/// Chain count for CUDA-DClust runs (enough concurrency to exercise the
/// collision path on every non-trivial case).
const MAX_CHAINS: usize = 64;

/// Run every clusterer in the repository on one input. Ten labeled
/// clusterings: the five implementations (Hybrid with both kernels, the
/// R-tree reference, G-DBSCAN, CUDA-DClust), the Hybrid tree and auto
/// ε-search backends, plus host DBSCAN over each of the three ε-indexes,
/// so an implementation-vs-implementation divergence can be localized to
/// an index or an algorithm.
pub fn run_all(case: &Case) -> Vec<(&'static str, Clustering)> {
    let Case {
        data, eps, minpts, ..
    } = case;
    let (eps, minpts) = (*eps, *minpts);
    let device = Device::k20c();
    let mut out = Vec::new();

    for (name, kernel, backend) in [
        ("hybrid-global", KernelChoice::Global, IndexBackend::Grid),
        ("hybrid-shared", KernelChoice::Shared, IndexBackend::Grid),
        ("hybrid-tree", KernelChoice::Global, IndexBackend::Tree),
        ("hybrid-auto", KernelChoice::Global, IndexBackend::Auto),
    ] {
        let cfg = HybridConfig {
            kernel,
            backend,
            ..HybridConfig::default()
        };
        let r = HybridDbscan::new(&device, cfg)
            .run(data, eps, minpts)
            .unwrap_or_else(|e| panic!("{name} failed on {}: {e:?}", case.family));
        out.push((name, r.clustering));
    }

    out.push((
        "reference-rtree",
        ReferenceDbscan::new(eps, minpts).run(data).clustering,
    ));
    out.push((
        "g-dbscan",
        g_dbscan(&device, data, eps, minpts)
            .unwrap_or_else(|e| panic!("g-dbscan failed on {}: {e:?}", case.family))
            .clustering,
    ));
    out.push((
        "cuda-dclust",
        cuda_dclust(&device, data, eps, minpts, MAX_CHAINS)
            .unwrap_or_else(|e| panic!("cuda-dclust failed on {}: {e:?}", case.family))
            .clustering,
    ));

    let grid = GridIndex::build(data, eps);
    out.push((
        "dbscan-grid",
        Dbscan::new(minpts).run(&GridSource::new(&grid, data)),
    ));
    let kd = KdTree::build(data);
    out.push((
        "dbscan-kdtree",
        Dbscan::new(minpts).run(&KdTreeSource::new(&kd, data, eps)),
    ));
    let rt = RTree::bulk_load(data);
    out.push((
        "dbscan-rtree",
        Dbscan::new(minpts).run(&RTreeSource::new(&rt, data, eps)),
    ));
    out
}

/// Cross-check the three indexes' ε-neighborhoods point-for-point
/// against brute force. Run before the clustering comparison so an index
/// bug is reported at the index layer.
pub fn cross_check_neighborhoods(data: &[Point2], eps: f64) -> Result<(), String> {
    let grid = GridIndex::build(data, eps);
    let gs = |q: &Point2| {
        let mut v = grid.query(data, q);
        v.sort_unstable();
        v
    };
    let kd = KdTree::build(data);
    let rt = RTree::bulk_load(data);
    for (id, q) in data.iter().enumerate() {
        let expected = brute_force_neighbors(data, q, eps);
        if gs(q) != expected {
            return Err(format!("grid neighborhood of point {id} != brute force"));
        }
        let mut k = kd.query_eps(q, eps);
        k.sort_unstable();
        if k != expected {
            return Err(format!("kd-tree neighborhood of point {id} != brute force"));
        }
        let mut r = rt.query_eps(q, eps);
        r.sort_unstable();
        if r != expected {
            return Err(format!("r-tree neighborhood of point {id} != brute force"));
        }
    }
    Ok(())
}

/// Full differential check of one case:
///
/// 1. index ε-neighborhoods match brute force point-for-point;
/// 2. every clusterer's output is *valid* (oracle: exact noise, exact
///    core partition, justified border assignments);
/// 3. every pair of outputs is equivalent up to relabeling and border
///    ambiguity.
///
/// Returns the first failure as `(clusterer, message)`.
pub fn check_case(case: &Case) -> Result<(), String> {
    cross_check_neighborhoods(&case.data, case.eps)?;
    let classes = oracle::classify(&case.data, case.eps, case.minpts);
    let runs = run_all(case);
    for (name, c) in &runs {
        oracle::check_clustering_with(&case.data, case.eps, &classes, c)
            .map_err(|e| format!("{name} produced an invalid clustering: {e}"))?;
    }
    let (base_name, base) = &runs[0];
    for (name, c) in &runs[1..] {
        oracle::equivalent_up_to_borders_with(&classes, base, c)
            .map_err(|e| format!("{name} diverges from {base_name}: {e}"))?;
    }
    Ok(())
}

/// [`check_case`], shrinking failures to a minimal point set first. The
/// panic message includes the family, parameters, minimal data, and the
/// minimal case's failure — everything needed to turn the case into a
/// pinned regression test.
pub fn assert_case(case: &Case) {
    let Err(original) = check_case(case) else {
        return;
    };
    let shrink_on = |pts: &[Point2]| {
        let sub = Case {
            family: case.family,
            data: pts.to_vec(),
            eps: case.eps,
            minpts: case.minpts,
        };
        check_case(&sub).is_err()
    };
    let minimal = oracle::shrink_case(&case.data, shrink_on);
    let minimal_err = check_case(&Case {
        family: case.family,
        data: minimal.clone(),
        eps: case.eps,
        minpts: case.minpts,
    })
    .expect_err("shrunk case stopped failing");
    panic!(
        "differential failure in family `{}` (eps = {}, minpts = {}, n = {})\n\
         original failure: {original}\n\
         shrunk to {} points: {minimal:?}\n\
         shrunk failure: {minimal_err}",
        case.family,
        case.eps,
        case.minpts,
        case.data.len(),
        minimal.len(),
    );
}

/// Compare two label vectors exactly (used by the thread tests where the
/// implementation promises bitwise-identical output).
pub fn labels_i64(c: &Clustering) -> Vec<i64> {
    c.labels()
        .iter()
        .map(|l| l.cluster_id().map_or(-1, |id| id as i64))
        .collect()
}

//! **Figure 4 and Table IV** (scenario S2) — total multi-clustering
//! response time of three approaches, and the derived speedups.
//!
//! Paper shape: per dataset, reference ≫ non-pipelined hybrid >
//! pipelined hybrid. Pipelined vs reference: 3.36×–5.13× (growing with
//! dataset size and uniformity, SDSS3 best); pipelined vs non-pipelined:
//! 1.42×–1.66×.

use crate::common::{fmt_secs, DatasetCache, Options, TextTable};
use gpu_sim::Device;
use hybrid_dbscan_core::pipeline::{MultiClusterPipeline, PipelineConfig};
use hybrid_dbscan_core::reference::ReferenceDbscan;
use hybrid_dbscan_core::scenario;

/// Published Table IV speedups: (dataset, vs reference, vs non-pipelined).
pub const PAPER_SPEEDUPS: [(&str, f64, f64); 5] = [
    ("SW1", 3.36, 1.42),
    ("SW4", 3.81, 1.45),
    ("SDSS1", 3.48, 1.56),
    ("SDSS2", 4.04, 1.60),
    ("SDSS3", 5.13, 1.66),
];

/// One dataset's totals over its full ε sweep.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: String,
    pub n_variants: usize,
    pub ref_secs: f64,
    pub non_pipelined_secs: f64,
    pub pipelined_secs: f64,
}

impl Row {
    pub fn speedup_vs_ref(&self) -> f64 {
        self.ref_secs / self.pipelined_secs.max(1e-12)
    }

    pub fn speedup_vs_non_pipelined(&self) -> f64 {
        self.non_pipelined_secs / self.pipelined_secs.max(1e-12)
    }
}

/// Run the three approaches over each dataset's S2 sweep.
pub fn run(opts: &Options) -> Vec<Row> {
    let device = Device::k20c();
    let mut pipeline = MultiClusterPipeline::new(&device, PipelineConfig::default());
    let recorder = opts.recorder();
    if let Some(rec) = &recorder {
        pipeline = pipeline.with_recorder(rec.clone());
    }
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1", "SW4", "SDSS1", "SDSS2", "SDSS3"]);
    let mut rows = Vec::new();

    for name in &selected {
        let data = cache.get(name).points.clone();
        let variants = scenario::s2_variants(name);

        // Reference: each variant clustered individually, summed.
        let mut ref_secs = 0.0;
        for v in &variants {
            ref_secs += ReferenceDbscan::new(v.eps, v.minpts)
                .run(&data)
                .total_time
                .as_secs();
        }

        // Hybrid: one pipelined run yields both totals (the non-pipelined
        // total is the sum of the same per-variant stage times).
        let report = pipeline.run(&data, &variants).expect("pipeline failed");

        rows.push(Row {
            dataset: name.clone(),
            n_variants: variants.len(),
            ref_secs,
            non_pipelined_secs: report.non_pipelined_total.as_secs(),
            pipelined_secs: report.pipelined_total.as_secs(),
        });
        eprintln!(
            "# {name}: ref {} | non-pipelined {} | pipelined {}",
            fmt_secs(ref_secs),
            fmt_secs(rows.last().unwrap().non_pipelined_secs),
            fmt_secs(rows.last().unwrap().pipelined_secs)
        );
    }
    if let Some(rec) = &recorder {
        opts.write_observability(rec);
    }
    rows
}

/// Print Figure 4 (totals) and Table IV (speedups).
pub fn print(opts: &Options) {
    println!("== Figure 4 + Table IV (S2): multi-clustering totals and speedups ==");
    println!("Paper shape: ref >> non-pipelined > pipelined; pipelined vs ref");
    println!("3.36-5.13x (best on the largest/most-uniform dataset); pipelined vs");
    println!("non-pipelined 1.42-1.66x.\n");
    let rows = run(opts);
    opts.write_csv(
        "figure4",
        &[
            "dataset",
            "variants",
            "ref_secs",
            "non_pipelined_secs",
            "pipelined_secs",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.n_variants.to_string(),
                    r.ref_secs.to_string(),
                    r.non_pipelined_secs.to_string(),
                    r.pipelined_secs.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let mut t = TextTable::new(&[
        "Dataset",
        "variants",
        "Reference",
        "Non-pipelined",
        "Pipelined",
    ]);
    for r in &rows {
        t.row(vec![
            r.dataset.clone(),
            r.n_variants.to_string(),
            fmt_secs(r.ref_secs),
            fmt_secs(r.non_pipelined_secs),
            fmt_secs(r.pipelined_secs),
        ]);
    }
    t.print();

    println!("\n-- Table IV: speedups of pipelined Hybrid-DBSCAN --");
    let mut t = TextTable::new(&["Dataset", "vs Ref", "paper", "vs Non-pipelined", "paper"]);
    for r in &rows {
        let paper = PAPER_SPEEDUPS.iter().find(|(d, ..)| *d == r.dataset);
        t.row(vec![
            r.dataset.clone(),
            format!("{:.2}x", r.speedup_vs_ref()),
            paper.map_or("-".into(), |(_, a, _)| format!("{a:.2}x")),
            format!("{:.2}x", r.speedup_vs_non_pipelined()),
            paper.map_or("-".into(), |(_, _, b)| format!("{b:.2}x")),
        ]);
    }
    t.print();
}

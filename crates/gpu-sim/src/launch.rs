//! Kernel launch configuration and occupancy arithmetic.

use crate::device::DeviceProps;
use crate::error::DeviceError;
use serde::{Deserialize, Serialize};

/// A one-dimensional launch configuration, as used by both of the paper's
/// kernels ("we only use one memory dimension").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks.
    pub grid_dim: u32,
    /// Threads per block (the paper uses 256).
    pub block_dim: u32,
    /// Dynamic shared memory requested per block, in bytes.
    pub shared_mem_bytes: usize,
}

impl LaunchConfig {
    pub fn new(grid_dim: u32, block_dim: u32) -> Self {
        LaunchConfig {
            grid_dim,
            block_dim,
            shared_mem_bytes: 0,
        }
    }

    pub fn with_shared_mem(mut self, bytes: usize) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Blocks needed to cover `n` work items at this block size — the
    /// standard `ceil(n / blockDim)` CUDA idiom.
    pub fn for_elements(n: usize, block_dim: u32) -> Self {
        let grid = n.div_ceil(block_dim as usize) as u32;
        LaunchConfig::new(grid, block_dim)
    }

    /// Total threads launched — the `n_GPU` quantity of Table II.
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }

    /// Validate against device limits.
    pub fn validate(&self, props: &DeviceProps) -> Result<(), DeviceError> {
        if self.block_dim == 0 {
            return Err(DeviceError::InvalidLaunch(
                "block_dim must be positive".into(),
            ));
        }
        if self.block_dim > props.max_threads_per_block {
            return Err(DeviceError::InvalidLaunch(format!(
                "block_dim {} exceeds device limit {}",
                self.block_dim, props.max_threads_per_block
            )));
        }
        if !self.block_dim.is_multiple_of(props.warp_size) {
            return Err(DeviceError::InvalidLaunch(format!(
                "block_dim {} is not a multiple of the warp size {}",
                self.block_dim, props.warp_size
            )));
        }
        if self.shared_mem_bytes > props.shared_mem_per_block {
            return Err(DeviceError::SharedMemExceeded {
                requested_bytes: self.shared_mem_bytes,
                limit_bytes: props.shared_mem_per_block,
            });
        }
        Ok(())
    }

    /// Concurrent blocks one SM can host for this configuration,
    /// considering the thread, block, and shared-memory limits.
    pub fn blocks_per_sm(&self, props: &DeviceProps) -> usize {
        let by_threads = (props.max_threads_per_sm / self.block_dim.max(1)) as usize;
        let by_blocks = props.max_blocks_per_sm as usize;
        // Kepler: the per-SM shared capacity equals the per-block limit.
        let by_shared = props
            .shared_mem_per_block
            .checked_div(self.shared_mem_bytes)
            .unwrap_or(usize::MAX);
        by_threads.min(by_blocks).min(by_shared).max(1)
    }

    /// Achieved occupancy (resident threads / max threads per SM), in
    /// `(0, 1]`.
    pub fn occupancy(&self, props: &DeviceProps) -> f64 {
        let resident = self.blocks_per_sm(props) * self.block_dim as usize;
        (resident as f64 / props.max_threads_per_sm as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn props() -> DeviceProps {
        DeviceProps::k20c()
    }

    #[test]
    fn for_elements_rounds_up() {
        let cfg = LaunchConfig::for_elements(1000, 256);
        assert_eq!(cfg.grid_dim, 4);
        assert_eq!(cfg.total_threads(), 1024);
        let exact = LaunchConfig::for_elements(512, 256);
        assert_eq!(exact.grid_dim, 2);
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let p = props();
        assert!(LaunchConfig::new(1, 0).validate(&p).is_err());
        assert!(LaunchConfig::new(1, 2048).validate(&p).is_err());
        assert!(
            LaunchConfig::new(1, 100).validate(&p).is_err(),
            "not warp-multiple"
        );
        assert!(LaunchConfig::new(1, 256)
            .with_shared_mem(64 * 1024)
            .validate(&p)
            .is_err());
        assert!(LaunchConfig::new(65535, 256).validate(&p).is_ok());
    }

    #[test]
    fn occupancy_256_threads() {
        let p = props();
        let cfg = LaunchConfig::new(100, 256);
        // 2048 / 256 = 8 blocks, within the 16-block limit -> full occupancy.
        assert_eq!(cfg.blocks_per_sm(&p), 8);
        assert_eq!(cfg.occupancy(&p), 1.0);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let p = props();
        let cfg = LaunchConfig::new(100, 256).with_shared_mem(24 * 1024);
        assert_eq!(cfg.blocks_per_sm(&p), 2);
        assert_eq!(cfg.occupancy(&p), 0.25);
    }

    #[test]
    fn tiny_blocks_hit_block_limit() {
        let p = props();
        let cfg = LaunchConfig::new(100, 32);
        // 2048/32 = 64 by threads, but max 16 blocks per SM.
        assert_eq!(cfg.blocks_per_sm(&p), 16);
        assert_eq!(cfg.occupancy(&p), 0.25);
    }
}

//! `repro schedule` — visualize the batched GPU phase as a Gantt chart.
//!
//! Shows the copy/compute overlap the 3-stream batching scheme achieves:
//! while batch `l`'s result set is sorted, transferred and ingested,
//! batch `l+1`'s kernel is already running.

use crate::common::{DatasetCache, Options};
use gpu_sim::Device;
use hybrid_dbscan_core::batch::BatchConfig;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};

/// Build a table with forced multi-batch execution and print the
/// schedule.
pub fn print(opts: &Options) {
    println!("== Batch schedule Gantt (3 streams; digits are batch numbers mod 10) ==\n");
    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let recorder = opts.recorder();
    let selected = opts.select(&["SW1"]);
    for name in &selected {
        let data = cache.get(name).points.clone();
        // Force ~8 batches so the overlap is visible.
        let probe = HybridDbscan::new(&device, HybridConfig::default())
            .build_table(&data, 0.4)
            .expect("probe failed");
        let buffer = (probe.gpu.result_pairs / 8).max(1);
        let cfg = HybridConfig {
            batch: BatchConfig {
                static_threshold: 0,
                static_buffer_items: buffer + buffer / 4,
                ..BatchConfig::default()
            },
            ..HybridConfig::default()
        };
        let mut hybrid = HybridDbscan::new(&device, cfg);
        if let Some(rec) = &recorder {
            hybrid = hybrid.with_recorder(rec.clone());
        }
        let handle = hybrid.build_table(&data, 0.4).expect("build failed");
        println!(
            "--- {name} (eps = 0.4, {} batches) ---",
            handle.gpu.n_batches
        );
        print!("{}", handle.gpu.schedule.render_gantt(100));
        println!(
            "serial sum of ops: {:.1} ms -> overlapped makespan: {:.1} ms ({:.2}x)",
            handle.gpu.schedule.serial_time().as_millis(),
            handle.gpu.schedule.makespan.as_millis(),
            handle.gpu.schedule.serial_time().as_secs()
                / handle.gpu.schedule.makespan.as_secs().max(1e-12)
        );
        let path = handle.gpu.schedule.critical_path();
        let path_ms: f64 = path.iter().map(|o| (o.end - o.start).as_millis()).sum();
        let legend: Vec<String> = path
            .iter()
            .map(|o| format!("{}#{}", o.label, o.chain))
            .collect();
        println!(
            "critical path: {} of {} ops, {path_ms:.1} ms ({:.0}% of makespan)",
            path.len(),
            handle.gpu.schedule.ops.len(),
            path_ms / handle.gpu.schedule.makespan.as_millis().max(1e-12) * 100.0
        );
        println!("  {}\n", legend.join(" -> "));
    }
    if let Some(rec) = &recorder {
        opts.write_observability(rec);
    }
}

//! Differential correctness harness (DESIGN.md §8).
//!
//! Every clusterer in this repository claims to compute *exact* DBSCAN:
//! the paper's thesis is that the GPU changes throughput, never output.
//! This test target holds all five implementations (Hybrid global,
//! Hybrid shared, the R-tree reference, G-DBSCAN, CUDA-DClust), the
//! Hybrid tree/auto ε-search backends, and all three ε-indexes (grid,
//! kd-tree, R-tree) to that claim:
//!
//! * [`harness`] runs every clusterer on the same input and validates
//!   each against the brute-force oracle (`hybrid_dbscan_core::oracle`),
//!   then compares them pairwise up to cluster relabeling and the
//!   documented border-point ambiguity. Index ε-neighborhoods are
//!   cross-checked point-for-point against brute force first, so an
//!   index bug is reported as an index bug, not a clustering bug.
//! * [`generators`] builds adversarial inputs on an exact binary lattice
//!   (coordinates and ε are multiples of 1/128), so exact-ε boundary
//!   ties are *engineered*, not hoped for.
//! * [`transforms`] applies metamorphic transforms — permutation, rigid
//!   translation/rotation/reflection, power-of-two joint (coords, ε)
//!   scaling, uniform k-fold duplication with `minpts × k` — and asserts
//!   partition invariance.
//! * [`sweep`] is the seeded randomized tier: a handful of cases by
//!   default, `DIFF_CASES=n` for the long CI sweep.
//! * [`threads`] re-runs the clusterers on rayon pool views of 1, 2 and
//!   8 threads and asserts schedule independence (exact labels where the
//!   implementation guarantees it, oracle-level equivalence for
//!   CUDA-DClust's scheduling-dependent border attribution).
//! * [`sharded`] holds the sharded pipeline to bitwise table and
//!   clustering equality with the unsharded build at k ∈ {1, 2, 4} and
//!   1/2/8 threads in both execution modes, including a halo-straddling
//!   adversarial generator with exact-ε cross-boundary pairs.
//!
//! Failing cases are delta-debugged down to a minimal point set by
//! `oracle::shrink_case` before being reported (the offline proptest
//! stand-in does not shrink).

mod generators;
mod grid_layouts;
mod harness;
mod nd;
mod sharded;
mod sweep;
mod threads;
mod transforms;

use generators::{Case, Q};
use harness::assert_case;
use proptest::TestRng;
use spatial::Point2;

/// Quick deterministic tier: every generator family under a few fixed
/// seeds, full five-clusterer differential each time.
#[test]
fn quick_all_families_fixed_seeds() {
    for family in generators::FAMILIES {
        for seed in [1u64, 7, 1234] {
            let mut rng = TestRng::new(seed);
            let case = (family.generate)(&mut rng);
            assert_case(&case);
        }
    }
}

/// Satellite: exact-ε boundary pairs, axis-aligned. Points spaced at
/// exactly ε (binary-lattice coordinates, so the distance computation is
/// bit-exact) must count as neighbors — in every index and in every
/// clusterer. ε = 1.0, chain 0, 1, 2, 3 at unit spacing: with minpts = 3
/// the whole chain is one cluster; shrinking ε by one lattice quantum
/// disconnects everything into noise.
#[test]
fn exact_eps_boundary_axis_aligned() {
    let data: Vec<Point2> = (0..4).map(|i| Point2::new(i as f64, 0.0)).collect();
    let eps = 1.0;

    // Point-for-point: every index must report both exact-ε neighbors
    // for the interior points.
    harness::cross_check_neighborhoods(&data, eps).unwrap();
    let grid = spatial::GridIndex::build(&data, eps);
    let mut n1 = grid.query(&data, &data[1]);
    n1.sort_unstable();
    assert_eq!(
        n1,
        vec![0, 1, 2],
        "closed ball must include exact-eps pairs"
    );

    // Clusterers: one chain cluster at ε, all noise one quantum below.
    let at_eps = Case {
        family: "exact-eps-axis",
        data: data.clone(),
        eps,
        minpts: 3,
    };
    assert_case(&at_eps);
    let c = harness::run_all(&at_eps);
    assert!(
        c.iter()
            .all(|(_, c)| c.num_clusters() == 1 && c.noise_count() == 0),
        "exact-eps chain must form a single cluster in every clusterer"
    );

    let below = Case {
        family: "exact-eps-axis-minus-quantum",
        data,
        eps: eps - Q,
        minpts: 3,
    };
    assert_case(&below);
    let c = harness::run_all(&below);
    assert!(
        c.iter().all(|(_, c)| c.num_clusters() == 0),
        "one lattice quantum below eps must disconnect the chain everywhere"
    );
}

/// Satellite: exact-ε boundary pairs on the diagonal, via Pythagorean
/// triples. (0,0)–(3,4) is at distance exactly 5 in floating point
/// (9 + 16 = 25 exactly), so ε = 5 is an exact boundary hit that no
/// axis-aligned test exercises.
#[test]
fn exact_eps_boundary_pythagorean() {
    let data = vec![
        Point2::new(0.0, 0.0),
        Point2::new(3.0, 4.0),
        Point2::new(6.0, 8.0),
        Point2::new(-4.0, 3.0),
    ];
    let eps = 5.0;
    harness::cross_check_neighborhoods(&data, eps).unwrap();
    let kd = spatial::KdTree::build(&data);
    let mut n0 = kd.query_eps(&data[0], eps);
    n0.sort_unstable();
    assert_eq!(n0, vec![0, 1, 3], "3-4-5 neighbors at exactly eps");

    // minpts = 3: point 0 sees {0, 1, 3}, point 1 sees {0, 1, 2} — both
    // core, chaining all four into one cluster.
    let case = Case {
        family: "exact-eps-pythagorean",
        data,
        eps,
        minpts: 3,
    };
    assert_case(&case);
    let c = harness::run_all(&case);
    assert!(
        c.iter()
            .all(|(_, c)| c.num_clusters() == 1 && c.noise_count() == 0),
        "3-4-5 chain must form a single cluster in every clusterer"
    );
}

/// Satellite: exact-ε pairs that straddle grid cell boundaries. With
/// cell width = ε and the grid origin at the data minimum, points at
/// integer multiples of ε sit exactly on cell edges; their exact-ε
/// neighbors live in adjacent cells. This is the configuration where a
/// cell-assignment rounding bug or an open-ball comparison would first
/// diverge between the grid and the tree indexes.
#[test]
fn exact_eps_pairs_straddle_cell_boundaries() {
    let eps = 1.0;
    // 5×2 lattice at exactly ε spacing — every point is on a cell corner
    // and has 3–4 exact-ε neighbors (self + axis neighbors).
    let mut data = Vec::new();
    for i in 0..5 {
        for j in 0..2 {
            data.push(Point2::new(i as f64 * eps, j as f64 * eps));
        }
    }
    harness::cross_check_neighborhoods(&data, eps).unwrap();
    let case = Case {
        family: "exact-eps-cell-straddle",
        data,
        eps,
        minpts: 4,
    };
    assert_case(&case);
    let c = harness::run_all(&case);
    assert!(
        c.iter()
            .all(|(_, c)| c.num_clusters() == 1 && c.noise_count() == 0),
        "eps-lattice must chain into one cluster in every clusterer"
    );
}

/// Metamorphic: partition invariance under every transform, over a few
/// generated cases per family (quick tier; the sweep re-runs this on
/// randomized cases).
#[test]
fn quick_metamorphic_invariance() {
    for (family, seed) in [
        (&generators::FAMILIES[5], 11u64), // clumps: the realistic family
        (&generators::FAMILIES[3], 23),    // boundary straddlers
        (&generators::FAMILIES[7], 31),    // eps-spaced grid
    ] {
        let mut rng = TestRng::new(seed);
        let case = (family.generate)(&mut rng);
        transforms::assert_all_invariant(&case, &mut rng);
    }
}

//! Neighbor sources: the seam between DBSCAN and the index/table that
//! answers its ε-neighborhood queries.

use crate::table::NeighborTable;
use spatial::{GridIndex, KdTree, Point2, RTree};

/// Supplies the ε-neighborhood of each point by id.
///
/// Implementations must be consistent: `neighbors_of(p)` contains `p`
/// itself (distance 0 ≤ ε) and exactly the ids within the closed ε-ball.
/// Order is unspecified; DBSCAN's cluster memberships do not depend on it.
pub trait NeighborSource: Sync {
    /// Append the ids of every point within ε of point `id` to `out`
    /// (which the caller has cleared).
    fn neighbors_of(&self, id: u32, out: &mut Vec<u32>);

    /// Total number of points in the database.
    fn num_points(&self) -> usize;
}

/// Neighbor source backed by the grid index (ε is the grid's cell width).
pub struct GridSource<'a> {
    grid: &'a GridIndex,
    data: &'a [Point2],
}

impl<'a> GridSource<'a> {
    pub fn new(grid: &'a GridIndex, data: &'a [Point2]) -> Self {
        GridSource { grid, data }
    }
}

impl NeighborSource for GridSource<'_> {
    fn neighbors_of(&self, id: u32, out: &mut Vec<u32>) {
        self.grid
            .query_visit(self.data, &self.data[id as usize], |n| out.push(n));
    }

    fn num_points(&self) -> usize {
        self.data.len()
    }
}

/// Neighbor source backed by an R-tree (the reference implementation's
/// index; ε is supplied per-source). Query centers are read from the
/// point array the tree was built over.
pub struct RTreeSource<'a> {
    tree: &'a RTree,
    data: &'a [Point2],
    eps: f64,
}

impl<'a> RTreeSource<'a> {
    pub fn new(tree: &'a RTree, data: &'a [Point2], eps: f64) -> Self {
        RTreeSource { tree, data, eps }
    }
}

impl NeighborSource for RTreeSource<'_> {
    fn neighbors_of(&self, id: u32, out: &mut Vec<u32>) {
        self.tree
            .query_eps_visit(&self.data[id as usize], self.eps, |n, _| out.push(n));
    }

    fn num_points(&self) -> usize {
        self.tree.len()
    }
}

/// Neighbor source backed by a kd-tree (ablation comparator).
pub struct KdTreeSource<'a> {
    tree: &'a KdTree,
    data: &'a [Point2],
    eps: f64,
}

impl<'a> KdTreeSource<'a> {
    pub fn new(tree: &'a KdTree, data: &'a [Point2], eps: f64) -> Self {
        KdTreeSource { tree, data, eps }
    }
}

impl NeighborSource for KdTreeSource<'_> {
    fn neighbors_of(&self, id: u32, out: &mut Vec<u32>) {
        self.tree
            .query_eps_visit(&self.data[id as usize], self.eps, |n| out.push(n));
    }

    fn num_points(&self) -> usize {
        self.data.len()
    }
}

/// Neighbor source backed by the precomputed neighbor table `T` — the
/// Hybrid-DBSCAN fast path: a lookup instead of an index search.
pub struct TableSource<'a> {
    table: &'a NeighborTable,
}

impl<'a> TableSource<'a> {
    pub fn new(table: &'a NeighborTable) -> Self {
        TableSource { table }
    }
}

impl NeighborSource for TableSource<'_> {
    fn neighbors_of(&self, id: u32, out: &mut Vec<u32>) {
        out.extend_from_slice(self.table.neighbors(id));
    }

    fn num_points(&self) -> usize {
        self.table.num_points()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial::distance::brute_force_neighbors;

    fn data() -> Vec<Point2> {
        (0..60)
            .map(|i| {
                let t = i as f64 * 0.37;
                Point2::new((t * 1.7).sin() * 5.0 + t * 0.1, (t * 0.9).cos() * 5.0)
            })
            .collect()
    }

    fn sorted(mut v: Vec<u32>) -> Vec<u32> {
        v.sort_unstable();
        v
    }

    #[test]
    fn all_index_sources_agree_with_brute_force() {
        let data = data();
        let eps = 1.2;
        let grid = GridIndex::build(&data, eps);
        let rtree = RTree::bulk_load(&data);
        let kdtree = KdTree::build(&data);

        let gs = GridSource::new(&grid, &data);
        let rs = RTreeSource::new(&rtree, &data, eps);
        let ks = KdTreeSource::new(&kdtree, &data, eps);

        for id in 0..data.len() as u32 {
            let expected = brute_force_neighbors(&data, &data[id as usize], eps);
            for (name, src) in [
                ("grid", &gs as &dyn NeighborSource),
                ("rtree", &rs),
                ("kdtree", &ks),
            ] {
                let mut out = Vec::new();
                src.neighbors_of(id, &mut out);
                assert_eq!(sorted(out), expected, "{name} disagrees at id {id}");
            }
        }
    }

    #[test]
    fn sources_report_point_count() {
        let data = data();
        let grid = GridIndex::build(&data, 1.0);
        assert_eq!(GridSource::new(&grid, &data).num_points(), 60);
        let rtree = RTree::bulk_load(&data);
        assert_eq!(RTreeSource::new(&rtree, &data, 1.0).num_points(), 60);
    }

    #[test]
    fn every_source_includes_self() {
        let data = data();
        let grid = GridIndex::build(&data, 0.5);
        let gs = GridSource::new(&grid, &data);
        for id in [0u32, 17, 59] {
            let mut out = Vec::new();
            gs.neighbors_of(id, &mut out);
            assert!(
                out.contains(&id),
                "point {id} missing from its own neighborhood"
            );
        }
    }
}

//! Dimension-generic grid kernels — the grid backend for d > 2.
//!
//! Structurally [`super::GpuCalcGlobal`] and [`super::NeighborCountKernel`]
//! over [`spatial::GridIndexN`]: thread per point, the `3^D` stencil of
//! adjacent cells instead of 9, each cell resolved by binary search over
//! the sparse `u64` key array (charged as probe reads), and the shared
//! chunked ε-scan of [`super::tree::scan_ids_nd`]. This is what the tree
//! backend is measured against in higher dimensions: the stencil grows
//! `3^D` while the tree's candidate volume stays `(2ε)^D`.

use super::tree::scan_ids_nd;
use super::{NeighborPair, SCAN_LANES};
use gpu_sim::error::DeviceError;
use gpu_sim::kernel::{BlockCtx, BlockKernel, ChargeBatch, ThreadCtx};
use gpu_sim::launch::LaunchConfig;
use gpu_sim::memory::{DeviceAppendBuffer, DeviceCounter};
use spatial::grid::CellRange;
use spatial::{CellsViewN, GridGeometryN, PointsViewN};

/// Resolve and load cell key `h` from the sparse ND `G`, charging the
/// binary-search probes plus the `CellRange` read (the ND analogue of
/// [`super::load_cell_range`]; the ND layout is always sparse).
#[inline]
fn load_cell_range_nd(t: &mut ThreadCtx, cells: &CellsViewN<'_>, h: u64) -> CellRange {
    let probes = cells.probe_reads();
    if probes > 0 {
        t.read_global::<u64>(probes);
    }
    t.read_global::<CellRange>(1);
    cells.range_of(h)
}

/// Thread-per-point ε-neighborhood kernel over the sparse ND grid.
pub struct GpuCalcGridNd<'a, const D: usize> {
    pub points: PointsViewN<'a, D>,
    pub cells: CellsViewN<'a>,
    /// `A`: point ids grouped by cell.
    pub lookup: &'a [u32],
    pub geom: GridGeometryN<D>,
    pub eps: f64,
    pub batch: usize,
    pub n_batches: usize,
    pub result: &'a DeviceAppendBuffer<NeighborPair>,
}

impl<const D: usize> GpuCalcGridNd<'_, D> {
    /// The launch configuration covering this batch at `block_dim`.
    pub fn launch_config(&self, block_dim: u32) -> LaunchConfig {
        let n =
            super::GpuCalcGlobal::points_in_batch(self.points.len(), self.n_batches, self.batch);
        LaunchConfig::for_elements(n.max(1), block_dim)
    }
}

impl<const D: usize> BlockKernel for GpuCalcGridNd<'_, D> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let n_points = self.points.len();
        let eps_sq = self.eps * self.eps;
        let in_batch =
            super::GpuCalcGlobal::points_in_batch(n_points, self.n_batches, self.batch) as u64;

        ctx.for_each_thread(|t| {
            if t.gid >= in_batch {
                return;
            }
            let pi = (t.gid as usize) * self.n_batches + self.batch;
            debug_assert!(pi < n_points);

            t.read_global::<f64>(D as u64);
            let q = self.points.get(pi);

            // Stencil enumeration: pure arithmetic, ~5 flops per
            // dimension (10 at D = 2, matching the 2-D kernel's charge).
            t.charge_flops(5 * D as u64);
            let c = self.geom.cell_coords_of(&q);
            let (stencil, n_cells) = self.geom.stencil_of_coords(&c);

            for &h in &stencil[..n_cells] {
                let range = load_cell_range_nd(t, &self.cells, h);
                scan_ids_nd(
                    t,
                    self.points,
                    &self.lookup[range.start as usize..range.end as usize],
                    &q.coords,
                    eps_sq,
                    |t, hits| {
                        let mut charge = ChargeBatch {
                            atomics: hits.len() as u64,
                            ..ChargeBatch::default()
                        };
                        charge.write_global::<NeighborPair>(hits.len() as u64);
                        t.charge_batch(charge);
                        let mut out = [(0u32, 0u32); SCAN_LANES];
                        for (o, &cand) in out.iter_mut().zip(hits) {
                            *o = (pi as u32, cand);
                        }
                        let _ = self.result.append_n(&out[..hits.len()]);
                    },
                );
            }
        });
        Ok(())
    }
}

/// The result-size estimation kernel over the sparse ND grid.
pub struct GridNdCountKernel<'a, const D: usize> {
    pub points: PointsViewN<'a, D>,
    pub cells: CellsViewN<'a>,
    pub lookup: &'a [u32],
    pub geom: GridGeometryN<D>,
    pub eps: f64,
    pub stride: usize,
    pub counter: &'a DeviceCounter,
}

impl<const D: usize> GridNdCountKernel<'_, D> {
    pub fn launch_config(&self, block_dim: u32) -> LaunchConfig {
        LaunchConfig::for_elements(
            super::NeighborCountKernel::sample_size(self.points.len(), self.stride).max(1),
            block_dim,
        )
    }
}

impl<const D: usize> BlockKernel for GridNdCountKernel<'_, D> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let n_points = self.points.len();
        let stride = self.stride.max(1);
        let samples = super::NeighborCountKernel::sample_size(n_points, stride) as u64;
        let eps_sq = self.eps * self.eps;

        ctx.for_each_thread(|t| {
            if t.gid >= samples {
                return;
            }
            let pi = (t.gid as usize) * stride;
            debug_assert!(pi < n_points);

            t.read_global::<f64>(D as u64);
            let q = self.points.get(pi);
            t.charge_flops(5 * D as u64);
            let c = self.geom.cell_coords_of(&q);
            let (stencil, n_cells) = self.geom.stencil_of_coords(&c);

            let mut local = 0u64;
            for &h in &stencil[..n_cells] {
                let range = load_cell_range_nd(t, &self.cells, h);
                scan_ids_nd(
                    t,
                    self.points,
                    &self.lookup[range.start as usize..range.end as usize],
                    &q.coords,
                    eps_sq,
                    |_, hits| local += hits.len() as u64,
                );
            }
            t.charge_atomic();
            self.counter.add(local);
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::Device;
    use spatial::{GridIndexN, PointN, PointStoreN};

    fn nd_points<const D: usize>(n: usize, extent: f64) -> Vec<PointN<D>> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                PointN::new(std::array::from_fn(|k| {
                    (t * (0.433 + 0.239 * k as f64)).fract() * extent
                }))
            })
            .collect()
    }

    fn brute_pairs_nd<const D: usize>(data: &[PointN<D>], eps: f64) -> Vec<(u32, u32)> {
        let eps_sq = eps * eps;
        let mut out = Vec::new();
        for (i, p) in data.iter().enumerate() {
            for (j, q) in data.iter().enumerate() {
                if p.distance_sq(q) <= eps_sq {
                    out.push((i as u32, j as u32));
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn run_gridnd_kernel<const D: usize>(
        data: &[PointN<D>],
        eps: f64,
        n_batches: usize,
    ) -> Vec<(u32, u32)> {
        let device = Device::k20c();
        let store = PointStoreN::from_points(data);
        let grid = GridIndexN::<D>::build(data, eps);
        let counter = DeviceCounter::new(&device).unwrap();
        let count = GridNdCountKernel {
            points: store.view(),
            cells: grid.cells(),
            lookup: grid.lookup(),
            geom: *grid.geometry(),
            eps,
            stride: 1,
            counter: &counter,
        };
        device.launch(count.launch_config(256), &count).unwrap();
        let cap = counter.get() as usize + 64;
        let mut result = DeviceAppendBuffer::new(&device, cap).unwrap();
        for batch in 0..n_batches {
            let kernel = GpuCalcGridNd {
                points: store.view(),
                cells: grid.cells(),
                lookup: grid.lookup(),
                geom: *grid.geometry(),
                eps,
                batch,
                n_batches,
                result: &result,
            };
            device.launch(kernel.launch_config(256), &kernel).unwrap();
        }
        assert!(!result.overflowed());
        let mut pairs = result.as_filled_slice().to_vec();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn matches_brute_force_in_each_dimension() {
        let p2 = nd_points::<2>(300, 6.0);
        let p3 = nd_points::<3>(250, 4.0);
        let p4 = nd_points::<4>(180, 3.0);
        for eps in [0.5, 1.1] {
            assert_eq!(run_gridnd_kernel(&p2, eps, 1), brute_pairs_nd(&p2, eps));
            assert_eq!(run_gridnd_kernel(&p3, eps, 1), brute_pairs_nd(&p3, eps));
            assert_eq!(run_gridnd_kernel(&p4, eps, 1), brute_pairs_nd(&p4, eps));
        }
    }

    #[test]
    fn batched_union_equals_unbatched() {
        let data = nd_points::<3>(350, 4.0);
        let eps = 0.7;
        let unbatched = run_gridnd_kernel(&data, eps, 1);
        for n_batches in [2, 4, 5] {
            assert_eq!(run_gridnd_kernel(&data, eps, n_batches), unbatched);
        }
    }

    #[test]
    fn pairs_match_tree_backend() {
        // Grid-ND and tree backends must emit identical pair sets —
        // the cross-backend guarantee in d > 2.
        let data = nd_points::<3>(300, 4.0);
        let eps = 0.8;
        let device = Device::k20c();
        let store = PointStoreN::from_points(&data);
        let tree = spatial::PackedKdTree::<3>::build(store.view());
        let counter = DeviceCounter::new(&device).unwrap();
        let count = super::super::TreeCountKernel {
            points: store.view(),
            tree: tree.view(),
            eps,
            stride: 1,
            counter: &counter,
        };
        device.launch(count.launch_config(256), &count).unwrap();
        let mut result = DeviceAppendBuffer::new(&device, counter.get() as usize + 64).unwrap();
        let kernel = super::super::GpuCalcTree {
            points: store.view(),
            tree: tree.view(),
            eps,
            batch: 0,
            n_batches: 1,
            result: &result,
        };
        device.launch(kernel.launch_config(256), &kernel).unwrap();
        assert!(!result.overflowed());
        let mut tree_pairs = result.as_filled_slice().to_vec();
        tree_pairs.sort_unstable();
        assert_eq!(run_gridnd_kernel(&data, eps, 1), tree_pairs);
    }
}

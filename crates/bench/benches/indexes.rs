//! Criterion benches for the spatial indexes: construction and
//! ε-neighborhood query throughput of grid vs R-tree (bulk and dynamic)
//! vs kd-tree. The grid's construction advantage is the paper's aside
//! that "the grid indexes can be constructed faster than the R-tree".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spatial::{GridIndex, KdTree, Point2, RTree};

fn bench_construction(c: &mut Criterion) {
    let data = datasets::spec::SDSS1.generate(0.005).points;
    let mut group = c.benchmark_group("index-construction");
    group.sample_size(10);

    group.bench_function("grid", |b| b.iter(|| GridIndex::build(&data, 0.3)));
    group.bench_function("rtree-bulk", |b| b.iter(|| RTree::bulk_load(&data)));
    group.bench_function("rtree-insert", |b| {
        b.iter(|| {
            let mut t = RTree::new();
            for (i, p) in data.iter().enumerate() {
                t.insert(i as u32, *p);
            }
            t
        })
    });
    group.bench_function("kdtree", |b| b.iter(|| KdTree::build(&data)));
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let data = datasets::spec::SDSS1.generate(0.005).points;
    let eps = 0.3;
    let grid = GridIndex::build(&data, eps);
    let rtree = RTree::bulk_load(&data);
    let kdtree = KdTree::build(&data);
    let queries: Vec<Point2> = data.iter().step_by(37).copied().collect();

    let mut group = c.benchmark_group("index-queries");
    group.throughput(criterion::Throughput::Elements(queries.len() as u64));

    group.bench_with_input(
        BenchmarkId::new("grid", queries.len()),
        &queries,
        |b, qs| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in qs {
                    grid.query_visit(&data, q, |_| hits += 1);
                }
                hits
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("rtree", queries.len()),
        &queries,
        |b, qs| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in qs {
                    rtree.query_eps_visit(q, eps, |_, _| hits += 1);
                }
                hits
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("kdtree", queries.len()),
        &queries,
        |b, qs| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in qs {
                    kdtree.query_eps_visit(q, eps, |_| hits += 1);
                }
                hits
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_construction, bench_queries);
criterion_main!(benches);

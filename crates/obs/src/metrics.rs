//! Metrics registry: named counters, gauges, and log-scale histograms.
//!
//! All metric families are keyed by dotted string names
//! (`kernel.gpucalc_global.mean_occupancy`) and stored in `BTreeMap`s so
//! exports are deterministically ordered. The registry is behind one
//! mutex — metric updates happen at batch/stage granularity (tens to
//! thousands per run), nowhere near contention territory.

use crate::json::JsonWriter;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Number of histogram buckets: values are bucketed by `ceil(log2(v))`
/// clamped to `[0, N_BUCKETS-1]`, so bucket `k` covers `(2^(k-1), 2^k]`.
const N_BUCKETS: usize = 64;

#[derive(Debug, Clone)]
pub struct Histogram {
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_for(v: f64) -> usize {
        // NaN, negatives, and everything up to 1.0 land in bucket 0.
        if v.is_nan() || v <= 1.0 {
            return 0;
        }
        (v.log2().ceil() as usize).min(N_BUCKETS - 1)
    }

    fn observe(&mut self, v: f64) {
        self.counts[Self::bucket_for(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Upper bound of bucket `k` (`2^k`), for export labelling.
    pub fn bucket_upper(k: usize) -> f64 {
        (k as f64).exp2()
    }

    /// Approximate `p`-quantile (`p` in `[0, 1]`) from the log-scale
    /// buckets: the upper bound of the first bucket whose cumulative count
    /// reaches `ceil(p * count)`, clamped into the observed `[min, max]`
    /// range so single-sample and narrow histograms report exact values.
    /// Returns 0 on an empty histogram. Used by the benchmark summaries
    /// (`repro bench`) for per-batch distribution percentiles.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let target = ((p * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_upper(k).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Thread-safe metrics registry.
#[derive(Default)]
pub struct Metrics {
    inner: Mutex<Inner>,
}

impl Metrics {
    pub fn new() -> Self {
        Metrics::default()
    }

    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner.gauges.insert(name.to_string(), value);
    }

    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }
}

/// A point-in-time copy of every metric, for export.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// JSON document: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, mean, min, max, buckets: [...]}}}`.
    /// Histogram buckets are exported sparsely as `[upper_bound, count]`
    /// pairs.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();

        w.key("counters");
        w.begin_object();
        for (name, v) in &self.counters {
            w.field_uint(name, *v);
        }
        w.end_object();

        w.key("gauges");
        w.begin_object();
        for (name, v) in &self.gauges {
            w.field_float(name, *v);
        }
        w.end_object();

        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.begin_object();
            w.field_uint("count", h.count);
            w.field_float("sum", h.sum);
            w.field_float("mean", h.mean());
            w.field_float("min", if h.count == 0 { 0.0 } else { h.min });
            w.field_float("max", if h.count == 0 { 0.0 } else { h.max });
            w.key("buckets");
            w.begin_array();
            for (k, &c) in h.counts.iter().enumerate() {
                if c > 0 {
                    w.begin_array();
                    w.float(Histogram::bucket_upper(k));
                    w.uint(c);
                    w.end_array();
                }
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();

        w.end_object();
        w.finish()
    }

    /// Plain-text rendering for terminal reports.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<48} {v}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<48} {v:.4}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<48} n={} mean={:.2} min={:.2} max={:.2}",
                    h.count,
                    h.mean(),
                    if h.count == 0 { 0.0 } else { h.min },
                    if h.count == 0 { 0.0 } else { h.max },
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.counter_add("a", 2);
        m.counter_add("a", 3);
        m.counter_add("b", 1);
        let s = m.snapshot();
        assert_eq!(s.counters["a"], 5);
        assert_eq!(s.counters["b"], 1);
    }

    #[test]
    fn gauges_overwrite() {
        let m = Metrics::new();
        m.gauge_set("g", 1.0);
        m.gauge_set("g", 7.5);
        assert_eq!(m.snapshot().gauges["g"], 7.5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_for(0.0), 0);
        assert_eq!(Histogram::bucket_for(1.0), 0);
        assert_eq!(Histogram::bucket_for(2.0), 1);
        assert_eq!(Histogram::bucket_for(3.0), 2);
        assert_eq!(Histogram::bucket_for(1024.0), 10);
        assert_eq!(Histogram::bucket_for(f64::MAX), N_BUCKETS - 1);
        // Negative and NaN inputs land in bucket 0 rather than panicking.
        assert_eq!(Histogram::bucket_for(-5.0), 0);
        assert_eq!(Histogram::bucket_for(f64::NAN), 0);
    }

    #[test]
    fn histogram_stats() {
        let m = Metrics::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            m.observe("h", v);
        }
        let s = m.snapshot();
        let h = &s.histograms["h"];
        assert_eq!(h.count, 4);
        assert_eq!(h.mean(), 4.0);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 10.0);
    }

    #[test]
    fn bucket_upper_edges() {
        // Bucket 0 covers everything up to 1.0; its upper bound is 2^0.
        assert_eq!(Histogram::bucket_upper(0), 1.0);
        assert_eq!(Histogram::bucket_upper(1), 2.0);
        assert_eq!(Histogram::bucket_upper(10), 1024.0);
        // The clamp bucket: huge values all land here and its bound is
        // finite (2^63), so exports never print inf.
        let top = Histogram::bucket_upper(N_BUCKETS - 1);
        assert!(top.is_finite());
        assert_eq!(top, (N_BUCKETS as f64 - 1.0).exp2());
        assert_eq!(Histogram::bucket_for(f64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn mean_on_empty_and_single_sample() {
        let empty = Metrics::new().snapshot();
        assert!(empty.histograms.is_empty());
        let m = Metrics::new();
        m.observe("h", 0.0);
        let s0 = m.snapshot();
        assert_eq!(s0.histograms["h"].mean(), 0.0);
        assert_eq!(s0.histograms["h"].count, 1);

        let m = Metrics::new();
        m.observe("one", 42.0);
        let h = m.snapshot().histograms["one"].clone();
        assert_eq!(h.mean(), 42.0);
        assert_eq!(h.min, 42.0);
        assert_eq!(h.max, 42.0);
    }

    #[test]
    fn percentile_empty_single_and_spread() {
        let m = Metrics::new();
        assert_eq!(Histogram::new().percentile(0.5), 0.0);

        // Single sample: every percentile is that sample (the [min, max]
        // clamp makes the bucket bound exact).
        m.observe("one", 42.0);
        let h = m.snapshot().histograms["one"].clone();
        for p in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.percentile(p), 42.0, "p={p}");
        }

        // Spread samples across distinct buckets: 10 values 2^1..2^10.
        let m = Metrics::new();
        for k in 1..=10 {
            m.observe("h", (k as f64).exp2());
        }
        let h = m.snapshot().histograms["h"].clone();
        assert_eq!(h.percentile(0.1), 2.0);
        assert_eq!(h.percentile(0.5), 32.0);
        assert_eq!(h.percentile(1.0), 1024.0);
        // Out-of-range p clamps rather than panicking.
        assert_eq!(h.percentile(-1.0), 2.0);
        assert_eq!(h.percentile(2.0), 1024.0);
        // Monotone in p.
        let ps: Vec<f64> = (0..=20).map(|i| h.percentile(i as f64 / 20.0)).collect();
        assert!(ps.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn json_export_shape() {
        let m = Metrics::new();
        m.counter_add("c", 1);
        m.gauge_set("g", 0.5);
        m.observe("h", 4.0);
        let json = m.snapshot().to_json();
        assert!(json.contains(r#""counters":{"c":1}"#), "{json}");
        assert!(json.contains(r#""g":0.500"#), "{json}");
        assert!(json.contains(r#""histograms""#), "{json}");
        assert!(json.contains(r#""count":1"#), "{json}");
    }

    #[test]
    fn empty_snapshot_renders() {
        let m = Metrics::new();
        let s = m.snapshot();
        assert_eq!(s.to_text(), "");
        assert!(s.to_json().contains("counters"));
    }
}

//! **Table I** — fraction of sequential DBSCAN time spent searching the
//! R-tree.
//!
//! Paper: between 0.480 and 0.722 across the rows (minpts = 4); this is
//! the motivation for offloading the ε-neighborhood searches to the GPU.

use crate::common::{fmt_secs, DatasetCache, Options, TextTable};
use hybrid_dbscan_core::reference::ReferenceDbscan;

/// The published rows: (dataset, ε, published fraction).
pub const ROWS: [(&str, f64, f64); 10] = [
    ("SW1", 0.20, 0.522),
    ("SW1", 1.40, 0.483),
    ("SW4", 0.15, 0.525),
    ("SW4", 0.45, 0.510),
    ("SDSS1", 0.20, 0.703),
    ("SDSS1", 1.40, 0.480),
    ("SDSS2", 0.15, 0.679),
    ("SDSS2", 0.45, 0.512),
    ("SDSS3", 0.07, 0.722),
    ("SDSS3", 0.12, 0.629),
];

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    pub dataset: String,
    pub eps: f64,
    pub fraction: f64,
    pub total_secs: f64,
    pub paper_fraction: f64,
}

/// Run the Table I measurement.
pub fn run(opts: &Options) -> Vec<Row> {
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1", "SW4", "SDSS1", "SDSS2", "SDSS3"]);
    let mut out = Vec::new();

    for &(name, eps, paper) in ROWS.iter() {
        if !selected.iter().any(|s| s == name) {
            continue;
        }
        let data = cache.get(name).points.clone();
        let mut fracs = Vec::new();
        let mut totals = Vec::new();
        for _ in 0..opts.trials.max(1) {
            let report = ReferenceDbscan::new(eps, 4).run(&data);
            fracs.push(report.search_fraction());
            totals.push(report.total_time.as_secs());
        }
        let fraction = fracs.iter().sum::<f64>() / fracs.len() as f64;
        let total_secs = totals.iter().sum::<f64>() / totals.len() as f64;
        out.push(Row {
            dataset: name.to_string(),
            eps,
            fraction,
            total_secs,
            paper_fraction: paper,
        });
    }
    out
}

/// Print the table in the paper's layout.
pub fn print(opts: &Options) {
    println!("== Table I: fraction of sequential DBSCAN time in R-tree search (minpts = 4) ==");
    println!("Paper range: 0.480 - 0.722; expectation: a large fraction of total time.\n");
    let rows = run(opts);
    opts.write_csv(
        "table1",
        &["dataset", "eps", "fraction", "paper_fraction", "total_secs"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.dataset.clone(),
                    r.eps.to_string(),
                    r.fraction.to_string(),
                    r.paper_fraction.to_string(),
                    r.total_secs.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    let mut t = TextTable::new(&["Dataset", "eps", "Frac. Time", "paper", "total"]);
    for r in &rows {
        t.row(vec![
            r.dataset.clone(),
            format!("{:.2}", r.eps),
            format!("{:.3}", r.fraction),
            format!("{:.3}", r.paper_fraction),
            fmt_secs(r.total_secs),
        ]);
    }
    t.print();
}

//! OPTICS over the GPU-built neighbor table: one ordering, many densities.
//!
//! The paper contrasts its S3 scenario (fixed ε, varying minpts) with
//! OPTICS (fixed minpts, varying ε). Both amortize neighborhood
//! computation across parameter sweeps — and both can consume the
//! GPU-built table: the table's ε becomes OPTICS' ε_max, and DBSCAN-like
//! clusterings for any ε' ≤ ε_max fall out of a single ordering pass.
//!
//! ```sh
//! cargo run --release --example optics_reachability [scale]
//! ```

use hybrid_dbscan::core::dbscan::TableSource;
use hybrid_dbscan::core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan::core::optics::optics;
use hybrid_dbscan::datasets::spec;
use hybrid_dbscan::gpu_sim::Device;
use hybrid_dbscan::spatial::presort::spatial_sort;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.003);

    println!("generating SW1 at scale {scale}…");
    let dataset = spec::SW1.generate(scale);
    let eps_max = 1.0;
    let minpts = 5;

    // The GPU builds the eps_max neighbor table once.
    let device = Device::k20c();
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());
    let handle = hybrid
        .build_table(&dataset.points, eps_max)
        .expect("table build failed");
    println!(
        "neighbor table at eps_max = {eps_max}: {} entries, GPU phase {:.1} ms",
        handle.table.num_entries(),
        handle.gpu.modeled_time.as_millis()
    );

    // OPTICS consumes the table (in its sorted coordinate space).
    let sorted = spatial_sort(&dataset.points);
    let ordering = optics(&TableSource::new(&handle.table), &sorted, eps_max, minpts);

    // A coarse ASCII reachability plot: the valleys are clusters.
    println!("\nreachability plot (minpts = {minpts}; column = ordering, height = reachability):");
    let plot = ordering.reachability_plot();
    let cols = 100usize;
    let chunk = plot.len().div_ceil(cols);
    let heights: Vec<f64> = plot
        .chunks(chunk)
        .map(|c| {
            let vals: Vec<f64> = c.iter().filter_map(|v| *v).collect();
            if vals.is_empty() {
                eps_max
            } else {
                vals.iter().sum::<f64>() / vals.len() as f64
            }
        })
        .collect();
    for level in (1..=8).rev() {
        let threshold = eps_max * level as f64 / 8.0;
        let row: String = heights
            .iter()
            .map(|&h| if h >= threshold { '#' } else { ' ' })
            .collect();
        println!("{threshold:>5.2} |{row}");
    }

    // Extract DBSCAN-equivalent clusterings at several eps cuts from the
    // single ordering.
    println!("\n  eps'   clusters   noise");
    for cut in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let c = ordering.extract_dbscan(cut);
        println!(
            "  {:>4.2}   {:>8}   {:>5}",
            cut,
            c.num_clusters(),
            c.noise_count()
        );
    }
}

//! G-DBSCAN (Andrade et al. 2013) — the paper's reference [6], as a
//! comparator.
//!
//! Where Hybrid-DBSCAN computes neighbor lists on the GPU and clusters on
//! the host, G-DBSCAN keeps *everything* on the GPU: it materializes the
//! ε-proximity graph (vertex degrees, prefix sum, adjacency fill — all
//! brute-force `O(|D|²)`, no index) and then identifies clusters with
//! level-synchronous breadth-first searches over the graph. The paper
//! groups it with CUDA-DClust and Mr. Scan as the "cluster on the GPU,
//! then merge" family it deliberately departs from.
//!
//! This implementation follows the published structure on the simulated
//! device:
//!
//! 1. `DegreeKernel` — one thread per point, scans all of `D`, counts
//!    neighbors within ε (brute force, as published).
//! 2. Device exclusive scan over the degrees → adjacency offsets.
//! 3. `AdjacencyKernel` — one thread per point, fills its adjacency slice.
//! 4. `BfsLevelKernel` — one thread per point and BFS level: frontier
//!    points mark their unvisited neighbors as the next frontier. One BFS
//!    per cluster, seeded from each unvisited core point.
//!
//! Labels match DBSCAN's on core points and noise exactly; border points
//! follow BFS arrival order (the same ambiguity class as DBSCAN's own
//! visit order — the tests compare accordingly).

use crate::dbscan::{Clustering, PointLabel};
use gpu_sim::device::Device;
use gpu_sim::error::DeviceError;
use gpu_sim::kernel::{BlockCtx, BlockKernel};
use gpu_sim::launch::LaunchConfig;
use gpu_sim::memory::{DeviceBuffer, DeviceCounter, RawAlloc};
use gpu_sim::profiler::KernelProfile;
use gpu_sim::thrust;
use gpu_sim::time::SimDuration;
use spatial::Point2;
use std::sync::atomic::{AtomicU32, Ordering};

/// Brute-force degree kernel: thread `i` counts `|N_ε(p_i)|` over all of
/// `D` (G-DBSCAN builds the complete proximity graph without an index).
struct DegreeKernel<'a> {
    data: &'a [Point2],
    eps: f64,
    degrees: &'a [AtomicU32],
}

impl BlockKernel for DegreeKernel<'_> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let n = self.data.len();
        let eps_sq = self.eps * self.eps;
        ctx.for_each_thread(|t| {
            if t.gid >= n as u64 {
                return;
            }
            let p = self.data[t.gid as usize];
            t.read_global::<Point2>(1);
            // The whole database streams past every thread; on hardware
            // this is tiled through shared memory, so charge shared-rate
            // traffic plus the distance arithmetic.
            t.access_shared::<Point2>(n as u64);
            t.charge_flops(5 * n as u64);
            let mut deg = 0u32;
            for q in self.data {
                if p.distance_sq(q) <= eps_sq {
                    deg += 1;
                }
            }
            t.write_global::<u32>(1);
            self.degrees[t.gid as usize].store(deg, Ordering::Relaxed);
        });
        Ok(())
    }
}

/// Adjacency-fill kernel: thread `i` writes the ids of its neighbors into
/// its `[offset_i, offset_i + degree_i)` slice of the adjacency array.
struct AdjacencyKernel<'a> {
    data: &'a [Point2],
    eps: f64,
    offsets: &'a [u32],
    adjacency: &'a [AtomicU32],
}

impl BlockKernel for AdjacencyKernel<'_> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let n = self.data.len();
        let eps_sq = self.eps * self.eps;
        ctx.for_each_thread(|t| {
            if t.gid >= n as u64 {
                return;
            }
            let i = t.gid as usize;
            let p = self.data[i];
            t.read_global::<Point2>(1);
            t.read_global::<u32>(1);
            t.access_shared::<Point2>(n as u64);
            t.charge_flops(5 * n as u64);
            let mut cursor = self.offsets[i] as usize;
            for (j, q) in self.data.iter().enumerate() {
                if p.distance_sq(q) <= eps_sq {
                    t.write_global::<u32>(1);
                    self.adjacency[cursor].store(j as u32, Ordering::Relaxed);
                    cursor += 1;
                }
            }
        });
        Ok(())
    }
}

/// One level of the level-synchronous BFS: every frontier vertex retires
/// into the visited set and pushes its unvisited neighbors (core
/// expansion only — border vertices join but do not expand).
struct BfsLevelKernel<'a> {
    offsets: &'a [u32],
    degrees: &'a [u32],
    adjacency: &'a [u32],
    core: &'a [bool],
    /// 1 = in current frontier.
    frontier: &'a [AtomicU32],
    next_frontier: &'a [AtomicU32],
    /// Cluster label per vertex (u32::MAX = unvisited).
    labels: &'a [AtomicU32],
    cluster: u32,
    /// Number of vertices added to the next frontier.
    produced: &'a DeviceCounter,
}

impl BlockKernel for BfsLevelKernel<'_> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let n = self.offsets.len();
        ctx.for_each_thread(|t| {
            if t.gid >= n as u64 {
                return;
            }
            let v = t.gid as usize;
            t.read_global::<u32>(1);
            if self.frontier[v].load(Ordering::Relaxed) == 0 {
                return;
            }
            self.frontier[v].store(0, Ordering::Relaxed);
            // Border vertices join the cluster but do not expand it.
            if !self.core[v] {
                return;
            }
            let start = self.offsets[v] as usize;
            let deg = self.degrees[v] as usize;
            t.read_global::<u32>(deg as u64 + 2);
            t.charge_flops(deg as u64);
            for &u in &self.adjacency[start..start + deg] {
                // Claim unvisited neighbors for this cluster.
                if self.labels[u as usize]
                    .compare_exchange(u32::MAX, self.cluster, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    t.charge_atomic();
                    t.write_global::<u32>(1);
                    self.next_frontier[u as usize].store(1, Ordering::Relaxed);
                    self.produced.add(1);
                }
            }
        });
        Ok(())
    }
}

/// Timing and profiling of a G-DBSCAN run.
#[derive(Debug, Clone)]
pub struct GDbscanReport {
    /// Modeled device time: graph construction + scan + all BFS levels.
    pub modeled_time: SimDuration,
    /// Of which graph construction (degree + scan + adjacency).
    pub graph_time: SimDuration,
    /// Total BFS kernel launches (levels summed over clusters).
    pub bfs_levels: usize,
    /// Edges in the proximity graph (= |R|, the hybrid's pair count).
    pub edges: usize,
    pub kernel_profile: KernelProfile,
}

/// Result of [`g_dbscan`].
pub struct GDbscanResult {
    pub clustering: Clustering,
    pub report: GDbscanReport,
}

/// Run G-DBSCAN on the simulated device.
pub fn g_dbscan(
    device: &Device,
    data: &[Point2],
    eps: f64,
    minpts: usize,
) -> Result<GDbscanResult, DeviceError> {
    assert!(!data.is_empty(), "cannot cluster an empty database");
    let n = data.len();
    let block = 256;
    let mut profile = KernelProfile::new();
    let mut total = SimDuration::ZERO;

    // Upload D.
    let (d_buf, up) = DeviceBuffer::from_host(device, data, false)?;
    total += up;

    // Phase 1: degrees.
    let degrees_dev: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let _degrees_alloc = RawAlloc::new(device, n * 4)?;
    let degree_kernel = DegreeKernel {
        data: d_buf.as_slice(),
        eps,
        degrees: &degrees_dev,
    };
    let report = device.launch(LaunchConfig::for_elements(n, block), &degree_kernel)?;
    total += report.duration;
    profile.record(&report);
    let degrees: Vec<u32> = degrees_dev
        .iter()
        .map(|d| d.load(Ordering::Relaxed))
        .collect();

    // Phase 2: exclusive scan -> offsets.
    let (offsets, scan_t) = thrust::exclusive_scan(device, &degrees);
    total += scan_t;
    let edges = degrees.iter().map(|&d| d as usize).sum::<usize>();

    // Phase 3: adjacency fill.
    let _adjacency_alloc = RawAlloc::new(device, edges * 4)?;
    let adjacency: Vec<AtomicU32> = (0..edges).map(|_| AtomicU32::new(0)).collect();
    let adj_kernel = AdjacencyKernel {
        data: d_buf.as_slice(),
        eps,
        offsets: &offsets,
        adjacency: &adjacency,
    };
    let report = device.launch(LaunchConfig::for_elements(n, block), &adj_kernel)?;
    total += report.duration;
    profile.record(&report);
    let adjacency: Vec<u32> = adjacency
        .iter()
        .map(|a| a.load(Ordering::Relaxed))
        .collect();
    let graph_time = total;

    // Phase 4: cluster identification by repeated level-synchronous BFS.
    let core: Vec<bool> = degrees.iter().map(|&d| (d as usize) >= minpts).collect();
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let frontier: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let next_frontier: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let produced = DeviceCounter::new(device)?;
    let mut bfs_levels = 0usize;
    let mut n_clusters = 0u32;

    for seed in 0..n as u32 {
        if !core[seed as usize] || labels[seed as usize].load(Ordering::Relaxed) != u32::MAX {
            continue;
        }
        let cluster = n_clusters;
        n_clusters += 1;
        labels[seed as usize].store(cluster, Ordering::Relaxed);
        frontier[seed as usize].store(1, Ordering::Relaxed);
        loop {
            produced.reset();
            let kernel = BfsLevelKernel {
                offsets: &offsets,
                degrees: &degrees,
                adjacency: &adjacency,
                core: &core,
                frontier: &frontier,
                next_frontier: &next_frontier,
                labels: &labels,
                cluster,
                produced: &produced,
            };
            let report = device.launch(LaunchConfig::for_elements(n, block), &kernel)?;
            total += report.duration;
            profile.record(&report);
            bfs_levels += 1;
            if produced.get() == 0 {
                break;
            }
            // Swap frontiers (copy, since the buffers are shared refs).
            for (f, nf) in frontier.iter().zip(&next_frontier) {
                f.store(nf.swap(0, Ordering::Relaxed), Ordering::Relaxed);
            }
        }
        // Clear any frontier residue before the next seed.
        for f in &frontier {
            f.store(0, Ordering::Relaxed);
        }
    }

    let label_vec: Vec<PointLabel> = labels
        .iter()
        .map(|l| match l.load(Ordering::Relaxed) {
            u32::MAX => PointLabel::NOISE,
            k => PointLabel::cluster(k),
        })
        .collect();

    Ok(GDbscanResult {
        clustering: Clustering::from_labels(label_vec),
        report: GDbscanReport {
            modeled_time: total,
            graph_time,
            bfs_levels,
            edges,
            kernel_profile: profile,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::{Dbscan, GridSource};
    use crate::kernels::test_support::mixed_points;
    use spatial::GridIndex;

    fn check_against_dbscan(data: &[Point2], eps: f64, minpts: usize) {
        let device = Device::k20c();
        let g = g_dbscan(&device, data, eps, minpts).unwrap();
        let grid = GridIndex::build(data, eps);
        let d = Dbscan::new(minpts).run(&GridSource::new(&grid, data));

        assert_eq!(
            g.clustering.num_clusters(),
            d.num_clusters(),
            "cluster count"
        );
        // Noise agreement is exact.
        for i in 0..data.len() {
            assert_eq!(
                g.clustering.labels()[i].is_noise(),
                d.labels()[i].is_noise(),
                "noise disagreement at {i}"
            );
        }
        // Core same-cluster relation agrees exactly.
        let eps_sq = eps * eps;
        let cores: Vec<usize> = (0..data.len())
            .filter(|&i| {
                data.iter()
                    .filter(|q| data[i].distance_sq(q) <= eps_sq)
                    .count()
                    >= minpts
            })
            .collect();
        for w in cores.windows(2) {
            let same_g = g.clustering.labels()[w[0]] == g.clustering.labels()[w[1]];
            let same_d = d.labels()[w[0]] == d.labels()[w[1]];
            assert_eq!(same_g, same_d, "core pair {w:?}");
        }
    }

    #[test]
    fn matches_dbscan_structure() {
        let data = mixed_points(300);
        for (eps, minpts) in [(0.5, 4), (1.0, 8), (0.3, 2)] {
            check_against_dbscan(&data, eps, minpts);
        }
    }

    #[test]
    fn edge_count_equals_hybrid_pair_count() {
        use crate::hybrid::{HybridConfig, HybridDbscan};
        let data = mixed_points(250);
        let eps = 0.6;
        let device = Device::k20c();
        let g = g_dbscan(&device, &data, eps, 4).unwrap();
        let h = HybridDbscan::new(&device, HybridConfig::default())
            .build_table(&data, eps)
            .unwrap();
        assert_eq!(g.report.edges, h.gpu.result_pairs, "same ε-graph");
    }

    #[test]
    fn graph_construction_scales_quadratically() {
        // The O(n^2) indexless graph construction is the published
        // bottleneck: doubling n must roughly quadruple the graph time
        // (at small n, fixed launch overheads damp the ratio).
        let device = Device::k20c();
        let small = g_dbscan(&device, &mixed_points(1000), 0.4, 4).unwrap();
        let large = g_dbscan(&device, &mixed_points(4000), 0.4, 4).unwrap();
        let ratio = large.report.graph_time.as_secs() / small.report.graph_time.as_secs();
        assert!(
            ratio > 6.0,
            "graph time grew only {ratio:.2}x for 4x points (expect ~16x)"
        );
        assert!(small.report.bfs_levels >= 1);
    }

    #[test]
    fn all_noise_when_minpts_too_large() {
        let data = mixed_points(100);
        let device = Device::k20c();
        let g = g_dbscan(&device, &data, 0.2, 1000).unwrap();
        assert_eq!(g.clustering.num_clusters(), 0);
        assert_eq!(g.clustering.noise_count(), 100);
    }

    #[test]
    fn device_memory_released() {
        let data = mixed_points(150);
        let device = Device::k20c();
        let _ = g_dbscan(&device, &data, 0.5, 4).unwrap();
        assert_eq!(device.used_bytes(), 0);
    }
}

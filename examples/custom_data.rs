//! Cluster your own `x,y` CSV data, with a capacity-planning preview.
//!
//! ```sh
//! cargo run --release --example custom_data [path/to/points.csv] [eps] [minpts]
//! ```
//!
//! Without arguments, a demonstration CSV is generated first. The example
//! also shows the batching scheme's plan (Equation 1 of the paper) before
//! running, the way a capacity-conscious user would inspect it.

use hybrid_dbscan::core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan::datasets::io;
use hybrid_dbscan::datasets::spec;
use hybrid_dbscan::gpu_sim::Device;
use std::path::PathBuf;

fn main() {
    let mut args = std::env::args().skip(1);
    let path: PathBuf = match args.next() {
        Some(p) => PathBuf::from(p),
        None => {
            // Produce a demo file from the SW1 generator.
            let mut p = std::env::temp_dir();
            p.push("hybrid_dbscan_demo_points.csv");
            let data = spec::SW1.generate(0.002);
            io::save_csv(&p, &data.points).expect("failed to write demo CSV");
            println!("no input given — wrote a demo dataset to {}", p.display());
            p
        }
    };
    let eps: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let minpts: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let points = io::load_csv(&path).expect("failed to load CSV");
    println!("loaded {} points from {}", points.len(), path.display());

    let device = Device::k20c();
    let hybrid = HybridDbscan::new(&device, HybridConfig::default());

    let result = hybrid.run(&points, eps, minpts).expect("clustering failed");
    let plan = &result.gpu.plan;
    println!(
        "\nbatch plan (Eq. 1): estimated {} pairs, {} batches of <= {} pairs (alpha = {}){}",
        plan.estimated_total,
        result.gpu.n_batches,
        plan.buffer_items,
        plan.effective_alpha,
        if plan.variable_buffer {
            ", variable buffers"
        } else {
            ", static buffers"
        },
    );
    println!("actual result set: {} pairs", result.gpu.result_pairs);

    println!(
        "\neps = {eps}, minpts = {minpts}: {} clusters, {} noise / {} points",
        result.clustering.num_clusters(),
        result.clustering.noise_count(),
        points.len()
    );
    let sizes = result.clustering.cluster_sizes();
    println!("largest clusters: {:?}", &sizes[..sizes.len().min(10)]);
    println!(
        "time: GPU phase {:.1} ms + DBSCAN {:.1} ms",
        result.timings.gpu_phase.as_millis(),
        result.timings.dbscan.as_millis()
    );
}

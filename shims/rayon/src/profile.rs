//! Opt-in pool introspection: per-worker lifecycle telemetry.
//!
//! When a [`ProfileSession`] is active, the pool records, per executing
//! thread, every chunk execution (wall start/duration, the region's
//! label, whether the chunk was **stolen** — claimed by a thread other
//! than the region's submitter — or a **local pop** by the submitter
//! itself), each region's **queue wait** (submission → first claim), and
//! every worker **park** interval (condvar wait for work). The snapshot
//! ([`PoolProfile`]) is plain `std`-only data, so consumers (the `obs`
//! recorder) need no dependency edge back into this crate's internals.
//!
//! ## Determinism contract
//!
//! Instrumentation only *observes*: it reads the wall clock and appends
//! to a side buffer. It never influences chunk claiming order, chunk
//! contents, or any modeled quantity — the workspace's bitwise
//! determinism policy (DESIGN.md §12) is pinned by tests that run the
//! full pipeline with profiling on and off and compare result bits.
//!
//! ## Cost model
//!
//! Disabled (the default), the pool's hot path pays one relaxed atomic
//! load per region/park decision and nothing per chunk. Enabled, each
//! chunk execution adds two `Instant::now()` reads and one short
//! mutex-guarded append; pool wall times shift by that overhead, modeled
//! times do not.
//!
//! Sessions are serialized by a global lock: [`profile_pool`] blocks
//! until any other session finishes, so concurrent tests cannot corrupt
//! each other's snapshots (events from unrelated pool work running
//! during a session are still captured — the profiler observes the whole
//! process-wide pool, which is what a scaling diagnosis wants).

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// One chunk execution on one thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskEvent {
    /// Region label (`"par_iter"`, `"sort_merge"`, `"join"`, `"scope"`).
    pub label: &'static str,
    /// Wall microseconds since the session epoch.
    pub start_us: f64,
    pub dur_us: f64,
    /// Claimed by a thread other than the region's submitter.
    pub stolen: bool,
    /// Region queue wait (submission → first claim), attributed to the
    /// region's first-claimed chunk; 0 for every later chunk.
    pub queue_us: f64,
}

/// Aggregated telemetry for one thread that executed pool work.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerProfile {
    /// OS thread name (`rayon-worker-N`, or the submitter's name).
    pub name: String,
    /// Total wall time inside chunk executions.
    pub busy_us: f64,
    /// Total wall time parked on the work condvar.
    pub park_us: f64,
    /// Total region queue wait attributed to this thread's first claims.
    pub queue_wait_us: f64,
    pub steals: u64,
    pub local_pops: u64,
    pub parks: u64,
    pub tasks: u64,
    /// Per-chunk timeline, sorted by `start_us`.
    pub events: Vec<TaskEvent>,
}

/// Snapshot of one profiling session over the global pool.
#[derive(Debug, Clone)]
pub struct PoolProfile {
    /// Session start on the wall clock (lets a consumer with its own
    /// epoch re-base `start_us` values).
    pub epoch: Instant,
    /// Session length (start → finish), wall microseconds.
    pub span_us: f64,
    /// One entry per thread that executed chunks or parked, sorted by
    /// name (numeric-suffix aware, so `rayon-worker-10` follows `-9`).
    pub workers: Vec<WorkerProfile>,
}

impl PoolProfile {
    pub fn total_tasks(&self) -> u64 {
        self.workers.iter().map(|w| w.tasks).sum()
    }

    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    pub fn total_busy_us(&self) -> f64 {
        self.workers.iter().map(|w| w.busy_us).sum()
    }
}

struct SlotData {
    name: String,
    busy: Duration,
    park: Duration,
    queue_wait: Duration,
    steals: u64,
    local_pops: u64,
    parks: u64,
    events: Vec<TaskEvent>,
}

struct ProfState {
    /// Bumped per session so cached thread-local slot indices from an
    /// earlier session are never reused against a cleared slot vector.
    generation: u64,
    epoch: Instant,
    slots: Vec<SlotData>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: OnceLock<Mutex<ProfState>> = OnceLock::new();
static SESSION: Mutex<()> = Mutex::new(());

thread_local! {
    /// (generation, slot index) cache for the calling thread.
    static SLOT: Cell<(u64, usize)> = const { Cell::new((0, usize::MAX)) };
}

fn state() -> &'static Mutex<ProfState> {
    STATE.get_or_init(|| {
        Mutex::new(ProfState {
            generation: 0,
            epoch: Instant::now(),
            slots: Vec::new(),
        })
    })
}

/// Cheap hot-path gate: one relaxed load. The pool checks this before
/// paying for any clock read.
#[inline]
pub(crate) fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn slot_index(st: &mut ProfState) -> usize {
    let (gen, cached) = SLOT.with(|s| s.get());
    if gen == st.generation && cached < st.slots.len() {
        return cached;
    }
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{}", st.slots.len()));
    st.slots.push(SlotData {
        name,
        busy: Duration::ZERO,
        park: Duration::ZERO,
        queue_wait: Duration::ZERO,
        steals: 0,
        local_pops: 0,
        parks: 0,
        events: Vec::new(),
    });
    let idx = st.slots.len() - 1;
    SLOT.with(|s| s.set((st.generation, idx)));
    idx
}

fn us_since(epoch: Instant, at: Instant) -> f64 {
    at.saturating_duration_since(epoch).as_secs_f64() * 1e6
}

/// Record one chunk execution. Called by the pool after the chunk ran;
/// never called unless [`enabled`] was true at claim time.
pub(crate) fn record_task(
    label: &'static str,
    start: Instant,
    end: Instant,
    stolen: bool,
    queue_wait: Option<Duration>,
) {
    let mut st = state().lock().unwrap();
    let epoch = st.epoch;
    let idx = slot_index(&mut st);
    let d = &mut st.slots[idx];
    d.busy += end.saturating_duration_since(start);
    if stolen {
        d.steals += 1;
    } else {
        d.local_pops += 1;
    }
    let queue = queue_wait.unwrap_or(Duration::ZERO);
    d.queue_wait += queue;
    d.events.push(TaskEvent {
        label,
        start_us: us_since(epoch, start),
        dur_us: end.saturating_duration_since(start).as_secs_f64() * 1e6,
        stolen,
        queue_us: queue.as_secs_f64() * 1e6,
    });
}

/// Record one park (idle wait on the work condvar) interval.
///
/// Called with the pool's queue lock held; the profile lock nests inside
/// it (the reverse order never occurs — see `Pool::worker_loop`).
pub(crate) fn record_park(start: Instant, end: Instant) {
    let mut st = state().lock().unwrap();
    let idx = slot_index(&mut st);
    let d = &mut st.slots[idx];
    d.park += end.saturating_duration_since(start);
    d.parks += 1;
}

/// An active profiling session. Dropping (or [`finish`ing][Self::finish])
/// the session disables recording; holding it serializes other would-be
/// sessions.
pub struct ProfileSession {
    epoch: Instant,
    _guard: MutexGuard<'static, ()>,
}

/// Start profiling the global pool. Blocks until any concurrent session
/// finishes; clears telemetry from previous sessions.
pub fn profile_pool() -> ProfileSession {
    let guard = SESSION.lock().unwrap_or_else(|e| e.into_inner());
    let epoch = Instant::now();
    {
        let mut st = state().lock().unwrap();
        st.generation += 1;
        st.epoch = epoch;
        st.slots.clear();
    }
    ENABLED.store(true, Ordering::SeqCst);
    ProfileSession {
        epoch,
        _guard: guard,
    }
}

/// Sort key that orders `rayon-worker-2` before `rayon-worker-10`.
fn name_key(name: &str) -> (String, u64) {
    match name.rfind('-') {
        Some(i) => match name[i + 1..].parse::<u64>() {
            Ok(n) => (name[..i].to_string(), n),
            Err(_) => (name.to_string(), 0),
        },
        None => (name.to_string(), 0),
    }
}

impl ProfileSession {
    /// Stop recording and take the snapshot.
    pub fn finish(self) -> PoolProfile {
        ENABLED.store(false, Ordering::SeqCst);
        let span_us = self.epoch.elapsed().as_secs_f64() * 1e6;
        let mut st = state().lock().unwrap();
        let mut workers: Vec<WorkerProfile> = st
            .slots
            .drain(..)
            .map(|s| {
                let mut events = s.events;
                events.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
                WorkerProfile {
                    name: s.name,
                    busy_us: s.busy.as_secs_f64() * 1e6,
                    park_us: s.park.as_secs_f64() * 1e6,
                    queue_wait_us: s.queue_wait.as_secs_f64() * 1e6,
                    steals: s.steals,
                    local_pops: s.local_pops,
                    parks: s.parks,
                    tasks: s.steals + s.local_pops,
                    events,
                }
            })
            .collect();
        workers.sort_by_key(|w| name_key(&w.name));
        PoolProfile {
            epoch: self.epoch,
            span_us,
            workers,
        }
    }
}

impl Drop for ProfileSession {
    fn drop(&mut self) {
        // A session abandoned without `finish` must still stop recording.
        ENABLED.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    fn spin_us(us: u64) {
        let end = Instant::now() + Duration::from_micros(us);
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }

    /// Serializes the tests that assert on the global enabled flag
    /// *outside* a session (sessions only serialize each other while
    /// held, so a post-finish `!enabled()` check would race a sibling
    /// test's fresh session).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn session_captures_tasks_and_disables_on_finish() {
        let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let session = profile_pool();
        assert!(enabled());
        // Enough items for several SUM_BLOCK-sized chunks — a single
        // chunk would take the sequential fast path and skip the pool.
        let sum: u64 = pool.install(|| {
            (0..20_000u64)
                .into_par_iter()
                .map(|i| {
                    spin_us(1);
                    i
                })
                .sum()
        });
        assert_eq!(sum, 19_999 * 20_000 / 2);
        let profile = session.finish();
        assert!(!enabled());
        assert!(profile.total_tasks() > 0, "{profile:?}");
        assert!(profile.total_busy_us() > 0.0);
        assert!(profile.span_us > 0.0);
        // Every task is either a steal or a local pop.
        for w in &profile.workers {
            assert_eq!(w.tasks, w.steals + w.local_pops, "{w:?}");
            assert_eq!(w.tasks as usize, w.events.len());
        }
    }

    #[test]
    fn per_worker_events_are_sorted_and_non_overlapping() {
        let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let session = profile_pool();
        pool.install(|| (0..128u32).into_par_iter().for_each(|_| spin_us(50)));
        let profile = session.finish();
        for w in &profile.workers {
            for pair in w.events.windows(2) {
                assert!(pair[0].start_us <= pair[1].start_us);
                // One thread executes chunks sequentially, so its lane
                // can never self-overlap.
                assert!(
                    pair[1].start_us >= pair[0].start_us + pair[0].dur_us - 1e-3,
                    "overlap in {}: {pair:?}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn profiling_does_not_change_results() {
        let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let values: Vec<f64> = (0..20_000)
            .map(|i| (i as f64 * 0.37).cos() * 1e-3 + 1.0)
            .collect();
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let plain: f64 = pool.install(|| values.par_iter().sum());
        let session = profile_pool();
        let profiled: f64 = pool.install(|| values.par_iter().sum());
        let _ = session.finish();
        assert_eq!(plain.to_bits(), profiled.to_bits());
    }

    #[test]
    fn dropped_session_disables_profiling() {
        let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        {
            let _session = profile_pool();
            assert!(enabled());
        }
        assert!(!enabled());
    }

    #[test]
    fn worker_name_sort_is_numeric_suffix_aware() {
        assert!(name_key("rayon-worker-2") < name_key("rayon-worker-10"));
        assert!(name_key("main") < name_key("rayon-worker-0"));
    }
}

//! Experiment harness library: one module per table/figure of the paper,
//! shared by the `repro` binary and the criterion benches.
//!
//! Every experiment prints the same rows/series the paper reports and a
//! short note recalling the published shape, so paper-vs-measured
//! comparisons (EXPERIMENTS.md) can be regenerated with one command.

pub mod ablations;
pub mod backend_ablation;
pub mod common;
pub mod figure2;
pub mod figure3;
pub mod figure4;
pub mod figure5;
pub mod figure6;
pub mod micro;
pub mod profile;
pub mod regress;
pub mod report;
pub mod scenarios;
pub mod schedule;
pub mod shard;
pub mod stats;
pub mod table1;
pub mod table2;
pub mod threads;

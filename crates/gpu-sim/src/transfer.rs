//! Host↔device transfer model.
//!
//! The paper's central systems constraint is the "low-bandwidth host-GPU
//! bottleneck": a PCIe 2.0 x16 link moving the neighbor-table result set
//! back to the host. We model a transfer as `latency + bytes / bandwidth`,
//! with a higher bandwidth for pinned (page-locked) host memory — the
//! reason the batching scheme stages results through pinned buffers.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Direction of a transfer across the host-device link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    HostToDevice,
    DeviceToHost,
}

/// Bandwidth/latency parameters of the host-device link, plus the pinned
/// host-memory allocation cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferModel {
    /// Achievable bandwidth from pinned host memory, GB/s.
    pub pinned_gbps: f64,
    /// Achievable bandwidth from pageable host memory, GB/s (an extra copy
    /// through a driver staging buffer roughly halves throughput).
    pub pageable_gbps: f64,
    /// Per-transfer latency (driver + DMA setup).
    pub latency: SimDuration,
    /// Fixed cost of a pinned allocation (page-locking syscall).
    pub pin_base: SimDuration,
    /// Incremental pinning cost in GB/s (page-table population rate).
    /// Pinned allocation is expensive — the paper sizes buffers carefully
    /// because "pinned memory allocation time can require a substantial
    /// fraction of the total response time for small datasets".
    pub pin_gbps: f64,
}

impl TransferModel {
    /// PCIe 2.0 x16 profile matching the paper's K20c host link.
    pub fn pcie2() -> Self {
        TransferModel {
            pinned_gbps: 6.0,
            pageable_gbps: 3.0,
            latency: SimDuration::from_micros(10.0),
            pin_base: SimDuration::from_micros(100.0),
            pin_gbps: 5.0,
        }
    }

    /// Duration of a transfer of `bytes` in either direction.
    pub fn transfer_time(&self, bytes: usize, pinned: bool) -> SimDuration {
        let gbps = if pinned {
            self.pinned_gbps
        } else {
            self.pageable_gbps
        };
        self.latency + SimDuration::from_secs(bytes as f64 / (gbps * 1e9))
    }

    /// Duration of allocating a pinned host buffer of `bytes`.
    pub fn pin_time(&self, bytes: usize) -> SimDuration {
        self.pin_base + SimDuration::from_secs(bytes as f64 / (self.pin_gbps * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_beats_pageable() {
        let m = TransferModel::pcie2();
        let bytes = 100 * 1024 * 1024;
        assert!(m.transfer_time(bytes, true) < m.transfer_time(bytes, false));
    }

    #[test]
    fn latency_floors_small_transfers() {
        let m = TransferModel::pcie2();
        let t = m.transfer_time(4, true);
        assert!(t >= m.latency);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = TransferModel::pcie2();
        let t1 = m.transfer_time(1_000_000, true);
        let t2 = m.transfer_time(2_000_000, true);
        assert!(t2 > t1);
        // 6 GB at 6 GB/s is about a second.
        let t = m.transfer_time(6_000_000_000, true);
        assert!((t.as_secs() - 1.0).abs() < 0.01);
    }

    #[test]
    fn pinning_is_expensive_relative_to_reuse() {
        let m = TransferModel::pcie2();
        let bytes = 400 * 1024 * 1024;
        // Pinning a 400 MB staging buffer costs a noticeable fraction of
        // what transferring it costs — the rationale for not over-allocating.
        let pin = m.pin_time(bytes);
        let xfer = m.transfer_time(bytes, true);
        assert!(pin.as_secs() > 0.5 * xfer.as_secs());
    }
}

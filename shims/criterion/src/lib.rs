//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's `benches/` targets compiling and runnable without
//! network access. No statistics: each `iter`/`iter_batched` body executes
//! exactly once per invocation and a single wall-clock sample is printed,
//! so `cargo bench` doubles as a smoke test of the bench code paths.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level handle, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher { elapsed: None };
    let start = Instant::now();
    f(&mut bencher);
    let total = bencher.elapsed.unwrap_or_else(|| start.elapsed());
    println!(
        "  bench: {label} ... {:.3} ms (single sample)",
        total.as_secs_f64() * 1e3
    );
}

/// Passed to benchmark closures; runs the routine exactly once.
pub struct Bencher {
    elapsed: Option<std::time::Duration>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = Some(start.elapsed());
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = Some(start.elapsed());
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Benchmark identifier: `BenchmarkId::new("name", param)`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::new("with_input", 8), &8u32, |b, &n| {
            b.iter_batched(
                || vec![0u32; n as usize],
                |v| v.len(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_everything_once() {
        benches();
    }
}

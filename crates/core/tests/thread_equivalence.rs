//! Thread-count equivalence (the determinism policy's acceptance test).
//!
//! For random point sets, `HybridDbscan::build_table` +
//! `cluster_with_table` + `dbscan_disjoint_set` must produce **bitwise
//! identical** results on pools of 1, 2, and 8 threads: same neighbor
//! table, same clusterings, same modeled `SimDuration`s (compared via
//! `f64::to_bits`), same batch structure. Wall-clock fields are the only
//! thing allowed to differ.
//!
//! Pool views are created with `ThreadPoolBuilder::num_threads(t)`, which
//! grows the shared pool as needed — so the 8-thread case is exercised
//! even in the `RAYON_NUM_THREADS=1` CI run.

use gpu_sim::device::Device;
use hybrid_dbscan_core::backend::IndexBackend;
use hybrid_dbscan_core::disjoint_set::dbscan_disjoint_set;
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use proptest::prelude::*;
use spatial::Point2;

/// Everything a run produces that must be schedule-independent.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    table_points: usize,
    table_entries: usize,
    /// Flattened (id, neighbors) pairs — the full table contents.
    neighborhoods: Vec<(u32, Vec<u32>)>,
    /// Sequential (visit-order) clustering labels.
    labels: Vec<i64>,
    /// Parallel disjoint-set clustering labels.
    ds_labels: Vec<i64>,
    /// Modeled GPU-phase time, bit-exact.
    modeled_time_bits: u64,
    result_pairs: usize,
    n_batches: usize,
    per_batch_pairs: Vec<usize>,
}

fn run_at(threads: usize, data: &[Point2], eps: f64, minpts: usize) -> RunFingerprint {
    run_config_at(threads, &HybridConfig::default(), data, eps, minpts)
}

fn run_config_at(
    threads: usize,
    cfg: &HybridConfig,
    data: &[Point2],
    eps: f64,
    minpts: usize,
) -> RunFingerprint {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool view");
    pool.install(|| {
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(&device, *cfg);
        let handle = hybrid.build_table(data, eps).expect("build_table");
        let (clustering, _dbscan_time) = HybridDbscan::cluster_with_table(&handle, minpts);
        let ds = dbscan_disjoint_set(&handle.table, minpts);
        let to_i64 = |c: &hybrid_dbscan_core::dbscan::Clustering| {
            c.labels()
                .iter()
                .map(|l| l.cluster_id().map_or(-1, |id| id as i64))
                .collect::<Vec<i64>>()
        };
        RunFingerprint {
            table_points: handle.table.num_points(),
            table_entries: handle.table.num_entries(),
            neighborhoods: (0..handle.table.num_points() as u32)
                .map(|i| (i, handle.table.neighbors(i).to_vec()))
                .collect(),
            labels: to_i64(&clustering),
            ds_labels: to_i64(&ds),
            modeled_time_bits: handle.gpu.modeled_time.as_secs().to_bits(),
            result_pairs: handle.gpu.result_pairs,
            n_batches: handle.gpu.n_batches,
            per_batch_pairs: handle.gpu.per_batch_pairs.clone(),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn identical_results_at_1_2_and_8_threads(
        raw in prop::collection::vec((0.0f64..8.0, 0.0f64..8.0), 60..220),
        eps_scaled in 30u32..120,
        minpts in 2usize..6,
    ) {
        let data: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let eps = eps_scaled as f64 / 100.0;

        let base = run_at(1, &data, eps, minpts);
        for threads in [2usize, 8] {
            let other = run_at(threads, &data, eps, minpts);
            prop_assert_eq!(
                &base, &other,
                "thread-count dependence at {} threads (eps={}, minpts={})",
                threads, eps, minpts
            );
        }
        // And once with pool profiling enabled: instrumentation must not
        // perturb any schedule-independent output (determinism policy —
        // the profiler only observes).
        let session = rayon::profile::profile_pool();
        let profiled = run_at(4, &data, eps, minpts);
        let profile = session.finish();
        prop_assert_eq!(
            &base, &profiled,
            "pool profiling perturbed results at 4 threads (eps={}, minpts={}, \
             {} pool tasks recorded)",
            eps, minpts, profile.total_tasks()
        );
        // Sanity: the fingerprint is not vacuous.
        prop_assert_eq!(base.table_points, data.len());
        prop_assert_eq!(base.labels.len(), data.len());
    }

    /// The pipelined `run_batches` executor: a tiny static buffer forces
    /// many batches, so with > 1 thread several stream workers run whole
    /// launch → sort → download → ingest chains concurrently. Every
    /// schedule-independent output must still match the 1-thread run
    /// exactly — and a live `ProfileSession` must observe without
    /// perturbing (the profiled run doubles as the instrumented case).
    #[test]
    fn pipelined_batches_identical_at_1_2_and_8_threads(
        raw in prop::collection::vec((0.0f64..6.0, 0.0f64..6.0), 80..200),
        eps_scaled in 40u32..110,
        minpts in 2usize..5,
    ) {
        let data: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let eps = eps_scaled as f64 / 100.0;
        let cfg = HybridConfig {
            batch: hybrid_dbscan_core::batch::BatchConfig {
                static_threshold: 0,      // static-buffer path
                static_buffer_items: 64,  // far below |R|: forces n_batches > 1
                n_streams: 3,
                ..Default::default()
            },
            ..Default::default()
        };

        let base = run_config_at(1, &cfg, &data, eps, minpts);
        prop_assert!(
            base.n_batches > 1,
            "workload too small to engage the pipeline ({} batches)",
            base.n_batches
        );
        for threads in [2usize, 8] {
            let session = rayon::profile::profile_pool();
            let other = run_config_at(threads, &cfg, &data, eps, minpts);
            let profile = session.finish();
            prop_assert_eq!(
                &base, &other,
                "pipelined run diverged at {} threads (eps={}, minpts={}, \
                 {} batches, {} pool tasks)",
                threads, eps, minpts, base.n_batches, profile.total_tasks()
            );
        }
    }

    /// The tree backend under the same contract: bitwise-identical
    /// schedule-independent outputs at every thread count, and — modeled
    /// time aside (the backends cost differently by design) — the same
    /// table, clusterings, and batch structure as the grid backend.
    #[test]
    fn tree_backend_identical_across_threads_and_matches_grid(
        raw in prop::collection::vec((0.0f64..6.0, 0.0f64..6.0), 60..180),
        eps_scaled in 40u32..110,
        minpts in 2usize..5,
    ) {
        let data: Vec<Point2> = raw.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let eps = eps_scaled as f64 / 100.0;
        let tree_cfg = HybridConfig {
            backend: IndexBackend::Tree,
            ..Default::default()
        };

        let base = run_config_at(1, &tree_cfg, &data, eps, minpts);
        for threads in [2usize, 8] {
            let other = run_config_at(threads, &tree_cfg, &data, eps, minpts);
            prop_assert_eq!(
                &base, &other,
                "tree backend thread-count dependence at {} threads \
                 (eps={}, minpts={})",
                threads, eps, minpts
            );
        }

        // Cross-backend: everything but the modeled duration matches the
        // grid run bit for bit.
        let grid = run_at(1, &data, eps, minpts);
        prop_assert_eq!(&base.neighborhoods, &grid.neighborhoods);
        prop_assert_eq!(&base.labels, &grid.labels);
        prop_assert_eq!(&base.ds_labels, &grid.ds_labels);
        prop_assert_eq!(base.result_pairs, grid.result_pairs);
        prop_assert_eq!(base.n_batches, grid.n_batches);
        prop_assert_eq!(&base.per_batch_pairs, &grid.per_batch_pairs);
    }
}

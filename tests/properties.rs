//! Property-based tests (proptest) on the core data structures and
//! invariants, using brute force as the oracle.

use hybrid_dbscan::core::batch::{batch_points, BatchConfig};
use hybrid_dbscan::core::dbscan::{Dbscan, GridSource, NeighborSource, TableSource};
use hybrid_dbscan::core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan::core::reference::ReferenceDbscan;
use hybrid_dbscan::gpu_sim::Device;
use hybrid_dbscan::spatial::distance::brute_force_neighbors;
use hybrid_dbscan::spatial::presort::spatial_sort_permutation;
use hybrid_dbscan::spatial::{GridIndex, KdTree, Point2, RTree};
use proptest::prelude::*;

/// Random points in a bounded box; coordinates quantized a little so exact
/// eps-boundary ties occur with realistic probability.
fn points_strategy(max_n: usize) -> impl Strategy<Value = Vec<Point2>> {
    prop::collection::vec((0i32..2000, 0i32..2000), 1..max_n).prop_map(|v| {
        v.into_iter()
            .map(|(x, y)| Point2::new(x as f64 / 100.0, y as f64 / 100.0))
            .collect()
    })
}

fn eps_strategy() -> impl Strategy<Value = f64> {
    (1u32..30).prop_map(|e| e as f64 / 10.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every index answers ε-range queries exactly like brute force.
    #[test]
    fn indexes_match_brute_force(data in points_strategy(120), eps in eps_strategy()) {
        let grid = GridIndex::build(&data, eps);
        let rtree = RTree::bulk_load(&data);
        let kdtree = KdTree::build(&data);
        for (id, q) in data.iter().enumerate() {
            let expected = brute_force_neighbors(&data, q, eps);
            let mut g = grid.query(&data, q);
            g.sort_unstable();
            prop_assert_eq!(&g, &expected, "grid disagrees at {}", id);
            let mut r = rtree.query_eps(q, eps);
            r.sort_unstable();
            prop_assert_eq!(&r, &expected, "rtree disagrees at {}", id);
            let mut k = kdtree.query_eps(q, eps);
            k.sort_unstable();
            prop_assert_eq!(&k, &expected, "kdtree disagrees at {}", id);
        }
    }

    /// The GPU-built neighbor table contains exactly the brute-force
    /// neighborhood of every point (completeness and soundness of the
    /// kernels + batching + sort + table assembly, end to end).
    #[test]
    fn neighbor_table_is_exact(data in points_strategy(100), eps in eps_strategy()) {
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(&device, HybridConfig::default());
        let handle = hybrid.build_table(&data, eps).unwrap();
        // The table lives in sorted space: translate through the
        // permutation for comparison.
        let perm = &handle.perm;
        for sorted_id in 0..data.len() as u32 {
            let orig = perm[sorted_id as usize];
            let mut got: Vec<u32> = handle
                .table
                .neighbors(sorted_id)
                .iter()
                .map(|&v| perm[v as usize])
                .collect();
            got.sort_unstable();
            let expected = brute_force_neighbors(&data, &data[orig as usize], eps);
            prop_assert_eq!(got, expected, "wrong neighborhood for point {}", orig);
        }
    }

    /// Hybrid-DBSCAN labels equal the reference labels on random data.
    #[test]
    fn hybrid_equals_reference(
        data in points_strategy(100),
        eps in eps_strategy(),
        minpts in 1usize..8,
    ) {
        let device = Device::k20c();
        let h = HybridDbscan::new(&device, HybridConfig::default())
            .run(&data, eps, minpts)
            .unwrap();
        let r = ReferenceDbscan::new(eps, minpts).run(&data);
        prop_assert_eq!(h.clustering.labels(), r.clustering.labels());
    }

    /// DBSCAN semantic invariants, checked against the neighbor oracle:
    /// noise points are never core; core points and all their neighbors
    /// share the core point's cluster.
    #[test]
    fn dbscan_core_invariants(
        data in points_strategy(120),
        eps in eps_strategy(),
        minpts in 1usize..8,
    ) {
        let grid = GridIndex::build(&data, eps);
        let src = GridSource::new(&grid, &data);
        let c = Dbscan::new(minpts).run(&src);
        for (i, label) in c.labels().iter().enumerate() {
            let n = brute_force_neighbors(&data, &data[i], eps);
            if n.len() >= minpts {
                // Core point: clustered; every neighbor is clustered (at
                // worst as a border point of another cluster); and every
                // *core* neighbor shares its cluster (mutual direct
                // density-reachability).
                let k = label.cluster_id();
                prop_assert!(k.is_some(), "core point {} left unclustered", i);
                for &j in &n {
                    let jl = c.labels()[j as usize];
                    prop_assert!(
                        jl.is_clustered(),
                        "neighbor {} of core {} left as noise", j, i
                    );
                    let jn = brute_force_neighbors(&data, &data[j as usize], eps);
                    if jn.len() >= minpts {
                        prop_assert_eq!(
                            jl.cluster_id(), k,
                            "core neighbor {} of core {} in different cluster", j, i
                        );
                    }
                }
            } else if label.is_noise() {
                // Noise points must not be within eps of any core point.
                for &j in &n {
                    let jn = brute_force_neighbors(&data, &data[j as usize], eps);
                    prop_assert!(jn.len() < minpts,
                        "noise point {} is density-reachable from core {}", i, j);
                }
            }
        }
    }

    /// The batch planner always leaves headroom: expected per-batch size
    /// never exceeds the buffer, for any estimate and database size.
    #[test]
    fn batch_plan_has_headroom(
        e_b in 0u64..10_000_000_000,
        n in 1usize..100_000_000,
    ) {
        let plan = BatchConfig::default().plan(e_b, n);
        prop_assert!(plan.n_batches >= 1);
        prop_assert!(plan.buffer_items >= 1);
        prop_assert!(plan.expected_batch_size() <= plan.buffer_items);
    }

    /// Strided batch assignment partitions the database for any (n, n_b).
    #[test]
    fn strided_batches_partition(n in 1usize..5000, nb in 1usize..64) {
        let mut seen = vec![false; n];
        for l in 0..nb {
            for i in batch_points(n, nb, l) {
                prop_assert!(!seen[i], "point {} assigned twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// The spatial pre-sort is a permutation and never loses points.
    #[test]
    fn presort_is_permutation(data in points_strategy(300)) {
        let perm = spatial_sort_permutation(&data);
        let mut idx: Vec<u32> = perm.as_slice().to_vec();
        idx.sort_unstable();
        let expected: Vec<u32> = (0..data.len() as u32).collect();
        prop_assert_eq!(idx, expected);
    }

    /// TableSource and GridSource agree for every point (different data
    /// layouts, same neighborhoods).
    #[test]
    fn table_source_equals_grid_source(data in points_strategy(80), eps in eps_strategy()) {
        let device = Device::k20c();
        let hybrid = HybridDbscan::new(&device, HybridConfig::default());
        let handle = hybrid.build_table(&data, eps).unwrap();
        let grid = GridIndex::build(&data, eps);
        let gs = GridSource::new(&grid, &data);
        let ts = TableSource::new(&handle.table);
        for orig in 0..data.len() as u32 {
            let sorted_id = handle.visit_order[orig as usize];
            let mut a = Vec::new();
            ts.neighbors_of(sorted_id, &mut a);
            let mut a: Vec<u32> = a.iter().map(|&v| handle.perm[v as usize]).collect();
            a.sort_unstable();
            let mut b = Vec::new();
            gs.neighbors_of(orig, &mut b);
            b.sort_unstable();
            prop_assert_eq!(a, b, "point {}", orig);
        }
    }
}

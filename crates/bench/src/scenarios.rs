//! `repro scenarios` — print **Table III** (S2) and **Table V** (S3), the
//! published scenario-definition tables, from the encoded constants in
//! `hybrid_dbscan_core::scenario` (the same constants every experiment
//! consumes, so the printout cannot drift from the runs).

use crate::common::TextTable;
use hybrid_dbscan_core::scenario;

fn fmt_eps(e: f64) -> String {
    // The sweeps are arithmetic with 0.01-granularity steps; round away
    // the accumulated float noise for display.
    let s = format!("{e:.2}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

fn fmt_eps_list(eps: &[f64]) -> String {
    let inner: Vec<String> = eps.iter().map(|&e| fmt_eps(e)).collect();
    format!("{{{}}}", inner.join(", "))
}

fn fmt_minpts_list(m: &[usize]) -> String {
    let inner: Vec<String> = m.iter().map(|v| v.to_string()).collect();
    format!("{{{}}}", inner.join(", "))
}

/// Print Table III: the S2 ε sweeps (minpts = 4 throughout).
pub fn print_table3() {
    println!("== Table III: scenario S2 (multi-clustering sweeps, minpts = 4) ==\n");
    let mut t = TextTable::new(&["Dataset", "eps values", "variants"]);
    for name in scenario::DATASETS {
        let vs = scenario::s2_variants(name);
        let eps: Vec<f64> = vs.iter().map(|v| v.eps).collect();
        t.row(vec![
            name.to_string(),
            fmt_eps_list(&eps),
            vs.len().to_string(),
        ]);
    }
    t.print();
}

/// Print Table V: the S3 rows (fixed ε, 16 minpts values each).
pub fn print_table5() {
    println!("== Table V: scenario S3 (table reuse: fixed eps, 16 minpts values) ==\n");
    let mut t = TextTable::new(&["Dataset", "eps", "minpts values"]);
    for name in scenario::DATASETS {
        for (eps, minpts) in scenario::s3_rows(name) {
            t.row(vec![
                name.to_string(),
                fmt_eps(eps),
                fmt_minpts_list(&minpts),
            ]);
        }
    }
    t.print();
}

/// Print both scenario tables.
pub fn print() {
    print_table3();
    println!();
    print_table5();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eps_list_formatting() {
        assert_eq!(fmt_eps_list(&[0.1, 0.2]), "{0.1, 0.2}");
        assert_eq!(fmt_minpts_list(&[4, 8]), "{4, 8}");
        // Float-accumulation noise is rounded away.
        assert_eq!(fmt_eps(0.30000000000000004), "0.3");
        assert_eq!(fmt_eps(0.06999999999999999), "0.07");
        assert_eq!(fmt_eps(1.0), "1");
    }
}

//! Ablation studies beyond the paper's published tables (DESIGN.md §5):
//!
//! * `streams` — stream-count sensitivity of the batched GPU phase
//!   (the paper asserts "3 streams, more achieved no gain" without data).
//! * `blocksize` — GPUCalcShared block-size sensitivity (the paper used
//!   256 and flags the choice as a limitation).
//! * `index` — grid vs R-tree vs kd-tree as the host DBSCAN neighbor
//!   source (why the GPU path uses a grid).
//! * `alpha` — batching overestimation-factor sensitivity: batch counts
//!   and overflow margin vs α.
//! * `hybrid-split` — the paper's future-work kernel: Shared for dense
//!   cells, Global for the rest.
//! * `bandwidth` — the paper's other future-work item: how Hybrid-DBSCAN
//!   responds to host-GPU bandwidth growth (PCIe 2/3/4, NVLink-class).
//! * `gdbscan` — head-to-head against G-DBSCAN (the paper's reference
//!   [6]), the "cluster entirely on the GPU" alternative the paper argues
//!   against: its O(|D|²) indexless graph construction quadruples per
//!   size doubling and loses to the grid-indexed hybrid past ~10⁵ points.

use crate::common::{fmt_secs, DatasetCache, Options, TextTable};
use gpu_sim::memory::DeviceAppendBuffer;
use gpu_sim::Device;
use hybrid_dbscan_core::batch::BatchConfig;
use hybrid_dbscan_core::dbscan::{Dbscan, GridSource, KdTreeSource, RTreeSource};
use hybrid_dbscan_core::hybrid::{HybridConfig, HybridDbscan};
use hybrid_dbscan_core::kernels::{GpuCalcGlobal, GpuCalcShared, NeighborPair};
use spatial::presort::spatial_sort;
use spatial::{GridIndex, KdTree, PointStore, RTree};
use std::time::Instant;

/// On-GPU competitor comparison: Hybrid-DBSCAN vs G-DBSCAN vs
/// CUDA-DClust across dataset sizes. G-DBSCAN's
/// indexless O(|D|²) graph construction is competitive at small |D| but
/// loses past the crossover — exactly the scaling argument behind the
/// paper's grid-index design.
pub fn gdbscan(opts: &Options) {
    use hybrid_dbscan_core::cuda_dclust::cuda_dclust;
    use hybrid_dbscan_core::gdbscan::g_dbscan;

    println!("== Ablation: Hybrid-DBSCAN vs on-GPU clustering (paper refs. [5], [6]) ==\n");
    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SDSS1"]);
    let mut t = TextTable::new(&[
        "Dataset",
        "n",
        "Hybrid",
        "G-DBSCAN",
        "(graph)",
        "CUDA-DClust",
        "(launches)",
    ]);
    for name in &selected {
        let full = cache.get(name).points.clone();
        let eps = 0.3;
        for target in [5_000usize, 10_000, 20_000, 40_000] {
            if target > full.len() {
                continue;
            }
            let data: Vec<_> = full
                .iter()
                .step_by((full.len() / target).max(1))
                .copied()
                .collect();
            let hybrid = HybridDbscan::new(&device, HybridConfig::default());
            let h = hybrid.run(&data, eps, 4).expect("hybrid failed");
            let g = g_dbscan(&device, &data, eps, 4).expect("g-dbscan failed");
            let c = cuda_dclust(&device, &data, eps, 4, 256).expect("cuda-dclust failed");
            assert_eq!(h.clustering.num_clusters(), g.clustering.num_clusters());
            assert_eq!(h.clustering.num_clusters(), c.clustering.num_clusters());
            t.row(vec![
                name.clone(),
                data.len().to_string(),
                fmt_secs(h.timings.total.as_secs()),
                fmt_secs(g.report.modeled_time.as_secs()),
                fmt_secs(g.report.graph_time.as_secs()),
                fmt_secs(c.report.modeled_time.as_secs()),
                c.report.launches.to_string(),
            ]);
        }
    }
    t.print();
    println!(
        "\n(G-DBSCAN's graph column quadruples per size doubling — the quadratic,\n indexless build; extrapolated to the paper's 2M-15M point datasets it is\n 80s-4500s vs seconds for the grid-indexed hybrid. CUDA-DClust pays many\n underutilized chain-expansion launches instead.)"
    );
}

/// Bandwidth ablation (the paper's Discussion: "the performance of
/// HYBRID-DBSCAN is likely to improve over CPU algorithms as host-GPU
/// bandwidth increases (e.g., with NVLink)"). Re-run table construction
/// under faster host links and report the modeled GPU phase.
pub fn bandwidth(opts: &Options) {
    use gpu_sim::cost::CostModel;
    use gpu_sim::device::DeviceProps;
    use gpu_sim::transfer::TransferModel;

    println!("== Ablation: host-GPU link bandwidth (paper future work: NVLink) ==\n");
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1", "SDSS1"]);
    let links: [(&str, f64, f64); 4] = [
        ("PCIe2 (paper)", 6.0, 3.0),
        ("PCIe3", 12.0, 6.0),
        ("PCIe4", 24.0, 12.0),
        ("NVLink-class", 80.0, 40.0),
    ];
    let mut t = TextTable::new(&[
        "Dataset",
        "link",
        "pinned GB/s",
        "GPU phase",
        "d2h (serial sum)",
    ]);
    for name in &selected {
        let data = cache.get(name).points.clone();
        for (label, pinned, pageable) in links {
            let transfer = TransferModel {
                pinned_gbps: pinned,
                pageable_gbps: pageable,
                ..TransferModel::pcie2()
            };
            let device = Device::with_props(DeviceProps::k20c(), CostModel::kepler(), transfer);
            let hybrid = HybridDbscan::new(&device, HybridConfig::default());
            let handle = hybrid.build_table(&data, 0.4).expect("build failed");
            t.row(vec![
                name.clone(),
                label.to_string(),
                format!("{pinned:.0}"),
                fmt_secs(handle.gpu.modeled_time.as_secs()),
                fmt_secs(handle.gpu.breakdown.d2h_time.as_secs()),
            ]);
        }
    }
    t.print();
}

/// Stream-count ablation: rebuild the same table with 1..=4 streams and
/// report the modeled GPU-phase time.
pub fn streams(opts: &Options) {
    println!("== Ablation: stream count (paper: 3 streams, more gained nothing) ==\n");
    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1", "SDSS1"]);
    let mut t = TextTable::new(&["Dataset", "streams", "batches", "GPU phase"]);
    for name in &selected {
        let data = cache.get(name).points.clone();
        for n_streams in 1..=4 {
            let cfg = HybridConfig {
                batch: BatchConfig {
                    n_streams,
                    // Force multiple batches so overlap matters.
                    static_threshold: 0,
                    static_buffer_items: (data.len() * 4).max(1),
                    ..BatchConfig::default()
                },
                ..HybridConfig::default()
            };
            let hybrid = HybridDbscan::new(&device, cfg);
            let handle = hybrid.build_table(&data, 0.4).expect("build failed");
            t.row(vec![
                name.clone(),
                n_streams.to_string(),
                handle.gpu.n_batches.to_string(),
                fmt_secs(handle.gpu.modeled_time.as_secs()),
            ]);
        }
    }
    t.print();
}

/// Block-size ablation for GPUCalcShared.
pub fn blocksize(opts: &Options) {
    println!("== Ablation: GPUCalcShared block size (paper fixed 256) ==\n");
    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1", "SDSS1"]);
    let mut t = TextTable::new(&["Dataset", "block", "kernel ms", "nGPU", "occupancy"]);
    for name in &selected {
        let data = spatial_sort(&cache.get(name).points);
        let eps = 0.2;
        let grid = GridIndex::build(&data, eps);
        let store = PointStore::from_points(&data);
        let bound: usize = grid
            .non_empty_cells()
            .iter()
            .map(|&h| {
                let m = grid.range_of(h as usize).len();
                let (adj, n) = grid.neighbor_cells(h as usize);
                let nb: usize = adj[..n]
                    .iter()
                    .map(|&a| grid.range_of(a as usize).len())
                    .sum();
                m * nb
            })
            .sum();
        for block in [32u32, 64, 128, 256, 512] {
            let mut result = DeviceAppendBuffer::<NeighborPair>::new(&device, bound + 64).unwrap();
            let kernel = GpuCalcShared {
                points: store.view(),
                grid: grid.cells_view(),
                lookup: grid.lookup(),
                geom: grid.geometry(),
                eps,
                schedule: grid.non_empty_cells(),
                result: &result,
            };
            let report = device.launch(kernel.launch_config(block), &kernel).unwrap();
            assert!(!result.overflowed());
            result.reset();
            t.row(vec![
                name.clone(),
                block.to_string(),
                format!("{:.3}", report.duration.as_millis()),
                report.threads_launched.to_string(),
                format!("{:.2}", report.occupancy),
            ]);
        }
    }
    t.print();
}

/// Index ablation: host DBSCAN wall time with grid / R-tree / kd-tree
/// neighbor sources.
pub fn index(opts: &Options) {
    println!("== Ablation: host neighbor-source index (DBSCAN wall time) ==\n");
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1", "SDSS1"]);
    let mut t = TextTable::new(&["Dataset", "eps", "grid", "R-tree", "kd-tree"]);
    for name in &selected {
        let data = cache.get(name).points.clone();
        for eps in [0.2, 0.8] {
            let grid = GridIndex::build(&data, eps);
            let rtree = RTree::bulk_load(&data);
            let kdtree = KdTree::build(&data);
            let time = |f: &dyn Fn() -> u32| {
                let t0 = Instant::now();
                let clusters = f();
                (t0.elapsed().as_secs_f64(), clusters)
            };
            let (tg, cg) = time(&|| {
                Dbscan::new(4)
                    .run(&GridSource::new(&grid, &data))
                    .num_clusters()
            });
            let (tr, cr) = time(&|| {
                Dbscan::new(4)
                    .run(&RTreeSource::new(&rtree, &data, eps))
                    .num_clusters()
            });
            let (tk, ck) = time(&|| {
                Dbscan::new(4)
                    .run(&KdTreeSource::new(&kdtree, &data, eps))
                    .num_clusters()
            });
            assert_eq!(cg, cr);
            assert_eq!(cg, ck);
            t.row(vec![
                name.clone(),
                format!("{eps:.1}"),
                fmt_secs(tg),
                fmt_secs(tr),
                fmt_secs(tk),
            ]);
        }
    }
    t.print();
}

/// α sensitivity: batch counts and realized buffer headroom vs α.
pub fn alpha(opts: &Options) {
    println!("== Ablation: batching overestimation factor alpha (paper: 0.05) ==\n");
    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1"]);
    let mut t = TextTable::new(&["Dataset", "alpha", "batches", "retries", "buffer", "pairs"]);
    for name in &selected {
        let data = cache.get(name).points.clone();
        for alpha in [0.0, 0.01, 0.05, 0.2, 0.5] {
            let cfg = HybridConfig {
                batch: BatchConfig {
                    alpha,
                    static_threshold: 0,
                    static_buffer_items: (data.len() * 4).max(1),
                    ..BatchConfig::default()
                },
                max_retries: 8,
                ..HybridConfig::default()
            };
            let hybrid = HybridDbscan::new(&device, cfg);
            let handle = hybrid.build_table(&data, 0.4).expect("build failed");
            t.row(vec![
                name.clone(),
                format!("{alpha:.2}"),
                handle.gpu.n_batches.to_string(),
                handle.gpu.retries.to_string(),
                handle.gpu.plan.buffer_items.to_string(),
                handle.gpu.result_pairs.to_string(),
            ]);
        }
    }
    t.print();
}

/// The paper's future-work hybrid kernel: route dense cells to
/// GPUCalcShared and the sparse remainder to GPUCalcGlobal, then compare
/// against each kernel alone.
pub fn hybrid_split(opts: &Options) {
    println!("== Ablation: hybrid split kernel (paper's future-work direction) ==\n");
    let device = Device::k20c();
    let mut cache = DatasetCache::new(opts.scale);
    let selected = opts.select(&["SW1", "SDSS1"]);
    let mut t = TextTable::new(&[
        "Dataset",
        "dense cells",
        "Global ms",
        "Shared ms",
        "Split ms",
    ]);
    for name in &selected {
        let data = spatial_sort(&cache.get(name).points);
        let eps = 0.2;
        let grid = GridIndex::build(&data, eps);
        let store = PointStore::from_points(&data);
        let bound: usize = grid
            .non_empty_cells()
            .iter()
            .map(|&h| {
                let m = grid.range_of(h as usize).len();
                let (adj, n) = grid.neighbor_cells(h as usize);
                let nb: usize = adj[..n]
                    .iter()
                    .map(|&a| grid.range_of(a as usize).len())
                    .sum();
                m * nb
            })
            .sum();
        let mut result = DeviceAppendBuffer::<NeighborPair>::new(&device, bound + 64).unwrap();

        // Pure Global.
        let global = {
            let gk = GpuCalcGlobal {
                points: store.view(),
                grid: grid.cells_view(),
                lookup: grid.lookup(),
                geom: grid.geometry(),
                eps,
                batch: 0,
                n_batches: 1,
                result: &result,
                skip_dense_at: None,
            };
            device.launch(gk.launch_config(256), &gk).unwrap()
        };
        let global_pairs = result.len();
        result.reset();

        // Pure Shared.
        let shared = {
            let sk = GpuCalcShared {
                points: store.view(),
                grid: grid.cells_view(),
                lookup: grid.lookup(),
                geom: grid.geometry(),
                eps,
                schedule: grid.non_empty_cells(),
                result: &result,
            };
            device.launch(sk.launch_config(256), &sk).unwrap()
        };
        assert_eq!(result.len(), global_pairs, "kernels must agree");
        result.reset();

        // Split: Shared handles cells holding at least half a block of
        // points; a masked Global pass covers points in the sparse
        // remainder (it returns early for dense-cell points).
        const DENSE_AT: usize = 128;
        let dense: Vec<u32> = grid
            .non_empty_cells()
            .iter()
            .copied()
            .filter(|&h| grid.range_of(h as usize).len() >= DENSE_AT)
            .collect();
        let shared_part = if dense.is_empty() {
            None
        } else {
            let k = GpuCalcShared {
                points: store.view(),
                grid: grid.cells_view(),
                lookup: grid.lookup(),
                geom: grid.geometry(),
                eps,
                schedule: &dense,
                result: &result,
            };
            Some(device.launch(k.launch_config(256), &k).unwrap())
        };
        // Masked Global pass over the sparse remainder.
        let sparse_report = {
            let mk = GpuCalcGlobal {
                points: store.view(),
                grid: grid.cells_view(),
                lookup: grid.lookup(),
                geom: grid.geometry(),
                eps,
                batch: 0,
                n_batches: 1,
                result: &result,
                skip_dense_at: Some(DENSE_AT),
            };
            device.launch(mk.launch_config(256), &mk).unwrap()
        };
        assert_eq!(
            result.len(),
            global_pairs,
            "split union must equal full result"
        );
        result.reset();

        let split_ms = shared_part.as_ref().map_or(0.0, |r| r.duration.as_millis())
            + sparse_report.duration.as_millis();
        t.row(vec![
            name.clone(),
            dense.len().to_string(),
            format!("{:.3}", global.duration.as_millis()),
            format!("{:.3}", shared.duration.as_millis()),
            format!("{split_ms:.3}"),
        ]);
    }
    t.print();
}

//! 2-D point type shared by every index and by the clustering algorithms.

use serde::{Deserialize, Serialize};

/// A point in the 2-D plane.
///
/// The paper clusters spatial data defined by `(x, y)` coordinates
/// (ionospheric TEC measurements and galaxy positions). We use `f64`
/// throughout so the host reference implementation and the simulated-GPU
/// path compute bit-identical distances, which lets the test suite demand
/// exact agreement between the two.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point2 {
    pub x: f64,
    pub y: f64,
}

impl Point2 {
    /// Create a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Preferred over [`Point2::distance`] in inner loops: the ε-comparison
    /// `dist(p, q) <= ε` is evaluated as `dist²(p, q) <= ε²`, avoiding the
    /// square root exactly as the CUDA kernels in the paper do.
    #[inline]
    pub fn distance_sq(&self, other: &Point2) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point2) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Whether `other` lies within the closed ε-ball centred on `self`.
    ///
    /// DBSCAN's ε-neighborhood is defined with `dist(p, q) <= ε`
    /// (closed ball), so points exactly at distance ε are neighbors.
    #[inline]
    pub fn within_eps(&self, other: &Point2, eps: f64) -> bool {
        self.distance_sq(other) <= eps * eps
    }
}

impl From<(f64, f64)> for Point2 {
    fn from((x, y): (f64, f64)) -> Self {
        Self::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point2::new(-1.5, 2.25);
        let b = Point2::new(7.0, -3.5);
        assert_eq!(a.distance_sq(&b), b.distance_sq(&a));
    }

    #[test]
    fn within_eps_is_closed_ball() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        assert!(a.within_eps(&b, 1.0), "boundary point must be a neighbor");
        assert!(!a.within_eps(&b, 0.999));
        // A point is always within eps of itself, even for eps = 0.
        assert!(a.within_eps(&a, 0.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point2 = (1.0, 2.0).into();
        assert_eq!(p, Point2::new(1.0, 2.0));
    }
}

//! Pool-profiler integration: Chrome-trace worker lanes and the
//! serial-fraction diagnosis (`obs::analyze`).
//!
//! Three properties pinned here:
//!
//! 1. Exported pool lanes are genuine per-worker timelines — within one
//!    `tid` under `POOL_PID`, task events never overlap (a worker runs
//!    one chunk at a time).
//! 2. A deliberately serialized workload (single-threaded pool, so every
//!    chunk takes the sequential fast path) diagnoses as almost entirely
//!    serial: serial fraction > 0.9.
//! 3. An embarrassingly parallel workload (wide pool, sleep-bound chunks
//!    that overlap in wall time even on a single CPU) diagnoses as mostly
//!    parallel: serial fraction < 0.3.
//!
//! Sleeps rather than spins keep property 3 robust on one-core CI
//! machines: sleeping workers overlap in wall time without needing
//! hardware parallelism.

use obs::analyze::analyze;
use obs::json::{parse, JsonValue};
use obs::Recorder;
use rayon::prelude::*;
use std::time::Duration;

/// Collect `(tid, ts, dur)` for every pool task event in a Chrome trace.
fn pool_task_events(trace: &JsonValue) -> Vec<(u64, f64, f64)> {
    let events = trace
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");
    events
        .iter()
        .filter(|e| {
            e.get("pid").and_then(JsonValue::as_u64) == Some(obs::chrome::POOL_PID)
                && e.get("ph").and_then(JsonValue::as_str) == Some("X")
        })
        .map(|e| {
            (
                e.get("tid").and_then(JsonValue::as_u64).expect("tid"),
                e.get("ts").and_then(JsonValue::as_f64).expect("ts"),
                e.get("dur").and_then(JsonValue::as_f64).expect("dur"),
            )
        })
        .collect()
}

#[test]
fn worker_lanes_in_chrome_trace_are_non_overlapping() {
    let rec = Recorder::new();
    let session = rayon::profile::profile_pool();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool view");
    pool.install(|| {
        // 64 items at 4 threads -> 16 chunks; each sleeps so chunks last
        // long enough that an intra-lane overlap bug would be visible.
        (0..64u32)
            .into_par_iter()
            .for_each(|_| std::thread::sleep(Duration::from_millis(1)));
    });
    rec.record_pool_profile(&session.finish());

    let trace = parse(&rec.chrome_trace_json()).expect("valid trace JSON");
    let mut events = pool_task_events(&trace);
    assert!(!events.is_empty(), "profiled run produced no pool events");

    // Group by lane (tid), then check each lane's timeline in ts order.
    events.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let lanes: std::collections::BTreeSet<u64> = events.iter().map(|e| e.0).collect();
    assert!(lanes.len() >= 2, "expected several worker lanes: {lanes:?}");
    for pair in events.windows(2) {
        let (tid_a, ts_a, dur_a) = pair[0];
        let (tid_b, ts_b, _) = pair[1];
        if tid_a != tid_b {
            continue;
        }
        // 0.01 us of slack for the {:.3} rounding of ts/dur on export.
        assert!(
            ts_a + dur_a <= ts_b + 0.01,
            "lane {tid_a}: task [{ts_a}, {}] overlaps task starting at {ts_b}",
            ts_a + dur_a
        );
    }
}

#[test]
fn serialized_workload_diagnoses_high_serial_fraction() {
    let rec = Recorder::new();
    let session = rayon::profile::profile_pool();
    {
        let _stage = rec.span("serial_stage", "host");
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool view");
        pool.install(|| {
            // A 1-thread pool takes the sequential fast path: no two pool
            // tasks are ever in flight, so the whole stage is serial.
            (0..8u32)
                .into_par_iter()
                .for_each(|_| std::thread::sleep(Duration::from_millis(1)));
        });
    }
    rec.record_pool_profile(&session.finish());

    let analysis = analyze(&rec);
    let stage = analysis
        .stages
        .iter()
        .find(|s| s.name == "serial_stage")
        .expect("serial_stage analyzed");
    assert!(
        stage.serial_fraction > 0.9,
        "serialized workload should be diagnosed serial: {stage:?}"
    );
    assert!(
        stage.amdahl_max_speedup < 1.2,
        "a serial stage has no Amdahl headroom: {stage:?}"
    );
}

#[test]
fn parallel_workload_diagnoses_low_serial_fraction() {
    let rec = Recorder::new();
    // Build the pool before opening the stage span so thread spawn time
    // does not count against the stage window.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool view");
    let session = rayon::profile::profile_pool();
    {
        let _stage = rec.span("parallel_stage", "host");
        pool.install(|| {
            // ~96 ms of sleep-bound work across 4 workers: at least two
            // tasks are in flight for nearly the whole stage.
            (0..32u32)
                .into_par_iter()
                .for_each(|_| std::thread::sleep(Duration::from_millis(3)));
        });
    }
    rec.record_pool_profile(&session.finish());

    let analysis = analyze(&rec);
    let stage = analysis
        .stages
        .iter()
        .find(|s| s.name == "parallel_stage")
        .expect("parallel_stage analyzed");
    assert!(
        stage.serial_fraction < 0.3,
        "parallel workload should be diagnosed parallel: {stage:?}"
    );
    assert!(
        stage.amdahl_max_speedup > 2.0,
        "a parallel stage has Amdahl headroom: {stage:?}"
    );
    assert!(
        !analysis.workers.is_empty(),
        "per-worker utilization table missing: {analysis:?}"
    );
}

//! The named dataset registry: SW1, SW4, SDSS1, SDSS2, SDSS3.
//!
//! Each spec records the published point count and a synthetic domain
//! whose area gives the density the paper's ε sweeps are calibrated
//! against. [`DatasetSpec::generate`] materializes the dataset at a chosen
//! scale (see the crate docs for the density-preserving scaling rule).

use crate::generator::{sdss_class, sw_class};
use serde::{Deserialize, Serialize};
use spatial::Point2;

/// Which family a dataset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetClass {
    /// Space-weather (ionospheric TEC): heavily skewed.
    SpaceWeather,
    /// Sloan Digital Sky Survey galaxies: near-uniform.
    Sdss,
    /// Synthetic skewed-density family: exponentially distributed cluster
    /// sizes (a few clusters hold most of the mass) — the tree backend's
    /// home turf in the backend ablation.
    SkewedExp,
}

/// A named dataset specification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub class: DatasetClass,
    /// Published size of the real dataset.
    pub full_size: usize,
    /// Synthetic domain extent at scale = 1 (degrees).
    pub width: f64,
    pub height: f64,
    /// Receiver sites at scale = 1 (SW class only).
    pub n_sites: usize,
    /// Generator seed, fixed per dataset so every experiment sees the
    /// same data.
    pub seed: u64,
}

/// SW1: 1,864,620 TEC measurements. Global receiver network footprint.
pub const SW1: DatasetSpec = DatasetSpec {
    name: "SW1",
    class: DatasetClass::SpaceWeather,
    full_size: 1_864_620,
    width: 360.0,
    height: 180.0,
    n_sites: 3000,
    seed: 0x5711,
};

/// SW4: 5,159,737 TEC measurements, same footprint. The larger SW
/// datasets aggregate more receiver-days, so the site count grows
/// proportionally with the measurement count (per-site density stays
/// SW1-like rather than compounding).
pub const SW4: DatasetSpec = DatasetSpec {
    name: "SW4",
    class: DatasetClass::SpaceWeather,
    full_size: 5_159_737,
    width: 360.0,
    height: 180.0,
    n_sites: 8300,
    seed: 0x5744,
};

/// SDSS1: 2·10⁶ galaxies, 0.30 ≤ z ≤ 0.35, DR12 footprint (~9000 deg²).
pub const SDSS1: DatasetSpec = DatasetSpec {
    name: "SDSS1",
    class: DatasetClass::Sdss,
    full_size: 2_000_000,
    width: 150.0,
    height: 60.0,
    n_sites: 0,
    seed: 0xd551,
};

/// SDSS2: 5·10⁶ galaxies, same footprint.
pub const SDSS2: DatasetSpec = DatasetSpec {
    name: "SDSS2",
    class: DatasetClass::Sdss,
    full_size: 5_000_000,
    width: 150.0,
    height: 60.0,
    n_sites: 0,
    seed: 0xd552,
};

/// SDSS3: 15,228,633 galaxies, same footprint.
pub const SDSS3: DatasetSpec = DatasetSpec {
    name: "SDSS3",
    class: DatasetClass::Sdss,
    full_size: 15_228_633,
    width: 150.0,
    height: 60.0,
    n_sites: 0,
    seed: 0xd553,
};

/// SKX1: synthetic skewed-exponential dataset (no published counterpart;
/// sized like SW1). `n_sites` doubles as the cluster count.
pub const SKX1: DatasetSpec = DatasetSpec {
    name: "SKX1",
    class: DatasetClass::SkewedExp,
    full_size: 2_000_000,
    width: 360.0,
    height: 180.0,
    n_sites: 600,
    seed: 0x5b71,
};

/// All registered specs, in the paper's reporting order (extensions last).
pub const ALL: [DatasetSpec; 6] = [SW1, SW4, SDSS1, SDSS2, SDSS3, SKX1];

/// Look up a spec by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    ALL.iter()
        .find(|s| s.name.eq_ignore_ascii_case(name))
        .copied()
}

impl DatasetSpec {
    /// Materialize the dataset at `scale ∈ (0, 1]`.
    ///
    /// Point count scales by `scale`; the domain's linear extent by
    /// `sqrt(scale)`, keeping density — and thus ε-neighborhood sizes —
    /// equal to the full-size dataset's.
    pub fn generate(&self, scale: f64) -> Dataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.full_size as f64 * scale).round() as usize).max(1);
        let lin = scale.sqrt();
        let (w, h) = (self.width * lin, self.height * lin);
        let points = match self.class {
            DatasetClass::SpaceWeather => {
                let sites = ((self.n_sites as f64 * scale).round() as usize).max(10);
                sw_class(n, w, h, sites, self.seed)
            }
            DatasetClass::Sdss => sdss_class(n, w, h, self.seed),
            DatasetClass::SkewedExp => {
                let clusters = ((self.n_sites as f64 * scale).round() as usize).max(8);
                crate::generator::skewed_exp_class(n, w, h, clusters, self.seed)
            }
        };
        Dataset {
            spec: *self,
            scale,
            points,
        }
    }
}

/// A materialized dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub spec: DatasetSpec,
    pub scale: f64,
    pub points: Vec<Point2>,
}

impl Dataset {
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial::GridIndex;

    #[test]
    fn registry_lookup() {
        assert_eq!(by_name("sw1").unwrap().name, "SW1");
        assert_eq!(by_name("SDSS3").unwrap().full_size, 15_228_633);
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn full_sizes_match_paper() {
        assert_eq!(SW1.full_size, 1_864_620);
        assert_eq!(SW4.full_size, 5_159_737);
        assert_eq!(SDSS1.full_size, 2_000_000);
        assert_eq!(SDSS2.full_size, 5_000_000);
        assert_eq!(SDSS3.full_size, 15_228_633);
    }

    #[test]
    fn generate_scales_count() {
        let d = SDSS1.generate(0.01);
        assert_eq!(d.len(), 20_000);
        assert_eq!(d.name(), "SDSS1");
    }

    #[test]
    fn density_is_scale_invariant() {
        // Mean neighbor count at fixed eps should be roughly equal across
        // scales (the whole point of sqrt-extent scaling).
        let eps = 0.5;
        let mean_neighbors = |scale: f64| {
            let d = SDSS1.generate(scale);
            let g = GridIndex::build(&d.points, eps);
            let sample: Vec<_> = d.points.iter().step_by(97).collect();
            let total: usize = sample.iter().map(|q| g.query_count(&d.points, q)).sum();
            total as f64 / sample.len() as f64
        };
        let lo = mean_neighbors(0.005);
        let hi = mean_neighbors(0.02);
        let ratio = hi / lo;
        assert!(
            (0.5..2.0).contains(&ratio),
            "density drifted across scales: {lo:.2} vs {hi:.2}"
        );
    }

    #[test]
    fn sw_denser_than_sdss_per_area() {
        // SW1 at scale 1: 1.86M / 64800 deg^2 ~ 29/deg^2.
        // SDSS1 at scale 1: 2M / 9000 deg^2 ~ 222/deg^2.
        let sw_density = SW1.full_size as f64 / (SW1.width * SW1.height);
        let sdss_density = SDSS1.full_size as f64 / (SDSS1.width * SDSS1.height);
        assert!(
            sdss_density > sw_density,
            "survey footprint is denser on average"
        );
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        let _ = SW1.generate(0.0);
    }
}

//! The GPUCalcShared kernel (Algorithm 3 of the paper).
//!
//! One thread *block* processes one non-empty grid cell (the *origin*
//! cell), given by the schedule `S`. The block pages the origin cell's
//! points and each adjacent *comparison* cell's points from global into
//! shared memory in block-size tiles, synchronizes, and then each thread
//! compares its origin point against every staged comparison point —
//! exploiting shared-memory bandwidth for the O(m·n) distance work. The
//! staged tiles are SoA (separate x/y arrays, same byte footprint), and
//! the per-thread compare loop runs chunk-wise with the hoisted x-axis
//! filter of [`super::scan_cell_range`] — same hits, same modeled cost.
//!
//! The paper's pseudo-code assumes cells no larger than the block; the
//! real implementation (and this one) adds the outer tiling loop it
//! mentions ("if there are more points in a cell than the block size,
//! then an additional loop is needed").
//!
//! Why this kernel loses (Table II): every block pays the fixed block
//! overhead and the staging traffic even when its cell holds a handful of
//! points, and idle lanes in each warp are dragged along at warp cost —
//! the sparser/more uniform the data (small ε, SDSS-like), the more
//! blocks, the worse the total. The experiment harness reproduces exactly
//! that trade-off.

use super::{load_cell_range, NeighborPair, SCAN_LANES};
use gpu_sim::error::DeviceError;
use gpu_sim::kernel::ChargeBatch;
use gpu_sim::kernel::{BlockCtx, BlockKernel};
use gpu_sim::launch::LaunchConfig;
use gpu_sim::memory::DeviceAppendBuffer;
use spatial::grid::CellsView;
use spatial::{GridGeometry, Point2, PointsView};

/// Algorithm 3: block-per-cell ε-neighborhood kernel staging through
/// shared memory.
pub struct GpuCalcShared<'a> {
    /// `D` (device-resident, spatially sorted), as the SoA coordinate view.
    pub points: PointsView<'a>,
    /// `G`: per-cell ranges into `A`, in either layout.
    pub grid: CellsView<'a>,
    /// `A`: point ids grouped by cell.
    pub lookup: &'a [u32],
    /// Grid geometry (device constants).
    pub geom: GridGeometry,
    /// Search radius; must equal the grid's cell width.
    pub eps: f64,
    /// The schedule `S`: linear ids of the non-empty cells this launch
    /// processes, one block each. For a batched execution, a strided
    /// sub-slice of the full schedule.
    pub schedule: &'a [u32],
    /// `gpuResultSet`: the atomic result buffer.
    pub result: &'a DeviceAppendBuffer<NeighborPair>,
}

impl GpuCalcShared<'_> {
    /// Launch configuration: one block per scheduled cell. `N` (the total
    /// thread count of Algorithm 3) is `|S| · block_dim` — the `n_GPU`
    /// reported in Table II.
    pub fn launch_config(&self, block_dim: u32) -> LaunchConfig {
        // Two point tiles plus the origin-id tile.
        let shared_bytes =
            block_dim as usize * (2 * std::mem::size_of::<Point2>() + std::mem::size_of::<u32>());
        LaunchConfig::new(self.schedule.len() as u32, block_dim).with_shared_mem(shared_bytes)
    }
}

impl BlockKernel for GpuCalcShared<'_> {
    fn run_block(&self, ctx: &mut BlockCtx) -> Result<(), DeviceError> {
        let bd = ctx.block_dim as usize;
        let eps_sq = self.eps * self.eps;

        // cellToProc <- S[blockID].
        let cell = self.schedule[ctx.block_idx as usize];
        let origin_range = self.grid.range_of(cell);
        let m_origin = origin_range.len();

        // shared pntsOriginCell[blockDim.x], pntsCompCell[blockDim.x] —
        // staged SoA (split x/y), same 2 * size_of::<Point2>() bytes per
        // thread as the interleaved layout.
        let mut s_origin_x: Vec<f64> = ctx.alloc_shared(bd)?;
        let mut s_origin_y: Vec<f64> = ctx.alloc_shared(bd)?;
        let mut s_comp_x: Vec<f64> = ctx.alloc_shared(bd)?;
        let mut s_comp_y: Vec<f64> = ctx.alloc_shared(bd)?;
        // Origin point ids travel with the staged coordinates (the result
        // pair needs them); a real kernel stages them in shared memory too.
        let mut s_origin_ids: Vec<u32> = ctx.alloc_shared(bd)?;

        // Thread 0 fetches the neighbor-cell list; synchronize().
        let mut cell_ids = [0u32; 9];
        let mut n_cells = 0;
        ctx.phase(|t| {
            if t.tid == 0 {
                let _ = load_cell_range(t, &self.grid, cell);
                t.charge_flops(10);
                let (ids, n) = self.geom.neighbor_cells(cell as usize);
                cell_ids = ids;
                n_cells = n;
            }
        });

        // Outer tiling over the origin cell (the "additional loop" for
        // cells larger than the block).
        let origin_tiles = m_origin.div_ceil(bd).max(1);
        for ot in 0..origin_tiles {
            let o_base = origin_range.start as usize + ot * bd;
            let o_count = (m_origin - ot * bd).min(bd);

            // Stage the origin tile: one point per thread. The kernel is
            // "oblivious to the number of data points per cell" (paper,
            // §IV-B): every thread executes the load sequence in lockstep
            // (cost), but only in-range lanes store real points
            // (function).
            ctx.phase(|t| {
                let k = t.tid as usize;
                t.read_global::<u32>(1);
                t.read_global::<Point2>(1);
                t.access_shared::<Point2>(1);
                if k < o_count {
                    // lookupOffset <- G[cellToProc].min + threadId.x;
                    // dataID <- A[lookupOffset]; copy D[dataID] to shared.
                    let id = self.lookup[o_base + k];
                    s_origin_x[k] = self.points.xs[id as usize];
                    s_origin_y[k] = self.points.ys[id as usize];
                    s_origin_ids[k] = id;
                }
            });

            // Loop over the comparison cells.
            for &comp_cell in &cell_ids[..n_cells] {
                let comp_range = self.grid.range_of(comp_cell);
                let m_comp = comp_range.len();
                if m_comp == 0 {
                    continue;
                }
                let comp_tiles = m_comp.div_ceil(bd);
                for ct in 0..comp_tiles {
                    let c_base = comp_range.start as usize + ct * bd;
                    let c_count = (m_comp - ct * bd).min(bd);

                    // Stage the comparison tile; synchronize(). All lanes
                    // execute the loads in lockstep (cost).
                    ctx.phase(|t| {
                        let k = t.tid as usize;
                        t.read_global::<u32>(1);
                        t.read_global::<Point2>(1);
                        t.access_shared::<Point2>(1);
                        if k < c_count {
                            let id = self.lookup[c_base + k];
                            s_comp_x[k] = self.points.xs[id as usize];
                            s_comp_y[k] = self.points.ys[id as usize];
                        }
                    });

                    // Compare: thread k owns origin point k (if staged)
                    // and scans the staged comparison tile from shared
                    // memory, chunk-wise over SoA lanes with the x-axis
                    // filter hoisted (bit-identical hit decisions; see
                    // scan_cell_range for the argument). Lanes without an
                    // origin point idle, but the warp-max accounting still
                    // charges their warp the active lanes' cost — and the
                    // block keeps paying the staging loads and barriers
                    // above, which is what sinks this kernel on sparse
                    // cells (Table II).
                    ctx.phase(|t| {
                        let k = t.tid as usize;
                        if k >= o_count {
                            return;
                        }
                        let (px, py) = (s_origin_x[k], s_origin_y[k]);
                        let pid = s_origin_ids[k];
                        t.access_shared::<Point2>(1);
                        t.access_shared::<Point2>(c_count as u64);
                        // Per candidate: 5 DP ops for the distance plus
                        // ~7 ops of loop index, compare and branch
                        // arithmetic (the DP dependency chain pipelines
                        // poorly inside a warp).
                        t.charge_flops(12 * c_count as u64);
                        let mut j = 0;
                        while j < c_count {
                            let c = (c_count - j).min(SCAN_LANES);
                            let mut d2 = [0.0f64; SCAN_LANES];
                            let mut all_far = true;
                            for l in 0..c {
                                let dx = px - s_comp_x[j + l];
                                d2[l] = dx * dx;
                                all_far &= d2[l] > eps_sq;
                            }
                            if !all_far {
                                for l in 0..c {
                                    let dy = py - s_comp_y[j + l];
                                    d2[l] += dy * dy;
                                }
                                let mut out = [(0u32, 0u32); SCAN_LANES];
                                let mut h = 0;
                                for (l, &d) in d2.iter().take(c).enumerate() {
                                    if d <= eps_sq {
                                        out[h] = (pid, self.lookup[c_base + j + l]);
                                        h += 1;
                                    }
                                }
                                if h > 0 {
                                    let mut charge = ChargeBatch {
                                        atomics: h as u64,
                                        ..ChargeBatch::default()
                                    };
                                    charge.write_global::<NeighborPair>(h as u64);
                                    t.charge_batch(charge);
                                    let _ = self.result.append_n(&out[..h]);
                                }
                            }
                            j += c;
                        }
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::test_support::{brute_force_pairs, estimate_result_capacity, mixed_points};
    use super::*;
    use gpu_sim::Device;
    use spatial::{GridIndex, PointStore};

    fn run_kernel(
        data: &[Point2],
        eps: f64,
        block_dim: u32,
    ) -> (Vec<(u32, u32)>, gpu_sim::KernelReport) {
        let device = Device::k20c();
        let grid = GridIndex::build(data, eps);
        let store = PointStore::from_points(data);
        // Size via the estimation kernel (exact at stride 1), as
        // production does — not O(n²) scratch.
        let cap = estimate_result_capacity(&device, &store, &grid, eps);
        let result = DeviceAppendBuffer::new(&device, cap).unwrap();
        let kernel = GpuCalcShared {
            points: store.view(),
            grid: grid.cells_view(),
            lookup: grid.lookup(),
            geom: grid.geometry(),
            eps,
            schedule: grid.non_empty_cells(),
            result: &result,
        };
        let report = device
            .launch(kernel.launch_config(block_dim), &kernel)
            .unwrap();
        let mut result = result;
        assert!(!result.overflowed());
        let mut pairs = result.as_filled_slice().to_vec();
        pairs.sort_unstable();
        (pairs, report)
    }

    #[test]
    fn matches_brute_force() {
        let data = mixed_points(300);
        for eps in [0.3, 1.0, 2.5] {
            let (pairs, _) = run_kernel(&data, eps, 64);
            assert_eq!(pairs, brute_force_pairs(&data, eps), "eps = {eps}");
        }
    }

    #[test]
    fn matches_global_kernel_results() {
        let data = mixed_points(400);
        let eps = 0.7;
        let (shared_pairs, _) = run_kernel(&data, eps, 64);
        assert_eq!(shared_pairs, brute_force_pairs(&data, eps));
    }

    #[test]
    fn cells_larger_than_block_are_tiled() {
        // 500 coincident-ish points in one cell, block of 64: the origin
        // and comparison tiling loops must cover everything.
        let data: Vec<Point2> = (0..300)
            .map(|i| Point2::new(0.001 * (i % 17) as f64, 0.001 * (i % 13) as f64))
            .collect();
        let (pairs, report) = run_kernel(&data, 1.0, 64);
        assert_eq!(pairs.len(), 300 * 300);
        assert_eq!(
            report.config.grid_dim, 1,
            "single non-empty cell = single block"
        );
    }

    #[test]
    fn thread_count_is_blocks_times_block_dim() {
        let data = mixed_points(500);
        let eps = 0.4;
        let grid = GridIndex::build(&data, eps);
        let (_, report) = run_kernel(&data, eps, 128);
        assert_eq!(
            report.threads_launched,
            grid.non_empty_cells().len() as u64 * 128,
            "n_GPU = non-empty cells x block size (Table II)"
        );
    }

    #[test]
    fn schedule_subset_processes_only_those_cells() {
        let data = mixed_points(200);
        let eps = 0.9;
        let device = Device::k20c();
        let grid = GridIndex::build(&data, eps);
        let store = PointStore::from_points(&data);
        let cap = estimate_result_capacity(&device, &store, &grid, eps);
        let full_schedule = grid.non_empty_cells();
        // Split the schedule in two and verify the union matches.
        let mid = full_schedule.len() / 2;
        let mut all_pairs = Vec::new();
        for part in [&full_schedule[..mid], &full_schedule[mid..]] {
            let result = DeviceAppendBuffer::new(&device, cap).unwrap();
            let kernel = GpuCalcShared {
                points: store.view(),
                grid: grid.cells_view(),
                lookup: grid.lookup(),
                geom: grid.geometry(),
                eps,
                schedule: part,
                result: &result,
            };
            if !part.is_empty() {
                device.launch(kernel.launch_config(64), &kernel).unwrap();
            }
            let mut result = result;
            all_pairs.extend_from_slice(result.as_filled_slice());
        }
        all_pairs.sort_unstable();
        assert_eq!(all_pairs, brute_force_pairs(&data, eps));
    }

    #[test]
    fn shared_memory_request_scales_with_block() {
        let data = mixed_points(50);
        let grid = GridIndex::build(&data, 1.0);
        let store = PointStore::from_points(&data);
        let device = Device::k20c();
        let result = DeviceAppendBuffer::new(&device, 10_000).unwrap();
        let kernel = GpuCalcShared {
            points: store.view(),
            grid: grid.cells_view(),
            lookup: grid.lookup(),
            geom: grid.geometry(),
            eps: 1.0,
            schedule: grid.non_empty_cells(),
            result: &result,
        };
        let cfg = kernel.launch_config(256);
        assert_eq!(cfg.shared_mem_bytes, 256 * (2 * 16 + 4));
        assert!(cfg.validate(device.props()).is_ok());
    }
}

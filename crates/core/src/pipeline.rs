//! The multi-clustering pipeline (scenario S2, Section VII-E).
//!
//! Clustering one dataset under a sweep of ε values means building a fresh
//! neighbor table per variant. The pipeline overlaps the two stages in a
//! producer-consumer fashion: while DBSCAN consumes the table of variant
//! `v_i` on the host, the GPU (plus its 3 batching threads) is already
//! producing the table for `v_{i+1}`. The paper allows up to 3 concurrent
//! DBSCAN consumers.
//!
//! [`MultiClusterPipeline::run`] measures each variant's two stage
//! durations *uncontended* (serial execution) and computes the
//! deterministic modeled totals: the non-pipelined response time
//! `Σ (g_i + d_i)` and the pipelined makespan of the two-stage schedule
//! (Figure 4 / Table IV compare exactly these). Setting
//! [`PipelineConfig::concurrent`] instead really executes the producer
//! (on the calling thread) and the consumers (on the shared rayon pool,
//! crossbeam channel between them) — functionally identical, but stage
//! timings then depend on the benchmark host's core count. On a
//! single-thread pool concurrent mode degrades to the serial pass.

use crate::dbscan::Clustering;
use crate::disjoint_set::dbscan_disjoint_set;
use crate::hybrid::{HybridConfig, HybridDbscan, HybridError};
use crate::scenario::Variant;
use crate::shard::{ShardConfig, ShardedHybrid};
use gpu_sim::device::Device;
use gpu_sim::time::SimDuration;
use obs::Recorder;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use spatial::Point2;
use std::sync::Arc;
use std::time::Instant;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Concurrent DBSCAN consumer threads (paper: up to 3).
    pub consumers: usize,
    /// Hybrid-DBSCAN settings used by the producer.
    pub hybrid: HybridConfig,
    /// Execute stages on real threads (functional validation) instead of
    /// measuring them serially and modeling the overlap.
    pub concurrent: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            consumers: 3,
            hybrid: HybridConfig::default(),
            concurrent: false,
        }
    }
}

/// Timing of one variant within the pipeline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VariantTiming {
    pub variant: Variant,
    /// Table-construction (GPU-phase) modeled time `g_i`.
    pub gpu_phase: SimDuration,
    /// Host DBSCAN time `d_i` (measured).
    pub dbscan: SimDuration,
}

/// The outcome of a pipelined multi-clustering run.
#[derive(Debug)]
pub struct PipelineReport {
    pub per_variant: Vec<VariantTiming>,
    /// `Σ (g_i + d_i)`: the non-pipelined response time.
    pub non_pipelined_total: SimDuration,
    /// Makespan of the overlapped producer-consumer schedule.
    pub pipelined_total: SimDuration,
    /// Wall-clock time of the actual concurrent execution.
    pub wall_time: std::time::Duration,
    /// Cluster counts per variant (full label vectors are dropped to keep
    /// sweep memory bounded; rerun a single variant to inspect labels).
    pub cluster_counts: Vec<u32>,
}

impl PipelineReport {
    /// Speedup of pipelining over running the stages back to back
    /// (the right column of Table IV). A degenerate report whose
    /// pipelined total is zero (e.g. no variants) yields 0.0 rather than
    /// NaN/inf.
    pub fn pipeline_speedup(&self) -> f64 {
        let pipelined = self.pipelined_total.as_secs();
        if pipelined == 0.0 {
            0.0
        } else {
            self.non_pipelined_total.as_secs() / pipelined
        }
    }
}

/// Two-stage pipeline makespan: one producer lane (table construction is
/// serialized on the GPU) feeding `consumers` DBSCAN lanes.
///
/// `g[i]` and `d[i]` are the stage durations of variant `i`, processed in
/// order. Consumers are assigned greedily to the earliest-free lane.
pub fn pipeline_makespan(g: &[SimDuration], d: &[SimDuration], consumers: usize) -> SimDuration {
    assert_eq!(g.len(), d.len());
    let consumers = consumers.max(1);
    let mut producer_free = 0.0f64;
    let mut lanes = vec![0.0f64; consumers];
    let mut end = 0.0f64;
    for i in 0..g.len() {
        producer_free += g[i].as_secs();
        // Earliest-free consumer lane.
        let lane = lanes
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(k, _)| k)
            .unwrap();
        let start = producer_free.max(lanes[lane]);
        lanes[lane] = start + d[i].as_secs();
        end = end.max(lanes[lane]);
    }
    SimDuration::from_secs(end.max(producer_free))
}

/// The S2 pipeline executor.
pub struct MultiClusterPipeline {
    device: Device,
    config: PipelineConfig,
    recorder: Option<Arc<Recorder>>,
}

impl MultiClusterPipeline {
    pub fn new(device: &Device, config: PipelineConfig) -> Self {
        MultiClusterPipeline {
            device: device.clone(),
            config,
            recorder: None,
        }
    }

    /// Attach an [`obs::Recorder`]: stage spans, queue telemetry, and the
    /// pipeline totals are recorded into it (and propagated to the
    /// producer's [`HybridDbscan`]).
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    fn make_hybrid(&self) -> HybridDbscan {
        let hybrid = HybridDbscan::new(&self.device, self.config.hybrid);
        match &self.recorder {
            Some(rec) => hybrid.with_recorder(rec.clone()),
            None => hybrid,
        }
    }

    fn record_totals(&self, report: &PipelineReport) {
        if let Some(rec) = &self.recorder {
            let m = rec.metrics();
            m.gauge_set(
                "pipeline.non_pipelined_ms",
                report.non_pipelined_total.as_millis(),
            );
            m.gauge_set("pipeline.pipelined_ms", report.pipelined_total.as_millis());
            m.gauge_set("pipeline.speedup", report.pipeline_speedup());
            m.counter_add("pipeline.variants", report.per_variant.len() as u64);
        }
    }

    /// Cluster `data` under every variant. Stage durations are measured
    /// serially (uncontended) unless [`PipelineConfig::concurrent`] is
    /// set; the pipelined/non-pipelined totals are modeled either way.
    pub fn run(
        &self,
        data: &[Point2],
        variants: &[Variant],
    ) -> Result<PipelineReport, HybridError> {
        if !self.config.concurrent {
            return self.run_serial(data, variants);
        }
        self.run_concurrent(data, variants)
    }

    /// The serial pass with a **sharded** producer (DESIGN.md §14): each
    /// variant's table comes from [`ShardedHybrid::build_table`] — k
    /// devices concurrently or out-of-core tiling, per `shard_cfg` — and
    /// the consumer stage is the concurrent disjoint-set pass over the
    /// merged table. The merged rows are bitwise identical to the
    /// unsharded build's, so cluster counts match [`Self::run`] exactly;
    /// `gpu_phase` is the sharded modeled time (max over shards when
    /// concurrent, sum when out-of-core).
    pub fn run_sharded(
        &self,
        data: &[Point2],
        variants: &[Variant],
        shard_cfg: ShardConfig,
    ) -> Result<PipelineReport, HybridError> {
        let sharded = {
            let s = ShardedHybrid::new(&self.device, shard_cfg);
            match &self.recorder {
                Some(rec) => s.with_recorder(rec.clone()),
                None => s,
            }
        };
        let rec = self.recorder.as_deref();
        let wall_start = Instant::now();
        let mut per_variant = Vec::with_capacity(variants.len());
        let mut cluster_counts = Vec::with_capacity(variants.len());
        for (i, v) in variants.iter().enumerate() {
            let produce_span = rec.map(|r| {
                let mut s = r.span(format!("produce-sharded[{i}]"), "pipeline");
                s.arg("eps", v.eps);
                s
            });
            let handle = sharded.build_table(data, v.eps)?;
            drop(produce_span);
            let consume_span = rec.map(|r| {
                let mut s = r.span(format!("consume[{i}]"), "pipeline");
                s.arg("minpts", v.minpts);
                s
            });
            let t0 = Instant::now();
            let clustering = dbscan_disjoint_set(&handle.table, v.minpts).unpermute(&handle.perm);
            let dbscan_time: SimDuration = t0.elapsed().into();
            drop(consume_span);
            per_variant.push(VariantTiming {
                variant: *v,
                gpu_phase: handle.modeled_time,
                dbscan: dbscan_time,
            });
            cluster_counts.push(clustering.num_clusters());
        }
        let report = Self::assemble(
            per_variant,
            cluster_counts,
            self.config.consumers,
            wall_start,
        );
        self.record_totals(&report);
        Ok(report)
    }

    /// Serial measurement pass: build `T`, run DBSCAN, one variant at a
    /// time.
    fn run_serial(
        &self,
        data: &[Point2],
        variants: &[Variant],
    ) -> Result<PipelineReport, HybridError> {
        let hybrid = self.make_hybrid();
        let rec = self.recorder.as_deref();
        let wall_start = Instant::now();
        let mut per_variant = Vec::with_capacity(variants.len());
        let mut cluster_counts = Vec::with_capacity(variants.len());
        for (i, v) in variants.iter().enumerate() {
            let produce_span = rec.map(|r| {
                let mut s = r.span(format!("produce[{i}]"), "pipeline");
                s.arg("eps", v.eps);
                s
            });
            let handle = hybrid.build_table(data, v.eps)?;
            drop(produce_span);
            let consume_span = rec.map(|r| {
                let mut s = r.span(format!("consume[{i}]"), "pipeline");
                s.arg("minpts", v.minpts);
                s
            });
            let (clustering, dbscan_time) = HybridDbscan::cluster_with_table(&handle, v.minpts);
            drop(consume_span);
            per_variant.push(VariantTiming {
                variant: *v,
                gpu_phase: handle.gpu.modeled_time,
                dbscan: dbscan_time,
            });
            cluster_counts.push(clustering.num_clusters());
        }
        let report = Self::assemble(
            per_variant,
            cluster_counts,
            self.config.consumers,
            wall_start,
        );
        self.record_totals(&report);
        Ok(report)
    }

    fn assemble(
        per_variant: Vec<VariantTiming>,
        cluster_counts: Vec<u32>,
        consumers: usize,
        wall_start: Instant,
    ) -> PipelineReport {
        let g: Vec<SimDuration> = per_variant.iter().map(|t| t.gpu_phase).collect();
        let d: Vec<SimDuration> = per_variant.iter().map(|t| t.dbscan).collect();
        let non_pipelined_total =
            g.iter().copied().sum::<SimDuration>() + d.iter().copied().sum::<SimDuration>();
        let pipelined_total = pipeline_makespan(&g, &d, consumers);
        PipelineReport {
            per_variant,
            non_pipelined_total,
            pipelined_total,
            wall_time: wall_start.elapsed(),
            cluster_counts,
        }
    }

    /// Concurrent execution: the producer runs on the calling thread and
    /// `consumers` DBSCAN consumers run on the shared rayon pool.
    ///
    /// The consumers block on the channel while the producer works, so
    /// real overlap needs at least two threads. On a 1-thread pool there
    /// is no thread to host a consumer while the caller produces —
    /// running "concurrently" would deadlock on the bounded channel — so
    /// this degrades to the (functionally identical) serial pass, with
    /// zero queue-wait telemetry recorded for shape parity.
    fn run_concurrent(
        &self,
        data: &[Point2],
        variants: &[Variant],
    ) -> Result<PipelineReport, HybridError> {
        if rayon::current_num_threads() < 2 {
            let report = self.run_serial(data, variants)?;
            if let Some(rec) = &self.recorder {
                for _ in variants {
                    rec.metrics().observe("pipeline.queue_wait_ms", 0.0);
                }
                rec.metrics().gauge_set("pipeline.queue_depth", 0.0);
            }
            return Ok(report);
        }
        let hybrid = self.make_hybrid();
        let rec = self.recorder.as_deref();
        let n = variants.len();
        let results: Mutex<Vec<Option<(VariantTiming, Clustering)>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let error: Mutex<Option<HybridError>> = Mutex::new(None);

        let wall_start = Instant::now();
        // Each message carries its send instant so consumers can report
        // how long tables sat in the queue (producer/consumer imbalance).
        let (tx, rx) =
            crossbeam::channel::bounded::<(usize, Variant, crate::hybrid::TableHandle, Instant)>(
                self.config.consumers.max(1),
            );

        rayon::scope(|s| {
            // Consumers: run DBSCAN over each received table. Spawned
            // first so pool workers pick them up while the producer
            // (below, on the calling thread) builds the first table.
            for _ in 0..self.config.consumers.max(1) {
                let rx = rx.clone();
                let results = &results;
                s.spawn(move |_| {
                    while let Ok((i, v, handle, sent_at)) = rx.recv() {
                        if let Some(r) = rec {
                            r.metrics().observe(
                                "pipeline.queue_wait_ms",
                                sent_at.elapsed().as_secs_f64() * 1e3,
                            );
                            r.metrics()
                                .gauge_set("pipeline.queue_depth", rx.len() as f64);
                        }
                        let consume_span = rec.map(|r| {
                            let mut span = r.span(format!("consume[{i}]"), "pipeline");
                            span.arg("minpts", v.minpts);
                            span
                        });
                        let (clustering, dbscan_time) =
                            HybridDbscan::cluster_with_table(&handle, v.minpts);
                        drop(consume_span);
                        let timing = VariantTiming {
                            variant: v,
                            gpu_phase: handle.gpu.modeled_time,
                            dbscan: dbscan_time,
                        };
                        results.lock()[i] = Some((timing, clustering));
                    }
                });
            }
            drop(rx);

            // Producer: builds tables in variant order on this thread
            // (table construction is serialized on the GPU anyway). The
            // bounded channel provides backpressure so at most
            // `consumers` tables are alive.
            for (i, v) in variants.iter().enumerate() {
                let produce_span = rec.map(|r| {
                    let mut span = r.span(format!("produce[{i}]"), "pipeline");
                    span.arg("eps", v.eps);
                    span
                });
                match hybrid.build_table(data, v.eps) {
                    Ok(handle) => {
                        drop(produce_span);
                        if tx.send((i, *v, handle, Instant::now())).is_err() {
                            break;
                        }
                    }
                    Err(e) => {
                        *error.lock() = Some(e);
                        break;
                    }
                }
            }
            drop(tx);
        });

        if let Some(e) = error.into_inner() {
            return Err(e);
        }

        let collected = results.into_inner();
        let mut per_variant = Vec::with_capacity(n);
        let mut cluster_counts = Vec::with_capacity(n);
        for slot in collected {
            let (timing, clustering) = slot.expect("every variant must complete");
            per_variant.push(timing);
            cluster_counts.push(clustering.num_clusters());
        }
        let report = Self::assemble(
            per_variant,
            cluster_counts,
            self.config.consumers,
            wall_start,
        );
        self.record_totals(&report);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbscan::{Dbscan, GridSource};
    use crate::kernels::test_support::mixed_points;
    use spatial::GridIndex;

    fn secs(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn makespan_single_variant_is_sum() {
        let m = pipeline_makespan(&[secs(2.0)], &[secs(3.0)], 3);
        assert_eq!(m.as_secs(), 5.0);
    }

    #[test]
    fn makespan_overlaps_stages() {
        // Equal stages: pipelined total = g1 + n*d (steady state).
        let g = vec![secs(1.0); 4];
        let d = vec![secs(1.0); 4];
        let m = pipeline_makespan(&g, &d, 1);
        assert_eq!(m.as_secs(), 5.0, "1 + 4 with perfect overlap");
        let serial: f64 = 8.0;
        assert!(m.as_secs() < serial);
    }

    #[test]
    fn makespan_consumer_bound_relieved_by_lanes() {
        // DBSCAN twice as slow as table construction: with one consumer
        // the pipeline is consumer-bound; three lanes hide it.
        let g = vec![secs(1.0); 6];
        let d = vec![secs(2.0); 6];
        let one = pipeline_makespan(&g, &d, 1);
        let three = pipeline_makespan(&g, &d, 3);
        assert!(three < one);
        // With 3 lanes the producer is the bottleneck: 6*1 + last d = 8.
        assert_eq!(three.as_secs(), 8.0);
    }

    #[test]
    fn makespan_producer_bound_independent_of_lanes() {
        let g = vec![secs(2.0); 5];
        let d = vec![secs(0.5); 5];
        let a = pipeline_makespan(&g, &d, 1);
        let b = pipeline_makespan(&g, &d, 3);
        assert_eq!(a.as_secs(), b.as_secs(), "producer-bound either way");
        assert_eq!(a.as_secs(), 10.5);
    }

    #[test]
    fn makespan_empty() {
        assert_eq!(pipeline_makespan(&[], &[], 3).as_secs(), 0.0);
    }

    #[test]
    fn speedup_of_zero_duration_report_is_zero_not_nan() {
        // An empty (or all-zero-stage) report must not divide by zero.
        let report = PipelineReport {
            per_variant: Vec::new(),
            non_pipelined_total: secs(0.0),
            pipelined_total: secs(0.0),
            wall_time: std::time::Duration::ZERO,
            cluster_counts: Vec::new(),
        };
        let s = report.pipeline_speedup();
        assert_eq!(s, 0.0);
        assert!(!s.is_nan());
    }

    #[test]
    fn recorder_captures_pipeline_stages() {
        let data = mixed_points(200);
        let device = Device::k20c();
        let rec = std::sync::Arc::new(obs::Recorder::new());
        let pipeline = MultiClusterPipeline::new(&device, PipelineConfig::default())
            .with_recorder(rec.clone());
        let variants = vec![Variant::new(0.5, 4), Variant::new(1.0, 4)];
        pipeline.run(&data, &variants).unwrap();
        let spans = rec.spans();
        assert!(
            spans.iter().any(|s| s.name == "produce[0]"),
            "missing produce span"
        );
        assert!(
            spans.iter().any(|s| s.name == "consume[1]"),
            "missing consume span"
        );
        let metrics = rec.metrics().snapshot();
        assert_eq!(metrics.counters["pipeline.variants"], 2);
        assert!(metrics.gauges["pipeline.speedup"] >= 1.0);
    }

    #[test]
    fn recorder_captures_queue_telemetry_in_concurrent_mode() {
        let data = mixed_points(200);
        let device = Device::k20c();
        let rec = std::sync::Arc::new(obs::Recorder::new());
        let pipeline = MultiClusterPipeline::new(
            &device,
            PipelineConfig {
                concurrent: true,
                ..Default::default()
            },
        )
        .with_recorder(rec.clone());
        let variants = vec![
            Variant::new(0.5, 4),
            Variant::new(0.8, 4),
            Variant::new(1.0, 4),
        ];
        pipeline.run(&data, &variants).unwrap();
        let metrics = rec.metrics().snapshot();
        let wait = &metrics.histograms["pipeline.queue_wait_ms"];
        assert_eq!(wait.count, 3, "one queue-wait sample per variant");
        assert!(metrics.gauges.contains_key("pipeline.queue_depth"));
    }

    #[test]
    fn pipeline_runs_all_variants_correctly() {
        let data = mixed_points(400);
        let device = Device::k20c();
        let pipeline = MultiClusterPipeline::new(&device, PipelineConfig::default());
        let variants: Vec<Variant> = [0.4, 0.6, 0.8, 1.0]
            .iter()
            .map(|&e| Variant::new(e, 4))
            .collect();
        let report = pipeline.run(&data, &variants).unwrap();

        assert_eq!(report.per_variant.len(), 4);
        assert_eq!(report.cluster_counts.len(), 4);
        // Cross-check cluster counts against direct DBSCAN per variant.
        for (v, &count) in variants.iter().zip(&report.cluster_counts) {
            let grid = GridIndex::build(&data, v.eps);
            let direct = Dbscan::new(v.minpts).run(&GridSource::new(&grid, &data));
            assert_eq!(count, direct.num_clusters(), "eps = {}", v.eps);
        }
        // Pipelining can only help.
        assert!(report.pipelined_total <= report.non_pipelined_total);
        assert!(report.pipeline_speedup() >= 1.0);
        // Results arrive in variant order regardless of consumer timing.
        for (t, v) in report.per_variant.iter().zip(&variants) {
            assert_eq!(t.variant.eps, v.eps);
        }
    }

    #[test]
    fn sharded_producer_matches_unsharded_pipeline() {
        use crate::shard::ShardMode;
        let data = mixed_points(400);
        let device = Device::k20c();
        let variants: Vec<Variant> = [0.4, 0.7, 1.0]
            .iter()
            .map(|&e| Variant::new(e, 4))
            .collect();
        let pipeline = MultiClusterPipeline::new(&device, PipelineConfig::default());
        let unsharded = pipeline.run(&data, &variants).unwrap();
        for (mode, shards) in [(ShardMode::Concurrent, 3), (ShardMode::OutOfCore, 2)] {
            let sharded = pipeline
                .run_sharded(
                    &data,
                    &variants,
                    ShardConfig {
                        shards,
                        mode,
                        hybrid: HybridConfig::default(),
                    },
                )
                .unwrap();
            assert_eq!(
                sharded.cluster_counts, unsharded.cluster_counts,
                "sharded producer ({mode:?}, k={shards}) changed cluster counts"
            );
            assert_eq!(sharded.per_variant.len(), variants.len());
            assert!(sharded.pipelined_total <= sharded.non_pipelined_total);
        }
    }

    #[test]
    fn pipeline_with_one_consumer_still_completes() {
        let data = mixed_points(200);
        let device = Device::k20c();
        let cfg = PipelineConfig {
            consumers: 1,
            ..Default::default()
        };
        let pipeline = MultiClusterPipeline::new(&device, cfg);
        let variants = vec![Variant::new(0.5, 4), Variant::new(1.0, 4)];
        let report = pipeline.run(&data, &variants).unwrap();
        assert_eq!(report.per_variant.len(), 2);
    }

    #[test]
    fn concurrent_execution_matches_serial() {
        let data = mixed_points(300);
        let device = Device::k20c();
        let variants = vec![
            Variant::new(0.4, 4),
            Variant::new(0.7, 4),
            Variant::new(1.0, 4),
        ];
        let serial = MultiClusterPipeline::new(&device, PipelineConfig::default())
            .run(&data, &variants)
            .unwrap();
        let concurrent = MultiClusterPipeline::new(
            &device,
            PipelineConfig {
                concurrent: true,
                ..Default::default()
            },
        )
        .run(&data, &variants)
        .unwrap();
        assert_eq!(serial.cluster_counts, concurrent.cluster_counts);
        // Per-variant records exist for both (timings are measured and
        // host-dependent, so only structure is asserted).
        assert_eq!(serial.per_variant.len(), concurrent.per_variant.len());
    }
}

//! Robust statistics over per-trial samples for the benchmark suite.
//!
//! Benchmark trials on a shared host are contaminated by scheduler noise;
//! the suite therefore reports medians, the median absolute deviation
//! (MAD), and the interquartile range rather than means and standard
//! deviations. The regression gate (`regress::noise_threshold`) derives
//! its per-stage noise threshold from the baseline's MAD.

use obs::bench::StageStats;

/// Linear-interpolated `q`-quantile (`q` in `[0, 1]`) of `sorted`
/// (ascending). Returns 0 on an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    match sorted.len() {
        0 => 0.0,
        1 => sorted[0],
        n => {
            let pos = q.clamp(0.0, 1.0) * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Median of arbitrary (unsorted) samples.
pub fn median(samples: &[f64]) -> f64 {
    let mut s = samples.to_vec();
    s.sort_by(f64::total_cmp);
    quantile_sorted(&s, 0.5)
}

/// Median absolute deviation from the median.
pub fn mad(samples: &[f64]) -> f64 {
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|v| (v - m).abs()).collect();
    median(&deviations)
}

/// Summarize per-trial durations (milliseconds) into the schema's
/// [`StageStats`].
pub fn summarize(samples_ms: &[f64]) -> StageStats {
    if samples_ms.is_empty() {
        return StageStats::default();
    }
    let mut sorted = samples_ms.to_vec();
    sorted.sort_by(f64::total_cmp);
    let median_ms = quantile_sorted(&sorted, 0.5);
    let deviations: Vec<f64> = sorted.iter().map(|v| (v - median_ms).abs()).collect();
    StageStats {
        trials: sorted.len() as u64,
        median_ms,
        mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
        mad_ms: median(&deviations),
        iqr_ms: quantile_sorted(&sorted, 0.75) - quantile_sorted(&sorted, 0.25),
        min_ms: sorted[0],
        max_ms: sorted[sorted.len() - 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_and_single() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn mad_is_robust_to_one_outlier() {
        // One wildly descheduled trial barely moves the MAD…
        let clean = [10.0, 10.2, 9.8, 10.1, 9.9];
        let dirty = [10.0, 10.2, 9.8, 10.1, 500.0];
        assert!(mad(&clean) <= 0.2);
        assert!(mad(&dirty) <= 0.3, "mad = {}", mad(&dirty));
        // …while the mean explodes.
        let mean_dirty = dirty.iter().sum::<f64>() / dirty.len() as f64;
        assert!(mean_dirty > 100.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_sorted(&s, 0.0), 1.0);
        assert_eq!(quantile_sorted(&s, 1.0), 4.0);
        assert_eq!(quantile_sorted(&s, 0.5), 2.5);
        assert_eq!(quantile_sorted(&s, 0.25), 1.75);
    }

    #[test]
    fn summarize_fills_all_fields() {
        let s = summarize(&[2.0, 1.0, 3.0]);
        assert_eq!(s.trials, 3);
        assert_eq!(s.median_ms, 2.0);
        assert_eq!(s.mean_ms, 2.0);
        assert_eq!(s.mad_ms, 1.0);
        assert_eq!(s.iqr_ms, 1.0);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 3.0);

        let one = summarize(&[5.0]);
        assert_eq!(one.trials, 1);
        assert_eq!(one.median_ms, 5.0);
        assert_eq!(one.mad_ms, 0.0);
        assert_eq!(one.iqr_ms, 0.0);

        assert_eq!(summarize(&[]), obs::bench::StageStats::default());
    }
}

//! `repro report` — the cross-run trend report over the run ledger.
//!
//! Loads the ledger (`results/ledger/` or `--ledger DIR`), runs the
//! [`obs::trend`] change-point analysis over the window, prints the text
//! summary, and renders the self-contained HTML dashboard
//! ([`obs::dashboard`]) to `REPORT.html` (under `--csv DIR` when given,
//! else the working directory). The dashboard's embedded JSON payload is
//! round-trip-validated through [`obs::json::parse`] before the file is
//! written — a dashboard whose data block doesn't parse is a bug, not an
//! artifact.
//!
//! Gate: trend regressions (modeled-stage steps, `modeled_time_bits`
//! changes outside a `LEDGER_BASELINE_REFRESH=1` run) are advisory by
//! default and fail the run under `TREND_STRICT=1` — the same strictness
//! pattern as `BENCH_STRICT` / `THREADS_STRICT` / `DIFF_STRICT`.

use crate::common::Options;
use obs::dashboard;
use obs::trend;

/// Load the ledger, analyze, print the summary, write `REPORT.html`.
/// Returns the process exit code: nonzero when `TREND_STRICT=1` and the
/// analysis found gating findings, or the dashboard failed validation.
pub fn print(opts: &Options) -> i32 {
    let strict = std::env::var("TREND_STRICT").is_ok_and(|v| v == "1");
    let ledger = opts.run_ledger();
    println!(
        "== Run-ledger trend report ({}) ==\n",
        ledger.dir().display()
    );

    let loaded = ledger.load();
    for reason in &loaded.skipped {
        eprintln!("# report: skipped unreadable ledger line: {reason}");
    }
    if loaded.records.is_empty() {
        eprintln!(
            "# report: ledger at {} has no readable records",
            ledger.dir().display()
        );
        eprintln!("# report: run `repro bench|threads|profile|shard` first to append records");
        return 1;
    }

    let report = trend::analyze(&loaded.records, trend::DEFAULT_WINDOW);
    print!("{}", dashboard::render_text(&loaded.records, &report));

    // Render, then validate the embedded payload through the shared
    // parser before shipping the file.
    let html = dashboard::render_html(&loaded.records, &report);
    let valid = match dashboard::embedded_json(&html).and_then(|json| {
        obs::json::parse(&json).map_err(|e| format!("embedded payload does not parse: {e}"))
    }) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("# report: INTERNAL ERROR: {e}");
            false
        }
    };
    if valid {
        let path = opts
            .csv_dir
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("."))
            .join("REPORT.html");
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, &html) {
            Ok(()) => eprintln!("# report: wrote {} (open in any browser)", path.display()),
            Err(e) => eprintln!("# report: cannot write {}: {e}", path.display()),
        }
    }

    let gating = report.gating().len();
    if gating > 0 {
        if strict {
            eprintln!("# report: {gating} gating trend finding(s) (TREND_STRICT=1 — failing)");
            return 1;
        }
        eprintln!(
            "# report: {gating} gating trend finding(s) (advisory; set TREND_STRICT=1 to enforce)"
        );
    }
    if !valid {
        return 1;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use obs::ledger::{GateOutcome, Ledger, LedgerEntry, LedgerRecord, StagePoint, RECORD_VERSION};
    use obs::provenance::Provenance;

    fn record(seq: u64, modeled_ms: f64, bits: u64) -> LedgerRecord {
        let mut entry = LedgerEntry {
            workload: "s1/sw1-eps0.2/global".into(),
            modeled_time_bits: Some(bits),
            ..LedgerEntry::default()
        };
        entry.stages.insert(
            "modeled".into(),
            StagePoint {
                median_ms: modeled_ms,
                mad_ms: 0.0,
                wall: false,
            },
        );
        entry.stages.insert(
            "build_table".into(),
            StagePoint {
                median_ms: 40.0 + seq as f64,
                mad_ms: 1.5,
                wall: true,
            },
        );
        entry.metrics.insert("clusters".into(), 64.0);
        LedgerRecord {
            version: RECORD_VERSION,
            command: "bench".into(),
            scale: 0.002,
            baseline_refresh: false,
            provenance: Provenance {
                header_version: obs::provenance::HEADER_VERSION,
                schema: obs::ledger::RECORD_SCHEMA.into(),
                schema_version: RECORD_VERSION,
                git_sha: "ee9aa08269b9".into(),
                git_dirty: false,
                rustc: "rustc 1.95.0".into(),
                rayon_num_threads: "unset".into(),
                host: "testhost".into(),
                os: "linux".into(),
                timestamp_unix: 1_754_000_000 + seq * 3600,
                workloads: vec!["s1/sw1-eps0.2/global".into()],
            },
            gate: GateOutcome {
                strict: false,
                regressions: 0,
                advisories: 0,
                passed: true,
            },
            entries: vec![entry],
        }
    }

    fn temp_ledger(name: &str) -> Ledger {
        let dir = std::env::temp_dir().join(format!("repro-report-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Ledger::at(dir)
    }

    #[test]
    fn report_runs_end_to_end_over_a_real_ledger_dir() {
        let ledger = temp_ledger("e2e");
        for i in 0..5 {
            ledger.append(&record(i, 100.0, 0xabc)).unwrap();
        }
        let opts = Options {
            ledger: Some(ledger.dir().to_path_buf()),
            csv_dir: Some(ledger.dir().to_path_buf()),
            ..Options::default()
        };
        assert_eq!(print(&opts), 0);
        let html = std::fs::read_to_string(ledger.dir().join("REPORT.html")).unwrap();
        let json = obs::dashboard::embedded_json(&html).unwrap();
        let v = obs::json::parse(&json).expect("embedded payload parses");
        assert_eq!(
            v.get("records")
                .and_then(obs::json::JsonValue::as_arr)
                .map(|a| a.len()),
            Some(5)
        );
        let _ = std::fs::remove_dir_all(ledger.dir());
    }

    #[test]
    fn doctored_two_x_modeled_step_is_flagged_and_would_gate() {
        // The acceptance scenario: a ledger whose newest records carry a
        // doctored 2× modeled stage time must be flagged by obs::trend as
        // a gating finding (which fails `repro report` under
        // TREND_STRICT=1 — the exit-code path is exercised through the
        // report's own gating() count, since tests must not set process
        // env for other tests' sake).
        let ledger = temp_ledger("doctored");
        for i in 0..8 {
            let ms = if i < 6 { 100.0 } else { 200.0 };
            ledger.append(&record(i, ms, 0xabc)).unwrap();
        }
        let loaded = ledger.load();
        let report = obs::trend::analyze(&loaded.records, obs::trend::DEFAULT_WINDOW);
        let gating = report.gating();
        assert!(
            gating.iter().any(|f| f.stage == "modeled"),
            "2x modeled step must gate: {:?}",
            report.findings
        );
        let _ = std::fs::remove_dir_all(ledger.dir());
    }

    #[test]
    fn empty_ledger_dir_is_an_error_not_a_crash() {
        let ledger = temp_ledger("empty");
        std::fs::create_dir_all(ledger.dir()).unwrap();
        let opts = Options {
            ledger: Some(ledger.dir().to_path_buf()),
            ..Options::default()
        };
        assert_eq!(print(&opts), 1);
        let _ = std::fs::remove_dir_all(ledger.dir());
    }
}
